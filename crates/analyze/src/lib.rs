//! Trace analytics over binary ring dumps: where every cycle goes.
//!
//! Consumes the span records a [`dsm_trace::Tracer`] writes into ring
//! files (`cat` must include `span` **and** `msg` — the per-message
//! phases ride on the message events) and reconstructs one [`Span`]
//! per injected operation, with its child phases. On top of that it
//! offers:
//!
//! - per-operation latency percentiles ([`Analysis::latency_by_op`]),
//!   backed by the same [`LatencyHist`] the simulator records, so
//!   trace-derived and simulator-derived numbers are directly
//!   comparable;
//! - an **additive critical-path decomposition**
//!   ([`Span::decompose`]): network, queueing, directory service,
//!   invalidation fan-out, forwards, replies, cache service and local
//!   residual, summing *exactly* to the span's measured latency;
//! - per-line contention ranking with ASCII timelines
//!   ([`Analysis::hottest_lines`]);
//! - LL/SC and CAS retry-chain reconstruction and retry-storm
//!   detection ([`Analysis::chains`], [`Analysis::retry_storms`]).
//!
//! Everything is deterministic: files are processed in file-name
//! order, every aggregation iterates `BTreeMap`s, and [`Analysis::report`]
//! output is byte-identical for identical input files regardless of
//! how many worker threads produced them.
//!
//! ```
//! use dsm_analyze::{Analysis, Span};
//!
//! let span = Span {
//!     id: 1,
//!     file: 0,
//!     proc: 0,
//!     op: "Cas".to_string(),
//!     line: 0x40,
//!     begin: 100,
//!     end: 180,
//!     outcome: "ok".to_string(),
//!     phases: vec![],
//! };
//! let parts = span.decompose();
//! // No recorded phases: every cycle is local, and the parts sum to
//! // the measured latency.
//! assert_eq!(parts.get("local"), Some(&80));
//! assert_eq!(parts.values().sum::<u64>(), span.latency());
//! ```

#![deny(missing_docs)]

use dsm_stats::LatencyHist;
use dsm_trace::{RecordKind, RingFile};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// Preferred column order for decomposition components. Components not
/// listed here (future phase labels) sort after these, alphabetically.
const COMPONENT_ORDER: [&str; 8] = [
    "net", "queue", "dir", "inval", "fwd", "reply", "cachesvc", "local",
];

/// One child phase of a span: a half-open cycle interval attributed to
/// a phase label (`net`, `queue`, `dir`, `inval`, `fwd`, `reply`,
/// `cachesvc`) on one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Phase {
    /// Phase label (the tracer's, e.g. `net` or `dir`).
    pub label: String,
    /// First cycle of the interval.
    pub start: u64,
    /// One past the last cycle of the interval.
    pub end: u64,
    /// Node the phase ran on (destination node for `net`/`queue`).
    pub node: u32,
}

/// One reconstructed operation span: an injected atomic operation from
/// issue to retirement, with every message phase the tracer attributed
/// to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Span id as recorded (unique within one trace file).
    pub id: u64,
    /// Ordinal of the source file in file-name order (ids are only
    /// unique per file, so `(file, id)` is the global key).
    pub file: u32,
    /// Issuing processor.
    pub proc: u32,
    /// Operation label (`Load`, `Cas`, `LoadLinked`, ...).
    pub op: String,
    /// Cache-line address the operation targets.
    pub line: u64,
    /// Issue cycle.
    pub begin: u64,
    /// Retirement cycle.
    pub end: u64,
    /// Outcome label: `ok`, `cas-fail`, `sc-fail` or `ll-unreserved`.
    pub outcome: String,
    /// Child phases, in trace order.
    pub phases: Vec<Phase>,
}

impl Span {
    /// Measured latency: retirement minus issue, in cycles.
    pub fn latency(&self) -> u64 {
        self.end - self.begin
    }

    /// Whether the operation retired without achieving its update
    /// (failed CAS or SC, or an LL that lost its reservation).
    pub fn failed(&self) -> bool {
        self.outcome != "ok"
    }

    /// Additive critical-path decomposition of the span.
    ///
    /// Child phases overlap (invalidations fan out in parallel; a
    /// reply's network flight overlaps the home node servicing the
    /// next request), so naively summing phase durations over-counts.
    /// Instead the phases are swept in start order behind an advancing
    /// frontier: each phase contributes only the part of its interval
    /// past the frontier, clamped to the span. Cycles no phase covers
    /// (cache lookup, local hit latency) land in `local`.
    ///
    /// The contributions are disjoint sub-intervals of
    /// `[begin, end)`, so the returned components **sum exactly to
    /// [`latency`](Self::latency)** — asserted by the crate's tests.
    pub fn decompose(&self) -> BTreeMap<String, u64> {
        let mut parts: BTreeMap<String, u64> = BTreeMap::new();
        let mut phases: Vec<&Phase> = self.phases.iter().collect();
        phases.sort_by_key(|a| (a.start, a.end));
        let mut frontier = self.begin;
        for p in phases {
            let lo = p.start.max(frontier);
            let hi = p.end.min(self.end);
            if hi > lo {
                *parts.entry(p.label.clone()).or_insert(0) += hi - lo;
                frontier = hi;
            }
        }
        let covered: u64 = parts.values().sum();
        let local = self.latency() - covered;
        if local > 0 || parts.is_empty() {
            parts.insert("local".to_string(), local);
        }
        parts
    }
}

/// A run of consecutive spans by one processor on one line forming one
/// logical atomic attempt sequence: an LL is chained to the SC it arms,
/// and a failed CAS/SC/LL chains to the retry that follows it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chain {
    /// The processor retrying.
    pub proc: u32,
    /// The contended line.
    pub line: u64,
    /// Spans in the chain, in issue order.
    pub spans: Vec<Span>,
}

impl Chain {
    /// Total wall-clock extent of the chain, first issue to last
    /// retirement.
    pub fn duration(&self) -> u64 {
        self.spans.last().map_or(0, |s| s.end) - self.spans.first().map_or(0, |s| s.begin)
    }

    /// Operations that retired without achieving their update.
    pub fn failures(&self) -> u64 {
        self.spans.iter().filter(|s| s.failed()).count() as u64
    }

    /// Cycles spent inside attempts that preceded the final operation —
    /// the price of retrying.
    pub fn retry_cycles(&self) -> u64 {
        let n = self.spans.len().saturating_sub(1);
        self.spans[..n].iter().map(Span::latency).sum()
    }

    /// Cycles between attempts (the processor backing off or spinning
    /// before re-issuing).
    pub fn backoff_cycles(&self) -> u64 {
        self.spans.windows(2).map(|w| w[1].begin - w[0].end).sum()
    }

    /// The final attempt's own latency. `final_cycles + retry_cycles +
    /// backoff_cycles == duration` exactly.
    pub fn final_cycles(&self) -> u64 {
        self.spans.last().map_or(0, |s| s.latency())
    }
}

/// Per-line contention summary for [`Analysis::hottest_lines`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineReport {
    /// The cache-line address.
    pub line: u64,
    /// Spans that targeted the line.
    pub spans: u64,
    /// Total cycles those spans spent in flight.
    pub cycles: u64,
    /// Spans that retired failed (CAS/SC losses, dropped LL
    /// reservations).
    pub failures: u64,
    /// Peak number of simultaneously in-flight spans on the line.
    pub peak_concurrency: u64,
    /// ASCII timeline of in-flight span count across the trace window
    /// (one char per bucket, ` ` = idle, `@` = the line's peak).
    pub timeline: String,
}

/// Everything the analyzer reconstructed from a set of ring files.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Completed spans, ordered by `(begin, file, id)`.
    pub spans: Vec<Span>,
    /// Spans begun but never ended (operation still in flight when the
    /// trace stopped, or the `SpanEnd` fell off the ring).
    pub open_spans: u64,
    /// `SpanPhase`/`SpanEnd` records whose `SpanBegin` was overwritten
    /// by ring wrap-around; dropped.
    pub orphan_records: u64,
    /// Events the sinks overwrote because the ring wrapped, summed
    /// over files.
    pub dropped_events: u64,
    /// Total ring records read, summed over files.
    pub records: u64,
    /// Number of ring files read.
    pub files: u64,
}

/// Partial span under reconstruction.
struct OpenSpan {
    proc: u32,
    op: String,
    line: u64,
    begin: u64,
    phases: Vec<Phase>,
}

impl Analysis {
    /// Reads and analyzes ring files. Paths are sorted by file name
    /// (then full path) before reading, so the analysis is independent
    /// of argument order and of the enumeration order of a directory
    /// walk.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; a malformed file surfaces as
    /// [`io::ErrorKind::InvalidData`] naming the path.
    pub fn from_files<P: AsRef<Path>>(paths: &[P]) -> io::Result<Analysis> {
        let mut sorted: Vec<PathBuf> = paths.iter().map(|p| p.as_ref().to_path_buf()).collect();
        sorted.sort_by(|a, b| a.file_name().cmp(&b.file_name()).then_with(|| a.cmp(b)));
        let mut rings = Vec::with_capacity(sorted.len());
        for path in &sorted {
            let ring = RingFile::load(path)
                .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", path.display())))?;
            rings.push(ring);
        }
        Ok(Analysis::from_rings(&rings))
    }

    /// Analyzes already-parsed ring files, in the order given.
    pub fn from_rings(rings: &[RingFile]) -> Analysis {
        let mut spans = Vec::new();
        let mut open_spans = 0u64;
        let mut orphans = 0u64;
        let mut dropped = 0u64;
        let mut records = 0u64;
        for (file, ring) in rings.iter().enumerate() {
            let file = file as u32;
            dropped += ring.dropped;
            records += ring.records.len() as u64;
            let mut open: BTreeMap<u64, OpenSpan> = BTreeMap::new();
            for rec in &ring.records {
                match RecordKind::from_u8(rec.kind) {
                    Some(RecordKind::SpanBegin) => {
                        open.insert(
                            rec.b,
                            OpenSpan {
                                proc: rec.node,
                                op: ring.label(rec.label).to_string(),
                                line: rec.a,
                                begin: rec.ts,
                                phases: Vec::new(),
                            },
                        );
                    }
                    Some(RecordKind::SpanPhase) => match open.get_mut(&rec.b) {
                        Some(s) => s.phases.push(Phase {
                            label: ring.label(rec.label).to_string(),
                            start: rec.ts,
                            end: rec.a,
                            node: rec.node,
                        }),
                        // Late phases for an already-retired span (an
                        // invalidation ack arriving after the op) are
                        // clamped to zero by `decompose` anyway; a
                        // phase with no begin at all is ring loss.
                        None => orphans += 1,
                    },
                    Some(RecordKind::SpanEnd) => match open.remove(&rec.b) {
                        Some(s) => spans.push(Span {
                            id: rec.b,
                            file,
                            proc: s.proc,
                            op: s.op,
                            line: s.line,
                            begin: s.begin,
                            end: rec.ts,
                            outcome: ring.label(rec.label).to_string(),
                            phases: s.phases,
                        }),
                        None => orphans += 1,
                    },
                    _ => {}
                }
            }
            open_spans += open.len() as u64;
        }
        spans.sort_by_key(|a| (a.begin, a.file, a.id));
        Analysis {
            spans,
            open_spans,
            orphan_records: orphans,
            dropped_events: dropped,
            records,
            files: rings.len() as u64,
        }
    }

    /// Cycle-exact latency histogram per operation label.
    pub fn latency_by_op(&self) -> BTreeMap<String, LatencyHist> {
        let mut by_op: BTreeMap<String, LatencyHist> = BTreeMap::new();
        for s in &self.spans {
            by_op.entry(s.op.clone()).or_default().record(s.latency());
        }
        by_op
    }

    /// Summed critical-path decomposition per operation label:
    /// `op -> (span count, component -> cycles)`. Each span's
    /// components sum to its latency, so each op's components sum to
    /// that op's total in-flight cycles.
    pub fn decomposition_by_op(&self) -> BTreeMap<String, (u64, BTreeMap<String, u64>)> {
        let mut by_op: BTreeMap<String, (u64, BTreeMap<String, u64>)> = BTreeMap::new();
        for s in &self.spans {
            let entry = by_op.entry(s.op.clone()).or_default();
            entry.0 += 1;
            for (label, cycles) in s.decompose() {
                *entry.1.entry(label).or_insert(0) += cycles;
            }
        }
        by_op
    }

    /// The union of decomposition component labels present, in
    /// `COMPONENT_ORDER` (unknown labels after, alphabetically).
    pub fn component_labels(&self) -> Vec<String> {
        let mut seen: Vec<String> = Vec::new();
        for (_, (_, parts)) in self.decomposition_by_op() {
            for label in parts.keys() {
                if !seen.contains(label) {
                    seen.push(label.clone());
                }
            }
        }
        seen.sort_by_key(|l| {
            (
                COMPONENT_ORDER
                    .iter()
                    .position(|c| c == l)
                    .unwrap_or(COMPONENT_ORDER.len()),
                l.clone(),
            )
        });
        seen
    }

    /// Attempt chains: per-processor runs of spans on one line, where
    /// an LL chains to the operation that follows it on the same line
    /// (the SC it arms) and any failed operation chains to its retry.
    /// Ordered by `(proc, first issue cycle)`.
    pub fn chains(&self) -> Vec<Chain> {
        let mut per_proc: BTreeMap<u32, Vec<&Span>> = BTreeMap::new();
        for s in &self.spans {
            per_proc.entry(s.proc).or_default().push(s);
        }
        let mut chains = Vec::new();
        for (proc, spans) in per_proc {
            // `self.spans` is begin-sorted and each processor has one
            // operation in flight at a time, so this slice is already
            // in issue order.
            let mut current: Vec<Span> = Vec::new();
            for s in spans {
                let continues = current.last().is_some_and(|prev: &Span| {
                    prev.line == s.line && (prev.failed() || prev.op == "LoadLinked")
                });
                if !continues && !current.is_empty() {
                    chains.push(Chain {
                        proc,
                        line: current[0].line,
                        spans: std::mem::take(&mut current),
                    });
                }
                current.push(s.clone());
            }
            if !current.is_empty() {
                chains.push(Chain {
                    proc,
                    line: current[0].line,
                    spans: current,
                });
            }
        }
        chains
    }

    /// Chains with at least `min_failures` failed attempts — the
    /// retry storms. Sorted worst-first: by failure count, then chain
    /// duration, then `(proc, line, begin)` to break ties
    /// deterministically.
    pub fn retry_storms(&self, min_failures: u64) -> Vec<Chain> {
        let mut storms: Vec<Chain> = self
            .chains()
            .into_iter()
            .filter(|c| c.failures() >= min_failures.max(1))
            .collect();
        storms.sort_by(|a, b| {
            (b.failures(), b.duration())
                .cmp(&(a.failures(), a.duration()))
                .then_with(|| {
                    (a.proc, a.line, a.spans[0].begin).cmp(&(b.proc, b.line, b.spans[0].begin))
                })
        });
        storms
    }

    /// The `n` busiest lines by total in-flight cycles, each with an
    /// ASCII contention timeline across the trace window.
    pub fn hottest_lines(&self, n: usize) -> Vec<LineReport> {
        const BUCKETS: usize = 48;
        const RAMP: &[u8] = b" .:-=+*#%@";
        let window_lo = self.spans.iter().map(|s| s.begin).min().unwrap_or(0);
        let window_hi = self.spans.iter().map(|s| s.end).max().unwrap_or(0);
        let width = (window_hi - window_lo).max(1);
        let mut lines: BTreeMap<u64, (u64, u64, u64, Vec<u64>)> = BTreeMap::new();
        for s in &self.spans {
            let e = lines
                .entry(s.line)
                .or_insert_with(|| (0, 0, 0, vec![0; BUCKETS]));
            e.0 += 1;
            e.1 += s.latency();
            e.2 += u64::from(s.failed());
            // Mark every bucket the span's flight interval touches.
            let lo = ((s.begin - window_lo) as u128 * BUCKETS as u128 / width as u128) as usize;
            let hi = ((s.end - window_lo) as u128 * BUCKETS as u128 / width as u128) as usize;
            for b in &mut e.3[lo.min(BUCKETS - 1)..=hi.min(BUCKETS - 1)] {
                *b += 1;
            }
        }
        let mut reports: Vec<LineReport> = lines
            .into_iter()
            .map(|(line, (spans, cycles, failures, buckets))| {
                let peak = buckets.iter().copied().max().unwrap_or(0);
                let timeline: String = buckets
                    .iter()
                    .map(|&c| {
                        if c == 0 || peak == 0 {
                            ' '
                        } else {
                            let idx = 1 + (c - 1) as usize * (RAMP.len() - 2) / peak as usize;
                            RAMP[idx.min(RAMP.len() - 1)] as char
                        }
                    })
                    .collect();
                LineReport {
                    line,
                    spans,
                    cycles,
                    failures,
                    peak_concurrency: peak,
                    timeline,
                }
            })
            .collect();
        reports.sort_by(|a, b| {
            (b.cycles, b.spans)
                .cmp(&(a.cycles, a.spans))
                .then_with(|| a.line.cmp(&b.line))
        });
        reports.truncate(n);
        reports
    }

    /// Latency percentile table rows (header first), CSV-shaped.
    pub fn latency_rows(&self) -> Vec<Vec<String>> {
        let mut rows = vec![{
            let mut h = vec!["op".to_string()];
            h.extend(LatencyHist::quantile_header());
            h
        }];
        for (op, hist) in self.latency_by_op() {
            let mut row = vec![op];
            row.extend(hist.quantile_cells());
            rows.push(row);
        }
        rows
    }

    /// Decomposition table rows (header first), CSV-shaped: per op,
    /// span count, total cycles, then one column per component.
    pub fn decomposition_rows(&self) -> Vec<Vec<String>> {
        let labels = self.component_labels();
        let mut header = vec!["op".to_string(), "spans".to_string(), "total".to_string()];
        header.extend(labels.iter().cloned());
        let mut rows = vec![header];
        for (op, (count, parts)) in self.decomposition_by_op() {
            let total: u64 = parts.values().sum();
            let mut row = vec![op, count.to_string(), total.to_string()];
            for label in &labels {
                row.push(parts.get(label).copied().unwrap_or(0).to_string());
            }
            rows.push(row);
        }
        rows
    }

    /// Renders the full deterministic text report: trace summary,
    /// per-op latency percentiles, critical-path decomposition with
    /// percentages, hottest lines with contention timelines, and
    /// retry-chain/storm statistics.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "trace: {} file(s), {} record(s), {} span(s) ({} open, {} orphan, {} dropped)\n\n",
            self.files,
            self.records,
            self.spans.len(),
            self.open_spans,
            self.orphan_records,
            self.dropped_events,
        ));
        if self.spans.is_empty() {
            out.push_str(
                "no operation spans found — was the trace captured with cat including \
                 `span` and `msg`?\n",
            );
            return out;
        }

        out.push_str("== operation latency (cycles) ==\n");
        out.push_str(&dsm_stats::render_table(&self.latency_rows()));
        out.push('\n');

        out.push_str("== critical path: where the cycles go ==\n");
        let labels = self.component_labels();
        let mut rows = vec![{
            let mut h = vec!["op".to_string(), "spans".to_string(), "total".to_string()];
            h.extend(labels.iter().cloned());
            h
        }];
        for (op, (count, parts)) in self.decomposition_by_op() {
            let total: u64 = parts.values().sum();
            let mut row = vec![op, count.to_string(), total.to_string()];
            for label in &labels {
                let cycles = parts.get(label).copied().unwrap_or(0);
                let pct = if total == 0 {
                    0.0
                } else {
                    cycles as f64 * 100.0 / total as f64
                };
                row.push(format!("{cycles} ({pct:.1}%)"));
            }
            rows.push(row);
        }
        out.push_str(&dsm_stats::render_table(&rows));
        out.push('\n');

        out.push_str("== hottest lines ==\n");
        for r in self.hottest_lines(8) {
            out.push_str(&format!(
                "line {:#x}: {} span(s), {} cycle(s), {} failure(s), peak {} in flight\n",
                r.line, r.spans, r.cycles, r.failures, r.peak_concurrency
            ));
            out.push_str(&format!("  |{}|\n", r.timeline));
        }
        out.push('\n');

        let chains = self.chains();
        let retried: Vec<&Chain> = chains.iter().filter(|c| c.spans.len() > 1).collect();
        let retry: u64 = retried.iter().map(|c| c.retry_cycles()).sum();
        let backoff: u64 = retried.iter().map(|c| c.backoff_cycles()).sum();
        out.push_str("== retry chains ==\n");
        out.push_str(&format!(
            "{} chain(s), {} with retries; {} retry cycle(s), {} backoff cycle(s)\n",
            chains.len(),
            retried.len(),
            retry,
            backoff,
        ));
        let storms = self.retry_storms(8);
        if storms.is_empty() {
            out.push_str("no retry storms (no chain with 8+ failed attempts)\n");
        } else {
            out.push_str(&format!(
                "{} retry storm(s) (8+ failed attempts):\n",
                storms.len()
            ));
            for c in storms.iter().take(8) {
                out.push_str(&format!(
                    "  proc {} line {:#x}: {} attempt(s), {} failure(s), \
                     cycles [{}, {}) = {} retry + {} backoff + {} final\n",
                    c.proc,
                    c.line,
                    c.spans.len(),
                    c.failures(),
                    c.spans[0].begin,
                    c.spans.last().expect("chain is non-empty").end,
                    c.retry_cycles(),
                    c.backoff_cycles(),
                    c.final_cycles(),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_trace::RingRecord;
    use proptest::prelude::*;

    /// Builds a RingFile by hand: labels + (kind, ts, a, b, node,
    /// label-idx) tuples.
    fn ring(labels: &[&str], recs: &[(RecordKind, u64, u64, u64, u32, u16)]) -> RingFile {
        RingFile {
            version: 2,
            dropped: 0,
            labels: labels.iter().map(|s| s.to_string()).collect(),
            records: recs
                .iter()
                .map(|&(kind, ts, a, b, node, label)| RingRecord {
                    ts,
                    a,
                    b,
                    c: 0,
                    node,
                    label,
                    kind: kind as u8,
                })
                .collect(),
        }
    }

    /// Labels: 0=Cas 1=ok 2=net 3=queue 4=dir 5=cas-fail 6=LoadLinked
    /// 7=StoreConditional 8=sc-fail 9=inval
    const LABELS: [&str; 10] = [
        "Cas",
        "ok",
        "net",
        "queue",
        "dir",
        "cas-fail",
        "LoadLinked",
        "StoreConditional",
        "sc-fail",
        "inval",
    ];

    fn one_span_ring() -> RingFile {
        ring(
            &LABELS,
            &[
                // span 1: Cas on line 0x40, proc 2, cycles [100, 180).
                (RecordKind::SpanBegin, 100, 0x40, 1, 2, 0),
                // net [105,125) to node 3, queue [125,130), dir [130,150).
                (RecordKind::SpanPhase, 105, 125, 1, 3, 2),
                (RecordKind::SpanPhase, 125, 130, 1, 3, 3),
                (RecordKind::SpanPhase, 130, 150, 1, 3, 4),
                (RecordKind::SpanEnd, 180, 0, 1, 2, 1),
            ],
        )
    }

    #[test]
    fn reconstructs_spans_with_phases() {
        let a = Analysis::from_rings(&[one_span_ring()]);
        assert_eq!(a.spans.len(), 1);
        assert_eq!(a.open_spans, 0);
        assert_eq!(a.orphan_records, 0);
        let s = &a.spans[0];
        assert_eq!((s.proc, s.line, s.begin, s.end), (2, 0x40, 100, 180));
        assert_eq!(s.op, "Cas");
        assert_eq!(s.outcome, "ok");
        assert_eq!(s.phases.len(), 3);
        assert_eq!(s.latency(), 80);
    }

    #[test]
    fn decomposition_is_exactly_additive() {
        let a = Analysis::from_rings(&[one_span_ring()]);
        let parts = a.spans[0].decompose();
        assert_eq!(parts.get("net"), Some(&20));
        assert_eq!(parts.get("queue"), Some(&5));
        assert_eq!(parts.get("dir"), Some(&20));
        // 100..105 issue + 150..180 reply-side residual.
        assert_eq!(parts.get("local"), Some(&35));
        assert_eq!(parts.values().sum::<u64>(), a.spans[0].latency());
    }

    #[test]
    fn overlapping_phases_do_not_double_count() {
        // Two parallel invalidations [10,40) and [20,50), inside a span
        // [0,60): the sweep books [10,40) to the first and only the
        // non-overlapped [40,50) to the second.
        let f = ring(
            &LABELS,
            &[
                (RecordKind::SpanBegin, 0, 0x80, 7, 0, 0),
                (RecordKind::SpanPhase, 10, 40, 7, 1, 9),
                (RecordKind::SpanPhase, 20, 50, 7, 2, 9),
                (RecordKind::SpanEnd, 60, 0, 7, 0, 1),
            ],
        );
        let a = Analysis::from_rings(&[f]);
        let parts = a.spans[0].decompose();
        assert_eq!(parts.get("inval"), Some(&40));
        assert_eq!(parts.get("local"), Some(&20));
        assert_eq!(parts.values().sum::<u64>(), 60);
    }

    #[test]
    fn late_phases_past_span_end_are_clamped_out() {
        // An invalidation ack serviced after the op retired: attributed
        // to the span but clamped to zero contribution.
        let f = ring(
            &LABELS,
            &[
                (RecordKind::SpanBegin, 0, 0x80, 7, 0, 0),
                (RecordKind::SpanEnd, 30, 0, 7, 0, 1),
            ],
        );
        let mut a = Analysis::from_rings(&[f]);
        a.spans[0].phases.push(Phase {
            label: "inval".to_string(),
            start: 40,
            end: 55,
            node: 1,
        });
        let parts = a.spans[0].decompose();
        assert_eq!(parts.get("inval"), None);
        assert_eq!(parts.get("local"), Some(&30));
    }

    #[test]
    fn orphans_and_open_spans_are_counted_not_fatal() {
        let f = ring(
            &LABELS,
            &[
                // Phase and end for a begin the ring lost.
                (RecordKind::SpanPhase, 10, 20, 99, 1, 2),
                (RecordKind::SpanEnd, 30, 0, 99, 1, 1),
                // A begin that never ends.
                (RecordKind::SpanBegin, 40, 0x40, 100, 1, 0),
            ],
        );
        let a = Analysis::from_rings(&[f]);
        assert_eq!(a.spans.len(), 0);
        assert_eq!(a.orphan_records, 2);
        assert_eq!(a.open_spans, 1);
        // The report still renders.
        assert!(a.report().contains("0 span(s)"));
    }

    #[test]
    fn span_ids_do_not_collide_across_files() {
        // Both files use span id 1; the analysis must keep both.
        let a = Analysis::from_rings(&[one_span_ring(), one_span_ring()]);
        assert_eq!(a.spans.len(), 2);
        assert_eq!(a.spans[0].file, 0);
        assert_eq!(a.spans[1].file, 1);
        let by_op = a.latency_by_op();
        assert_eq!(by_op["Cas"].total(), 2);
    }

    #[test]
    fn latency_percentiles_come_from_span_latencies() {
        let a = Analysis::from_rings(&[one_span_ring()]);
        let by_op = a.latency_by_op();
        assert_eq!(by_op["Cas"].percentile(50, 100), 80);
        assert_eq!(by_op["Cas"].max(), 80);
        let rows = a.latency_rows();
        assert_eq!(rows[0][0], "op");
        assert_eq!(rows[1][0], "Cas");
    }

    fn llsc_storm_ring() -> RingFile {
        // Proc 5 on line 0x100: LL(ok) SC(fail) ×9, then LL(ok) SC(ok).
        let mut recs = Vec::new();
        let mut span = 1u64;
        let mut t = 0u64;
        for round in 0..10u64 {
            // LL.
            recs.push((RecordKind::SpanBegin, t, 0x100, span, 5, 6));
            recs.push((RecordKind::SpanEnd, t + 10, 0, span, 5, 1));
            span += 1;
            t += 12;
            // SC: fails on every round but the last.
            let outcome = if round == 9 { 1 } else { 8 };
            recs.push((RecordKind::SpanBegin, t, 0x100, span, 5, 7));
            recs.push((RecordKind::SpanEnd, t + 20, 0, span, 5, outcome));
            span += 1;
            t += 25;
        }
        ring(&LABELS, &recs)
    }

    #[test]
    fn llsc_retries_form_one_chain_and_a_storm() {
        let a = Analysis::from_rings(&[llsc_storm_ring()]);
        let chains = a.chains();
        assert_eq!(chains.len(), 1, "LL->SC->retry must chain");
        let c = &chains[0];
        assert_eq!(c.spans.len(), 20);
        assert_eq!(c.failures(), 9);
        // Additivity of the chain decomposition.
        assert_eq!(
            c.retry_cycles() + c.backoff_cycles() + c.final_cycles(),
            c.duration()
        );
        let storms = a.retry_storms(8);
        assert_eq!(storms.len(), 1);
        assert_eq!((storms[0].proc, storms[0].line), (5, 0x100));
        let report = a.report();
        assert!(report.contains("retry storm"));
        assert!(report.contains("LoadLinked"));
    }

    #[test]
    fn independent_ops_do_not_chain() {
        // Two successful CASes on different lines, same proc.
        let f = ring(
            &LABELS,
            &[
                (RecordKind::SpanBegin, 0, 0x40, 1, 0, 0),
                (RecordKind::SpanEnd, 10, 0, 1, 0, 1),
                (RecordKind::SpanBegin, 20, 0x80, 2, 0, 0),
                (RecordKind::SpanEnd, 30, 0, 2, 0, 1),
            ],
        );
        let a = Analysis::from_rings(&[f]);
        assert_eq!(a.chains().len(), 2);
        assert!(a.retry_storms(1).is_empty());
    }

    #[test]
    fn hottest_lines_rank_by_cycles_and_draw_timelines() {
        let a = Analysis::from_rings(&[llsc_storm_ring(), one_span_ring()]);
        let lines = a.hottest_lines(8);
        assert_eq!(lines[0].line, 0x100, "storm line must rank first");
        assert!(lines[0].cycles > lines[1].cycles);
        assert_eq!(lines[1].line, 0x40);
        assert_eq!(lines[0].timeline.chars().count(), 48);
        assert!(lines[0].timeline.trim().len() > 1);
        assert!(lines[0].peak_concurrency >= 1);
        // Requesting fewer lines truncates.
        assert_eq!(a.hottest_lines(1).len(), 1);
    }

    #[test]
    fn report_is_deterministic_and_complete() {
        let a = Analysis::from_rings(&[llsc_storm_ring(), one_span_ring()]);
        let b = Analysis::from_rings(&[llsc_storm_ring(), one_span_ring()]);
        assert_eq!(a.report(), b.report());
        let r = a.report();
        for section in [
            "operation latency",
            "critical path",
            "hottest lines",
            "retry chains",
            "p50",
            "p99",
        ] {
            assert!(r.contains(section), "missing `{section}` in:\n{r}");
        }
    }

    #[test]
    fn from_files_sorts_by_file_name_and_reports_bad_files() {
        let dir = std::env::temp_dir().join(format!("dsm-analyze-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.ring");
        std::fs::write(&bad, b"not a ring file").unwrap();
        let err = Analysis::from_files(std::slice::from_ref(&bad)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("bad.ring"));
        std::fs::remove_dir_all(&dir).ok();
    }

    proptest! {
        /// The decomposition is additive for arbitrary phase soups:
        /// any number of phases with any overlap, any clamping.
        #[test]
        fn decomposition_always_sums_to_latency(
            begin in 0u64..1000,
            len in 1u64..1000,
            phases in proptest::collection::vec((0u64..2000, 0u64..500, 0usize..4), 0..12),
        ) {
            let labels = ["net", "queue", "dir", "inval"];
            let span = Span {
                id: 1,
                file: 0,
                proc: 0,
                op: "Cas".to_string(),
                line: 0x40,
                begin,
                end: begin + len,
                outcome: "ok".to_string(),
                phases: phases
                    .into_iter()
                    .map(|(start, plen, label)| Phase {
                        label: labels[label].to_string(),
                        start,
                        end: start + plen,
                        node: 0,
                    })
                    .collect(),
            };
            let parts = span.decompose();
            prop_assert_eq!(parts.values().sum::<u64>(), span.latency());
        }
    }
}
