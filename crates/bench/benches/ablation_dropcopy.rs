//! Ablation: the cost/benefit of `drop_copy` for INV fetch_and_add.
//!
//! The paper (§4.3.2): with write-run 1 and no contention, drop_copy
//! helps (2 serialized messages instead of 4); under contention and
//! long runs it can hurt (extra write-backs, NAK retries).

use atomic_dsm::experiments::Scale;
use criterion::{criterion_group, criterion_main, Criterion};
use dsm_bench::dropcopy_pair;

fn bench(c: &mut Criterion) {
    let s = Scale {
        procs: 16,
        rounds: 24,
        tc_size: 0,
        wires: 0,
        tasks: 0,
    };
    println!("\n== Ablation: drop_copy for INV fetch_and_add (avg cycles/update) ==");
    let mut rows = vec![vec![
        "scenario".to_string(),
        "without".to_string(),
        "with drop_copy".to_string(),
    ]];
    for (name, cc, a) in [
        ("c=1 a=1", 1u32, 1.0),
        ("c=1 a=10", 1, 10.0),
        ("c=4", 4, 1.0),
        ("c=16", 16, 1.0),
    ] {
        let (without, with) = dropcopy_pair(cc, a, &s);
        rows.push(vec![
            name.to_string(),
            format!("{without:.0}"),
            format!("{with:.0}"),
        ]);
    }
    println!("{}", atomic_dsm::stats::render_table(&rows));

    let small = Scale {
        procs: 8,
        rounds: 8,
        tc_size: 0,
        wires: 0,
        tasks: 0,
    };
    c.bench_function("ablation_dropcopy/c1_a1", |b| {
        b.iter(|| dropcopy_pair(1, 1.0, &small))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
