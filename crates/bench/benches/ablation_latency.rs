//! Ablation: sensitivity of the UNC-versus-INV crossover to the latency
//! constants the paper does not publish.
//!
//! The paper's qualitative claim — UNC wins at short write runs, INV
//! wins at long ones — should survive any reasonable choice of memory
//! access time and router hop delay. This bench sweeps both and
//! reports the smallest write-run length `a` at which INV fetch_and_add
//! beats UNC fetch_and_add.

use atomic_dsm::experiments::counters::measure_bar_on;
use atomic_dsm::experiments::{BarSpec, CounterKind};
use atomic_dsm::sim::MachineConfig;
use atomic_dsm::{Primitive, SyncPolicy};
use criterion::{criterion_group, criterion_main, Criterion};

fn crossover(mem_access: u64, hop_delay: u64) -> Option<f64> {
    let mut mcfg = MachineConfig::with_nodes(16);
    mcfg.params.mem_access = mem_access;
    mcfg.params.hop_delay = hop_delay;
    let unc = BarSpec::new(SyncPolicy::Unc, Primitive::FetchPhi);
    let inv = BarSpec::new(SyncPolicy::Inv, Primitive::FetchPhi);
    for a in [1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 10.0] {
        let u = measure_bar_on(mcfg.clone(), CounterKind::LockFree, &unc, 1, a, 16);
        let i = measure_bar_on(mcfg.clone(), CounterKind::LockFree, &inv, 1, a, 16);
        if i.avg_cycles < u.avg_cycles {
            return Some(a);
        }
    }
    None
}

fn bench(c: &mut Criterion) {
    println!("\n== Ablation: write-run length where INV overtakes UNC (fetch_and_add, c=1) ==");
    let mut rows = vec![vec![
        "mem_access".to_string(),
        "hop_delay".to_string(),
        "INV wins from a >=".to_string(),
    ]];
    for mem in [10u64, 20, 40] {
        for hop in [1u64, 2, 4] {
            let x = crossover(mem, hop);
            rows.push(vec![
                mem.to_string(),
                hop.to_string(),
                x.map_or("never (a<=10)".into(), |a| format!("{a}")),
            ]);
        }
    }
    println!("{}", atomic_dsm::stats::render_table(&rows));

    c.bench_function("ablation_latency/crossover_default_params", |b| {
        b.iter(|| crossover(20, 2))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
