//! Ablation: the paper's entry/exit-contention network model versus a
//! cycle-accurate flit-level wormhole router, on synthetic traffic.
//!
//! Quantifies what the paper's simplification ("contention ... though
//! not at internal nodes") leaves out: under hotspot traffic the two
//! agree (the bottleneck IS the ejection port); under heavy uniform
//! traffic the flit model sees additional in-network blocking.

use criterion::{criterion_group, criterion_main, Criterion};
use dsm_bench::{replay_flit_model, replay_latency_model, traffic_trace, TrafficPattern};

fn bench(c: &mut Criterion) {
    println!("\n== Ablation: latency-model vs flit-level mesh (mean latency, cycles) ==");
    let mut rows = vec![vec![
        "pattern".to_string(),
        "latency model".to_string(),
        "flit-level".to_string(),
    ]];
    for (name, p) in [
        ("uniform", TrafficPattern::Uniform),
        ("hotspot", TrafficPattern::Hotspot),
        ("neighbor", TrafficPattern::Neighbor),
    ] {
        let trace = traffic_trace(p, 64, 2000, 42);
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", replay_latency_model(&trace, 64)),
            format!("{:.1}", replay_flit_model(&trace, 64)),
        ]);
    }
    println!("{}", atomic_dsm::stats::render_table(&rows));

    let trace = traffic_trace(TrafficPattern::Uniform, 64, 1000, 42);
    c.bench_function("ablation_mesh/latency_model_1k_msgs", |b| {
        b.iter(|| replay_latency_model(&trace, 64))
    });
    c.bench_function("ablation_mesh/flit_model_1k_msgs", |b| {
        b.iter(|| replay_flit_model(&trace, 64))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
