//! Ablation: the four §3.1 memory-side LL/SC reservation schemes under
//! a contended UNC lock-free counter.

use atomic_dsm::protocol::LlscScheme;
use criterion::{criterion_group, criterion_main, Criterion};
use dsm_bench::llsc_counter_with_scheme;

fn bench(c: &mut Criterion) {
    println!("\n== Ablation: LL/SC reservation schemes (16 procs x 50 increments, UNC) ==");
    let mut rows = vec![vec![
        "scheme".to_string(),
        "cycles".to_string(),
        "messages".to_string(),
    ]];
    for (name, scheme) in [
        ("bit-vector", LlscScheme::BitVector),
        ("linked-list(pool=8)", LlscScheme::LinkedList),
        ("limited-2", LlscScheme::Limited(2)),
        ("limited-4", LlscScheme::Limited(4)),
        ("serial-number", LlscScheme::SerialNumber),
    ] {
        let (cycles, msgs) = llsc_counter_with_scheme(16, 50, scheme);
        rows.push(vec![name.to_string(), cycles.to_string(), msgs.to_string()]);
    }
    println!("{}", atomic_dsm::stats::render_table(&rows));

    c.bench_function("ablation_reservations/serial_number", |b| {
        b.iter(|| llsc_counter_with_scheme(8, 20, LlscScheme::SerialNumber))
    });
    c.bench_function("ablation_reservations/bit_vector", |b| {
        b.iter(|| llsc_counter_with_scheme(8, 20, LlscScheme::BitVector))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
