//! Ablation: trace-driven versus execution-driven simulation.
//!
//! The paper's methodology is execution-driven (MINT). This ablation
//! shows why: traces of synchronization code recorded in isolation
//! replay incorrectly under contention — failed CAS retries are absent
//! from the streams, so a trace-driven simulator both loses updates and
//! mispredicts cost. ("In order to provide accurate simulations of
//! programs with race conditions, the simulator keeps track of the
//! values of cached copies…" — §4.1.)

use atomic_dsm::machine::{new_trace, Action, MachineBuilder, ProcCtx, TraceRecorder, TraceReplay};
use atomic_dsm::protocol::{MemOp, OpResult, SyncConfig, SyncPolicy};
use atomic_dsm::sim::{Addr, Cycle, MachineConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

const X: Addr = Addr::new(0x40);

fn cas_counter(iters: u64) -> impl atomic_dsm::machine::Program {
    let mut left = iters;
    let mut loaded = false;
    move |ctx: &mut ProcCtx<'_>| match (loaded, ctx.last) {
        (false, _) => {
            loaded = true;
            Action::Op(MemOp::Load { addr: X })
        }
        (true, Some(OpResult::Loaded { value, .. })) => Action::Op(MemOp::Cas {
            addr: X,
            expected: value,
            new: value + 1,
        }),
        (true, Some(OpResult::CasDone { success, observed })) => {
            if success {
                left -= 1;
                if left == 0 {
                    return Action::Done;
                }
                Action::Op(MemOp::Load { addr: X })
            } else {
                Action::Op(MemOp::Cas {
                    addr: X,
                    expected: observed,
                    new: observed + 1,
                })
            }
        }
        other => panic!("unexpected {other:?}"),
    }
}

fn record_solo(iters: u64) -> Vec<Action> {
    let trace = new_trace();
    let mut b = MachineBuilder::new(MachineConfig::with_nodes(2));
    b.register_sync(
        X,
        SyncConfig {
            policy: SyncPolicy::Inv,
            ..Default::default()
        },
    );
    b.add_program(TraceRecorder::new(cas_counter(iters), Arc::clone(&trace)));
    b.add_program(|_: &mut ProcCtx<'_>| Action::Done);
    let mut m = b.build();
    m.run(Cycle::new(100_000_000)).unwrap();
    let t = trace.lock().unwrap().clone();
    t
}

/// Returns (replayed final counter, exact expectation, replay cycles,
/// execution-driven cycles).
fn compare(procs: u32, iters: u64) -> (u64, u64, u64, u64) {
    let trace = record_solo(iters);
    let mut b = MachineBuilder::new(MachineConfig::with_nodes(procs));
    b.register_sync(
        X,
        SyncConfig {
            policy: SyncPolicy::Inv,
            ..Default::default()
        },
    );
    for _ in 0..procs {
        b.add_program(TraceReplay::new(trace.clone()));
    }
    let mut m = b.build();
    let replay_report = m.run(Cycle::new(1_000_000_000)).unwrap();
    let replayed = m.read_word(X);

    let mut b = MachineBuilder::new(MachineConfig::with_nodes(procs));
    b.register_sync(
        X,
        SyncConfig {
            policy: SyncPolicy::Inv,
            ..Default::default()
        },
    );
    for _ in 0..procs {
        b.add_program(cas_counter(iters));
    }
    let mut m = b.build();
    let exec_report = m.run(Cycle::new(1_000_000_000)).unwrap();
    assert_eq!(m.read_word(X), procs as u64 * iters);

    (
        replayed,
        procs as u64 * iters,
        replay_report.cycles.as_u64(),
        exec_report.cycles.as_u64(),
    )
}

fn bench(c: &mut Criterion) {
    println!("\n== Ablation: trace-driven vs execution-driven simulation ==");
    let mut rows = vec![vec![
        "procs".to_string(),
        "exact count".to_string(),
        "trace-driven count".to_string(),
        "trace cycles".to_string(),
        "exec cycles".to_string(),
    ]];
    for procs in [2u32, 4, 8, 16] {
        let (replayed, exact, tc, ec) = compare(procs, 25);
        rows.push(vec![
            procs.to_string(),
            exact.to_string(),
            replayed.to_string(),
            tc.to_string(),
            ec.to_string(),
        ]);
    }
    println!("{}", atomic_dsm::stats::render_table(&rows));
    println!("Trace-driven replay loses updates and underestimates cost — the");
    println!("reason the paper's simulator is execution-driven.\n");

    c.bench_function("ablation_tracedriven/compare_8p", |b| {
        b.iter(|| compare(8, 10))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
