//! Bench target for Figure 2: contention histograms of the three
//! applications under each coherence policy.

use atomic_dsm::experiments::{apps, BarSpec};
use atomic_dsm::{Primitive, SyncPolicy};
use criterion::{criterion_group, criterion_main, Criterion};
use dsm_bench::scale;

fn bench(c: &mut Criterion) {
    let s = scale(false);
    let runs = apps::fig2(&s);
    println!("\n== Figure 2: contention histograms (p={}) ==", s.procs);
    println!("{}", apps::render_fig2(&runs));

    let small = atomic_dsm::experiments::Scale {
        procs: 8,
        rounds: 8,
        tc_size: 8,
        wires: 16,
        tasks: 16,
    };
    c.bench_function("fig2/tclosure_unc_8p", |b| {
        b.iter(|| {
            apps::run_app(
                apps::App::TransitiveClosure,
                &BarSpec::new(SyncPolicy::Unc, Primitive::FetchPhi),
                &small,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
