//! Bench target for Figure 4: average cycles per counter update for
//! the TtsLock synthetic application, across the full bar set.

use atomic_dsm::experiments::{counters, paper_bars, BarSpec, CounterKind};
use atomic_dsm::{Primitive, SyncPolicy};
use criterion::{criterion_group, criterion_main, Criterion};
use dsm_bench::scale;

fn bench(c: &mut Criterion) {
    let s = scale(false);
    let kind = CounterKind::TtsLock;
    let graphs = counters::run_figure(kind, &paper_bars(), &s);
    println!(
        "\n== Figure 4: {} counter, avg cycles/update (p={}) ==",
        kind.label(),
        s.procs
    );
    println!("{}", counters::render(kind, &graphs));

    let small = atomic_dsm::experiments::Scale {
        procs: 8,
        rounds: 8,
        tc_size: 8,
        wires: 8,
        tasks: 8,
    };
    c.bench_function("fig4/inv_cas_c8", |b| {
        b.iter(|| {
            counters::measure_bar(
                kind,
                &BarSpec::new(SyncPolicy::Inv, Primitive::Cas),
                8,
                1.0,
                &small,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
