//! Bench target for Figure 6: total elapsed cycles of the three
//! applications across the implementation bar set.

use atomic_dsm::experiments::{apps, paper_bars, BarSpec};
use atomic_dsm::{Primitive, SyncPolicy};
use criterion::{criterion_group, criterion_main, Criterion};
use dsm_bench::scale;

fn bench(c: &mut Criterion) {
    let s = scale(false);
    let runs = apps::fig6(&paper_bars(), &s);
    println!(
        "\n== Figure 6: total elapsed cycles per application (p={}) ==",
        s.procs
    );
    println!("{}", apps::render_fig6(&runs));

    let small = atomic_dsm::experiments::Scale {
        procs: 8,
        rounds: 8,
        tc_size: 8,
        wires: 16,
        tasks: 16,
    };
    c.bench_function("fig6/cholesky_inv_cas", |b| {
        b.iter(|| {
            apps::run_app(
                apps::App::Cholesky,
                &BarSpec::new(SyncPolicy::Inv, Primitive::Cas),
                &small,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
