//! Bench target for Table 1: serialized network messages for stores.
//!
//! Prints the regenerated table, then measures the cost of the seven
//! directory-state micro-experiments.

use atomic_dsm::experiments::table1;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut rows = vec![vec![
        "scenario".to_string(),
        "paper".to_string(),
        "measured".to_string(),
    ]];
    for r in table1::run() {
        rows.push(vec![
            r.scenario.to_string(),
            r.paper.to_string(),
            r.measured.to_string(),
        ]);
    }
    println!("\n== Table 1: serialized network messages for stores ==");
    println!("{}", atomic_dsm::stats::render_table(&rows));

    c.bench_function("table1/micro_experiments", |b| {
        b.iter(|| {
            let rows = table1::run();
            assert!(rows.iter().all(|r| r.measured == r.paper));
            rows
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
