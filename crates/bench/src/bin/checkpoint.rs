//! Kill-and-resume driver for the checkpoint/restore layer.
//!
//! ```sh
//! # Uninterrupted run (the golden output):
//! cargo run -p dsm-bench --bin checkpoint -- run > golden.txt
//!
//! # Checkpoint mid-run and die (exit 42), then restore and finish:
//! cargo run -p dsm-bench --bin checkpoint -- run --snap s.ckpt --pause 50000 --kill
//! cargo run -p dsm-bench --bin checkpoint -- resume --snap s.ckpt > resumed.txt
//! diff golden.txt resumed.txt   # byte-identical
//! ```
//!
//! Subcommands:
//!
//! * `run [--workload app|counter|lockfree] [--pause N] [--snap FILE]
//!   [--kill] [--paper]` — runs the workload from scratch. With
//!   `--pause N` the run checkpoints after N dispatched events; with
//!   `--snap FILE` the checkpoint is saved there; with `--kill` the
//!   process exits with code 42 right after saving (simulating a
//!   crash). Without `--kill` the run resumes in-process to completion.
//! * `resume --snap FILE` — restores the checkpoint (replaying to the
//!   pause point and verifying the state digest) and finishes the run.
//!   A corrupt checkpoint is quarantined and reported (exit 3).
//!
//! The result lines printed on stdout are bit-identical between an
//! uninterrupted run and a kill/resume pair — that is the contract the
//! CI crash-safety job enforces.

use atomic_dsm::experiments::checkpoint::{self, PauseOutcome};
use atomic_dsm::experiments::runner::{Job, JobOutput, JobResult};
use atomic_dsm::experiments::{apps::App, BarSpec, CounterKind};
use atomic_dsm::protocol::SyncPolicy;
use atomic_dsm::sync::Primitive;
use atomic_dsm::MachineConfig;
use dsm_bench::scale;
use std::path::Path;

/// Exit code of a deliberate post-checkpoint death (`--kill`).
const KILLED: i32 = 42;

fn usage() -> ! {
    eprintln!(
        "usage: checkpoint run [--workload app|counter|lockfree] [--pause N] \
         [--snap FILE] [--kill] [--paper]\n       checkpoint resume --snap FILE"
    );
    std::process::exit(2);
}

/// The job each workload name maps to. Must be a pure function of the
/// flags so `run` and a later `resume` agree on the baseline.
fn job_for(workload: &str, paper: bool) -> Job {
    let s = scale(paper);
    match workload {
        "app" => Job::app(
            App::TransitiveClosure,
            BarSpec::new(SyncPolicy::Inv, Primitive::Cas),
            s,
        ),
        "counter" => Job::counter(
            MachineConfig::with_nodes(s.procs),
            CounterKind::LockFree,
            BarSpec::new(SyncPolicy::Inv, Primitive::Cas),
            s.procs,
            1.0,
            s.rounds,
        ),
        "lockfree" => Job::lockfree(
            MachineConfig::with_nodes(s.procs),
            atomic_dsm::workloads::LfStructure::Queue,
            atomic_dsm::sync::LinkPrim::Llsc,
            SyncPolicy::Inv,
            s.rounds.max(1) as u32,
            16,
            4,
        ),
        other => {
            eprintln!("unknown workload `{other}` (try app, counter, lockfree)");
            std::process::exit(2);
        }
    }
}

/// Prints the job result in a stable, diff-friendly form. Exit 1 on a
/// failed simulation.
fn print_result(result: JobResult) -> ! {
    match result {
        Ok(JobOutput::Counter(p)) => {
            println!(
                "counter {} updates={} cycles={} avg={:.6}",
                p.bar.label(),
                p.updates,
                p.cycles,
                p.avg_cycles
            );
            std::process::exit(0);
        }
        Ok(JobOutput::App(r)) => {
            println!(
                "{} [{}] cycles={} write_run={:.6}",
                r.app.label(),
                r.bar.label(),
                r.cycles,
                r.write_run
            );
            print!("{}", r.contention.render());
            std::process::exit(0);
        }
        Ok(JobOutput::Lockfree(p)) => {
            println!(
                "{} {} {} ops={} cycles={} avg={:.6}",
                p.structure.label(),
                p.prim,
                p.policy.label(),
                p.ops,
                p.cycles,
                p.avg_cycles
            );
            std::process::exit(0);
        }
        Ok(JobOutput::Table1(_)) => unreachable!("table-1 jobs are never checkpointed"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let snap = flag_value(&args, "--snap").map(Path::new);
    match cmd.as_str() {
        "run" => {
            let paper = args.iter().any(|a| a == "--paper");
            let kill = args.iter().any(|a| a == "--kill");
            let workload = flag_value(&args, "--workload").unwrap_or("app");
            let pause: u64 = match flag_value(&args, "--pause") {
                Some(v) => v.parse().unwrap_or_else(|_| {
                    eprintln!("--pause takes an event count, got `{v}`");
                    std::process::exit(2);
                }),
                None => u64::MAX,
            };
            let job = job_for(workload, paper);
            match checkpoint::run_with_pause(&job, pause) {
                Ok(PauseOutcome::Paused(paused)) => {
                    let cp = paused.checkpoint();
                    eprintln!(
                        "paused after {} events (cycle {}, digest {:016x})",
                        cp.events, cp.cycle, cp.digest
                    );
                    if let Some(path) = snap {
                        if let Err(e) = paused.save(path) {
                            eprintln!("cannot save checkpoint: {e}");
                            std::process::exit(2);
                        }
                        eprintln!("checkpoint saved to {}", path.display());
                    }
                    if kill {
                        eprintln!("dying without finishing (--kill)");
                        std::process::exit(KILLED);
                    }
                    print_result(paused.resume())
                }
                Ok(PauseOutcome::Completed(result)) => {
                    if pause != u64::MAX {
                        eprintln!("run completed before the pause point");
                    }
                    print_result(result)
                }
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            }
        }
        "resume" => {
            let Some(path) = snap else { usage() };
            match checkpoint::resume_file(path) {
                Ok(result) => print_result(result),
                Err(e) => {
                    eprintln!("resume failed: {e}");
                    std::process::exit(3);
                }
            }
        }
        _ => usage(),
    }
}
