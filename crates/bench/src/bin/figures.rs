//! Regenerates the paper's tables and figures from the simulator.
//!
//! ```sh
//! cargo run --release -p dsm-bench --bin figures -- all
//! cargo run --release -p dsm-bench --bin figures -- fig3 --paper      # 64 processors
//! cargo run --release -p dsm-bench --bin figures -- table1 fig6
//! cargo run --release -p dsm-bench --bin figures -- all --csv out/    # also write CSV
//! ```
//!
//! Artifacts: `table1`, `fig2`–`fig6`, `scaling`, `scaling-xl`,
//! `lockfree`, `latency`, `metrics`, `modern`, `all` (`all`
//! regenerates the committed paper artifacts and deliberately excludes
//! `scaling-xl`, `lockfree`, `latency`, `metrics` and `modern` —
//! request those tables by name). `scaling-xl` extends the scaling
//! sweep to the beyond-paper 256- and 1024-node machines that the PDES
//! engine makes tractable. `modern` is the modern-architecture
//! ablation — "Table 1 on a 2020s machine" (see RESULTS.md): chain
//! tables, counter sweeps and a false-sharing table across the
//! MESI(F)/NUMA/hierarchical/wide-line variant matrix plus home-node
//! atomics. `--proto=SPEC` instead applies one variant spec (the
//! `DSM_PROTO` grammar, e.g. `--proto=hier,clusters=4,penalty=32`) to
//! every machine of the *requested* baseline artifacts.
//! `--paper` runs at the paper's 64-processor scale (slower); the
//! default is a 16-processor scale with the same shape. `--csv DIR`
//! additionally writes one CSV file per artifact into DIR; `--bars`
//! renders each counter graph as an ASCII bar chart (the paper's
//! figures are bar charts); `--jobs N` pins the experiment runner's
//! worker count (default: `DSM_JOBS` or the machine's parallelism —
//! output is identical either way, only wall-clock changes);
//! `--workers N` shards every simulated machine across N PDES worker
//! threads (`DSM_WORKERS`, the intra-run sibling of `--jobs` — see
//! ARCHITECTURE.md). Every artifact is byte-identical across
//! `--workers` settings; only wall-clock changes.
//! `--faults[=SPEC]` turns on deterministic fault injection and
//! `--paranoid` runs the protocol invariant checker after every
//! transition (see EXPERIMENTS.md — both off by default, leaving every
//! artifact byte-identical to a faults-free build); `--trace[=SPEC]`
//! captures a structured event trace of every simulated machine
//! (Perfetto JSON into `traces/` by default — see
//! `dsm_trace::TraceSpec` for the SPEC grammar). Trace files are
//! content-addressed and byte-identical across `--jobs` settings.
//!
//! `figures repro FILE` replays a minimal reproducer artifact emitted
//! by the supervision layer (`DSM_REPRO_DIR`): it pins the recorded
//! fault configuration and minimal fault schedule and reports whether
//! the recorded deterministic failure recurs.
//!
//! `figures analyze FILE...` runs the trace-analytics engine
//! (`dsm-analyze`) over binary ring dumps captured with
//! `--trace=ring:...,cat:...` (the categories must include `span` and
//! `msg`): per-operation latency percentiles, an additive
//! critical-path decomposition, the hottest lines with contention
//! timelines, and LL/SC retry-storm detection. `--csv DIR` also
//! writes `analyze_latency.csv` / `analyze_decomposition.csv`.

use atomic_dsm::experiments::{
    apps, counters, latency, lockfree, metrics, modern, paper_bars, runner, scaling, table1,
    CounterKind,
};
use dsm_bench::scale;
use std::path::PathBuf;
use std::time::Instant;

fn write_csv(dir: &Option<PathBuf>, name: &str, rows: &[Vec<String>]) {
    let Some(dir) = dir else { return };
    std::fs::create_dir_all(dir).expect("create csv output dir");
    let path = dir.join(format!("{name}.csv"));
    std::fs::write(&path, atomic_dsm::stats::render_csv(rows)).expect("write csv");
    eprintln!("wrote {}", path.display());
}

/// `figures repro FILE`: replays a minimal reproducer emitted by the
/// supervision layer (see `DSM_REPRO_DIR` in EXPERIMENTS.md). Exit 0
/// when the recorded deterministic failure recurs, 1 when it does not,
/// 2 on an unreadable artifact.
fn replay_reproducer(path: &str) -> ! {
    use atomic_dsm::experiments::repro;
    let rep = match repro::load(std::path::Path::new(path)) {
        Ok(rep) => rep,
        Err(e) => {
            eprintln!("repro: {e}");
            std::process::exit(2);
        }
    };
    println!("job:      {:?}", rep.job);
    println!(
        "faults:   {} paranoid={}",
        rep.faults.to_spec(),
        rep.faults.paranoid
    );
    match (&rep.filter, rep.allowed_faults()) {
        (Some(ranges), Some(n)) => println!("filter:   {n} fault(s) allowed, ranges {ranges:?}"),
        _ => println!("filter:   none (all drawn faults apply)"),
    }
    println!("recorded: {}", rep.message);
    match repro::replay(&rep) {
        Ok(r) if r.reproduced => {
            println!("replayed: {}", r.message);
            println!("REPRODUCED");
            std::process::exit(0);
        }
        Ok(r) => {
            println!("replayed: {}", r.message);
            println!("NOT REPRODUCED");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("repro: {e}");
            std::process::exit(2);
        }
    }
}

/// `figures analyze FILE... [--csv DIR]`: runs the trace-analytics
/// engine over binary ring dumps and prints the latency/critical-path
/// report. Exit 0 on success, 2 on an unreadable file.
fn analyze_traces(args: &[String]) -> ! {
    let csv_dir: Option<PathBuf> = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);
    let mut skip_next = false;
    let files: Vec<&String> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--csv" {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .collect();
    if files.is_empty() {
        eprintln!("usage: figures analyze FILE... [--csv DIR]");
        std::process::exit(2);
    }
    let analysis = match dsm_analyze::Analysis::from_files(&files) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("analyze: {e}");
            std::process::exit(2);
        }
    };
    print!("{}", analysis.report());
    write_csv(&csv_dir, "analyze_latency", &analysis.latency_rows());
    write_csv(
        &csv_dir,
        "analyze_decomposition",
        &analysis.decomposition_rows(),
    );
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("repro") {
        match args.get(1) {
            Some(path) => replay_reproducer(path),
            None => {
                eprintln!("usage: figures repro FILE");
                std::process::exit(2);
            }
        }
    }
    if args.first().map(String::as_str) == Some("analyze") {
        analyze_traces(&args[1..]);
    }
    let paper = args.iter().any(|a| a == "--paper");
    let bars_mode = args.iter().any(|a| a == "--bars");
    // Robustness knobs: `--faults[=SPEC]` turns deterministic fault
    // injection on for every simulated machine (SPEC is `light`, `heavy`
    // or a key=value list, see dsm_sim::FaultConfig::from_spec);
    // `--paranoid` runs the protocol invariant checker after every
    // transition. Both ride on the env overrides the machine builder
    // honors, so they reach every job without new plumbing. With
    // neither flag, artifacts are byte-identical to a faults-free build.
    for a in &args {
        if a == "--paranoid" {
            std::env::set_var("DSM_PARANOID", "1");
        } else if a == "--faults" {
            std::env::set_var("DSM_FAULTS", "light");
        } else if let Some(spec) = a.strip_prefix("--faults=") {
            if let Err(e) = atomic_dsm::sim::FaultConfig::from_spec(spec) {
                eprintln!("--faults: {e}");
                std::process::exit(2);
            }
            std::env::set_var("DSM_FAULTS", spec);
        } else if a == "--trace" {
            std::env::set_var("DSM_TRACE", "1");
        } else if let Some(spec) = a.strip_prefix("--trace=") {
            if let Err(e) = atomic_dsm::trace::TraceSpec::from_spec(spec) {
                eprintln!("--trace: {e}");
                std::process::exit(2);
            }
            std::env::set_var("DSM_TRACE", spec);
        } else if let Some(spec) = a.strip_prefix("--proto=") {
            if let Err(e) = atomic_dsm::sim::ProtoSpec::from_spec(spec) {
                eprintln!("--proto: {e}");
                std::process::exit(2);
            }
            std::env::set_var("DSM_PROTO", spec);
        }
    }
    let csv_dir: Option<PathBuf> = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);
    let jobs: Option<usize> = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .map(|v| match v.parse::<usize>() {
            Ok(n) => n.max(1),
            Err(_) => {
                eprintln!("--jobs takes a positive integer, got `{v}`");
                std::process::exit(2);
            }
        });
    // `--workers N` rides on the same env override the machine builder
    // honors for `DSM_WORKERS`: every simulated machine in every job is
    // sharded across N PDES worker threads. Results are byte-identical
    // to serial runs (tests/pdes_identity.rs), so this is safe for the
    // committed paper artifacts.
    if let Some(i) = args.iter().position(|a| a == "--workers") {
        match args.get(i + 1).map(|v| v.parse::<usize>()) {
            Some(Ok(n)) if n >= 1 => std::env::set_var("DSM_WORKERS", n.to_string()),
            _ => {
                eprintln!("--workers takes a positive integer");
                std::process::exit(2);
            }
        }
    }
    let mut skip_next = false;
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--csv" || *a == "--jobs" || *a == "--workers" {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .map(String::as_str)
        .collect();
    // `scaling-xl`, `lockfree`, `latency`, `metrics` and `modern` are
    // deliberately NOT part of `all`: the committed paper artifacts
    // (results_paper.txt, results_csv/) must stay byte-identical.
    // Request those tables by name.
    let wanted: Vec<&str> = if wanted.is_empty() || wanted.contains(&"all") {
        vec!["table1", "fig2", "fig3", "fig4", "fig5", "fig6", "scaling"]
    } else {
        wanted
    };
    let s = scale(paper);
    println!(
        "# atomic-dsm figure harness — {} processors ({} scale)\n",
        s.procs,
        if s.procs == 64 { "paper" } else { "quick" }
    );

    let started = Instant::now();
    let run_artifacts = || {
        for &artifact in &wanted {
            let t = Instant::now();
            match artifact {
                "table1" => {
                    println!("## Table 1 — serialized network messages for stores\n");
                    let mut rows = vec![vec![
                        "scenario".to_string(),
                        "paper".to_string(),
                        "measured".to_string(),
                    ]];
                    for r in table1::run() {
                        rows.push(vec![
                            r.scenario.to_string(),
                            r.paper.to_string(),
                            r.measured.to_string(),
                        ]);
                    }
                    println!("{}", atomic_dsm::stats::render_table(&rows));
                    write_csv(&csv_dir, "table1", &rows);
                }
                "fig2" => {
                    println!("## Figure 2 — contention histograms (p={})\n", s.procs);
                    let runs = apps::fig2(&s);
                    println!("{}", apps::render_fig2(&runs));
                    let mut rows = vec![vec![
                        "app".to_string(),
                        "policy".to_string(),
                        "level".to_string(),
                        "percentage".to_string(),
                    ]];
                    for r in &runs {
                        for (level, _) in r.contention.iter() {
                            rows.push(vec![
                                r.app.label().to_string(),
                                r.bar.policy.label().to_string(),
                                level.to_string(),
                                format!("{:.4}", r.contention.percentage(level)),
                            ]);
                        }
                    }
                    write_csv(&csv_dir, "fig2", &rows);
                }
                f @ ("fig3" | "fig4" | "fig5") => {
                    let kind = match f {
                        "fig3" => CounterKind::LockFree,
                        "fig4" => CounterKind::TtsLock,
                        _ => CounterKind::McsLock,
                    };
                    println!(
                        "## Figure {} — average cycles per {} counter update (p={})\n",
                        &f[3..],
                        kind.label(),
                        s.procs
                    );
                    let graphs = counters::run_figure(kind, &paper_bars(), &s);
                    println!("{}", counters::render(kind, &graphs));
                    if bars_mode {
                        for g in &graphs {
                            let title = if g.contention == 1 {
                                format!("p={} c=1 a={}", s.procs, g.write_run)
                            } else {
                                format!("p={} c={}", s.procs, g.contention)
                            };
                            println!("{title}");
                            let data: Vec<(String, f64)> = g
                                .points
                                .iter()
                                .map(|p| (p.bar.label(), p.avg_cycles))
                                .collect();
                            println!("{}", atomic_dsm::stats::render_bar_chart(&data, 50));
                        }
                    }
                    let mut rows = vec![vec![
                        "implementation".to_string(),
                        "contention".to_string(),
                        "write_run".to_string(),
                        "avg_cycles".to_string(),
                    ]];
                    for g in &graphs {
                        for p in &g.points {
                            rows.push(vec![
                                p.bar.label(),
                                g.contention.to_string(),
                                g.write_run.to_string(),
                                format!("{:.2}", p.avg_cycles),
                            ]);
                        }
                    }
                    write_csv(&csv_dir, f, &rows);
                }
                "fig6" => {
                    println!(
                        "## Figure 6 — total elapsed cycles per application (p={})\n",
                        s.procs
                    );
                    let runs = apps::fig6(&paper_bars(), &s);
                    println!("{}", apps::render_fig6(&runs));
                    let mut rows = vec![vec![
                        "app".to_string(),
                        "implementation".to_string(),
                        "total_cycles".to_string(),
                    ]];
                    for r in &runs {
                        rows.push(vec![
                            r.app.label().to_string(),
                            r.bar.label(),
                            r.cycles.to_string(),
                        ]);
                    }
                    write_csv(&csv_dir, "fig6", &rows);
                }
                "scaling" => {
                    println!(
                        "## Scaling sweep — fully contended lock-free counter, 2..64 processors\n"
                    );
                    let lines = scaling::run_scaling(CounterKind::LockFree, s.rounds.min(32));
                    println!("{}", scaling::render(&lines));
                    let mut rows = vec![vec![
                        "implementation".to_string(),
                        "procs".to_string(),
                        "avg_cycles".to_string(),
                    ]];
                    for line in &lines {
                        for (p, pt) in &line.points {
                            rows.push(vec![
                                line.bar.label(),
                                p.to_string(),
                                format!("{:.2}", pt.avg_cycles),
                            ]);
                        }
                    }
                    write_csv(&csv_dir, "scaling", &rows);
                }
                "scaling-xl" => {
                    println!(
                        "## Scaling sweep (XL) — fully contended lock-free counter, 256/1024 processors\n"
                    );
                    // Few rounds: at 1024 fully-contended processors each
                    // round is already ~1k counter updates.
                    let lines = scaling::run_scaling_on(
                        CounterKind::LockFree,
                        s.rounds.min(4),
                        &scaling::PROCS_XL,
                    );
                    println!("{}", scaling::render(&lines));
                    let mut rows = vec![vec![
                        "implementation".to_string(),
                        "procs".to_string(),
                        "avg_cycles".to_string(),
                    ]];
                    for line in &lines {
                        for (p, pt) in &line.points {
                            rows.push(vec![
                                line.bar.label(),
                                p.to_string(),
                                format!("{:.2}", pt.avg_cycles),
                            ]);
                        }
                    }
                    write_csv(&csv_dir, "scaling_xl", &rows);
                }
                "lockfree" => {
                    println!(
                        "## Lock-free structures — cycles per operation (p={})\n",
                        s.procs
                    );
                    let tables = lockfree::run_tables(&s);
                    println!("{}", lockfree::render(&tables));
                    let mut rows = vec![vec![
                        "structure".to_string(),
                        "primitive".to_string(),
                        "policy".to_string(),
                        "ops".to_string(),
                        "avg_cycles".to_string(),
                    ]];
                    for t in &tables {
                        for p in &t.points {
                            rows.push(vec![
                                t.structure.label().to_string(),
                                p.prim.label().to_string(),
                                p.policy.label().to_string(),
                                p.ops.to_string(),
                                format!("{:.2}", p.avg_cycles),
                            ]);
                        }
                    }
                    write_csv(&csv_dir, "lockfree", &rows);
                }
                "latency" => {
                    println!(
                        "## Operation latency — cycles per op, p50/p90/p99/p99.9 (p={})\n",
                        s.procs
                    );
                    let rows = latency::run(&s);
                    println!("{}", latency::render(&rows));
                    write_csv(&csv_dir, "latency", &latency::csv_rows(&rows));
                }
                "metrics" => {
                    println!("## Per-node mesh/protocol metrics (p={})\n", s.procs);
                    let runs = metrics::run(&s);
                    println!("{}", metrics::render(&runs));
                    write_csv(&csv_dir, "metrics", &metrics::csv_rows(&runs));
                }
                "modern" => {
                    println!(
                        "## Modern-architecture ablation — \"Table 1 on a 2020s machine\" (p={})\n",
                        s.procs
                    );
                    let report = modern::run(&s);
                    println!("{}", modern::render(&report));
                    write_csv(&csv_dir, "modern", &modern::csv_rows(&report));
                }
                other => {
                    eprintln!(
                    "unknown artifact `{other}` (try: table1 fig2 fig3 fig4 fig5 fig6 scaling scaling-xl lockfree latency metrics modern all)"
                );
                    std::process::exit(2);
                }
            }
            eprintln!("[{artifact}: {:.2}s]", t.elapsed().as_secs_f64());
        }
    };
    match jobs {
        Some(n) => runner::with_workers(n, run_artifacts),
        None => run_artifacts(),
    }
    let st = runner::stats();
    eprintln!(
        "[total: {:.2}s on {} worker(s) — {} jobs simulated, {} cache hits, {} cycles]",
        started.elapsed().as_secs_f64(),
        jobs.unwrap_or_else(runner::workers),
        st.completed,
        st.cache_hits,
        st.cycles_simulated
    );
}
