//! Simulator-throughput harness: the perf trajectory baseline.
//!
//! Runs a fixed workload basket (lock-free counter, MCS-lock counter,
//! one application kernel) through the cycle-level engine and reports
//! how fast the *simulator* is — simulated cycles and discrete events
//! per wall-clock second. The simulated results themselves are
//! deterministic; only the wall-clock figures vary with the host.
//!
//! ```text
//! cargo run --release -p dsm-bench --bin throughput -- \
//!     [--quick] [--out BENCH_throughput.json] [--baseline FILE]
//! ```
//!
//! * `--quick`     reduced basket (16 processors) for CI smoke runs;
//! * `--out`       where to write the JSON report (default
//!   `BENCH_throughput.json` in the current directory);
//! * `--baseline`  a previous report whose `total.cycles_per_sec` is
//!   embedded as the "before" figure, together with the speedup;
//! * `--repeat N`  run each workload `N` times and report the fastest
//!   wall clock (default 1). The simulated results must be identical
//!   across repeats — the harness asserts it — so taking the minimum
//!   only filters out ambient host load;
//! * `--floor FILE --floor-pct N`  regression gate: exit 1 if this
//!   run's `total.cycles_per_sec` falls more than `N`% below the
//!   floor report's (default N = 15). CI points `--floor` at the
//!   committed `BENCH_throughput.json` so a perf regression fails the
//!   build while ambient host noise does not;
//! * `--trace[=SPEC]` capture a structured event trace of every
//!   workload machine (see `dsm_trace::TraceSpec` for the grammar).
//!   Tracing costs wall clock, so never pass it when refreshing the
//!   committed baseline;
//! * `--pdes-workers LIST` worker counts for the PDES scaling row
//!   (default `1,2,4,8`; `--pdes-workers 1` skips the parallel runs).
//!
//! The report is a single JSON object: one entry per workload plus a
//! `total`, each `{sim_cycles, events, wall_ms, cycles_per_sec,
//! events_per_sec}`, and a `pdes` array recording each workload's
//! throughput at every `--pdes-workers` count together with its
//! speedup over the 1-worker (serial-engine) run.
//!
//! The floor gate deliberately checks the **serial** numbers only: the
//! basket pins every machine to one worker (`set_workers(1)`), so the
//! committed floor stays comparable across hosts with different core
//! counts and `DSM_WORKERS` settings. PDES speedups are recorded in
//! the `pdes` block (with the host's parallelism for context) but
//! never gated.

use atomic_dsm::experiments::{BarSpec, CounterKind};
use atomic_dsm::machine::Machine;
use atomic_dsm::protocol::SyncPolicy;
use atomic_dsm::sim::{Cycle, MachineConfig};
use atomic_dsm::workloads::{
    build_synthetic, build_tclosure, sequential_closure, SyntheticConfig, TcConfig,
};
use atomic_dsm::Primitive;
use std::time::Instant;

const RUN_LIMIT: Cycle = Cycle::new(50_000_000_000);

/// One measured workload.
struct Measurement {
    name: &'static str,
    sim_cycles: u64,
    events: u64,
    wall_ms: f64,
}

impl Measurement {
    fn cycles_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            return 0.0;
        }
        self.sim_cycles as f64 / (self.wall_ms / 1000.0)
    }

    fn events_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            return 0.0;
        }
        self.events as f64 / (self.wall_ms / 1000.0)
    }
}

/// Builds, runs and times one machine; the builder closure keeps
/// construction cost (allocation, program setup) out of the clock.
///
/// The worker count is pinned explicitly (never inherited from
/// `DSM_WORKERS`): the floor-gated basket always measures the serial
/// engine, and the PDES scaling row sets each count deliberately.
fn measure_with_workers(
    name: &'static str,
    machine: Machine,
    workers: usize,
    check: impl FnOnce(&Machine),
) -> Measurement {
    let mut machine = machine;
    machine.set_workers(workers);
    let start = Instant::now();
    let report = machine.run(RUN_LIMIT).unwrap_or_else(|e| {
        panic!("throughput workload {name} failed: {e}");
    });
    let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
    check(&machine);
    Measurement {
        name,
        sim_cycles: report.cycles.as_u64(),
        events: report.events,
        wall_ms,
    }
}

/// Runs `build` `repeat` times, keeping the fastest-wall-clock
/// measurement. Simulated cycle and event counts must not vary between
/// repeats (the engine is deterministic); anything else is a bug worth
/// failing the benchmark over.
fn best_of(repeat: u32, build: impl Fn() -> Measurement) -> Measurement {
    let mut best = build();
    for _ in 1..repeat {
        let next = build();
        assert_eq!(
            (next.sim_cycles, next.events),
            (best.sim_cycles, best.events),
            "{}: simulated results varied between repeats",
            best.name
        );
        if next.wall_ms < best.wall_ms {
            best = next;
        }
    }
    best
}

fn counter_workload(
    name: &'static str,
    kind: CounterKind,
    bar: &BarSpec,
    procs: u32,
    contention: u32,
    rounds: u64,
    workers: usize,
) -> Measurement {
    let scfg = SyntheticConfig {
        kind,
        choice: bar.prim_choice(),
        sync: bar.sync_config(),
        contention,
        write_run: 1.0,
        rounds,
    };
    let (machine, layout) = build_synthetic(MachineConfig::with_nodes(procs), &scfg);
    let expected = scfg.total_updates(procs);
    measure_with_workers(name, machine, workers, move |m| {
        assert_eq!(
            m.read_word(layout.counter),
            expected,
            "{name}: counter lost updates"
        );
    })
}

fn tclosure_workload(name: &'static str, procs: u32, size: u64, workers: usize) -> Measurement {
    let bar = BarSpec::new(SyncPolicy::Inv, Primitive::Cas);
    let cfg = TcConfig {
        size,
        choice: bar.prim_choice(),
        sync: bar.sync_config(),
        density: 0.15,
        seed: 1898,
    };
    let (machine, layout, input) = build_tclosure(MachineConfig::with_nodes(procs), &cfg);
    measure_with_workers(name, machine, workers, move |m| {
        let got = atomic_dsm::workloads::tclosure::read_matrix(m, &layout, cfg.size);
        assert_eq!(got, sequential_closure(&input), "{name}: closure mismatch");
    })
}

/// Extracts the number following `"<key>":` within the `"total"` object
/// of a previous report (good enough for our own output format; no JSON
/// dependency needed).
fn extract_total_field(json: &str, key: &str) -> Option<f64> {
    let total = json.find("\"total\"")?;
    let rest = &json[total..];
    let field = rest.find(&format!("\"{key}\""))?;
    let after = &rest[field..];
    let colon = after.find(':')?;
    let num: String = after[colon + 1..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == '+')
        .collect();
    num.parse().ok()
}

fn fmt_entry(m: &Measurement, indent: &str) -> String {
    format!(
        "{indent}{{\n{indent}  \"name\": \"{}\",\n{indent}  \"sim_cycles\": {},\n{indent}  \"events\": {},\n{indent}  \"wall_ms\": {:.3},\n{indent}  \"cycles_per_sec\": {:.0},\n{indent}  \"events_per_sec\": {:.0}\n{indent}}}",
        m.name,
        m.sim_cycles,
        m.events,
        m.wall_ms,
        m.cycles_per_sec(),
        m.events_per_sec()
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out_path = "BENCH_throughput.json".to_string();
    let mut baseline_path: Option<String> = None;
    let mut floor_path: Option<String> = None;
    let mut floor_pct: f64 = 15.0;
    let mut repeat: u32 = 1;
    let mut pdes_workers: Vec<usize> = vec![1, 2, 4, 8];
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--out" => {
                i += 1;
                out_path = args.get(i).expect("--out needs a path").clone();
            }
            "--baseline" => {
                i += 1;
                baseline_path = Some(args.get(i).expect("--baseline needs a path").clone());
            }
            "--floor" => {
                i += 1;
                floor_path = Some(args.get(i).expect("--floor needs a path").clone());
            }
            "--floor-pct" => {
                i += 1;
                floor_pct = args
                    .get(i)
                    .expect("--floor-pct needs a percentage")
                    .parse()
                    .expect("--floor-pct needs a number");
                assert!(
                    (0.0..100.0).contains(&floor_pct),
                    "--floor-pct needs a percentage in [0, 100)"
                );
            }
            "--repeat" => {
                i += 1;
                repeat = args
                    .get(i)
                    .expect("--repeat needs a count")
                    .parse()
                    .expect("--repeat needs a positive integer");
                assert!(repeat >= 1, "--repeat needs a positive integer");
            }
            "--pdes-workers" => {
                i += 1;
                let list = args.get(i).expect("--pdes-workers needs a list like 1,2,4");
                pdes_workers = list
                    .split(',')
                    .map(|v| {
                        let n: usize = v
                            .trim()
                            .parse()
                            .expect("--pdes-workers needs comma-separated positive integers");
                        assert!(n >= 1, "--pdes-workers counts must be >= 1");
                        n
                    })
                    .collect();
                assert!(
                    pdes_workers.first() == Some(&1),
                    "--pdes-workers must start at 1 (the serial speedup reference)"
                );
            }
            "--trace" => std::env::set_var("DSM_TRACE", "1"),
            other if other.starts_with("--trace=") => {
                let spec = &other["--trace=".len()..];
                if let Err(e) = atomic_dsm::trace::TraceSpec::from_spec(spec) {
                    eprintln!("--trace: {e}");
                    std::process::exit(2);
                }
                std::env::set_var("DSM_TRACE", spec);
            }
            other => {
                eprintln!("unknown flag {other}");
                eprintln!(
                    "usage: throughput [--quick] [--out FILE] [--baseline FILE] [--repeat N] \
                     [--floor FILE] [--floor-pct N] [--pdes-workers LIST] [--trace[=SPEC]]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let (procs, rounds, tc_size) = if quick { (16, 64, 12) } else { (64, 256, 32) };
    let scale_label = if quick { "quick" } else { "paper" };
    eprintln!("throughput basket: {procs} processors ({scale_label} scale)");

    let lockfree = BarSpec::new(SyncPolicy::Inv, Primitive::FetchPhi);
    let mcs = BarSpec::new(SyncPolicy::Inv, Primitive::Cas);
    // One builder per basket workload, parameterized on the PDES worker
    // count: the floor-gated basket runs at 1 worker (the serial
    // engine), the scaling row below revisits each at every count.
    type Builder<'a> = (&'static str, Box<dyn Fn(usize) -> Measurement + 'a>);
    let builders: Vec<Builder<'_>> = vec![
        (
            "counter-lockfree",
            Box::new(|w| {
                counter_workload(
                    "counter-lockfree",
                    CounterKind::LockFree,
                    &lockfree,
                    procs,
                    4,
                    rounds,
                    w,
                )
            }),
        ),
        (
            "counter-mcs",
            Box::new(|w| {
                counter_workload(
                    "counter-mcs",
                    CounterKind::McsLock,
                    &mcs,
                    procs,
                    4,
                    rounds,
                    w,
                )
            }),
        ),
        (
            "app-tclosure",
            Box::new(|w| tclosure_workload("app-tclosure", procs, tc_size, w)),
        ),
    ];
    let workloads: Vec<Measurement> = builders
        .iter()
        .map(|(_, build)| best_of(repeat, || build(1)))
        .collect();

    for m in &workloads {
        eprintln!(
            "  {:<18} {:>12} cycles  {:>10} events  {:>9.1} ms  {:>12.0} cyc/s  {:>11.0} ev/s",
            m.name,
            m.sim_cycles,
            m.events,
            m.wall_ms,
            m.cycles_per_sec(),
            m.events_per_sec()
        );
    }

    let total = Measurement {
        name: "total",
        sim_cycles: workloads.iter().map(|m| m.sim_cycles).sum(),
        events: workloads.iter().map(|m| m.events).sum(),
        wall_ms: workloads.iter().map(|m| m.wall_ms).sum(),
    };
    eprintln!(
        "  {:<18} {:>12} cycles  {:>10} events  {:>9.1} ms  {:>12.0} cyc/s  {:>11.0} ev/s",
        total.name,
        total.sim_cycles,
        total.events,
        total.wall_ms,
        total.cycles_per_sec(),
        total.events_per_sec()
    );

    // PDES scaling row: every basket workload re-measured at each
    // requested worker count. The 1-worker basket runs above are the
    // speedup reference; simulated cycle/event counts must be
    // bit-identical at every count (tests/pdes_identity.rs proves the
    // digests match — this asserts the cheap subset end to end).
    let host_par = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut pdes_entries: Vec<String> = Vec::new();
    for (idx, (name, build)) in builders.iter().enumerate() {
        let serial = &workloads[idx];
        for &w in &pdes_workers {
            let m = if w == 1 {
                None
            } else {
                Some(best_of(repeat, || build(w)))
            };
            let m = m.as_ref().unwrap_or(serial);
            assert_eq!(
                (m.sim_cycles, m.events),
                (serial.sim_cycles, serial.events),
                "{name}: {w}-worker run diverged from serial"
            );
            let speedup = m.cycles_per_sec() / serial.cycles_per_sec();
            eprintln!(
                "  pdes {name:<18} workers={w}  {:>9.1} ms  {:>12.0} cyc/s  speedup {speedup:.2}x",
                m.wall_ms,
                m.cycles_per_sec()
            );
            pdes_entries.push(format!(
                "    {{\n      \"name\": \"{name}\",\n      \"workers\": {w},\n      \"wall_ms\": {:.3},\n      \"cycles_per_sec\": {:.0},\n      \"speedup\": {speedup:.2}\n    }}",
                m.wall_ms,
                m.cycles_per_sec()
            ));
        }
    }
    let pdes_block = format!(
        ",\n  \"pdes\": {{\n    \"host_parallelism\": {host_par},\n    \"rows\": [\n{}\n    ]\n  }}",
        pdes_entries.join(",\n")
    );

    let mut baseline_block = String::new();
    if let Some(path) = &baseline_path {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let before_cps = extract_total_field(&text, "cycles_per_sec")
            .expect("baseline file has no total.cycles_per_sec");
        let before_eps = extract_total_field(&text, "events_per_sec").unwrap_or(0.0);
        let speedup = total.cycles_per_sec() / before_cps;
        eprintln!(
            "  baseline {before_cps:.0} cyc/s -> {:.0} cyc/s  (speedup {speedup:.2}x)",
            total.cycles_per_sec()
        );
        baseline_block = format!(
            ",\n  \"baseline\": {{\n    \"cycles_per_sec\": {before_cps:.0},\n    \"events_per_sec\": {before_eps:.0},\n    \"speedup\": {speedup:.2}\n  }}"
        );
    }

    let entries: Vec<String> = workloads.iter().map(|m| fmt_entry(m, "    ")).collect();
    let json = format!(
        "{{\n  \"scale\": \"{scale_label}\",\n  \"workloads\": [\n{}\n  ],\n  \"total\": {}{pdes_block}{baseline_block}\n}}\n",
        entries.join(",\n"),
        fmt_entry(&total, "  ").trim_start()
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("wrote {out_path}");

    if let Some(path) = &floor_path {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read floor {path}: {e}"));
        let floor_cps = extract_total_field(&text, "cycles_per_sec")
            .expect("floor file has no total.cycles_per_sec");
        let allowed = floor_cps * (1.0 - floor_pct / 100.0);
        let got = total.cycles_per_sec();
        if got < allowed {
            eprintln!(
                "PERF REGRESSION: total {got:.0} cyc/s is more than {floor_pct:.0}% below \
                 the floor {floor_cps:.0} cyc/s (allowed ≥ {allowed:.0})"
            );
            std::process::exit(1);
        }
        eprintln!(
            "floor gate ok: {got:.0} cyc/s ≥ {allowed:.0} \
             ({floor_pct:.0}% slack under floor {floor_cps:.0})"
        );
    }
}
