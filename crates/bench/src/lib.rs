//! Shared helpers for the benchmark harness.
//!
//! The Criterion benches (one per paper table/figure, plus ablations)
//! and the `figures` CLI both build on these functions. Each bench
//! prints the regenerated table/series once, then measures the runtime
//! of a representative slice of the experiment.

#![warn(missing_docs)]

use atomic_dsm::experiments::{BarSpec, Scale};
use atomic_dsm::machine::{Action, MachineBuilder, ProcCtx};
use atomic_dsm::protocol::{LlscScheme, MemOp, OpResult, SyncConfig, SyncPolicy};
use atomic_dsm::sim::{Addr, Cycle, MachineConfig};
use atomic_dsm::Primitive;

/// Picks the experiment scale: `Scale::paper()` when `ATOMIC_DSM_PAPER`
/// is set in the environment (or `paper` is true), else a CI-friendly
/// quick scale.
pub fn scale(paper: bool) -> Scale {
    if paper || std::env::var_os("ATOMIC_DSM_PAPER").is_some() {
        Scale::paper()
    } else {
        Scale::quick()
    }
}

/// Runs an LL/SC lock-free counter under UNC with the given reservation
/// scheme and returns (elapsed cycles, total messages).
///
/// Used by the reservation-scheme ablation.
///
/// # Panics
///
/// Panics if the run fails or the counter ends up wrong.
pub fn llsc_counter_with_scheme(procs: u32, iters: u64, scheme: LlscScheme) -> (u64, u64) {
    let counter = Addr::new(0x40);
    let mut b = MachineBuilder::new(MachineConfig::with_nodes(procs));
    b.register_sync(
        counter,
        SyncConfig {
            policy: SyncPolicy::Unc,
            llsc: scheme,
            ..Default::default()
        },
    );
    b.llsc_pool(procs as usize / 2);
    for _ in 0..procs {
        let mut left = iters;
        b.add_program(move |ctx: &mut ProcCtx<'_>| match ctx.last {
            None => Action::Op(MemOp::LoadLinked { addr: counter }),
            Some(OpResult::Loaded {
                value,
                serial,
                reserved,
            }) => {
                if !reserved {
                    return Action::Op(MemOp::LoadLinked { addr: counter });
                }
                Action::Op(MemOp::StoreConditional {
                    addr: counter,
                    value: value + 1,
                    serial,
                })
            }
            Some(OpResult::ScDone { success }) => {
                if success {
                    left -= 1;
                    if left == 0 {
                        return Action::Done;
                    }
                }
                Action::Op(MemOp::LoadLinked { addr: counter })
            }
            other => panic!("unexpected {other:?}"),
        });
    }
    let mut m = b.build();
    let report = m
        .run(Cycle::new(100_000_000_000))
        .expect("ablation run completes");
    assert_eq!(m.read_word(counter), procs as u64 * iters);
    (report.cycles.as_u64(), m.stats().msgs.total_messages())
}

/// The drop-copy ablation: INV fetch_and_add at one `(c, a)` point,
/// with and without `drop_copy`. Returns (without, with) avg cycles.
pub fn dropcopy_pair(contention: u32, write_run: f64, s: &Scale) -> (f64, f64) {
    use atomic_dsm::experiments::counters::measure_bar;
    use atomic_dsm::experiments::CounterKind;
    let without = BarSpec::new(SyncPolicy::Inv, Primitive::FetchPhi);
    let with = BarSpec {
        drop_copy: true,
        ..without
    };
    let a = measure_bar(CounterKind::LockFree, &without, contention, write_run, s);
    let b = measure_bar(CounterKind::LockFree, &with, contention, write_run, s);
    (a.avg_cycles, b.avg_cycles)
}

/// Synthetic traffic patterns for the mesh ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficPattern {
    /// Uniform random source/destination pairs.
    Uniform,
    /// Everyone sends to node 0 (a hot home node).
    Hotspot,
    /// Each node sends to its +1 neighbor.
    Neighbor,
}

/// Generates a deterministic trace of (time, src, dst, flits).
pub fn traffic_trace(
    pattern: TrafficPattern,
    nodes: u32,
    messages: u64,
    seed: u64,
) -> Vec<(u64, u32, u32, u64)> {
    let mut rng = atomic_dsm::sim::SimRng::new(seed);
    (0..messages)
        .map(|i| {
            let t = i / (nodes as u64 / 2).max(1);
            let src = rng.range(nodes as u64) as u32;
            let (src, dst) = match pattern {
                TrafficPattern::Uniform => {
                    let d = rng.range(nodes as u64) as u32;
                    (src, d)
                }
                TrafficPattern::Hotspot => (src.max(1), 0),
                TrafficPattern::Neighbor => (src, (src + 1) % nodes),
            };
            let flits = 2 + rng.range(5);
            (t, src, dst, flits)
        })
        .collect()
}

/// Replays a trace through the paper's latency model, returning mean
/// latency.
pub fn replay_latency_model(trace: &[(u64, u32, u32, u64)], nodes: u32) -> f64 {
    use atomic_dsm::mesh::{LatencyNetwork, Mesh};
    let cfg = MachineConfig::with_nodes(nodes);
    let mut net = LatencyNetwork::new(Mesh::new(&cfg), cfg.params.clone());
    let mut total = 0u64;
    for &(t, s, d, f) in trace {
        let arrive = net.send(
            Cycle::new(t),
            atomic_dsm::sim::NodeId::new(s),
            atomic_dsm::sim::NodeId::new(d),
            f,
        );
        total += (arrive - Cycle::new(t)).as_u64();
    }
    total as f64 / trace.len() as f64
}

/// Replays a trace through the flit-level wormhole router, returning
/// mean latency.
///
/// # Panics
///
/// Panics if the network fails to drain (a model bug).
pub fn replay_flit_model(trace: &[(u64, u32, u32, u64)], nodes: u32) -> f64 {
    use atomic_dsm::mesh::{FlitNetwork, FlitNetworkParams, Mesh};
    let cfg = MachineConfig::with_nodes(nodes);
    let mut net = FlitNetwork::new(Mesh::new(&cfg), FlitNetworkParams::default());
    // Injections at a node must be time-ordered; sort by (src, time).
    let mut sorted: Vec<_> = trace.to_vec();
    sorted.sort_by_key(|&(t, s, _, _)| (s, t));
    let mut inject_times = std::collections::HashMap::new();
    for &(t, s, d, f) in &sorted {
        let id = net.inject(
            Cycle::new(t),
            atomic_dsm::sim::NodeId::new(s),
            atomic_dsm::sim::NodeId::new(d),
            f,
        );
        inject_times.insert(id, t);
    }
    let deliveries = net
        .run_until_drained(Cycle::new(100_000_000))
        .expect("drains");
    let total: u64 = deliveries
        .iter()
        .map(|d| d.delivered_at.as_u64() - inject_times[&d.packet])
        .sum();
    total as f64 / deliveries.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_selection() {
        assert_eq!(scale(true).procs, 64);
        if std::env::var_os("ATOMIC_DSM_PAPER").is_none() {
            assert_eq!(scale(false).procs, 16);
        }
    }

    #[test]
    fn llsc_scheme_helper_is_exact() {
        let (cycles, msgs) = llsc_counter_with_scheme(4, 10, LlscScheme::SerialNumber);
        assert!(cycles > 0);
        assert!(msgs > 0);
    }

    #[test]
    fn traces_are_deterministic() {
        let a = traffic_trace(TrafficPattern::Uniform, 16, 100, 1);
        let b = traffic_trace(TrafficPattern::Uniform, 16, 100, 1);
        assert_eq!(a, b);
        for &(_, s, d, f) in &a {
            assert!(s < 16 && d < 16);
            assert!(f >= 2);
        }
    }

    #[test]
    fn both_mesh_models_replay_traces() {
        let trace = traffic_trace(TrafficPattern::Uniform, 16, 200, 7);
        let lat = replay_latency_model(&trace, 16);
        let flit = replay_flit_model(&trace, 16);
        assert!(lat > 0.0);
        assert!(flit > 0.0);
    }

    #[test]
    fn hotspot_is_slower_than_neighbor_in_both_models() {
        let hot = traffic_trace(TrafficPattern::Hotspot, 16, 300, 9);
        let nb = traffic_trace(TrafficPattern::Neighbor, 16, 300, 9);
        assert!(replay_latency_model(&hot, 16) > replay_latency_model(&nb, 16));
        assert!(replay_flit_model(&hot, 16) > replay_flit_model(&nb, 16));
    }

    #[test]
    fn dropcopy_pair_runs() {
        let s = Scale {
            procs: 8,
            rounds: 8,
            tc_size: 8,
            wires: 8,
            tasks: 8,
        };
        let (without, with) = dropcopy_pair(1, 1.0, &s);
        assert!(without > 0.0 && with > 0.0);
    }
}
