//! Golden-artifact test: the committed `results_csv/table1.csv` must
//! be byte-for-byte reproducible from the current engine.
//!
//! Table 1 is the cheapest committed artifact (a handful of two-node
//! micro-experiments), so regenerating it on every test run is an
//! affordable end-to-end guard: any engine change that silently shifts
//! simulated results — an event reordered, a latency misaccounted, a
//! hash iteration leaking into observable state — shows up here as a
//! diff against the checked-in bytes, not just as a number in a table
//! nobody re-reads.

use atomic_dsm::experiments::table1;
use atomic_dsm::stats::render_csv;

#[test]
fn committed_table1_csv_matches_regenerated_bytes() {
    let mut rows = vec![vec![
        "scenario".to_string(),
        "paper".to_string(),
        "measured".to_string(),
    ]];
    for r in table1::run() {
        rows.push(vec![
            r.scenario.to_string(),
            r.paper.to_string(),
            r.measured.to_string(),
        ]);
    }
    let regenerated = render_csv(&rows);

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results_csv/table1.csv");
    let committed = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read committed golden file {path}: {e}"));

    assert_eq!(
        regenerated, committed,
        "regenerated Table 1 differs from the committed results_csv/table1.csv; \
         if the engine change is intentional, regenerate the artifacts with \
         `cargo run --release -p dsm-bench --bin figures -- all --paper --csv results_csv`"
    );
}
