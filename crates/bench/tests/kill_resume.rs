//! Crash-safety smoke test against the real `checkpoint` binary: run a
//! workload to completion for a golden transcript, then run it again
//! with a mid-run checkpoint and a deliberate post-checkpoint death
//! (exit 42), restore from the saved snapshot in a *fresh process*, and
//! require the resumed stdout to be byte-identical to the golden run.
//! This is the same contract the CI crash-safety job enforces, without
//! needing a shell script.

use std::path::PathBuf;
use std::process::{Command, Output};

/// Exit code the binary uses for a deliberate post-checkpoint death.
const KILLED: i32 = 42;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_checkpoint")
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("checkpoint binary runs")
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dsm-kill-resume-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Golden → kill at an interior event → resume in a new process →
/// byte-identical stdout, for each checkpointable workload class.
#[test]
fn killed_and_resumed_run_matches_uninterrupted_stdout() {
    for workload in ["counter", "app", "lockfree"] {
        let dir = scratch(workload);
        let snap = dir.join("mid.ckpt");
        let snap = snap.to_str().unwrap();

        let golden = run(&["run", "--workload", workload]);
        assert!(
            golden.status.success(),
            "{workload}: golden run failed: {}",
            String::from_utf8_lossy(&golden.stderr)
        );
        assert!(!golden.stdout.is_empty(), "{workload}: empty golden output");

        let killed = run(&[
            "run",
            "--workload",
            workload,
            "--pause",
            "2000",
            "--snap",
            snap,
            "--kill",
        ]);
        assert_eq!(
            killed.status.code(),
            Some(KILLED),
            "{workload}: expected the deliberate death code: {}",
            String::from_utf8_lossy(&killed.stderr)
        );
        assert!(
            killed.stdout.is_empty(),
            "{workload}: a killed run must print no result"
        );

        let resumed = run(&["resume", "--snap", snap]);
        assert!(
            resumed.status.success(),
            "{workload}: resume failed: {}",
            String::from_utf8_lossy(&resumed.stderr)
        );
        assert_eq!(
            String::from_utf8_lossy(&resumed.stdout),
            String::from_utf8_lossy(&golden.stdout),
            "{workload}: resumed stdout diverged from the uninterrupted run"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Resuming from a missing snapshot reports a structured error (exit 3)
/// instead of panicking.
#[test]
fn resume_from_missing_snapshot_fails_cleanly() {
    let dir = scratch("missing");
    let snap = dir.join("nope.ckpt");
    let out = run(&["resume", "--snap", snap.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(3));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("resume failed"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
}
