//! Figures 2 and 6: the application workloads.
//!
//! Figure 2 reports histograms of the contention level at the beginning
//! of each atomic access for LocusRoute, Cholesky and Transitive
//! Closure under each coherence policy. Figure 6 reports total elapsed
//! time for the same applications across the implementation bar set.

use crate::experiments::runner::{self, Job, JobOutput, PreparedRun, SimFailure};
use crate::experiments::{BarSpec, Scale};
use dsm_protocol::SyncPolicy;
use dsm_sim::{Cycle, MachineConfig};
use dsm_stats::Histogram;
use dsm_sync::Primitive;
use dsm_workloads::{
    build_cholesky, build_tclosure, build_wire_route, sequential_closure, CholeskyConfig, TcConfig,
    WireRouteConfig,
};

/// The three applications of §4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum App {
    /// The LocusRoute-analog router kernel.
    WireRoute,
    /// The Cholesky-analog factorization kernel.
    Cholesky,
    /// Transitive Closure (Figure 1).
    TransitiveClosure,
}

impl App {
    /// All applications in the paper's order.
    pub const ALL: [App; 3] = [App::WireRoute, App::Cholesky, App::TransitiveClosure];

    /// Display name (the paper's, for the two SPLASH analogs).
    pub fn label(self) -> &'static str {
        match self {
            App::WireRoute => "LocusRoute (analog)",
            App::Cholesky => "Cholesky (analog)",
            App::TransitiveClosure => "Transitive Closure",
        }
    }
}

/// The result of one application run.
#[derive(Debug, Clone)]
pub struct AppRun {
    /// Which application ran.
    pub app: App,
    /// The implementation used.
    pub bar: BarSpec,
    /// Total elapsed cycles of the parallel section.
    pub cycles: u64,
    /// Contention histogram over the synchronization variables.
    pub contention: Histogram,
    /// Average write-run length of the synchronization variables.
    pub write_run: f64,
    /// Cycle-exact latency histogram over every operation of the run.
    pub latency: dsm_stats::LatencyHist,
}

const RUN_LIMIT: Cycle = Cycle::new(50_000_000_000);

/// Post-run output check installed by each application builder. Reports
/// a wrong answer as a diagnostic instead of panicking, so a corrupted
/// run (e.g. under fault injection) stays a recoverable [`SimFailure`].
type OutputCheck = Box<dyn FnOnce(&dsm_machine::Machine) -> Result<(), String>>;

/// Runs one application under one implementation, verifying its output.
///
/// Goes through the experiment [`runner`], so repeated runs of the same
/// `(app, bar, scale)` point are served from the result cache.
///
/// # Panics
///
/// Panics if the run fails or produces a wrong answer.
pub fn run_app(app: App, bar: &BarSpec, scale: &Scale) -> AppRun {
    runner::run_one(&Job::app(app, *bar, *scale)).into_app()
}

/// Builds one application run's machine without running it, seeded by
/// `seed` (the job-key fingerprint when called from the [`runner`]).
/// The finish stage validates coherence and the application's own
/// output before assembling the [`AppRun`].
pub(crate) fn prepare(app: App, bar: &BarSpec, scale: &Scale, seed: u64) -> PreparedRun {
    let mut mcfg = MachineConfig::with_nodes(scale.procs);
    mcfg.seed = seed;
    let (machine, check): (_, OutputCheck) = match app {
        App::WireRoute => {
            let cfg = WireRouteConfig {
                wires: scale.wires,
                regions: (scale.procs * 2).max(8),
                route_len: 3,
                cells_per_visit: 4,
                cells_per_region: 16,
                choice: bar.prim_choice(),
                sync: bar.sync_config(),
                seed: 1997,
                compute_per_wire: 40_000,
            };
            let (m, layout) = build_wire_route(mcfg, &cfg);
            (
                m,
                Box::new(move |m| {
                    let got = layout.total_cost(m, &cfg);
                    let want = cfg.expected_total();
                    if got == want {
                        Ok(())
                    } else {
                        Err(format!("wire-route lost updates ({got} of {want})"))
                    }
                }),
            )
        }
        App::Cholesky => {
            let cfg = CholeskyConfig {
                tasks: scale.tasks,
                columns: scale.procs.max(8),
                updates_per_task: 2,
                column_words: 16,
                cells_per_update: 4,
                choice: bar.prim_choice(),
                sync: bar.sync_config(),
                seed: 1995,
                compute_per_task: 120_000,
            };
            let (m, layout) = build_cholesky(mcfg, &cfg);
            (
                m,
                Box::new(move |m| {
                    let got = layout.total(m, &cfg);
                    let want = cfg.expected_total();
                    if got == want {
                        Ok(())
                    } else {
                        Err(format!("cholesky lost updates ({got} of {want})"))
                    }
                }),
            )
        }
        App::TransitiveClosure => {
            let cfg = TcConfig {
                size: scale.tc_size,
                choice: bar.prim_choice(),
                sync: bar.sync_config(),
                density: 0.15,
                seed: 1898,
            };
            let (m, layout, input) = build_tclosure(mcfg, &cfg);
            (
                m,
                Box::new(move |m| {
                    let got = dsm_workloads::tclosure::read_matrix(m, &layout, cfg.size);
                    if got == sequential_closure(&input) {
                        Ok(())
                    } else {
                        Err("closure mismatch".to_string())
                    }
                }),
            )
        }
    };
    let app_label = app.label();
    let bar = *bar;
    let label = format!("{} [{}]", app_label, bar.label());
    let err_label = label.clone();
    PreparedRun {
        label,
        machine,
        limit: RUN_LIMIT,
        finish: Box::new(move |machine, report| {
            machine
                .validate_coherence()
                .map_err(|e| SimFailure::deterministic(format!("{err_label}: coherence: {e}")))?;
            check(machine).map_err(|e| SimFailure::deterministic(format!("{err_label}: {e}")))?;
            let stats = machine.stats();
            Ok(JobOutput::App(AppRun {
                app,
                bar,
                cycles: report.cycles.as_u64(),
                contention: stats.contention.histogram().clone(),
                write_run: stats.write_runs.completed().mean(),
                latency: stats.op_latency_hist.clone(),
            }))
        }),
    }
}

/// Figure 2: contention histograms for every application under each
/// coherence policy (using the FAΦ primitive for the lock-free counter,
/// as the paper's lock implementations do for their lock words).
pub fn fig2(scale: &Scale) -> Vec<AppRun> {
    let jobs: Vec<Job> = App::ALL
        .into_iter()
        .flat_map(|app| {
            SyncPolicy::ALL
                .into_iter()
                .map(move |policy| Job::app(app, BarSpec::new(policy, Primitive::FetchPhi), *scale))
        })
        .collect();
    runner::run_all(&jobs)
        .into_iter()
        .map(JobOutput::into_app)
        .collect()
}

/// Figure 6: total elapsed time for every application across `bars`.
pub fn fig6(bars: &[BarSpec], scale: &Scale) -> Vec<AppRun> {
    let jobs: Vec<Job> = App::ALL
        .into_iter()
        .flat_map(|app| bars.iter().map(move |bar| Job::app(app, *bar, *scale)))
        .collect();
    runner::run_all(&jobs)
        .into_iter()
        .map(JobOutput::into_app)
        .collect()
}

/// Renders Figure 2-style output: one histogram block per run.
pub fn render_fig2(runs: &[AppRun]) -> String {
    let mut s = String::new();
    for r in runs {
        s.push_str(&format!(
            "{} [{}]  (avg write-run {:.2})\n",
            r.app.label(),
            r.bar.policy.label(),
            r.write_run
        ));
        s.push_str(&r.contention.render());
        s.push('\n');
    }
    s
}

/// Renders Figure 6-style output as a table of total cycles.
pub fn render_fig6(runs: &[AppRun]) -> String {
    let mut rows = vec![vec![
        "app".to_string(),
        "implementation".to_string(),
        "total cycles".to_string(),
    ]];
    for r in runs {
        rows.push(vec![
            r.app.label().into(),
            r.bar.label(),
            r.cycles.to_string(),
        ]);
    }
    dsm_stats::render_table(&rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            procs: 8,
            rounds: 8,
            tc_size: 8,
            wires: 16,
            tasks: 16,
        }
    }

    #[test]
    fn each_app_runs_and_verifies() {
        for app in App::ALL {
            let bar = BarSpec::new(SyncPolicy::Inv, Primitive::Cas);
            let run = run_app(app, &bar, &tiny());
            assert!(run.cycles > 0);
            assert!(
                run.contention.total() > 0,
                "{}: no atomic accesses seen",
                app.label()
            );
        }
    }

    /// Paper §4.2: LocusRoute and Cholesky are dominated by uncontended
    /// accesses; Transitive Closure shows high contention.
    #[test]
    fn contention_profiles_match_paper_shape() {
        let bar = BarSpec::new(SyncPolicy::Inv, Primitive::FetchPhi);
        let wr = run_app(App::WireRoute, &bar, &tiny());
        assert!(
            wr.contention.percentage(1) > 50.0,
            "router should be mostly uncontended, got {:.1}%",
            wr.contention.percentage(1)
        );
        let tc = run_app(App::TransitiveClosure, &bar, &tiny());
        let tc_high = 100.0 - tc.contention.cumulative_percentage(2);
        assert!(
            tc_high > 10.0,
            "transitive closure should show contention above 2, got {tc_high:.1}%"
        );
    }

    #[test]
    fn renderers_produce_output() {
        let bar = BarSpec::new(SyncPolicy::Unc, Primitive::FetchPhi);
        let run = run_app(App::Cholesky, &bar, &tiny());
        let f2 = render_fig2(std::slice::from_ref(&run));
        assert!(f2.contains("Cholesky"));
        let f6 = render_fig6(std::slice::from_ref(&run));
        assert!(f6.contains("total cycles"));
    }
}
