//! Deterministic checkpoint/restore for experiment jobs.
//!
//! A simulated machine holds `Box<dyn Program>` closures, so its state
//! cannot be serialized byte-for-byte. Instead, a [`Checkpoint`] is a
//! set of *verified replay coordinates*: the [`Job`] key (from which
//! the runner rebuilds a bit-identical machine), the number of events
//! dispatched at the pause point, the simulated time, and a
//! [`state_digest`](dsm_machine::Machine::state_digest) of the complete
//! dynamic state. Restoring
//! rebuilds the machine, replays exactly that many events
//! ([`dsm_machine::StopRule::AfterEvents`]), and proves it reoccupied
//! the checkpointed state by digest equality before resuming — so a
//! resumed run's final artifacts are bit-identical to an uninterrupted
//! run's, or the restore fails loudly ([`CheckpointError::Diverged`])
//! and the caller re-runs from scratch.
//!
//! On-disk checkpoints use the versioned, checksummed snapshot
//! container ([`dsm_sim::snapshot`], [`PayloadKind::Checkpoint`]) and
//! are written atomically (temp file + rename), so a crash mid-write
//! never leaves a half-checkpoint that could be mistaken for a good
//! one. A torn or corrupt checkpoint fails its checksum on load;
//! [`resume_file`] then quarantines it and reports the error instead of
//! resuming from garbage.
//!
//! [`Job::Table1`] jobs are not checkpointable
//! ([`CheckpointError::Unsupported`]): their directed micro-machines
//! complete in microseconds and are driven by their own harness.

use crate::experiments::diskcache;
use crate::experiments::runner::{self, Job, JobResult, PreparedRun, SimFailure};
use dsm_machine::{RunOutcome, StopRule};
use dsm_sim::snapshot::{self, ByteReader, ByteWriter, PayloadKind, SnapshotError};
use std::path::Path;

/// Verified replay coordinates for one paused job run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// The job being run (rebuilding it is a pure function of this key).
    pub job: Job,
    /// Events dispatched at the pause point (the replay target).
    pub events: u64,
    /// Simulated time at the pause point, in cycles.
    pub cycle: u64,
    /// [`Machine::state_digest`](dsm_machine::Machine::state_digest) at
    /// the pause point — what a restore must reproduce before resuming.
    pub digest: u64,
}

/// Why a checkpoint operation failed.
#[derive(Debug)]
pub enum CheckpointError {
    /// The on-disk container was unreadable, truncated, corrupt, or of
    /// the wrong version/kind.
    Snapshot(SnapshotError),
    /// The job kind cannot be checkpointed (Table 1 micro-machines).
    Unsupported(String),
    /// The replay did not reoccupy the checkpointed state: the machine,
    /// environment, or code changed since the checkpoint was taken.
    /// Resuming would silently produce different artifacts, so the
    /// restore refuses; re-run the job from scratch instead.
    Diverged {
        /// Events replayed (the checkpoint's pause coordinate).
        events: u64,
        /// The digest the checkpoint recorded.
        expected: u64,
        /// The digest (or sentinel 0 if the run ended early) found.
        found: u64,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Snapshot(e) => write!(f, "checkpoint container: {e}"),
            CheckpointError::Unsupported(job) => {
                write!(f, "job {job} cannot be checkpointed")
            }
            CheckpointError::Diverged {
                events,
                expected,
                found,
            } => write!(
                f,
                "replay diverged at event {events}: state digest {found:016x}, \
                 checkpoint recorded {expected:016x} (machine, environment or \
                 code changed since the checkpoint; re-run from scratch)"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<SnapshotError> for CheckpointError {
    fn from(e: SnapshotError) -> Self {
        CheckpointError::Snapshot(e)
    }
}

/// The result of [`run_with_pause`]: either the run finished before the
/// pause point fired, or it paused and can be saved/resumed.
pub enum PauseOutcome {
    /// The run completed (or failed) before dispatching enough events
    /// to pause; the job's final result is attached.
    Completed(JobResult),
    /// The run paused at the requested event count. Boxed: a paused job
    /// carries a whole live machine, dwarfing the completed variant.
    Paused(Box<PausedJob>),
}

/// A job paused mid-run: holds the live machine plus the checkpoint
/// describing the pause point. [`save`](PausedJob::save) persists the
/// checkpoint; [`resume`](PausedJob::resume) finishes the run
/// in-process.
pub struct PausedJob {
    run: PreparedRun,
    cp: Checkpoint,
}

impl PausedJob {
    /// The replay coordinates of the pause point.
    pub fn checkpoint(&self) -> &Checkpoint {
        &self.cp
    }

    /// Persists the checkpoint atomically to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Snapshot`] if the write fails.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        save(path, &self.cp)
    }

    /// Finishes the run in-process and returns the job's result —
    /// bit-identical to a run that never paused.
    pub fn resume(self) -> JobResult {
        let mut run = self.run;
        let finish = run.finish;
        let out = match run.machine.run_until(run.limit, StopRule::None) {
            Ok(RunOutcome::Done(report)) => finish(&mut run.machine, report),
            Ok(RunOutcome::Paused(_)) => unreachable!("StopRule::None never pauses"),
            Err(e) => Err(SimFailure::from_run(&run.label, &e)),
        };
        out.map_err(|f| runner::attribute(&self.cp.job, f))
    }
}

/// Runs `job` from scratch, pausing once `pause_after_events` events
/// have been dispatched. Pass `u64::MAX` to run to completion (useful
/// for drivers that want identical output paths with and without a
/// pause).
///
/// # Errors
///
/// [`CheckpointError::Unsupported`] for [`Job::Table1`]. A failing
/// simulation is *not* an error here — it is reported inside
/// [`PauseOutcome::Completed`] as the job's own result.
pub fn run_with_pause(job: &Job, pause_after_events: u64) -> Result<PauseOutcome, CheckpointError> {
    let Some(mut p) = runner::prepare(job) else {
        return Err(CheckpointError::Unsupported(format!("{job:?}")));
    };
    match p
        .machine
        .run_until(p.limit, StopRule::AfterEvents(pause_after_events))
    {
        Ok(RunOutcome::Paused(report)) => {
            let cp = Checkpoint {
                job: job.clone(),
                events: report.events,
                cycle: report.cycles.as_u64(),
                digest: p.machine.state_digest(),
            };
            Ok(PauseOutcome::Paused(Box::new(PausedJob { run: p, cp })))
        }
        Ok(RunOutcome::Done(report)) => {
            let finish = p.finish;
            Ok(PauseOutcome::Completed(
                finish(&mut p.machine, report).map_err(|f| runner::attribute(job, f)),
            ))
        }
        Err(e) => Ok(PauseOutcome::Completed(Err(runner::attribute(
            job,
            SimFailure::from_run(&p.label, &e),
        )))),
    }
}

/// Persists `cp` atomically to `path` in the snapshot container format.
///
/// # Errors
///
/// Returns [`CheckpointError::Snapshot`] if the write fails.
pub fn save(path: &Path, cp: &Checkpoint) -> Result<(), CheckpointError> {
    let mut w = ByteWriter::new();
    w.put_bytes(&diskcache::encode_job(&cp.job));
    w.put_u64(cp.events);
    w.put_u64(cp.cycle);
    w.put_u64(cp.digest);
    snapshot::write_atomic(path, PayloadKind::Checkpoint, &w.into_bytes())?;
    Ok(())
}

/// Loads a checkpoint from `path`, verifying the container's magic,
/// version, kind and checksum.
///
/// # Errors
///
/// Returns [`CheckpointError::Snapshot`] for any container or decoding
/// failure (the file is left in place; see [`resume_file`] for the
/// quarantining variant).
pub fn load(path: &Path) -> Result<Checkpoint, CheckpointError> {
    let payload = snapshot::read(path, PayloadKind::Checkpoint)?;
    let mut r = ByteReader::new(&payload);
    let job = diskcache::decode_job(&r.take_bytes()?)?;
    let cp = Checkpoint {
        job,
        events: r.take_u64()?,
        cycle: r.take_u64()?,
        digest: r.take_u64()?,
    };
    r.finish()?;
    Ok(cp)
}

/// Restores `cp`: rebuilds the machine from the job key, replays
/// exactly `cp.events` events, verifies the state digest, then resumes
/// to completion. The returned result is bit-identical to an
/// uninterrupted run of the same job.
///
/// # Errors
///
/// [`CheckpointError::Unsupported`] for Table 1 jobs,
/// [`CheckpointError::Diverged`] if the replay does not reoccupy the
/// checkpointed state (simulation failures *during* a faithful replay
/// are the job's own result, not an error).
pub fn resume(cp: &Checkpoint) -> Result<JobResult, CheckpointError> {
    let Some(mut p) = runner::prepare(&cp.job) else {
        return Err(CheckpointError::Unsupported(format!("{:?}", cp.job)));
    };
    match p
        .machine
        .run_until(p.limit, StopRule::AfterEvents(cp.events))
    {
        Ok(RunOutcome::Paused(report)) => {
            let found = p.machine.state_digest();
            if report.events != cp.events
                || report.cycles.as_u64() != cp.cycle
                || found != cp.digest
            {
                return Err(CheckpointError::Diverged {
                    events: cp.events,
                    expected: cp.digest,
                    found,
                });
            }
            Ok(PausedJob {
                run: p,
                cp: cp.clone(),
            }
            .resume())
        }
        // The replay finished (or failed) before reaching the pause
        // point, yet the original run got past it: divergence.
        Ok(RunOutcome::Done(report)) => Err(CheckpointError::Diverged {
            events: report.events,
            expected: cp.digest,
            found: 0,
        }),
        Err(e) => {
            // A wall-clock timeout during replay is a transient host
            // condition, not divergence — report it as the job's result
            // so the supervisor's retry policy applies.
            let f = SimFailure::from_run(&p.label, &e);
            if f.transient {
                Ok(Err(runner::attribute(&cp.job, f)))
            } else {
                Err(CheckpointError::Diverged {
                    events: cp.events,
                    expected: cp.digest,
                    found: p.machine.state_digest(),
                })
            }
        }
    }
}

/// Loads and restores a checkpoint file. An unreadable or corrupt file
/// is moved into a `quarantined/` sibling directory (best-effort) so
/// the next startup does not trip over it again, and the error is
/// reported — the caller should fall back to running from scratch.
///
/// # Errors
///
/// The union of [`load`] and [`resume`] errors.
pub fn resume_file(path: &Path) -> Result<JobResult, CheckpointError> {
    match load(path) {
        Ok(cp) => resume(&cp),
        Err(e) => {
            if !matches!(
                &e,
                CheckpointError::Snapshot(SnapshotError::Io(io)) if io.kind() == std::io::ErrorKind::NotFound
            ) {
                match snapshot::quarantine(path) {
                    Ok(to) => eprintln!(
                        "dsm-checkpoint: quarantined corrupt checkpoint {} -> {} ({e})",
                        path.display(),
                        to.display()
                    ),
                    Err(qe) => eprintln!(
                        "dsm-checkpoint: corrupt checkpoint {} could not be quarantined: {qe} ({e})",
                        path.display()
                    ),
                }
            }
            Err(e)
        }
    }
}

/// Total events an uninterrupted, *successful* run of `job` dispatches.
/// Tests and drivers use this to place pause points at a genuine
/// interior event — e.g. `total_events(&job) / 2` — whatever the job's
/// actual length. Returns `None` for unsupported jobs (Table 1) and for
/// jobs whose simulation fails: a failing run has no meaningful
/// interior to checkpoint.
///
/// This simulates the job once (without caching), so it costs a full
/// run; it is a planning tool, not a hot-path query.
pub fn total_events(job: &Job) -> Option<u64> {
    let mut p = runner::prepare(job)?;
    p.machine.run(p.limit).ok().map(|report| report.events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{BarSpec, CounterKind};
    use dsm_protocol::SyncPolicy;
    use dsm_sim::MachineConfig;
    use dsm_sync::Primitive;

    fn tiny_job() -> Job {
        Job::counter(
            MachineConfig::with_nodes(4),
            CounterKind::LockFree,
            BarSpec::new(SyncPolicy::Inv, Primitive::Cas),
            4,
            1.0,
            4,
        )
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("dsm-ckpt-{}-{name}", std::process::id()))
    }

    /// Interior-event pause point for a job known to be tiny and
    /// checkpointable.
    fn total_events(job: &Job) -> u64 {
        super::total_events(job).expect("tiny job completes")
    }

    #[test]
    fn pause_save_restore_is_bit_identical() {
        let job = tiny_job();
        let midpoint = total_events(&job) / 2;
        assert!(midpoint > 0);
        let baseline = match run_with_pause(&job, u64::MAX).unwrap() {
            PauseOutcome::Completed(r) => r,
            PauseOutcome::Paused(_) => panic!("u64::MAX events must not pause"),
        };
        let path = tmp("roundtrip");
        let paused = match run_with_pause(&job, midpoint).unwrap() {
            PauseOutcome::Paused(p) => p,
            PauseOutcome::Completed(_) => panic!("job must pause at its midpoint"),
        };
        assert_eq!(paused.checkpoint().events, midpoint);
        paused.save(&path).unwrap();
        drop(paused); // simulate the process dying after the checkpoint
        let resumed = resume_file(&path).unwrap();
        assert_eq!(
            format!("{baseline:?}"),
            format!("{resumed:?}"),
            "resumed result must be bit-identical to the uninterrupted run"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn in_process_resume_matches_uninterrupted() {
        let job = tiny_job();
        let midpoint = total_events(&job) / 2;
        let baseline = match run_with_pause(&job, u64::MAX).unwrap() {
            PauseOutcome::Completed(r) => r,
            PauseOutcome::Paused(_) => unreachable!(),
        };
        let resumed = match run_with_pause(&job, midpoint).unwrap() {
            PauseOutcome::Paused(p) => p.resume(),
            PauseOutcome::Completed(_) => panic!("job must pause at its midpoint"),
        };
        assert_eq!(format!("{baseline:?}"), format!("{resumed:?}"));
    }

    #[test]
    fn tampered_digest_is_refused() {
        let job = tiny_job();
        let midpoint = total_events(&job) / 2;
        let paused = match run_with_pause(&job, midpoint).unwrap() {
            PauseOutcome::Paused(p) => p,
            PauseOutcome::Completed(_) => unreachable!(),
        };
        let mut cp = paused.checkpoint().clone();
        cp.digest ^= 1;
        match resume(&cp) {
            Err(CheckpointError::Diverged { expected, .. }) => assert_eq!(expected, cp.digest),
            other => panic!("tampered checkpoint must be refused, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_checkpoint_file_is_quarantined() {
        let dir = tmp("corrupt-dir");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mid.ckpt");
        let job = tiny_job();
        let midpoint = total_events(&job) / 2;
        let paused = match run_with_pause(&job, midpoint).unwrap() {
            PauseOutcome::Paused(p) => p,
            PauseOutcome::Completed(_) => unreachable!(),
        };
        paused.save(&path).unwrap();
        // Flip one payload byte: the container checksum must catch it.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        match resume_file(&path) {
            Err(CheckpointError::Snapshot(_)) => {}
            other => panic!("corrupt file must fail the container check, got {other:?}"),
        }
        assert!(
            !path.exists(),
            "corrupt checkpoint must be moved out of the way"
        );
        assert!(dir.join("quarantined").is_dir());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn table1_is_unsupported() {
        match run_with_pause(&Job::table1(0), 10) {
            Err(CheckpointError::Unsupported(_)) => {}
            _ => panic!("table 1 jobs must be refused"),
        }
    }

    #[test]
    fn checkpoint_round_trips_through_disk() {
        let path = tmp("codec");
        let cp = Checkpoint {
            job: tiny_job(),
            events: 12345,
            cycle: 67890,
            digest: 0xDEAD_BEEF_CAFE_F00D,
        };
        save(&path, &cp).unwrap();
        assert_eq!(load(&path).unwrap(), cp);
        let _ = std::fs::remove_file(&path);
    }
}
