//! Figures 3, 4 and 5: average time per counter update for the three
//! synthetic counter applications, across the full implementation bar
//! set, for the paper's contention and write-run sweeps.

use crate::experiments::runner::{self, Job, JobOutput, PreparedRun, SimFailure};
use crate::experiments::{BarSpec, Scale};
use dsm_sim::{Cycle, MachineConfig};
use dsm_workloads::{build_synthetic, CounterKind, SyntheticConfig};

/// The x-axis of the left-hand (no-contention) graphs: average
/// write-run lengths `a`.
pub const WRITE_RUNS: [f64; 5] = [1.0, 1.5, 2.0, 3.0, 10.0];

/// The x-axis of the right-hand (contention) graphs: contention levels
/// `c` (scaled down when the machine has fewer processors).
pub const CONTENTION: [u32; 5] = [2, 4, 8, 16, 64];

/// One measured bar.
#[derive(Debug, Clone)]
pub struct CounterPoint {
    /// The implementation measured.
    pub bar: BarSpec,
    /// Average simulated cycles per counter update.
    pub avg_cycles: f64,
    /// Total counter updates performed.
    pub updates: u64,
    /// Total elapsed cycles of the run.
    pub cycles: u64,
    /// Cycle-exact latency histogram over every operation of the run,
    /// mergeable across jobs for the `figures latency` percentile table.
    pub latency: dsm_stats::LatencyHist,
}

/// One graph of a figure: a fixed `(c, a)` point with all its bars.
#[derive(Debug, Clone)]
pub struct CounterGraph {
    /// Contention level `c`.
    pub contention: u32,
    /// Write-run length `a`.
    pub write_run: f64,
    /// The measured bars.
    pub points: Vec<CounterPoint>,
}

/// Measures one bar at one `(c, a)` point.
///
/// # Panics
///
/// Panics if the run fails to complete or the final counter value is
/// wrong (which would mean a primitive implementation lost an update).
pub fn measure_bar(
    kind: CounterKind,
    bar: &BarSpec,
    contention: u32,
    write_run: f64,
    scale: &Scale,
) -> CounterPoint {
    measure_bar_on(
        MachineConfig::with_nodes(scale.procs),
        kind,
        bar,
        contention,
        write_run,
        scale.rounds,
    )
}

/// Like [`measure_bar`], but on an explicit machine configuration —
/// used by the latency-sweep ablation to vary timing constants.
///
/// Goes through the experiment [`runner`], so repeated measurements of
/// the same point are served from the result cache.
///
/// # Panics
///
/// Panics if the run fails or the final counter value is wrong.
pub fn measure_bar_on(
    mcfg: MachineConfig,
    kind: CounterKind,
    bar: &BarSpec,
    contention: u32,
    write_run: f64,
    rounds: u64,
) -> CounterPoint {
    runner::run_one(&Job::counter(
        mcfg, kind, *bar, contention, write_run, rounds,
    ))
    .into_counter()
}

/// Builds one counter point's machine without running it. Only the
/// [`runner`] (and the checkpoint layer, through the runner) calls
/// this; everything else goes through [`measure_bar`]/[`measure_bar_on`]
/// so the cache and the per-job seed derivation stay in effect.
///
/// The finish stage reports the run's failure diagnostic (deadlock,
/// livelock, protocol error, invariant violation, cycle limit) or a
/// lost-update report if the final counter value is wrong — all
/// deterministic conditions.
pub(crate) fn prepare(
    mcfg: MachineConfig,
    kind: CounterKind,
    bar: &BarSpec,
    contention: u32,
    write_run: f64,
    rounds: u64,
) -> PreparedRun {
    let procs = mcfg.nodes;
    let contention = contention.min(procs);
    let scfg = SyntheticConfig {
        kind,
        choice: bar.prim_choice(),
        sync: bar.sync_config(),
        contention,
        write_run,
        rounds,
    };
    let (machine, layout) = build_synthetic(mcfg, &scfg);
    let updates = scfg.total_updates(procs);
    let bar = *bar;
    PreparedRun {
        label: bar.label(),
        machine,
        limit: Cycle::new(20_000_000_000),
        finish: Box::new(move |machine, report| {
            let counted = machine.read_word(layout.counter);
            if counted != updates {
                return Err(SimFailure::deterministic(format!(
                    "{}: counter lost updates ({counted} of {updates})",
                    bar.label()
                )));
            }
            Ok(JobOutput::Counter(CounterPoint {
                bar,
                avg_cycles: report.cycles.as_u64() as f64 / updates as f64,
                updates,
                cycles: report.cycles.as_u64(),
                latency: machine.stats().op_latency_hist.clone(),
            }))
        }),
    }
}

/// The `(c, a)` points of one figure at a given scale: the five
/// write-run graphs, then the deduplicated clamped contention levels.
fn figure_points(scale: &Scale) -> Vec<(u32, f64)> {
    let mut pts: Vec<(u32, f64)> = WRITE_RUNS.iter().map(|&a| (1, a)).collect();
    let mut seen = std::collections::HashSet::new();
    for &c in &CONTENTION {
        let c = c.min(scale.procs);
        if seen.insert(c) {
            pts.push((c, 1.0)); // clamped duplicates dropped at small scales
        }
    }
    pts
}

/// Regenerates one full figure (3, 4 or 5): the five no-contention
/// graphs and the five contention graphs, with `bars` in each.
///
/// All `graphs × bars` simulation points are collected into one job
/// list and fanned out across the experiment [`runner`]'s worker pool;
/// the result is identical at any worker count.
pub fn run_figure(kind: CounterKind, bars: &[BarSpec], scale: &Scale) -> Vec<CounterGraph> {
    let points = figure_points(scale);
    let jobs: Vec<Job> = points
        .iter()
        .flat_map(|&(c, a)| {
            bars.iter().map(move |b| {
                Job::counter(
                    MachineConfig::with_nodes(scale.procs),
                    kind,
                    *b,
                    c,
                    a,
                    scale.rounds,
                )
            })
        })
        .collect();
    let mut results = runner::run_all(&jobs)
        .into_iter()
        .map(JobOutput::into_counter);
    points
        .into_iter()
        .map(|(contention, write_run)| CounterGraph {
            contention,
            write_run,
            points: bars
                .iter()
                .map(|_| results.next().expect("one result per job"))
                .collect(),
        })
        .collect()
}

/// Renders a figure as an aligned text table (rows = bars, columns =
/// graphs), as the benchmark harness prints it.
pub fn render(kind: CounterKind, graphs: &[CounterGraph]) -> String {
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut header = vec![format!("{} counter", kind.label())];
    for g in graphs {
        if g.contention == 1 {
            header.push(format!("c=1 a={}", g.write_run));
        } else {
            header.push(format!("c={}", g.contention));
        }
    }
    rows.push(header);
    if let Some(first) = graphs.first() {
        for (i, p) in first.points.iter().enumerate() {
            let mut row = vec![p.bar.label()];
            for g in graphs {
                row.push(format!("{:.0}", g.points[i].avg_cycles));
            }
            rows.push(row);
        }
    }
    dsm_stats::render_table(&rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::basic_bars;
    use dsm_protocol::SyncPolicy;
    use dsm_sync::Primitive;

    fn tiny() -> Scale {
        Scale {
            procs: 8,
            rounds: 8,
            tc_size: 8,
            wires: 16,
            tasks: 16,
        }
    }

    #[test]
    fn measure_bar_reports_positive_cost() {
        let bar = BarSpec::new(SyncPolicy::Unc, Primitive::FetchPhi);
        let p = measure_bar(CounterKind::LockFree, &bar, 1, 1.0, &tiny());
        assert!(p.avg_cycles > 0.0);
        assert_eq!(p.updates, 8);
    }

    /// Paper §4.3.1: "as write-run length increases, INV increasingly
    /// outperforms UNC and UPD, because subsequent accesses in a run are
    /// all hits."
    #[test]
    fn long_write_runs_favor_inv_over_unc() {
        let inv = BarSpec::new(SyncPolicy::Inv, Primitive::FetchPhi);
        let unc = BarSpec::new(SyncPolicy::Unc, Primitive::FetchPhi);
        let scale = tiny();
        let inv10 = measure_bar(CounterKind::LockFree, &inv, 1, 10.0, &scale);
        let unc10 = measure_bar(CounterKind::LockFree, &unc, 1, 10.0, &scale);
        assert!(
            inv10.avg_cycles < unc10.avg_cycles,
            "a=10: INV ({:.0}) must beat UNC ({:.0})",
            inv10.avg_cycles,
            unc10.avg_cycles
        );
    }

    /// Paper §4.3.2: "UNC fetch_and_add yields superior performance over
    /// the other primitives and implementations, especially with
    /// contention."
    #[test]
    fn contended_lock_free_counter_favors_unc_fetch_add() {
        let unc_fap = BarSpec::new(SyncPolicy::Unc, Primitive::FetchPhi);
        let inv_fap = BarSpec::new(SyncPolicy::Inv, Primitive::FetchPhi);
        let scale = tiny();
        let unc = measure_bar(CounterKind::LockFree, &unc_fap, 8, 1.0, &scale);
        let inv = measure_bar(CounterKind::LockFree, &inv_fap, 8, 1.0, &scale);
        assert!(
            unc.avg_cycles < inv.avg_cycles,
            "c=8: UNC fetch_and_add ({:.0}) must beat INV ({:.0})",
            unc.avg_cycles,
            inv.avg_cycles
        );
    }

    #[test]
    fn run_figure_produces_all_graphs() {
        let bars = vec![BarSpec::new(SyncPolicy::Unc, Primitive::FetchPhi)];
        let graphs = run_figure(CounterKind::LockFree, &bars, &tiny());
        // 5 write-run graphs plus the deduplicated contention levels
        // {2, 4, 8} at 8 processors.
        assert_eq!(graphs.len(), WRITE_RUNS.len() + 3);
        let text = render(CounterKind::LockFree, &graphs);
        assert!(text.contains("c=1 a=1.5"));
        assert!(text.contains("UNC FAP"));
    }

    #[test]
    fn basic_bars_all_run_on_tts_counter() {
        for bar in basic_bars() {
            let p = measure_bar(CounterKind::TtsLock, &bar, 2, 1.0, &tiny());
            assert!(p.avg_cycles > 0.0, "{}", bar.label());
        }
    }

    #[test]
    fn basic_bars_all_run_on_mcs_counter() {
        for bar in basic_bars() {
            let p = measure_bar(CounterKind::McsLock, &bar, 2, 1.0, &tiny());
            assert!(p.avg_cycles > 0.0, "{}", bar.label());
        }
    }
}
