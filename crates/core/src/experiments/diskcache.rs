//! The persistent, corruption-tolerant result cache.
//!
//! With `DSM_CACHE_DIR` set (or a [`with_cache_dir`] override active),
//! the experiment [`runner`](super::runner) extends its in-memory memo
//! to a content-addressed on-disk store: every simulated job's result
//! is written to `<dir>/<job-fingerprint>-<env-fingerprint>.job` as a
//! versioned, checksummed [`dsm_sim::snapshot`] container, and later
//! processes serve the same job from disk instead of re-simulating.
//!
//! Robustness properties, in the order they matter:
//!
//! * **Atomic writes** — entries are written to a temp file and
//!   `rename`d into place ([`snapshot::write_atomic`]), so a killed
//!   writer leaves either no entry or a whole entry, never a torn one
//!   under the final name.
//! * **Corruption tolerance** — a torn, bit-flipped, version-skewed or
//!   otherwise unreadable entry is *quarantined* (moved into a
//!   `quarantined/` subdirectory for diagnosis) and the job is simply
//!   re-simulated; corruption is never a panic and never poisons a
//!   result.
//! * **Collision safety** — the payload stores the full canonical job
//!   encoding (including the machine's fault configuration, which the
//!   seed fingerprint deliberately omits); a fingerprint collision
//!   decodes to a different job and reads as a miss, not a wrong
//!   result.
//! * **Environment binding** — `DSM_FAULTS` and `DSM_PARANOID` change
//!   machine behaviour without entering the job key, so the file name
//!   carries a fingerprint of both; runs under different fault
//!   environments never share entries.
//! * **Failure policy** — deterministic failures (protocol errors,
//!   invariant violations, lost updates) persist like successes: they
//!   are a property of the job key and re-simulating them wastes time.
//!   Transient failures (wall-clock budget) are never written.
//!
//! Table 1 rows are never persisted: their directed micro-machines
//! regenerate in microseconds and their labels are static strings.

use crate::experiments::apps::{App, AppRun};
use crate::experiments::counters::CounterPoint;
use crate::experiments::lockfree::LockfreePoint;
use crate::experiments::runner::{
    Job, JobError, JobOutput, JobResult, DISK_HITS, DISK_QUARANTINED, DISK_STORES,
};
use crate::experiments::{BarSpec, CounterKind, Scale};
use dsm_protocol::{CasVariant, LlscScheme, SyncPolicy};
use dsm_sim::snapshot::{self, ByteReader, ByteWriter, PayloadKind, SnapshotError};
use dsm_sim::{FaultConfig, MachineConfig, ProtoVariant, StableHasher};
use dsm_stats::{Histogram, LatencyHist};
use dsm_sync::{LinkPrim, Primitive};
use dsm_workloads::LfStructure;
use std::cell::RefCell;
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;

thread_local! {
    /// `None` = no override (use the environment); `Some(None)` =
    /// override to disabled; `Some(Some(dir))` = override to `dir`.
    static DIR_OVERRIDE: RefCell<Option<Option<PathBuf>>> = const { RefCell::new(None) };
}

/// Runs `f` with the persistent cache directory pinned on this thread —
/// `Some(dir)` to point it at `dir`, `None` to disable it regardless of
/// `DSM_CACHE_DIR` — restoring the previous setting afterwards (also on
/// panic). This is how tests exercise the store against a scratch
/// directory without touching the process environment.
pub fn with_cache_dir<R>(dir: Option<&Path>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Option<PathBuf>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            DIR_OVERRIDE.with(|c| *c.borrow_mut() = self.0.take());
        }
    }
    let over = Some(dir.map(Path::to_path_buf));
    let _restore = Restore(DIR_OVERRIDE.with(|c| std::mem::replace(&mut *c.borrow_mut(), over)));
    f()
}

/// The active cache directory: the [`with_cache_dir`] override if set,
/// else `DSM_CACHE_DIR` from the environment; `None` disables the
/// store entirely (the runner then behaves exactly as before it
/// existed).
pub fn dir() -> Option<PathBuf> {
    if let Some(over) = DIR_OVERRIDE.with(|c| c.borrow().clone()) {
        return over;
    }
    std::env::var_os("DSM_CACHE_DIR")
        .filter(|v| !v.is_empty())
        .map(PathBuf::from)
}

/// Fingerprint of the ambient environment that changes machine
/// behaviour without entering the job key: `DSM_FAULTS` (applied at
/// machine build time) and `DSM_PARANOID`.
fn env_fingerprint() -> u32 {
    let mut h = StableHasher::new();
    h.write_str(&std::env::var("DSM_FAULTS").unwrap_or_default());
    h.write_u8(u8::from(
        std::env::var("DSM_PARANOID").is_ok_and(|v| v == "1"),
    ));
    (h.finish() & 0xFFFF_FFFF) as u32
}

/// The entry file name for a canonically encoded job: a 64-bit content
/// fingerprint of the encoding plus the 32-bit environment fingerprint.
fn file_name(job_bytes: &[u8]) -> String {
    let mut h = StableHasher::new();
    h.write_str("dsm-cache-entry");
    h.write_bytes(job_bytes);
    format!("{:016x}-{:08x}.job", h.finish(), env_fingerprint())
}

/// Looks a job up in the persistent store.
///
/// Returns `None` on every miss-like condition: store disabled, a
/// Table 1 job, no entry on disk, a fingerprint collision with a
/// different job, or a corrupt entry (which is quarantined first). The
/// runner re-simulates in all of these cases — corruption can cost
/// time, never correctness.
pub(crate) fn load(job: &Job) -> Option<JobResult> {
    if matches!(job, Job::Table1 { .. }) {
        return None;
    }
    let dir = dir()?;
    let job_bytes = encode_job(job);
    let path = dir.join(file_name(&job_bytes));
    let bytes = match snapshot::read(&path, PayloadKind::CacheEntry) {
        Ok(b) => b,
        Err(SnapshotError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => return None,
        Err(e) => return quarantine_corrupt(&path, &e),
    };
    match decode_entry(&bytes, job) {
        Ok(Some(result)) => {
            DISK_HITS.fetch_add(1, Ordering::Relaxed);
            Some(result)
        }
        Ok(None) => None, // a different job's entry (fingerprint collision)
        Err(e) => quarantine_corrupt(&path, &e),
    }
}

/// Persists one job's result, if it is persistable: the store must be
/// enabled, the job must not be Table 1, and the result must not be a
/// transient failure. Persistence is best-effort — an I/O error is
/// reported to stderr and the run continues; the entry is simply
/// re-simulated by the next process.
pub(crate) fn store(job: &Job, result: &JobResult) {
    if matches!(job, Job::Table1 { .. }) {
        return;
    }
    if let Err(e) = result {
        if e.transient {
            return;
        }
    }
    let Some(dir) = dir() else { return };
    let job_bytes = encode_job(job);
    let path = dir.join(file_name(&job_bytes));
    let payload = encode_entry(&job_bytes, result);
    match snapshot::write_atomic(&path, PayloadKind::CacheEntry, &payload) {
        Ok(()) => {
            DISK_STORES.fetch_add(1, Ordering::Relaxed);
        }
        Err(e) => eprintln!(
            "dsm-runner: could not persist cache entry {}: {e}",
            path.display()
        ),
    }
}

/// Quarantines a corrupt entry and reports it; always returns `None`
/// (the caller treats the lookup as a miss and re-simulates).
fn quarantine_corrupt(path: &Path, why: &SnapshotError) -> Option<JobResult> {
    DISK_QUARANTINED.fetch_add(1, Ordering::Relaxed);
    match snapshot::quarantine(path) {
        Ok(dest) => eprintln!(
            "dsm-runner: quarantined corrupt cache entry {} -> {} ({why}); re-simulating",
            path.display(),
            dest.display()
        ),
        Err(e) => eprintln!(
            "dsm-runner: corrupt cache entry {} ({why}); quarantine failed: {e}; re-simulating",
            path.display()
        ),
    }
    None
}

// ---------------------------------------------------------------------
// Canonical byte encodings.
//
// Enum tags deliberately mirror the StableHasher fingerprint tags in
// the runner, so the two canonical forms of a job can be audited side
// by side. All integers are little-endian via ByteWriter/ByteReader;
// layout changes require a FORMAT_VERSION bump in dsm_sim::snapshot.
// ---------------------------------------------------------------------

fn put_policy(w: &mut ByteWriter, p: SyncPolicy) {
    w.put_u8(match p {
        SyncPolicy::Inv => 0,
        SyncPolicy::Upd => 1,
        SyncPolicy::Unc => 2,
    });
}

fn take_policy(r: &mut ByteReader<'_>) -> Result<SyncPolicy, SnapshotError> {
    Ok(match r.take_u8()? {
        0 => SyncPolicy::Inv,
        1 => SyncPolicy::Upd,
        2 => SyncPolicy::Unc,
        t => return Err(bad_tag("sync policy", t)),
    })
}

fn bad_tag(what: &str, tag: u8) -> SnapshotError {
    SnapshotError::Malformed(format!("unknown {what} tag {tag}"))
}

fn put_bar(w: &mut ByteWriter, b: &BarSpec) {
    put_policy(w, b.policy);
    w.put_u8(match b.prim {
        Primitive::FetchPhi => 0,
        Primitive::Llsc => 1,
        Primitive::Cas => 2,
    });
    w.put_u8(match b.cas_variant {
        CasVariant::Plain => 0,
        CasVariant::Deny => 1,
        CasVariant::Share => 2,
    });
    w.put_bool(b.load_exclusive);
    w.put_bool(b.drop_copy);
    match b.llsc {
        LlscScheme::BitVector => w.put_u8(0),
        LlscScheme::LinkedList => w.put_u8(1),
        LlscScheme::Limited(k) => {
            w.put_u8(2);
            w.put_u8(k);
        }
        LlscScheme::SerialNumber => w.put_u8(3),
    }
    w.put_bool(b.home_atomics);
}

fn take_bar(r: &mut ByteReader<'_>) -> Result<BarSpec, SnapshotError> {
    let policy = take_policy(r)?;
    let prim = match r.take_u8()? {
        0 => Primitive::FetchPhi,
        1 => Primitive::Llsc,
        2 => Primitive::Cas,
        t => return Err(bad_tag("primitive", t)),
    };
    let cas_variant = match r.take_u8()? {
        0 => CasVariant::Plain,
        1 => CasVariant::Deny,
        2 => CasVariant::Share,
        t => return Err(bad_tag("cas variant", t)),
    };
    let load_exclusive = r.take_bool()?;
    let drop_copy = r.take_bool()?;
    let llsc = match r.take_u8()? {
        0 => LlscScheme::BitVector,
        1 => LlscScheme::LinkedList,
        2 => LlscScheme::Limited(r.take_u8()?),
        3 => LlscScheme::SerialNumber,
        t => return Err(bad_tag("llsc scheme", t)),
    };
    Ok(BarSpec {
        policy,
        prim,
        cas_variant,
        load_exclusive,
        drop_copy,
        llsc,
        home_atomics: r.take_bool()?,
    })
}

fn put_mcfg(w: &mut ByteWriter, m: &MachineConfig) {
    w.put_u32(m.nodes);
    w.put_u32(m.mesh_width);
    let p = &m.params;
    for v in [
        p.line_size,
        p.cache_hit,
        p.cache_ctrl,
        p.mem_access,
        p.dir_access,
        p.hop_delay,
        p.flit_bytes,
        p.flit_cycle,
        p.header_flits,
        p.issue,
        p.cluster_penalty,
    ] {
        w.put_u64(v);
    }
    w.put_u8(match m.proto {
        ProtoVariant::Dash => 0,
        ProtoVariant::MesiF => 1,
        ProtoVariant::Hier => 2,
    });
    w.put_u32(m.clusters);
    w.put_u64(m.cache.sets as u64);
    w.put_u64(m.cache.ways as u64);
    w.put_u64(m.seed);
    // The fault config is spelled out even though the seed fingerprint
    // omits it: two jobs differing only in faults must never be
    // mistaken for each other on disk. `paranoid` travels separately —
    // the spec grammar does not carry it.
    w.put_str(&m.faults.to_spec());
    w.put_bool(m.faults.paranoid);
}

fn take_mcfg(r: &mut ByteReader<'_>) -> Result<MachineConfig, SnapshotError> {
    let nodes = r.take_u32()?;
    let mut m = MachineConfig::with_nodes(nodes);
    m.mesh_width = r.take_u32()?;
    m.params.line_size = r.take_u64()?;
    m.params.cache_hit = r.take_u64()?;
    m.params.cache_ctrl = r.take_u64()?;
    m.params.mem_access = r.take_u64()?;
    m.params.dir_access = r.take_u64()?;
    m.params.hop_delay = r.take_u64()?;
    m.params.flit_bytes = r.take_u64()?;
    m.params.flit_cycle = r.take_u64()?;
    m.params.header_flits = r.take_u64()?;
    m.params.issue = r.take_u64()?;
    m.params.cluster_penalty = r.take_u64()?;
    m.proto = match r.take_u8()? {
        0 => ProtoVariant::Dash,
        1 => ProtoVariant::MesiF,
        2 => ProtoVariant::Hier,
        t => return Err(bad_tag("proto variant", t)),
    };
    m.clusters = r.take_u32()?;
    m.cache.sets = r.take_u64()? as usize;
    m.cache.ways = r.take_u64()? as usize;
    m.seed = r.take_u64()?;
    let spec = r.take_str()?;
    m.faults = FaultConfig::from_spec(&spec)
        .map_err(|e| SnapshotError::Malformed(format!("fault spec: {e}")))?;
    m.faults.paranoid = r.take_bool()?;
    Ok(m)
}

fn put_scale(w: &mut ByteWriter, s: &Scale) {
    w.put_u32(s.procs);
    w.put_u64(s.rounds);
    w.put_u64(s.tc_size);
    w.put_u64(s.wires);
    w.put_u64(s.tasks);
}

fn take_scale(r: &mut ByteReader<'_>) -> Result<Scale, SnapshotError> {
    Ok(Scale {
        procs: r.take_u32()?,
        rounds: r.take_u64()?,
        tc_size: r.take_u64()?,
        wires: r.take_u64()?,
        tasks: r.take_u64()?,
    })
}

fn put_app(w: &mut ByteWriter, a: App) {
    w.put_u8(match a {
        App::WireRoute => 0,
        App::Cholesky => 1,
        App::TransitiveClosure => 2,
    });
}

fn take_app(r: &mut ByteReader<'_>) -> Result<App, SnapshotError> {
    Ok(match r.take_u8()? {
        0 => App::WireRoute,
        1 => App::Cholesky,
        2 => App::TransitiveClosure,
        t => return Err(bad_tag("app", t)),
    })
}

/// Encodes a job in its canonical on-disk form (every field, including
/// the machine's fault configuration). Also the input of the entry
/// file-name fingerprint.
pub(crate) fn encode_job(job: &Job) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match job {
        Job::Counter {
            mcfg,
            kind,
            bar,
            contention,
            write_run_bits,
            rounds,
        } => {
            w.put_u8(0);
            put_mcfg(&mut w, mcfg);
            w.put_u8(match kind {
                CounterKind::LockFree => 0,
                CounterKind::TtsLock => 1,
                CounterKind::McsLock => 2,
            });
            put_bar(&mut w, bar);
            w.put_u32(*contention);
            w.put_u64(*write_run_bits);
            w.put_u64(*rounds);
        }
        Job::App { app, bar, scale } => {
            w.put_u8(1);
            put_app(&mut w, *app);
            put_bar(&mut w, bar);
            put_scale(&mut w, scale);
        }
        Job::Table1 { scenario } => {
            w.put_u8(2);
            w.put_u64(*scenario as u64);
        }
        Job::Lockfree {
            mcfg,
            structure,
            prim,
            policy,
            ops_per_proc,
            key_space,
            buckets,
        } => {
            w.put_u8(3);
            put_mcfg(&mut w, mcfg);
            w.put_u8(match structure {
                LfStructure::Queue => 0,
                LfStructure::List => 1,
                LfStructure::Map => 2,
            });
            w.put_u8(match prim {
                LinkPrim::Llsc => 0,
                LinkPrim::EmulLlsc => 1,
                LinkPrim::CasPlain => 2,
            });
            put_policy(&mut w, *policy);
            w.put_u32(*ops_per_proc);
            w.put_u64(*key_space);
            w.put_u32(*buckets);
        }
    }
    w.into_bytes()
}

/// Decodes a canonical job encoding (the exact inverse of
/// [`encode_job`]).
pub(crate) fn decode_job(bytes: &[u8]) -> Result<Job, SnapshotError> {
    let mut r = ByteReader::new(bytes);
    let job = match r.take_u8()? {
        0 => {
            let mcfg = take_mcfg(&mut r)?;
            let kind = match r.take_u8()? {
                0 => CounterKind::LockFree,
                1 => CounterKind::TtsLock,
                2 => CounterKind::McsLock,
                t => return Err(bad_tag("counter kind", t)),
            };
            let bar = take_bar(&mut r)?;
            Job::Counter {
                mcfg,
                kind,
                bar,
                contention: r.take_u32()?,
                write_run_bits: r.take_u64()?,
                rounds: r.take_u64()?,
            }
        }
        1 => Job::App {
            app: take_app(&mut r)?,
            bar: take_bar(&mut r)?,
            scale: take_scale(&mut r)?,
        },
        2 => Job::Table1 {
            scenario: r.take_u64()? as usize,
        },
        3 => {
            let mcfg = take_mcfg(&mut r)?;
            let structure = match r.take_u8()? {
                0 => LfStructure::Queue,
                1 => LfStructure::List,
                2 => LfStructure::Map,
                t => return Err(bad_tag("structure", t)),
            };
            let prim = match r.take_u8()? {
                0 => LinkPrim::Llsc,
                1 => LinkPrim::EmulLlsc,
                2 => LinkPrim::CasPlain,
                t => return Err(bad_tag("link primitive", t)),
            };
            Job::Lockfree {
                mcfg,
                structure,
                prim,
                policy: take_policy(&mut r)?,
                ops_per_proc: r.take_u32()?,
                key_space: r.take_u64()?,
                buckets: r.take_u32()?,
            }
        }
        t => return Err(bad_tag("job", t)),
    };
    r.finish()?;
    Ok(job)
}

fn put_histogram(w: &mut ByteWriter, h: &Histogram) {
    let pairs: Vec<(usize, u64)> = h.iter().collect();
    w.put_u64(pairs.len() as u64);
    for (value, count) in pairs {
        w.put_u64(value as u64);
        w.put_u64(count);
    }
}

fn take_histogram(r: &mut ByteReader<'_>) -> Result<Histogram, SnapshotError> {
    let n = r.take_u64()?;
    let mut h = Histogram::new();
    for _ in 0..n {
        let value = r.take_u64()? as usize;
        let count = r.take_u64()?;
        h.record_n(value, count);
    }
    Ok(h)
}

fn put_output(w: &mut ByteWriter, out: &JobOutput) {
    match out {
        JobOutput::Counter(p) => {
            w.put_u8(0);
            put_bar(w, &p.bar);
            w.put_f64(p.avg_cycles);
            w.put_u64(p.updates);
            w.put_u64(p.cycles);
            p.latency.encode_into(w);
        }
        JobOutput::App(a) => {
            w.put_u8(1);
            put_app(w, a.app);
            put_bar(w, &a.bar);
            w.put_u64(a.cycles);
            put_histogram(w, &a.contention);
            w.put_f64(a.write_run);
            a.latency.encode_into(w);
        }
        // Guarded by the Table 1 gate in store(): rows hold static
        // label strings and are regenerated, never persisted.
        JobOutput::Table1(_) => unreachable!("table-1 results are never persisted"),
        JobOutput::Lockfree(p) => {
            w.put_u8(3);
            w.put_u8(match p.structure {
                LfStructure::Queue => 0,
                LfStructure::List => 1,
                LfStructure::Map => 2,
            });
            w.put_u8(match p.prim {
                LinkPrim::Llsc => 0,
                LinkPrim::EmulLlsc => 1,
                LinkPrim::CasPlain => 2,
            });
            put_policy(w, p.policy);
            w.put_u64(p.ops);
            w.put_u64(p.cycles);
            w.put_f64(p.avg_cycles);
            p.latency.encode_into(w);
        }
    }
}

fn take_output(r: &mut ByteReader<'_>) -> Result<JobOutput, SnapshotError> {
    Ok(match r.take_u8()? {
        0 => JobOutput::Counter(CounterPoint {
            bar: take_bar(r)?,
            avg_cycles: r.take_f64()?,
            updates: r.take_u64()?,
            cycles: r.take_u64()?,
            latency: LatencyHist::decode_from(r)?,
        }),
        1 => JobOutput::App(AppRun {
            app: take_app(r)?,
            bar: take_bar(r)?,
            cycles: r.take_u64()?,
            contention: take_histogram(r)?,
            write_run: r.take_f64()?,
            latency: LatencyHist::decode_from(r)?,
        }),
        3 => {
            let structure = match r.take_u8()? {
                0 => LfStructure::Queue,
                1 => LfStructure::List,
                2 => LfStructure::Map,
                t => return Err(bad_tag("structure", t)),
            };
            let prim = match r.take_u8()? {
                0 => LinkPrim::Llsc,
                1 => LinkPrim::EmulLlsc,
                2 => LinkPrim::CasPlain,
                t => return Err(bad_tag("link primitive", t)),
            };
            JobOutput::Lockfree(LockfreePoint {
                structure,
                prim,
                policy: take_policy(r)?,
                ops: r.take_u64()?,
                cycles: r.take_u64()?,
                avg_cycles: r.take_f64()?,
                latency: LatencyHist::decode_from(r)?,
            })
        }
        t => return Err(bad_tag("job output", t)),
    })
}

/// Encodes one entry payload: the canonical job encoding (for collision
/// detection on load) followed by the result.
fn encode_entry(job_bytes: &[u8], result: &JobResult) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_bytes(job_bytes);
    match result {
        Ok(out) => {
            w.put_u8(0);
            put_output(&mut w, out);
        }
        Err(e) => {
            w.put_u8(1);
            w.put_str(&e.job);
            w.put_str(&e.message);
        }
    }
    w.into_bytes()
}

/// Decodes one entry payload. `Ok(None)` means the entry belongs to a
/// *different* job (a file-name fingerprint collision) — a cache miss,
/// not corruption.
fn decode_entry(bytes: &[u8], want: &Job) -> Result<Option<JobResult>, SnapshotError> {
    let mut r = ByteReader::new(bytes);
    let job_bytes = r.take_bytes()?;
    let stored = decode_job(&job_bytes)?;
    if stored != *want {
        return Ok(None);
    }
    let result = match r.take_u8()? {
        0 => Ok(take_output(&mut r)?),
        1 => Err(JobError {
            job: r.take_str()?,
            message: r.take_str()?,
            // Transient failures are never persisted, so whatever is on
            // disk is deterministic by construction.
            transient: false,
        }),
        t => return Err(bad_tag("result", t)),
    };
    r.finish()?;
    Ok(Some(result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_protocol::SyncPolicy;
    use dsm_sync::Primitive;

    fn counter_job(faulty: bool) -> Job {
        let mut mcfg = MachineConfig::with_nodes(4);
        if faulty {
            mcfg.faults = FaultConfig::light();
        }
        Job::counter(
            mcfg,
            CounterKind::LockFree,
            BarSpec::new(SyncPolicy::Unc, Primitive::FetchPhi),
            2,
            1.5,
            4,
        )
    }

    fn lockfree_job() -> Job {
        Job::lockfree(
            MachineConfig::with_nodes(4),
            LfStructure::Map,
            LinkPrim::EmulLlsc,
            SyncPolicy::Upd,
            4,
            16,
            4,
        )
    }

    fn app_job() -> Job {
        Job::app(
            App::TransitiveClosure,
            BarSpec::new(SyncPolicy::Inv, Primitive::Cas),
            Scale::quick(),
        )
    }

    #[test]
    fn job_encoding_round_trips_every_variant() {
        for job in [
            counter_job(false),
            counter_job(true),
            app_job(),
            Job::table1(3),
            lockfree_job(),
        ] {
            let bytes = encode_job(&job);
            assert_eq!(decode_job(&bytes).unwrap(), job, "{job:?}");
        }
    }

    #[test]
    fn fault_config_distinguishes_entries() {
        // The seed fingerprint deliberately omits faults; the disk
        // encoding (and therefore the file name) must not.
        let plain = counter_job(false);
        let faulty = counter_job(true);
        assert_eq!(plain.seed(), faulty.seed());
        assert_ne!(encode_job(&plain), encode_job(&faulty));
        assert_ne!(
            file_name(&encode_job(&plain)),
            file_name(&encode_job(&faulty))
        );
    }

    #[test]
    fn entry_decode_rejects_collisions_as_miss() {
        let stored_for = counter_job(false);
        let bytes = encode_entry(
            &encode_job(&stored_for),
            &Err(JobError {
                job: "x".into(),
                message: "deterministic failure".into(),
                transient: false,
            }),
        );
        // Same entry asked for by a different job: miss, not corruption.
        assert!(decode_entry(&bytes, &lockfree_job()).unwrap().is_none());
        // Asked for by the right job: the stored failure comes back.
        let back = decode_entry(&bytes, &stored_for).unwrap().unwrap();
        assert_eq!(back.unwrap_err().message, "deterministic failure");
    }

    #[test]
    fn histogram_round_trips_through_entry() {
        let mut contention = Histogram::new();
        contention.record_n(1, 40);
        contention.record_n(3, 7);
        contention.record_n(9, 1);
        let mut latency = LatencyHist::new();
        for v in [3, 90, 90, 4096, u64::MAX] {
            latency.record(v);
        }
        let job = app_job();
        let out = JobOutput::App(AppRun {
            app: App::TransitiveClosure,
            bar: BarSpec::new(SyncPolicy::Inv, Primitive::Cas),
            cycles: 123_456,
            contention: contention.clone(),
            write_run: 1.25,
            latency: latency.clone(),
        });
        let bytes = encode_entry(&encode_job(&job), &Ok(out));
        let back = decode_entry(&bytes, &job).unwrap().unwrap().unwrap();
        let JobOutput::App(a) = back else {
            panic!("expected app output");
        };
        assert_eq!(
            a.contention.iter().collect::<Vec<_>>(),
            contention.iter().collect::<Vec<_>>()
        );
        assert_eq!(a.cycles, 123_456);
        assert_eq!(a.write_run.to_bits(), 1.25f64.to_bits());
        assert_eq!(a.latency, latency);
    }

    #[test]
    fn store_and_load_round_trip_on_disk() {
        let dir = std::env::temp_dir().join(format!("dsm-diskcache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        with_cache_dir(Some(&dir), || {
            let job = counter_job(false);
            assert!(load(&job).is_none(), "cold store must miss");
            let mut latency = LatencyHist::new();
            latency.record_n(41, 16);
            let out = Ok(JobOutput::Counter(CounterPoint {
                bar: BarSpec::new(SyncPolicy::Unc, Primitive::FetchPhi),
                avg_cycles: 41.5,
                updates: 16,
                cycles: 664,
                latency,
            }));
            store(&job, &out);
            let back = load(&job).expect("warm store must hit");
            let p = back.unwrap().into_counter();
            assert_eq!(p.cycles, 664);
            assert_eq!(p.avg_cycles.to_bits(), 41.5f64.to_bits());
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_failures_and_table1_are_never_persisted() {
        let dir = std::env::temp_dir().join(format!("dsm-diskcache-tr-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        with_cache_dir(Some(&dir), || {
            store(
                &counter_job(false),
                &Err(JobError {
                    job: "j".into(),
                    message: "wall-clock budget exhausted".into(),
                    transient: true,
                }),
            );
            store(
                &Job::table1(0),
                &Ok(JobOutput::Table1(crate::experiments::table1::run_scenario(
                    0,
                ))),
            );
            assert!(
                !dir.exists() || std::fs::read_dir(&dir).unwrap().next().is_none(),
                "nothing may be written for transient failures or table-1 rows"
            );
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_is_quarantined_and_reads_as_miss() {
        let dir = std::env::temp_dir().join(format!("dsm-diskcache-q-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        with_cache_dir(Some(&dir), || {
            let job = counter_job(false);
            let out = Ok(JobOutput::Counter(CounterPoint {
                bar: BarSpec::new(SyncPolicy::Unc, Primitive::FetchPhi),
                avg_cycles: 1.0,
                updates: 1,
                cycles: 1,
                latency: LatencyHist::new(),
            }));
            store(&job, &out);
            let path = dir.join(file_name(&encode_job(&job)));
            // Flip one payload bit on disk.
            let mut bytes = std::fs::read(&path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x10;
            std::fs::write(&path, &bytes).unwrap();
            assert!(load(&job).is_none(), "corrupt entry must read as a miss");
            assert!(!path.exists(), "corrupt entry must be moved away");
            assert!(
                dir.join("quarantined").exists(),
                "corrupt entry must be quarantined for diagnosis"
            );
            // The job can be stored and served again afterwards.
            store(&job, &out);
            assert!(load(&job).is_some());
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
}
