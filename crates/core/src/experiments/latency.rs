//! `figures latency`: cycle-exact operation-latency percentile tables.
//!
//! Every experiment job already records a [`LatencyHist`] over the
//! latency of each completed operation (see
//! `dsm_machine::MachineStats::op_latency_hist`). This module merges
//! those histograms per workload × implementation and renders one
//! percentile table: p50/p90/p99/p99.9/max/mean cycles per operation.
//!
//! The counter workload is measured across every contention level of
//! the Figure 3 sweep with one merged histogram per implementation;
//! the applications reuse the Figure 2 runs (FAΦ under each coherence
//! policy). Everything goes through the experiment [`runner`], so
//! repeated requests are served from the result cache and the table is
//! byte-identical at any worker count.
//!
//! Like `lockfree`, this artifact is deliberately *not* part of
//! `figures all`: the committed paper artifacts predate it and must
//! stay byte-identical. Request it by name.
//!
//! [`runner`]: crate::experiments::runner

use crate::experiments::{apps, basic_bars, counters, CounterKind, Scale};
use dsm_stats::LatencyHist;

/// One row of the latency table: a workload × implementation cell and
/// its merged operation-latency histogram.
#[derive(Debug, Clone)]
pub struct LatencyRow {
    /// Row label, e.g. `counter [INV CAS]` or `Transitive Closure [UPD]`.
    pub workload: String,
    /// Merged cycle-exact latency histogram for every operation the
    /// cell's run(s) completed.
    pub hist: LatencyHist,
}

/// Builds the full table: the lock-free counter under each basic
/// implementation (merged across the contention sweep), then the three
/// applications under each coherence policy.
pub fn run(scale: &Scale) -> Vec<LatencyRow> {
    let bars = basic_bars();
    let mut rows = Vec::new();
    let graphs = counters::run_figure(CounterKind::LockFree, &bars, scale);
    let mut merged: Vec<LatencyHist> = vec![LatencyHist::new(); bars.len()];
    for g in &graphs {
        for (i, p) in g.points.iter().enumerate() {
            merged[i].merge(&p.latency);
        }
    }
    for (bar, hist) in bars.iter().zip(merged) {
        rows.push(LatencyRow {
            workload: format!("counter [{}]", bar.label()),
            hist,
        });
    }
    for r in apps::fig2(scale) {
        rows.push(LatencyRow {
            workload: format!("{} [{}]", r.app.label(), r.bar.policy.label()),
            hist: r.latency,
        });
    }
    rows
}

/// The table rows (header first), CSV-shaped.
pub fn csv_rows(rows: &[LatencyRow]) -> Vec<Vec<String>> {
    let mut out = vec![{
        let mut h = vec!["workload".to_string()];
        h.extend(LatencyHist::quantile_header());
        h
    }];
    for r in rows {
        let mut row = vec![r.workload.clone()];
        row.extend(r.hist.quantile_cells());
        out.push(row);
    }
    out
}

/// Renders the aligned text table.
pub fn render(rows: &[LatencyRow]) -> String {
    dsm_stats::render_table(&csv_rows(rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            procs: 4,
            rounds: 4,
            tc_size: 4,
            wires: 8,
            tasks: 8,
        }
    }

    #[test]
    fn table_covers_counters_and_apps_with_populated_histograms() {
        let rows = run(&tiny());
        // One counter row per basic bar, one app row per fig2 run
        // (3 apps × 3 policies).
        assert_eq!(rows.len(), basic_bars().len() + 9);
        for r in &rows {
            assert!(r.hist.total() > 0, "{}: empty histogram", r.workload);
            assert!(
                r.hist.percentile(50, 100) <= r.hist.percentile(99, 100),
                "{}: non-monotone percentiles",
                r.workload
            );
        }
        let text = render(&rows);
        assert!(text.contains("p50") && text.contains("p99.9"));
        assert!(text.contains("counter [INV CAS]"));
        assert!(text.contains("Transitive Closure [UPD]"));
    }

    #[test]
    fn table_is_deterministic() {
        assert_eq!(render(&run(&tiny())), render(&run(&tiny())));
    }
}
