//! Lock-free structure throughput tables (beyond the paper).
//!
//! Sweeps the three lock-free structures of [`dsm_sync::lockfree`] —
//! Michael–Scott queue, Harris list, fixed-bucket hash map — across
//! every link primitive (native LL/SC, the Blelloch–Wei LL/SC
//! emulation over pointer-width CAS, plain CAS) and every coherence
//! policy (INV, UPD, UNC), reporting average simulated cycles per
//! completed operation.
//!
//! Every point goes through the experiment [`runner`], so the tables
//! are byte-identical at any worker count, and every point re-checks
//! the structure invariants (value conservation, per-producer FIFO,
//! sortedness, key conservation — see
//! [`dsm_workloads::check_invariants`]) before it is reported. Full
//! linearizability checking lives in `tests/linearizability.rs`; this
//! module is the benchmark surface.

use crate::experiments::runner::{self, Job, JobOutput, PreparedRun, SimFailure};
use crate::experiments::Scale;
use dsm_protocol::{SyncConfig, SyncPolicy};
use dsm_sim::{Cycle, MachineConfig};
use dsm_sync::LinkPrim;
use dsm_workloads::{build_lockfree, check_invariants, LfConfig, LfStructure};

/// One measured cell: a structure under one primitive × policy.
#[derive(Debug, Clone)]
pub struct LockfreePoint {
    /// The structure exercised.
    pub structure: LfStructure,
    /// Link-word primitive discipline.
    pub prim: LinkPrim,
    /// Coherence policy on every structure line.
    pub policy: SyncPolicy,
    /// Completed operations (history length).
    pub ops: u64,
    /// Total elapsed cycles of the run.
    pub cycles: u64,
    /// Average cycles per completed operation.
    pub avg_cycles: f64,
    /// Cycle-exact latency histogram over every operation of the run.
    pub latency: dsm_stats::LatencyHist,
}

/// One structure's table: all primitive × policy points, primitive-major
/// in [`LinkPrim::ALL`] × [`SyncPolicy::ALL`] order.
#[derive(Debug, Clone)]
pub struct LockfreeTable {
    /// The structure the table measures.
    pub structure: LfStructure,
    /// The measured points.
    pub points: Vec<LockfreePoint>,
}

/// The workload parameters a [`Scale`] implies: operations per
/// processor, set key space, and map bucket count.
pub fn workload_params(scale: &Scale) -> (u32, u64, u32) {
    (scale.rounds.max(1) as u32, 16, 4)
}

/// Measures one point through the runner (cached per process).
///
/// # Panics
///
/// Panics if the run fails, coherence validation fails, or a structure
/// invariant is violated.
pub fn measure(
    mcfg: MachineConfig,
    structure: LfStructure,
    prim: LinkPrim,
    policy: SyncPolicy,
    ops_per_proc: u32,
    key_space: u64,
    buckets: u32,
) -> LockfreePoint {
    runner::run_one(&Job::lockfree(
        mcfg,
        structure,
        prim,
        policy,
        ops_per_proc,
        key_space,
        buckets,
    ))
    .into_lockfree()
}

/// Regenerates the full table set: one table per structure, all
/// primitive × policy cells, fanned out across the runner's pool.
pub fn run_tables(scale: &Scale) -> Vec<LockfreeTable> {
    let (ops_per_proc, key_space, buckets) = workload_params(scale);
    let jobs: Vec<Job> = LfStructure::ALL
        .into_iter()
        .flat_map(|structure| {
            LinkPrim::ALL.into_iter().flat_map(move |prim| {
                SyncPolicy::ALL.into_iter().map(move |policy| {
                    Job::lockfree(
                        MachineConfig::with_nodes(scale.procs),
                        structure,
                        prim,
                        policy,
                        ops_per_proc,
                        key_space,
                        buckets,
                    )
                })
            })
        })
        .collect();
    let mut results = runner::run_all(&jobs)
        .into_iter()
        .map(JobOutput::into_lockfree);
    LfStructure::ALL
        .into_iter()
        .map(|structure| LockfreeTable {
            structure,
            points: (0..LinkPrim::ALL.len() * SyncPolicy::ALL.len())
                .map(|_| results.next().expect("one result per job"))
                .collect(),
        })
        .collect()
}

/// Renders the tables as aligned text (rows = primitives, columns =
/// policies, cells = cycles per operation), one block per structure.
pub fn render(tables: &[LockfreeTable]) -> String {
    let mut out = String::new();
    for t in tables {
        let mut rows: Vec<Vec<String>> = Vec::new();
        let mut header = vec![format!("{} cyc/op", t.structure.label())];
        header.extend(SyncPolicy::ALL.iter().map(|p| p.label().to_string()));
        rows.push(header);
        for (i, prim) in LinkPrim::ALL.into_iter().enumerate() {
            let mut row = vec![prim.label().to_string()];
            for (j, _) in SyncPolicy::ALL.iter().enumerate() {
                let p = &t.points[i * SyncPolicy::ALL.len() + j];
                row.push(format!("{:.0}", p.avg_cycles));
            }
            rows.push(row);
        }
        out.push_str(&dsm_stats::render_table(&rows));
        out.push('\n');
    }
    out
}

/// Builds one point's machine without running it. Only the [`runner`]
/// (and the checkpoint layer, through the runner) calls this;
/// everything else goes through [`measure`]/[`run_tables`] so the
/// cache and per-job seed derivation stay in effect.
///
/// The finish stage reports the run's failure diagnostic, a
/// coherence-validation failure, or a structure-invariant violation —
/// all deterministic conditions.
#[allow(clippy::too_many_arguments)]
pub(crate) fn prepare(
    mcfg: MachineConfig,
    structure: LfStructure,
    prim: LinkPrim,
    policy: SyncPolicy,
    ops_per_proc: u32,
    key_space: u64,
    buckets: u32,
) -> PreparedRun {
    let label = format!("{} {} {}", structure.label(), prim, policy.label());
    let cfg = LfConfig {
        structure,
        prim,
        sync: SyncConfig {
            policy,
            ..Default::default()
        },
        ops_per_proc,
        key_space,
        buckets,
    };
    let (machine, run) = build_lockfree(mcfg, &cfg);
    let err_label = label.clone();
    PreparedRun {
        label,
        machine,
        limit: Cycle::new(20_000_000_000),
        finish: Box::new(move |machine, report| {
            machine
                .validate_coherence()
                .map_err(|e| SimFailure::deterministic(format!("{err_label}: coherence: {e}")))?;
            check_invariants(machine, &cfg, &run)
                .map_err(|e| SimFailure::deterministic(format!("{err_label}: invariant: {e}")))?;
            let ops = run.history.lock().unwrap().len() as u64;
            Ok(JobOutput::Lockfree(LockfreePoint {
                structure,
                prim,
                policy,
                ops,
                cycles: report.cycles.as_u64(),
                avg_cycles: report.cycles.as_u64() as f64 / ops as f64,
                latency: machine.stats().op_latency_hist.clone(),
            }))
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            procs: 4,
            rounds: 4,
            tc_size: 4,
            wires: 8,
            tasks: 8,
        }
    }

    #[test]
    fn measure_reports_positive_cost_and_full_op_count() {
        let p = measure(
            MachineConfig::with_nodes(4),
            LfStructure::Queue,
            LinkPrim::Llsc,
            SyncPolicy::Inv,
            4,
            16,
            4,
        );
        assert!(p.avg_cycles > 0.0);
        // 4 procs × (4 enqueues + 4 dequeues).
        assert_eq!(p.ops, 32);
    }

    #[test]
    fn run_tables_covers_every_cell() {
        let tables = run_tables(&tiny());
        assert_eq!(tables.len(), LfStructure::ALL.len());
        for t in &tables {
            assert_eq!(t.points.len(), LinkPrim::ALL.len() * SyncPolicy::ALL.len());
            for p in &t.points {
                assert!(
                    p.avg_cycles > 0.0,
                    "{} {} {:?}",
                    t.structure.label(),
                    p.prim,
                    p.policy
                );
            }
        }
        let text = render(&tables);
        assert!(text.contains("MS-queue cyc/op"));
        assert!(text.contains("Harris-list cyc/op"));
        assert!(text.contains("bucket-map cyc/op"));
        assert!(text.contains("EMUL"));
    }

    #[test]
    fn emulated_llsc_queue_measures_under_every_policy() {
        for policy in SyncPolicy::ALL {
            let p = measure(
                MachineConfig::with_nodes(4),
                LfStructure::Queue,
                LinkPrim::EmulLlsc,
                policy,
                4,
                16,
                4,
            );
            assert!(p.ops > 0 && p.cycles > 0, "{}", policy.label());
        }
    }
}
