//! `figures metrics`: per-node mesh and protocol metrics for the
//! applications.
//!
//! Runs each application once under the Figure 2 reference
//! implementation (FAΦ, INV) with a sink-less tracer attached — every
//! category enabled, no file output — and exports the
//! [`NodeMetrics`] the tracing layer accumulates: messages and flits
//! injected per node, home/cache service counts, transit and queue
//! statistics, retired operations, retries, and state-transition
//! counts.
//!
//! The runs are direct (not through the experiment runner's cache:
//! the cached job outputs do not carry per-node metrics) with a fixed
//! seed, so the table is a pure function of the scale — byte-identical
//! across processes and at any `--jobs` setting, which
//! `tests/latency_analysis.rs` asserts.
//!
//! Like `lockfree` and `latency`, this artifact is *not* part of
//! `figures all`; request it by name.

use crate::experiments::apps::{self, App};
use crate::experiments::{BarSpec, Scale};
use dsm_protocol::SyncPolicy;
use dsm_stats::metrics::{metrics_row, render_node_metrics, NodeMetrics};
use dsm_sync::Primitive;
use dsm_trace::{Categories, TraceSpec};

/// One application's per-node metrics.
#[derive(Debug, Clone)]
pub struct MetricsRun {
    /// The application measured.
    pub app: App,
    /// Per-node metrics, indexed by node id.
    pub metrics: Vec<NodeMetrics>,
}

/// A trace spec that attaches no sink: the tracer only accumulates
/// [`NodeMetrics`], and nothing is written to disk.
fn metrics_only_spec() -> TraceSpec {
    TraceSpec {
        perfetto: false,
        out: None,
        ring: None,
        ring_out: None,
        cats: Categories::all(),
    }
}

/// Runs every application and collects its per-node metrics.
///
/// # Panics
///
/// Panics if a run fails or produces a wrong answer — the same
/// output checks the runner applies are enforced here.
pub fn run(scale: &Scale) -> Vec<MetricsRun> {
    App::ALL
        .into_iter()
        .map(|app| {
            let bar = BarSpec::new(SyncPolicy::Inv, Primitive::FetchPhi);
            let mut prepared = apps::prepare(app, &bar, scale, 0);
            prepared.machine.attach_tracer(&metrics_only_spec());
            let report = prepared
                .machine
                .run(prepared.limit)
                .unwrap_or_else(|e| panic!("{}: {e}", prepared.label));
            let metrics = prepared
                .machine
                .tracer()
                .expect("tracer attached above")
                .metrics()
                .to_vec();
            // Run the job's own finish stage for its coherence and
            // output validation; the assembled output is discarded.
            (prepared.finish)(&mut prepared.machine, report)
                .unwrap_or_else(|e| panic!("metrics run failed validation: {e:?}"));
            MetricsRun { app, metrics }
        })
        .collect()
}

/// The CSV rows (header first): one row per `(app, node)`, plus a
/// `total` row per app, matching [`render_node_metrics`]'s columns.
pub fn csv_rows(runs: &[MetricsRun]) -> Vec<Vec<String>> {
    let mut rows = vec![vec![
        "app".to_string(),
        "node".to_string(),
        "msgs".to_string(),
        "flits".to_string(),
        "srv_home".to_string(),
        "srv_cache".to_string(),
        "transit_avg".to_string(),
        "queue_avg".to_string(),
        "queue_max".to_string(),
        "ops".to_string(),
        "retries".to_string(),
        "dir_transitions".to_string(),
        "cache_transitions".to_string(),
    ]];
    for r in runs {
        let mut total = NodeMetrics::new();
        for (i, m) in r.metrics.iter().enumerate() {
            total.merge(m);
            let mut row = vec![r.app.label().to_string()];
            row.extend(metrics_row(&i.to_string(), m));
            rows.push(row);
        }
        let mut row = vec![r.app.label().to_string()];
        row.extend(metrics_row("total", &total));
        rows.push(row);
    }
    rows
}

/// Renders one aligned metrics table per application.
pub fn render(runs: &[MetricsRun]) -> String {
    let mut out = String::new();
    for r in runs {
        out.push_str(r.app.label());
        out.push('\n');
        out.push_str(&render_node_metrics(&r.metrics));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            procs: 4,
            rounds: 4,
            tc_size: 4,
            wires: 8,
            tasks: 8,
        }
    }

    #[test]
    fn every_app_reports_active_nodes() {
        let runs = run(&tiny());
        assert_eq!(runs.len(), App::ALL.len());
        for r in &runs {
            assert_eq!(r.metrics.len(), 4);
            let total: u64 = r.metrics.iter().map(|m| m.msgs_sent).sum();
            assert!(total > 0, "{}: no messages recorded", r.app.label());
            let ops: u64 = r.metrics.iter().map(|m| m.ops_retired).sum();
            assert!(ops > 0, "{}: no ops recorded", r.app.label());
        }
        let text = render(&runs);
        assert!(text.contains("Transitive Closure"));
        assert!(text.contains("srv-home"));
        let rows = csv_rows(&runs);
        // Header + per app: 4 node rows + 1 total row.
        assert_eq!(rows.len(), 1 + App::ALL.len() * 5);
    }

    #[test]
    fn metrics_are_deterministic() {
        assert_eq!(csv_rows(&run(&tiny())), csv_rows(&run(&tiny())));
    }
}
