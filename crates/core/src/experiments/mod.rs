//! Drivers that regenerate every table and figure of the paper.
//!
//! | Paper artifact | Function |
//! |---|---|
//! | Table 1 (serialized messages per store) | [`table1::run`] |
//! | Figure 2 (contention histograms) | [`apps::fig2`] |
//! | Figure 3 (lock-free counter) | [`counters::run_figure`] with [`CounterKind::LockFree`] |
//! | Figure 4 (TTS-lock counter) | [`counters::run_figure`] with [`CounterKind::TtsLock`] |
//! | Figure 5 (MCS-lock counter) | [`counters::run_figure`] with [`CounterKind::McsLock`] |
//! | Figure 6 (application elapsed time) | [`apps::fig6`] |
//! | Scaling sweep (beyond the paper) | [`scaling::run_scaling`] |
//! | Lock-free structure tables (beyond the paper) | [`lockfree::run_tables`] |
//! | Modern-architecture ablation (beyond the paper) | [`modern::run`] |
//!
//! Absolute cycle counts depend on latency constants the paper does not
//! publish; the quantities to compare are *shapes*: which bar wins,
//! where the crossovers fall (see EXPERIMENTS.md).

pub mod apps;
pub mod checkpoint;
pub mod counters;
pub mod diskcache;
pub mod latency;
pub mod lockfree;
pub mod metrics;
pub mod modern;
pub mod repro;
pub mod runner;
pub mod scaling;
pub mod table1;

use dsm_protocol::{CasVariant, LlscScheme, SyncConfig, SyncPolicy};
use dsm_sync::{PrimChoice, Primitive};
pub use dsm_workloads::CounterKind;

/// Experiment sizing. The paper runs 64 processors; tests and CI-grade
/// benches use smaller machines with the same shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Scale {
    /// Number of processors (and nodes).
    pub procs: u32,
    /// Barrier-separated rounds per synthetic-counter run.
    pub rounds: u64,
    /// Matrix dimension for Transitive Closure.
    pub tc_size: u64,
    /// Wires for the router kernel.
    pub wires: u64,
    /// Tasks for the factorization kernel.
    pub tasks: u64,
}

impl Scale {
    /// The paper's machine: 64 processors.
    pub fn paper() -> Self {
        Scale {
            procs: 64,
            rounds: 64,
            tc_size: 32,
            wires: 256,
            tasks: 192,
        }
    }

    /// A fast configuration for tests and smoke benches.
    pub fn quick() -> Self {
        Scale {
            procs: 16,
            rounds: 16,
            tc_size: 12,
            wires: 48,
            tasks: 32,
        }
    }
}

/// One bar of a figure: a primitive implementation choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BarSpec {
    /// Coherence policy for the synchronization variable(s).
    pub policy: SyncPolicy,
    /// Primitive family.
    pub prim: Primitive,
    /// CAS implementation variant (INV policy only).
    pub cas_variant: CasVariant,
    /// Use `load_exclusive` before CAS.
    pub load_exclusive: bool,
    /// Use `drop_copy` after updates/releases.
    pub drop_copy: bool,
    /// Memory-side LL/SC reservation scheme (UNC/UPD policies).
    pub llsc: LlscScheme,
    /// Execute FAΦ/CAS in memory at the home node while keeping the
    /// line cacheable for ordinary loads (INV policy only) — the modern
    /// "remote atomics" implementation point, beyond the paper.
    pub home_atomics: bool,
}

impl BarSpec {
    /// A plain bar.
    pub fn new(policy: SyncPolicy, prim: Primitive) -> Self {
        BarSpec {
            policy,
            prim,
            cas_variant: CasVariant::Plain,
            load_exclusive: false,
            drop_copy: false,
            llsc: LlscScheme::BitVector,
            home_atomics: false,
        }
    }

    /// The figure label, e.g. `INV CAS+lx +drop`.
    pub fn label(&self) -> String {
        let mut s = format!("{} {}", self.policy.label(), self.prim.label());
        match self.cas_variant {
            CasVariant::Plain => {}
            CasVariant::Deny => s.push('d'),
            CasVariant::Share => s.push('s'),
        }
        if self.load_exclusive {
            s.push_str("+lx");
        }
        if self.drop_copy {
            s.push_str(" +drop");
        }
        match self.llsc {
            LlscScheme::BitVector => {}
            LlscScheme::LinkedList => s.push_str(" @list"),
            LlscScheme::Limited(k) => s.push_str(&format!(" @lim{k}")),
            LlscScheme::SerialNumber => s.push_str(" @serial"),
        }
        if self.home_atomics {
            s.push_str(" @home");
        }
        s
    }

    /// The per-line synchronization configuration this bar implies.
    pub fn sync_config(&self) -> SyncConfig {
        debug_assert!(
            !self.home_atomics || self.prim.supports_home_atomics(),
            "home atomics require a single-round-trip primitive"
        );
        SyncConfig {
            policy: self.policy,
            cas_variant: self.cas_variant,
            llsc: self.llsc,
            home_atomics: self.home_atomics,
        }
    }

    /// The primitive choice this bar implies.
    pub fn prim_choice(&self) -> PrimChoice {
        PrimChoice {
            prim: self.prim,
            load_exclusive: self.load_exclusive,
            drop_copy: self.drop_copy,
        }
    }
}

/// The full bar set of Figures 3–6, in the paper's order:
///
/// * UNC: FAΦ, LL/SC, CAS;
/// * INV (without, then with `drop_copy`): FAΦ, LL/SC, then the four
///   CAS bars — INV, INVd, INVs, INV+`load_exclusive`;
/// * UPD (without, then with `drop_copy`): FAΦ, LL/SC, CAS.
pub fn paper_bars() -> Vec<BarSpec> {
    let mut bars = Vec::new();
    for prim in Primitive::ALL {
        bars.push(BarSpec::new(SyncPolicy::Unc, prim));
    }
    for drop_copy in [false, true] {
        bars.push(BarSpec {
            drop_copy,
            ..BarSpec::new(SyncPolicy::Inv, Primitive::FetchPhi)
        });
        bars.push(BarSpec {
            drop_copy,
            ..BarSpec::new(SyncPolicy::Inv, Primitive::Llsc)
        });
        bars.push(BarSpec {
            drop_copy,
            ..BarSpec::new(SyncPolicy::Inv, Primitive::Cas)
        });
        bars.push(BarSpec {
            drop_copy,
            cas_variant: CasVariant::Deny,
            ..BarSpec::new(SyncPolicy::Inv, Primitive::Cas)
        });
        bars.push(BarSpec {
            drop_copy,
            cas_variant: CasVariant::Share,
            ..BarSpec::new(SyncPolicy::Inv, Primitive::Cas)
        });
        bars.push(BarSpec {
            drop_copy,
            load_exclusive: true,
            ..BarSpec::new(SyncPolicy::Inv, Primitive::Cas)
        });
    }
    for drop_copy in [false, true] {
        for prim in Primitive::ALL {
            bars.push(BarSpec {
                drop_copy,
                ..BarSpec::new(SyncPolicy::Upd, prim)
            });
        }
    }
    bars
}

/// A reduced bar set (one bar per policy × primitive) for smoke tests.
pub fn basic_bars() -> Vec<BarSpec> {
    SyncPolicy::ALL
        .into_iter()
        .flat_map(|policy| {
            Primitive::ALL
                .into_iter()
                .map(move |prim| BarSpec::new(policy, prim))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bar_set_matches_figure_structure() {
        let bars = paper_bars();
        // 3 UNC + 2×6 INV + 2×3 UPD = 21.
        assert_eq!(bars.len(), 21);
        let unc = bars.iter().filter(|b| b.policy == SyncPolicy::Unc).count();
        let inv = bars.iter().filter(|b| b.policy == SyncPolicy::Inv).count();
        let upd = bars.iter().filter(|b| b.policy == SyncPolicy::Upd).count();
        assert_eq!((unc, inv, upd), (3, 12, 6));
        // Four CAS bars per INV drop_copy subset.
        let inv_cas = bars
            .iter()
            .filter(|b| b.policy == SyncPolicy::Inv && b.prim == Primitive::Cas && !b.drop_copy)
            .count();
        assert_eq!(inv_cas, 4);
    }

    #[test]
    fn labels_are_unique() {
        let bars = paper_bars();
        let labels: std::collections::HashSet<String> = bars.iter().map(BarSpec::label).collect();
        assert_eq!(labels.len(), bars.len());
        assert!(labels.contains("INV CASd"));
        assert!(labels.contains("INV CAS+lx +drop"));
        assert!(labels.contains("UNC FAP"));
    }

    #[test]
    fn scales_are_sane() {
        let p = Scale::paper();
        assert_eq!(p.procs, 64);
        let q = Scale::quick();
        assert!(q.procs < p.procs);
    }
}
