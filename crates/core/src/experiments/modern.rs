//! The modern-architecture ablation: "Table 1 on a 2020s machine".
//!
//! The paper's conclusions were measured on a 1995-style flat DASH
//! machine. This module re-runs the paper's measurement apparatus on a
//! matrix of modern machine variants — MESI(F)-style read forwarding,
//! NUMA clustering with an inter-cluster penalty, a two-level
//! hierarchical directory, and wide (128-byte) cache lines — and adds
//! the fourth modern implementation point the paper could not have:
//! in-memory *home-node atomics* (ARM-LSE-style remote atomics, where
//! `fetch_and_Φ`/`compare_and_swap` execute at the home memory without
//! migrating the line).
//!
//! Three artifact families come out, all deterministic:
//!
//! * per-variant **serialized message chains** (Table-1-style rows) for
//!   loads and `fetch_and_add` against each interesting directory
//!   state, across the cached / uncached / home-atomic implementations;
//! * per-variant **counter sweeps** (Figure 3–5-style tables) for the
//!   four implementation points across write-run and contention levels;
//! * a **false-sharing table**: two independent counters packed into
//!   one line vs. split across lines — cache-coherent atomics pay a
//!   migration ping-pong for packing, home-node atomics do not.
//!
//! `figures modern` renders all of it; RESULTS.md is the write-up.
//! The variant matrix is deliberately *excluded* from `figures all` so
//! the committed paper goldens stay byte-identical.

use crate::experiments::counters::CounterGraph;
use crate::experiments::runner::{self, Job, JobOutput};
use crate::experiments::{BarSpec, CounterKind, Scale};
use dsm_machine::{Action, MachineBuilder, ProcCtx};
use dsm_protocol::{MemOp, PhiOp, SyncConfig, SyncPolicy};
use dsm_sim::{Addr, Cycle, MachineConfig, ProtoSpec};
use dsm_sync::Primitive;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// One machine variant of the ablation matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Variant {
    /// Short key, usable as a CSV/artifact tag.
    pub key: &'static str,
    /// Human-readable title for table headings.
    pub title: &'static str,
    /// The [`ProtoSpec`] grammar string applied to the baseline
    /// machine (empty = the paper's flat DASH machine).
    pub spec: &'static str,
}

/// The variant matrix, in presentation order. The DASH row is the
/// paper's machine and doubles as a sanity anchor: its numbers must
/// match the committed paper artifacts.
pub const VARIANTS: [Variant; 5] = [
    Variant {
        key: "dash",
        title: "DASH baseline (the paper's machine)",
        spec: "",
    },
    Variant {
        key: "mesif",
        title: "MESI(F)-style read forwarding",
        spec: "mesif",
    },
    Variant {
        key: "numa",
        title: "NUMA: 4 clusters, 32-cycle penalty",
        spec: "clusters=4,penalty=32",
    },
    Variant {
        key: "hier",
        title: "Hierarchical 2-level directory (4 clusters, 32-cycle penalty)",
        spec: "hier,clusters=4,penalty=32",
    },
    Variant {
        key: "wide",
        title: "Wide 128-byte cache lines",
        spec: "line=128",
    },
];

impl Variant {
    /// The variant's machine configuration at `nodes` processors.
    ///
    /// # Panics
    ///
    /// Panics if the static spec string is malformed (a bug in the
    /// [`VARIANTS`] table).
    pub fn machine(&self, nodes: u32) -> MachineConfig {
        let mut m = MachineConfig::with_nodes(nodes);
        if !self.spec.is_empty() {
            ProtoSpec::from_spec(self.spec)
                .expect("static variant spec parses")
                .apply(&mut m);
        }
        m
    }
}

/// The four implementation points of the modern sweep: the paper's
/// CC-cached, CC-uncached and software LL/SC, plus home-node atomics.
pub fn modern_bars() -> Vec<BarSpec> {
    vec![
        BarSpec::new(SyncPolicy::Inv, Primitive::FetchPhi),
        BarSpec::new(SyncPolicy::Unc, Primitive::FetchPhi),
        BarSpec::new(SyncPolicy::Inv, Primitive::Llsc),
        BarSpec {
            home_atomics: true,
            ..BarSpec::new(SyncPolicy::Inv, Primitive::FetchPhi)
        },
    ]
}

/// One row of a variant's serialized-message-chain table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainRow {
    /// Scenario name (operation + directory state it runs against).
    pub scenario: &'static str,
    /// Chain under the INV (cache-coherent, cached) implementation.
    pub cached: u32,
    /// Chain under the UNC (uncached) implementation.
    pub uncached: u32,
    /// Chain under INV with home-node atomics.
    pub home: u32,
}

/// One variant's full report.
#[derive(Debug, Clone)]
pub struct VariantReport {
    /// The machine variant measured.
    pub variant: Variant,
    /// The Table-1-style chain rows.
    pub chains: Vec<ChainRow>,
    /// Figure 3–5-style counter sweeps, one per counter kind.
    pub sweeps: Vec<(CounterKind, Vec<CounterGraph>)>,
}

/// One row of the false-sharing table: average cycles per update for
/// the two-counter workload, with both counters packed into one line
/// vs. split across two lines.
#[derive(Debug, Clone)]
pub struct FalseSharingRow {
    /// Implementation label.
    pub implementation: String,
    /// Average op latency in cycles, both counters in one line.
    pub same_line: f64,
    /// Average op latency in cycles, counters on separate lines.
    pub split_line: f64,
}

/// The complete modern-architecture ablation artifact.
#[derive(Debug, Clone)]
pub struct ModernReport {
    /// Per-variant chain tables and counter sweeps.
    pub variants: Vec<VariantReport>,
    /// The false-sharing table (measured on the baseline machine).
    pub false_sharing: Vec<FalseSharingRow>,
    /// Processors used for the false-sharing workload.
    pub fs_procs: u32,
}

/// The sync line every chain micro-machine measures against.
const LINE: Addr = Addr::new(0x40);

/// Chain micro-machines run on this many nodes. Eight nodes with
/// `clusters=4` gives two nodes per cluster, so node 0 shares node 1's
/// cluster and node 2 does not — which is exactly what the
/// hierarchical-directory rows need to demonstrate.
const CHAIN_NODES: u32 = 8;

/// Builds a `CHAIN_NODES`-node machine on the variant's configuration,
/// lets `prime.0` issue `prime.1`, then processor 1 issue
/// `prime_local`, then measures the serialized chain of `op` issued by
/// processor 1. Priming stages are separated by global barriers.
fn measure_chain(
    mcfg: MachineConfig,
    sync: SyncConfig,
    prime: Option<(u32, MemOp)>,
    prime_local: Option<MemOp>,
    op: MemOp,
) -> u32 {
    let chain: Arc<AtomicU32> = Arc::new(AtomicU32::new(u32::MAX));
    let mut b = MachineBuilder::new(mcfg);
    b.register_sync(LINE, sync);
    for p in 0..CHAIN_NODES {
        let chain = Arc::clone(&chain);
        let mut stage = 0u32;
        b.add_program(move |ctx: &mut ProcCtx<'_>| {
            stage += 1;
            match stage {
                1 => {
                    if let Some((by, prime_op)) = prime {
                        if p == by {
                            return Action::Op(prime_op);
                        }
                    }
                    Action::Compute(1)
                }
                2 => Action::Barrier(0),
                3 => {
                    if p == 1 {
                        if let Some(prime_op) = prime_local {
                            return Action::Op(prime_op);
                        }
                    }
                    Action::Compute(1)
                }
                4 => Action::Barrier(1),
                5 => {
                    if p == 1 {
                        Action::Op(op)
                    } else {
                        Action::Compute(1)
                    }
                }
                6 => {
                    if p == 1 {
                        chain.store(
                            ctx.last_chain.expect("measured op completed"),
                            Ordering::Relaxed,
                        );
                    }
                    Action::Done
                }
                _ => unreachable!(),
            }
        });
    }
    let mut m = b.build();
    m.run(Cycle::new(1_000_000))
        .expect("chain micro-run completes");
    let c = chain.load(Ordering::Relaxed);
    assert_ne!(c, u32::MAX, "measured op never ran");
    c
}

/// Measures one variant's chain table.
pub fn chain_table(variant: &Variant) -> Vec<ChainRow> {
    let load = MemOp::Load { addr: LINE };
    let store = MemOp::Store {
        addr: LINE,
        value: 1,
    };
    let faa = MemOp::FetchPhi {
        addr: LINE,
        op: PhiOp::Add(1),
    };
    // (scenario, remote prime (proc, op), local prime, measured op).
    // Node 0 shares node 1's NUMA cluster at `clusters=4`; node 2 does
    // not — the two "shared" load rows differ only in which one primes.
    type Scenario = (&'static str, Option<(u32, MemOp)>, Option<MemOp>, MemOp);
    let scenarios: Vec<Scenario> = vec![
        ("load, shared in cluster", Some((0, load)), None, load),
        ("load, shared out of cluster", Some((2, load)), None, load),
        ("load, remote dirty", Some((0, store)), None, load),
        ("fetch&add, uncached", None, None, faa),
        ("fetch&add, remote shared", Some((0, load)), None, faa),
        ("fetch&add, remote dirty", Some((0, store)), None, faa),
        ("fetch&add, cached local", None, Some(store), faa),
    ];
    let configs = [
        SyncConfig {
            policy: SyncPolicy::Inv,
            ..Default::default()
        },
        SyncConfig {
            policy: SyncPolicy::Unc,
            ..Default::default()
        },
        SyncConfig {
            policy: SyncPolicy::Inv,
            home_atomics: true,
            ..Default::default()
        },
    ];
    scenarios
        .into_iter()
        .map(|(scenario, prime, prime_local, op)| {
            let m =
                |sync| measure_chain(variant.machine(CHAIN_NODES), sync, prime, prime_local, op);
            ChainRow {
                scenario,
                cached: m(configs[0]),
                uncached: m(configs[1]),
                home: m(configs[2]),
            }
        })
        .collect()
}

/// The `(contention, write_run)` columns of the modern counter sweeps:
/// one write-run point (where cached implementations amortize, and
/// home-node atomics give that amortization up) and a contention ramp.
fn sweep_points(procs: u32) -> Vec<(u32, f64)> {
    let mut pts = vec![(1, 4.0)];
    let mut seen = std::collections::HashSet::new();
    for c in [2u32, 4, 16] {
        let c = c.min(procs);
        if seen.insert(c) {
            pts.push((c, 1.0));
        }
    }
    pts
}

/// Runs one variant's counter sweep for one counter kind, fanned out
/// across the experiment [`runner`].
pub fn counter_sweep(variant: &Variant, kind: CounterKind, scale: &Scale) -> Vec<CounterGraph> {
    let bars = modern_bars();
    let points = sweep_points(scale.procs);
    let jobs: Vec<Job> = points
        .iter()
        .flat_map(|&(c, a)| {
            bars.iter().map(move |b| {
                Job::counter(variant.machine(scale.procs), kind, *b, c, a, scale.rounds)
            })
        })
        .collect();
    let mut results = runner::run_all(&jobs)
        .into_iter()
        .map(JobOutput::into_counter);
    points
        .into_iter()
        .map(|(contention, write_run)| CounterGraph {
            contention,
            write_run,
            points: bars
                .iter()
                .map(|_| results.next().expect("one result per job"))
                .collect(),
        })
        .collect()
}

/// Second counter of the false-sharing pair, packed into [`LINE`]'s
/// line (8 bytes past the first counter — shares the line at every
/// supported line size).
const FS_SAME: Addr = Addr::new(0x48);
/// Second counter on its own line (512 bytes away — a different line
/// at every supported line size up to 512 bytes).
const FS_SPLIT: Addr = Addr::new(0x240);

/// Local work between consecutive counter updates in the
/// false-sharing workload. Back-to-back hammering would let the line's
/// current owner amortize each steal over a burst of local hits; the
/// classic false-sharing regime is *spaced* updates to logically
/// private data, where the rival's recall lands during the think time
/// and every packed-line access misses.
const FS_THINK: u64 = 32;

/// Runs the two-counter workload on a `procs`-node machine: processor
/// 0 privately owns the counter at [`LINE`], processor 1 privately
/// owns the counter at `other`; each performs `rounds` fetch&adds with
/// [`FS_THINK`] cycles of local work in between, no barriers. There is
/// **no true sharing** — each counter has exactly one writer — so with
/// the counters on separate lines a cache-coherent implementation
/// turns every op into a local hit, and with both packed into one line
/// it pays a full remote-recall ping-pong per op. Returns the average
/// operation latency in cycles (elapsed time per round, net of the
/// think time).
fn fs_measure(sync: SyncConfig, other: Addr, procs: u32, rounds: u64) -> f64 {
    let mut b = MachineBuilder::new(MachineConfig::with_nodes(procs));
    b.register_sync(LINE, sync);
    b.register_sync(other, sync);
    for p in 0..procs {
        let target = if p == 0 { LINE } else { other };
        let mut done_ops = 0u64;
        let mut thinking = true;
        b.add_program(move |_ctx: &mut ProcCtx<'_>| {
            if p > 1 || done_ops >= rounds {
                return Action::Done;
            }
            thinking = !thinking;
            if thinking {
                return Action::Compute(FS_THINK);
            }
            done_ops += 1;
            Action::Op(MemOp::FetchPhi {
                addr: target,
                op: PhiOp::Add(1),
            })
        });
    }
    let mut m = b.build();
    let report = m
        .run(Cycle::new(1_000_000_000))
        .expect("false-sharing micro-run completes");
    assert_eq!(m.read_word(LINE), rounds, "counter A lost updates");
    assert_eq!(m.read_word(other), rounds, "counter B lost updates");
    report.cycles.as_u64() as f64 / rounds as f64 - FS_THINK as f64
}

/// Measures the false-sharing table on the baseline machine: cached
/// INV fetch&add, uncached fetch&add, and home-node fetch&add, each
/// with the privately-owned counter pair packed into one line and
/// split across lines (see [`fs_measure`] for the workload).
pub fn false_sharing(procs: u32, rounds: u64) -> Vec<FalseSharingRow> {
    let configs = [
        (
            "INV FAP",
            SyncConfig {
                policy: SyncPolicy::Inv,
                ..Default::default()
            },
        ),
        (
            "UNC FAP",
            SyncConfig {
                policy: SyncPolicy::Unc,
                ..Default::default()
            },
        ),
        (
            "INV FAP @home",
            SyncConfig {
                policy: SyncPolicy::Inv,
                home_atomics: true,
                ..Default::default()
            },
        ),
    ];
    configs
        .into_iter()
        .map(|(label, sync)| FalseSharingRow {
            implementation: label.to_string(),
            same_line: fs_measure(sync, FS_SAME, procs, rounds),
            split_line: fs_measure(sync, FS_SPLIT, procs, rounds),
        })
        .collect()
}

/// Runs the full modern-architecture ablation at the given scale.
///
/// Chain tables and the false-sharing workload run as directed
/// micro-machines (microseconds each); counter sweeps fan out across
/// the experiment [`runner`]. The whole artifact is byte-identical
/// across `--jobs` and `DSM_WORKERS` settings.
pub fn run(scale: &Scale) -> ModernReport {
    let variants = VARIANTS
        .iter()
        .map(|v| VariantReport {
            variant: *v,
            chains: chain_table(v),
            sweeps: [
                CounterKind::LockFree,
                CounterKind::TtsLock,
                CounterKind::McsLock,
            ]
            .into_iter()
            .map(|kind| (kind, counter_sweep(v, kind, scale)))
            .collect(),
        })
        .collect();
    let fs_procs = scale.procs.min(8);
    ModernReport {
        variants,
        false_sharing: false_sharing(fs_procs, scale.rounds),
        fs_procs,
    }
}

/// Renders the whole report as the `figures modern` text artifact.
pub fn render(report: &ModernReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for vr in &report.variants {
        let _ = writeln!(
            out,
            "### {} — spec `{}`\n",
            vr.variant.title,
            if vr.variant.spec.is_empty() {
                "dash"
            } else {
                vr.variant.spec
            }
        );
        let mut rows = vec![vec![
            "serialized messages".to_string(),
            "INV cached".to_string(),
            "UNC".to_string(),
            "INV @home".to_string(),
        ]];
        for r in &vr.chains {
            rows.push(vec![
                r.scenario.to_string(),
                r.cached.to_string(),
                r.uncached.to_string(),
                r.home.to_string(),
            ]);
        }
        let _ = writeln!(out, "{}", dsm_stats::render_table(&rows));
        for (kind, graphs) in &vr.sweeps {
            let _ = writeln!(
                out,
                "{}",
                crate::experiments::counters::render(*kind, graphs)
            );
        }
    }
    let _ = writeln!(
        out,
        "### False sharing — two privately-owned counters, packed vs split lines (p={}, avg op cycles)\n",
        report.fs_procs
    );
    let mut rows = vec![vec![
        "implementation".to_string(),
        "same line".to_string(),
        "split lines".to_string(),
        "packed/split".to_string(),
    ]];
    for r in &report.false_sharing {
        rows.push(vec![
            r.implementation.clone(),
            format!("{:.0}", r.same_line),
            format!("{:.0}", r.split_line),
            format!("{:.2}", r.same_line / r.split_line),
        ]);
    }
    let _ = writeln!(out, "{}", dsm_stats::render_table(&rows));
    out
}

/// The flat CSV form of the report: `variant, table, row, column,
/// value`, in rendering order.
pub fn csv_rows(report: &ModernReport) -> Vec<Vec<String>> {
    let mut rows = vec![vec![
        "variant".to_string(),
        "table".to_string(),
        "row".to_string(),
        "column".to_string(),
        "value".to_string(),
    ]];
    for vr in &report.variants {
        let v = vr.variant.key;
        for r in &vr.chains {
            for (col, val) in [
                ("inv_cached", r.cached),
                ("unc", r.uncached),
                ("inv_home", r.home),
            ] {
                rows.push(vec![
                    v.to_string(),
                    "chains".to_string(),
                    r.scenario.to_string(),
                    col.to_string(),
                    val.to_string(),
                ]);
            }
        }
        for (kind, graphs) in &vr.sweeps {
            for g in graphs {
                let col = if g.contention == 1 {
                    format!("c=1 a={}", g.write_run)
                } else {
                    format!("c={}", g.contention)
                };
                for p in &g.points {
                    rows.push(vec![
                        v.to_string(),
                        format!("{}_counter", kind.label()),
                        p.bar.label(),
                        col.clone(),
                        format!("{:.2}", p.avg_cycles),
                    ]);
                }
            }
        }
    }
    for r in &report.false_sharing {
        for (col, val) in [("same_line", r.same_line), ("split_lines", r.split_line)] {
            rows.push(vec![
                "dash".to_string(),
                "false_sharing".to_string(),
                r.implementation.clone(),
                col.to_string(),
                format!("{val:.2}"),
            ]);
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            procs: 8,
            rounds: 8,
            tc_size: 8,
            wires: 16,
            tasks: 16,
        }
    }

    #[test]
    fn dash_chains_reproduce_the_paper_anchors() {
        let rows = chain_table(&VARIANTS[0]);
        let get = |name: &str| {
            rows.iter()
                .find(|r| r.scenario == name)
                .unwrap_or_else(|| panic!("row {name}"))
                .clone()
        };
        // The cached column reproduces Table 1's INV rows; UNC is the
        // constant 2-message column; home-node atomics never exceed
        // the cached chain and never beat UNC.
        let uncached = get("fetch&add, uncached");
        assert_eq!(
            (uncached.cached, uncached.uncached, uncached.home),
            (2, 2, 2)
        );
        let shared = get("fetch&add, remote shared");
        assert_eq!((shared.cached, shared.uncached, shared.home), (3, 2, 3));
        let dirty = get("fetch&add, remote dirty");
        assert_eq!((dirty.cached, dirty.uncached, dirty.home), (4, 2, 4));
        let local = get("fetch&add, cached local");
        assert_eq!(local.cached, 0, "local exclusive hit is free under CC");
        assert_eq!(local.uncached, 2);
        assert!(local.home >= 2, "home atomics always cross the network");
    }

    #[test]
    fn mesif_and_hier_forward_only_where_they_should() {
        let dash = chain_table(&VARIANTS[0]);
        let mesif = chain_table(&VARIANTS[1]);
        let hier = chain_table(&VARIANTS[3]);
        let find = |rows: &[ChainRow], name: &str| {
            rows.iter().find(|r| r.scenario == name).unwrap().cached
        };
        // DASH answers shared reads from memory: 2 messages. A
        // forwarding variant interposes the sharer: 3 serialized
        // messages (the modern trade: more messages, no memory access).
        assert_eq!(find(&dash, "load, shared in cluster"), 2);
        assert_eq!(find(&mesif, "load, shared in cluster"), 3);
        assert_eq!(find(&hier, "load, shared in cluster"), 3);
        // The hierarchical directory only forwards within the
        // requester's cluster; MESI(F) forwards from anywhere.
        assert_eq!(find(&dash, "load, shared out of cluster"), 2);
        assert_eq!(find(&mesif, "load, shared out of cluster"), 3);
        assert_eq!(find(&hier, "load, shared out of cluster"), 2);
    }

    #[test]
    fn false_sharing_diverges_under_cc_and_converges_under_home_atomics() {
        let rows = false_sharing(8, 16);
        let get = |label: &str| {
            rows.iter()
                .find(|r| r.implementation == label)
                .unwrap_or_else(|| panic!("row {label}"))
                .clone()
        };
        let cc = get("INV FAP");
        let hna = get("INV FAP @home");
        // Packing two privately-owned counters into one line must hurt
        // a cache-coherent implementation: split lines are all local
        // hits, the packed line ping-pongs (each steal's cost amortizes
        // over the burst the owner completes while the rival's request
        // is in flight, so the ratio is well above 1 but not the raw
        // recall/hit latency ratio)...
        assert!(
            cc.same_line > cc.split_line * 1.8,
            "CC same-line ({:.0}) must clearly exceed split-line ({:.0})",
            cc.same_line,
            cc.split_line
        );
        // ...and must not hurt home-node atomics, which never migrate
        // the line.
        let ratio = hna.same_line / hna.split_line;
        assert!(
            ratio < 1.15,
            "home-atomic same-line ({:.0}) must stay near split-line ({:.0}), ratio {ratio:.2}",
            hna.same_line,
            hna.split_line
        );
    }

    #[test]
    fn counter_sweep_runs_all_four_implementation_points() {
        let graphs = counter_sweep(&VARIANTS[0], CounterKind::LockFree, &tiny());
        assert_eq!(graphs.len(), sweep_points(8).len());
        let labels: Vec<String> = graphs[0].points.iter().map(|p| p.bar.label()).collect();
        assert_eq!(labels, ["INV FAP", "UNC FAP", "INV LLSC", "INV FAP @home"]);
        for g in &graphs {
            for p in &g.points {
                assert!(p.avg_cycles > 0.0, "{}", p.bar.label());
            }
        }
    }

    #[test]
    fn report_renders_and_serializes_every_variant() {
        // One variant's worth through the full pipeline keeps this test
        // fast; the figures binary exercises the whole matrix.
        let scale = tiny();
        let report = ModernReport {
            variants: vec![VariantReport {
                variant: VARIANTS[1],
                chains: chain_table(&VARIANTS[1]),
                sweeps: vec![(
                    CounterKind::LockFree,
                    counter_sweep(&VARIANTS[1], CounterKind::LockFree, &scale),
                )],
            }],
            false_sharing: false_sharing(4, 4),
            fs_procs: 4,
        };
        let text = render(&report);
        assert!(text.contains("MESI(F)"));
        assert!(text.contains("load, shared in cluster"));
        assert!(text.contains("False sharing"));
        let csv = csv_rows(&report);
        assert!(csv.len() > 20);
        assert!(csv.iter().skip(1).all(|r| r.len() == 5));
    }
}
