//! Minimal-reproducer extraction for fault-implicated failures.
//!
//! When a job fails deterministically under fault injection (an
//! invariant violation, a livelock, a protocol error, lost updates),
//! the interesting question is *which* injected faults mattered. The
//! fault injector draws its candidates from a private deterministic
//! stream and records the applied schedule
//! ([`dsm_machine::Machine::fault_record`]); a
//! [`dsm_sim::FaultFilter`] suppresses the application of drawn
//! candidates without perturbing the stream. That makes delta debugging
//! sound: re-running the same job with a subset filter applies exactly
//! that subset, everything else unchanged.
//!
//! [`shrink`] runs the standard ddmin algorithm over the applied
//! candidate indices, producing a [`Reproducer`]: the job key, the
//! *effective* fault configuration of the failing run, the minimal
//! allow-list, and the failure diagnostic it reproduces. Reproducers
//! persist in the snapshot container ([`PayloadKind::Reproducer`]) and
//! replay with one command:
//!
//! ```sh
//! cargo run --release -p dsm-bench --bin figures -- repro FILE
//! ```
//!
//! The experiment [`runner`] emits these artifacts automatically for
//! every deterministic failure when a reproducer directory is
//! configured (`DSM_REPRO_DIR`, or [`with_repro_dir`] in tests),
//! together with a plain-text dump of the failure diagnostic, the
//! applied fault schedule and the machine's final state digest. The
//! failing job's error message references both files.

use crate::experiments::diskcache;
use crate::experiments::runner::{self, Job, JobOutput, SimFailure};
use dsm_machine::Machine;
use dsm_sim::snapshot::{self, ByteReader, ByteWriter, PayloadKind, SnapshotError};
use dsm_sim::{FaultConfig, FaultFilter, FaultRecord};
use std::cell::RefCell;
use std::path::{Path, PathBuf};

/// A minimal reproducer: everything needed to replay one deterministic
/// failure, self-contained (no environment required).
#[derive(Debug, Clone, PartialEq)]
pub struct Reproducer {
    /// The failing job.
    pub job: Job,
    /// The effective fault configuration of the original run (explicit,
    /// environment or override — captured so replay pins it exactly).
    pub faults: FaultConfig,
    /// The minimal fault allow-list as half-open candidate-index
    /// ranges; `None` means no filter (the failure does not shrink,
    /// e.g. the schedule was capped or the failure needs no faults).
    pub filter: Option<Vec<(u64, u64)>>,
    /// The failure diagnostic the minimal schedule reproduces.
    pub message: String,
}

impl Reproducer {
    /// Number of fault applications the reproducer allows (`None`
    /// filter = unrestricted).
    pub fn allowed_faults(&self) -> Option<u64> {
        self.filter
            .as_ref()
            .map(|r| r.iter().map(|(s, e)| e - s).sum())
    }
}

/// Why a reproducer could not be saved, loaded or replayed.
#[derive(Debug)]
pub enum ReproError {
    /// The on-disk container was unreadable, truncated, corrupt, or of
    /// the wrong version/kind — or the payload failed to decode.
    Snapshot(SnapshotError),
    /// The job kind has no reproducer support (Table 1 micro-machines).
    Unsupported(String),
}

impl std::fmt::Display for ReproError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReproError::Snapshot(e) => write!(f, "reproducer container: {e}"),
            ReproError::Unsupported(job) => write!(f, "job {job} has no reproducer support"),
        }
    }
}

impl std::error::Error for ReproError {}

impl From<SnapshotError> for ReproError {
    fn from(e: SnapshotError) -> Self {
        ReproError::Snapshot(e)
    }
}

/// The outcome of replaying a [`Reproducer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Replay {
    /// Whether the replay failed deterministically, as the reproducer
    /// promised. (The exact diagnostic may drift across code changes;
    /// reproduction means *a* deterministic failure, not a string
    /// match.)
    pub reproduced: bool,
    /// The replay's own diagnostic (or a success note).
    pub message: String,
}

/// Persists `rep` atomically to `path` in the snapshot container.
///
/// # Errors
///
/// Returns [`ReproError::Snapshot`] if the write fails.
pub fn save(path: &Path, rep: &Reproducer) -> Result<(), ReproError> {
    let mut w = ByteWriter::new();
    w.put_bytes(&diskcache::encode_job(&rep.job));
    w.put_str(&rep.faults.to_spec());
    w.put_bool(rep.faults.paranoid);
    match &rep.filter {
        None => w.put_u8(0),
        Some(ranges) => {
            w.put_u8(1);
            w.put_u64(ranges.len() as u64);
            for &(s, e) in ranges {
                w.put_u64(s);
                w.put_u64(e);
            }
        }
    }
    w.put_str(&rep.message);
    snapshot::write_atomic(path, PayloadKind::Reproducer, &w.into_bytes())?;
    Ok(())
}

/// Loads a reproducer from `path`, verifying the container's magic,
/// version, kind and checksum.
///
/// # Errors
///
/// Returns [`ReproError::Snapshot`] for any container or decoding
/// failure.
pub fn load(path: &Path) -> Result<Reproducer, ReproError> {
    let payload = snapshot::read(path, PayloadKind::Reproducer)?;
    let mut r = ByteReader::new(&payload);
    let job = diskcache::decode_job(&r.take_bytes()?)?;
    let spec = r.take_str()?;
    let mut faults = FaultConfig::from_spec(&spec)
        .map_err(|e| ReproError::Snapshot(SnapshotError::Malformed(format!("fault spec: {e}"))))?;
    faults.paranoid = r.take_bool()?;
    let filter = match r.take_u8()? {
        0 => None,
        1 => {
            let n = r.take_u64()?;
            let mut ranges = Vec::with_capacity(n.min(4096) as usize);
            for _ in 0..n {
                let s = r.take_u64()?;
                let e = r.take_u64()?;
                ranges.push((s, e));
            }
            Some(ranges)
        }
        t => {
            return Err(ReproError::Snapshot(SnapshotError::Malformed(format!(
                "bad filter tag {t}"
            ))))
        }
    };
    let message = r.take_str()?;
    r.finish()?;
    Ok(Reproducer {
        job,
        faults,
        filter,
        message,
    })
}

/// Runs one case: the job under `faults` with an optional candidate
/// filter, returning the simulation outcome and the fault record.
/// `None` for Table 1 jobs.
fn run_case(
    job: &Job,
    faults: &FaultConfig,
    filter: Option<&[(u64, u64)]>,
) -> Option<(Result<JobOutput, SimFailure>, FaultRecord)> {
    dsm_machine::with_fault_config(faults.clone(), || {
        let mut p = runner::prepare(job)?;
        if let Some(ranges) = filter {
            p.machine
                .set_fault_filter(Some(FaultFilter::from_ranges(ranges.to_vec())));
        }
        let finish = p.finish;
        let res = match p.machine.run(p.limit) {
            Ok(report) => finish(&mut p.machine, report),
            Err(e) => Err(SimFailure::from_run(&p.label, &e)),
        };
        let record = p.machine.fault_record().cloned().unwrap_or_default();
        Some((res, record))
    })
}

/// Returns the failure message if the case fails *deterministically*
/// with exactly the faults in `subset` allowed.
fn fails_with(job: &Job, faults: &FaultConfig, subset: &[u64]) -> Option<String> {
    let filter = FaultFilter::from_indices(subset);
    let (res, _) = run_case(job, faults, Some(filter.ranges()))?;
    match res {
        Err(f) if !f.transient => Some(f.message),
        _ => None,
    }
}

/// Upper bound on shrinking test runs. Each ddmin probe is a full
/// simulation; past the budget we keep the smallest failing set found
/// so far (still a valid reproducer — just not proven 1-minimal).
const SHRINK_BUDGET: u32 = 128;

/// Standard ddmin (Zeller–Hildebrandt delta debugging) over the applied
/// candidate indices. `test` returns the failure message if the subset
/// still fails. Returns the minimized set and its failure message.
fn ddmin(
    mut current: Vec<u64>,
    mut message: String,
    mut test: impl FnMut(&[u64]) -> Option<String>,
) -> (Vec<u64>, String) {
    let mut n = 2usize;
    while current.len() >= 2 && n <= current.len() {
        let chunk = current.len().div_ceil(n);
        let mut reduced = false;
        // Try each chunk alone: a failing chunk becomes the new set.
        let mut i = 0;
        while i < current.len() {
            let subset = current[i..(i + chunk).min(current.len())].to_vec();
            if let Some(msg) = test(&subset) {
                current = subset;
                message = msg;
                n = 2;
                reduced = true;
                break;
            }
            i += chunk;
        }
        if reduced {
            continue;
        }
        // Try each complement (skip n == 2: complements equal chunks).
        if n > 2 {
            let mut i = 0;
            while i < current.len() {
                let mut comp = current[..i].to_vec();
                comp.extend_from_slice(&current[(i + chunk).min(current.len())..]);
                if !comp.is_empty() && comp.len() < current.len() {
                    if let Some(msg) = test(&comp) {
                        current = comp;
                        message = msg;
                        n = (n - 1).max(2);
                        reduced = true;
                        break;
                    }
                }
                i += chunk;
            }
        }
        if reduced {
            continue;
        }
        if chunk == 1 {
            break; // finest granularity survived: 1-minimal
        }
        n = (n * 2).min(current.len());
    }
    (current, message)
}

/// Shrinks a deterministically failing job to a minimal reproducer.
///
/// Runs the job once to capture the failure and the applied fault
/// schedule, then delta-debugs the schedule down to a minimal subset
/// that still triggers a deterministic failure. Returns `None` when the
/// job succeeds, fails only transiently, or is a Table 1 job. When the
/// schedule was capped (heavier runs than [`dsm_sim::fault`] records in
/// full) the reproducer carries no filter: it replays the unshrunk
/// failure, which is still deterministic.
pub fn shrink(job: &Job) -> Option<Reproducer> {
    let faults = runner::prepare(job)?.machine.fault_config().clone();
    let (res, record) = run_case(job, &faults, None)?;
    let failure = match res {
        Err(f) if !f.transient => f,
        _ => return None,
    };
    let full: Vec<u64> = record.schedule.iter().map(|&(i, _, _)| i).collect();
    let complete = full.len() as u64 == record.applied;
    if full.is_empty() || !complete {
        return Some(Reproducer {
            job: job.clone(),
            faults,
            filter: None,
            message: failure.message,
        });
    }
    let mut budget = SHRINK_BUDGET;
    let test = |subset: &[u64]| -> Option<String> {
        if budget == 0 {
            return None;
        }
        budget -= 1;
        fails_with(job, &faults, subset)
    };
    // If the failure needs no faults at all, the minimal filter is
    // empty — don't ddmin toward it, just verify once.
    let (minimal, message) = match fails_with(job, &faults, &[]) {
        Some(msg) => (Vec::new(), msg),
        None => ddmin(full, failure.message, test),
    };
    Some(Reproducer {
        job: job.clone(),
        faults,
        filter: Some(FaultFilter::from_indices(&minimal).ranges().to_vec()),
        message,
    })
}

/// Replays a reproducer: runs its job under its pinned fault
/// configuration and filter, and reports whether the deterministic
/// failure recurred.
///
/// # Errors
///
/// [`ReproError::Unsupported`] for Table 1 jobs.
pub fn replay(rep: &Reproducer) -> Result<Replay, ReproError> {
    let ranges = rep.filter.as_deref();
    let Some((res, _)) = run_case(&rep.job, &rep.faults, ranges) else {
        return Err(ReproError::Unsupported(format!("{:?}", rep.job)));
    };
    Ok(match res {
        Err(f) if !f.transient => Replay {
            reproduced: true,
            message: f.message,
        },
        Err(f) => Replay {
            reproduced: false,
            message: format!("transient failure (not the recorded one): {}", f.message),
        },
        Ok(_) => Replay {
            reproduced: false,
            message: "run completed successfully; the failure did not recur".into(),
        },
    })
}

thread_local! {
    static DIR_OVERRIDE: RefCell<Option<Option<PathBuf>>> = const { RefCell::new(None) };
}

/// Runs `f` with the reproducer directory pinned to `dir` on this
/// thread (`None` disables emission), restoring the previous setting
/// afterwards (also on panic). Like the runner's other overrides, the
/// directory is resolved on the coordinating thread before jobs fan
/// out, so it applies at any worker count.
pub fn with_repro_dir<R>(dir: Option<&Path>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Option<PathBuf>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            DIR_OVERRIDE.with(|c| *c.borrow_mut() = self.0.take());
        }
    }
    let over = Some(dir.map(Path::to_path_buf));
    let _restore = Restore(DIR_OVERRIDE.with(|c| std::mem::replace(&mut *c.borrow_mut(), over)));
    f()
}

/// The directory reproducer artifacts go to: the [`with_repro_dir`]
/// override if active, else `DSM_REPRO_DIR` from the environment
/// (empty = disabled). `None` disables emission.
pub fn dir() -> Option<PathBuf> {
    if let Some(over) = DIR_OVERRIDE.with(|c| c.borrow().clone()) {
        return over;
    }
    std::env::var_os("DSM_REPRO_DIR")
        .filter(|v| !v.is_empty())
        .map(PathBuf::from)
}

/// Emits failure artifacts for a deterministic failure and annotates
/// its message with their paths: a plain-text dump (diagnostic, applied
/// fault schedule, final state digest — the livelock watchdog's
/// per-processor blocked-on dump lands here too) and a shrunk,
/// replayable reproducer. Best-effort: emission problems are reported
/// to stderr and never turn into job failures of their own.
pub(crate) fn emit(
    job: &Job,
    machine: &Machine,
    mut failure: SimFailure,
    dir: &Path,
) -> SimFailure {
    if failure.transient {
        return failure;
    }
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!(
            "dsm-repro: cannot create reproducer dir {}: {e}",
            dir.display()
        );
        return failure;
    }
    let stem = format!("{:016x}", job.seed());
    let record = machine.fault_record().cloned().unwrap_or_default();

    let dump_path = dir.join(format!("{stem}.dump.txt"));
    let mut text = format!(
        "{}\n\njob: {:?}\nfaults: {} paranoid={}\nstate digest: {:016x}\n\
         events processed: {}\nfault candidates drawn: {}\nfaults applied: {}\n",
        failure.message,
        job,
        machine.fault_config().to_spec(),
        machine.fault_config().paranoid,
        machine.state_digest(),
        machine.events_processed(),
        record.candidates,
        record.applied,
    );
    for &(i, cycle, f) in &record.schedule {
        text.push_str(&format!("  candidate #{i} @cycle {cycle}: {f:?}\n"));
    }
    if let Err(e) = std::fs::write(&dump_path, &text) {
        eprintln!(
            "dsm-repro: cannot write failure dump {}: {e}",
            dump_path.display()
        );
    }

    let repro_path = dir.join(format!("{stem}.repro"));
    match shrink(job) {
        Some(rep) => match save(&repro_path, &rep) {
            Ok(()) => {
                let kept = rep
                    .allowed_faults()
                    .map_or_else(|| "all".into(), |n| n.to_string());
                failure.message.push_str(&format!(
                    " [reproducer: {} ({kept} of {} faults kept; replay with \
                     `figures repro`); dump: {}]",
                    repro_path.display(),
                    record.applied,
                    dump_path.display()
                ));
            }
            Err(e) => eprintln!(
                "dsm-repro: cannot write reproducer {}: {e}",
                repro_path.display()
            ),
        },
        None => {
            // The failure did not recur on the shrinking re-run — only
            // possible if it was not deterministic after all. Leave the
            // dump in place and say so.
            failure
                .message
                .push_str(&format!(" [dump: {}]", dump_path.display()));
        }
    }
    failure
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{BarSpec, CounterKind};
    use dsm_protocol::SyncPolicy;
    use dsm_sim::MachineConfig;
    use dsm_sync::Primitive;

    #[test]
    fn ddmin_finds_a_single_culprit() {
        let all: Vec<u64> = (0..32).collect();
        let mut runs = 0;
        let (min, msg) = ddmin(all, "seed".into(), |s| {
            runs += 1;
            s.contains(&17).then(|| "needs 17".to_string())
        });
        assert_eq!(min, vec![17]);
        assert_eq!(msg, "needs 17");
        assert!(runs < 64, "ddmin should need O(log n) runs, used {runs}");
    }

    #[test]
    fn ddmin_finds_a_pair() {
        let all: Vec<u64> = (0..16).collect();
        let (min, _) = ddmin(all, "seed".into(), |s| {
            (s.contains(&3) && s.contains(&12)).then(|| "pair".to_string())
        });
        assert_eq!(min, vec![3, 12]);
    }

    #[test]
    fn ddmin_keeps_everything_when_everything_matters() {
        let all: Vec<u64> = (0..5).collect();
        let (min, _) = ddmin(all.clone(), "seed".into(), |s| {
            (s.len() == all.len()).then(|| "all".to_string())
        });
        assert_eq!(min, all);
    }

    #[test]
    fn reproducer_round_trips_through_disk() {
        let rep = Reproducer {
            job: Job::counter(
                MachineConfig::with_nodes(4),
                CounterKind::LockFree,
                BarSpec::new(SyncPolicy::Inv, Primitive::Cas),
                4,
                1.0,
                4,
            ),
            faults: {
                let mut f = FaultConfig::heavy();
                f.paranoid = true;
                f
            },
            filter: Some(vec![(3, 4), (17, 20)]),
            message: "INV CAS: invariant: line 0x40 promoted illegally".into(),
        };
        let path = std::env::temp_dir().join(format!("dsm-repro-codec-{}", std::process::id()));
        save(&path, &rep).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back, rep);
        assert_eq!(back.allowed_faults(), Some(4));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn repro_dir_override_wins_and_restores() {
        let d = std::env::temp_dir().join("dsm-repro-dir-test");
        with_repro_dir(Some(&d), || assert_eq!(dir(), Some(d.clone())));
        with_repro_dir(None, || assert_eq!(dir(), None));
    }

    #[test]
    fn succeeding_job_yields_no_reproducer() {
        let job = Job::counter(
            MachineConfig::with_nodes(4),
            CounterKind::LockFree,
            BarSpec::new(SyncPolicy::Inv, Primitive::Cas),
            4,
            1.0,
            4,
        );
        assert!(shrink(&job).is_none());
    }
}
