//! The deterministic parallel experiment runner and its process-wide
//! result cache.
//!
//! Every figure, table and sweep in [`crate::experiments`] decomposes
//! into independent simulation *jobs* (one machine, one workload, one
//! parameter point). This module gives all of them a single execution
//! path:
//!
//! * **Explicit job lists** — a driver collects every [`Job`] it needs
//!   and hands the whole batch to [`run_all`], instead of simulating
//!   point-by-point inline.
//! * **Parallel fan-out** — batches run on a scoped worker pool
//!   ([`fan_out`]). The worker count comes from the `DSM_JOBS`
//!   environment variable, falling back to
//!   [`std::thread::available_parallelism`]; [`with_workers`] overrides
//!   it programmatically. One worker means plain serial execution on
//!   the calling thread.
//! * **Bitwise determinism** — each job derives its machine RNG seed
//!   from a stable fingerprint of its own key ([`Job::seed`], built on
//!   [`dsm_sim::StableHasher`]), never from scheduling order, thread
//!   identity or global state. A sweep therefore produces *identical*
//!   bytes whether it runs on 1 worker or 64.
//! * **Memoization** — results are cached for the lifetime of the
//!   process, keyed by the same job key. Bars shared between Figures
//!   3/4/5, Figure 6, Table 1, the scaling sweep and the integration
//!   tests are simulated exactly once per process. With `DSM_CACHE_DIR`
//!   set, results also persist across processes through the
//!   corruption-tolerant on-disk store in [`super::diskcache`].
//! * **Supervision** — failures carry a transient/deterministic
//!   distinction: wall-clock timeouts ([`dsm_machine::RunError`]'s
//!   `Timeout`, enabled by `DSM_WALL_LIMIT`) are retried with a bounded
//!   deterministic backoff (`DSM_RETRIES`) and are never cached, while
//!   deterministic failures (protocol errors, invariant violations,
//!   lost updates) cache like successes. With `DSM_REPRO_DIR` set,
//!   every deterministic failure also emits a failure dump and a
//!   minimal replayable reproducer (see [`super::repro`]), referenced
//!   from the error message.
//!
//! Progress counters (jobs queued/running/done, cache hits, simulated
//! cycles) are kept in [`stats`] so long sweeps can report progress;
//! set `DSM_PROGRESS=1` to have every job completion logged to stderr.

use crate::experiments::apps::{App, AppRun};
use crate::experiments::counters::CounterPoint;
use crate::experiments::lockfree::LockfreePoint;
use crate::experiments::table1::Table1Row;
use crate::experiments::{
    apps, counters, diskcache, lockfree, repro, table1, BarSpec, CounterKind, Scale,
};
use dsm_machine::{Machine, RunError, RunReport};
use dsm_protocol::{CasVariant, LlscScheme, SyncPolicy};
use dsm_sim::{Cycle, MachineConfig, ProtoVariant, StableHasher};
use dsm_sync::{LinkPrim, Primitive};
use dsm_workloads::LfStructure;
use std::cell::Cell;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

/// One simulation point: everything needed to reproduce one machine
/// run, and nothing else. `Eq`/`Hash` make it the cache key; its
/// [`seed`](Job::seed) fingerprint makes the run reproducible.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Job {
    /// A synthetic-counter measurement (Figures 3/4/5, scaling sweep).
    Counter {
        /// The simulated machine.
        mcfg: MachineConfig,
        /// Which counter application (Figure 3/4/5).
        kind: CounterKind,
        /// The implementation bar.
        bar: BarSpec,
        /// Contention level `c`, already clamped to the machine size.
        contention: u32,
        /// Write-run length `a`, stored as IEEE-754 bits so the key is
        /// hashable and the f64 round-trips exactly.
        write_run_bits: u64,
        /// Barrier-separated rounds.
        rounds: u64,
    },
    /// An application run (Figures 2 and 6).
    App {
        /// Which application.
        app: App,
        /// The implementation bar.
        bar: BarSpec,
        /// The experiment scale.
        scale: Scale,
    },
    /// One Table 1 micro-experiment, by index into the paper's rows.
    Table1 {
        /// Scenario index in `0..table1::SCENARIOS`.
        scenario: usize,
    },
    /// A lock-free structure benchmark point (queue/list/map under one
    /// link primitive × coherence policy).
    Lockfree {
        /// The simulated machine.
        mcfg: MachineConfig,
        /// Which structure.
        structure: LfStructure,
        /// Link-word primitive discipline.
        prim: LinkPrim,
        /// Coherence policy on every structure line.
        policy: SyncPolicy,
        /// Operations per processor.
        ops_per_proc: u32,
        /// Key space for set keys.
        key_space: u64,
        /// Bucket count (map only; the list always uses 1).
        buckets: u32,
    },
}

impl Job {
    /// A counter job. Canonicalizes `contention` (clamped to the
    /// machine size, as the drivers do) so equivalent requests share
    /// one cache entry.
    pub fn counter(
        mcfg: MachineConfig,
        kind: CounterKind,
        bar: BarSpec,
        contention: u32,
        write_run: f64,
        rounds: u64,
    ) -> Job {
        let contention = contention.min(mcfg.nodes).max(1);
        Job::Counter {
            mcfg,
            kind,
            bar,
            contention,
            write_run_bits: write_run.to_bits(),
            rounds,
        }
    }

    /// An application job.
    pub fn app(app: App, bar: BarSpec, scale: Scale) -> Job {
        Job::App { app, bar, scale }
    }

    /// A Table 1 scenario job.
    ///
    /// # Panics
    ///
    /// Panics if `scenario` is out of range.
    pub fn table1(scenario: usize) -> Job {
        assert!(
            scenario < table1::SCENARIOS,
            "table 1 has {} scenarios",
            table1::SCENARIOS
        );
        Job::Table1 { scenario }
    }

    /// A lock-free structure job. The map's bucket count is
    /// canonicalized away for the queue and the list (which ignore it)
    /// so equivalent requests share one cache entry.
    pub fn lockfree(
        mcfg: MachineConfig,
        structure: LfStructure,
        prim: LinkPrim,
        policy: SyncPolicy,
        ops_per_proc: u32,
        key_space: u64,
        buckets: u32,
    ) -> Job {
        let buckets = match structure {
            LfStructure::Map => buckets.max(1),
            _ => 1,
        };
        Job::Lockfree {
            mcfg,
            structure,
            prim,
            policy,
            ops_per_proc,
            key_space,
            buckets,
        }
    }

    /// The machine RNG seed for this job: a stable fingerprint of the
    /// job key. Identical keys always derive identical seeds — on any
    /// platform, at any worker count, in any scheduling order — so a
    /// job's result is a pure function of its key.
    pub fn seed(&self) -> u64 {
        let mut h = StableHasher::new();
        self.fingerprint(&mut h);
        h.finish()
    }

    /// Feeds every field through `h` in a canonical, explicitly
    /// enumerated order (std's `Hash` is not stable across releases).
    fn fingerprint(&self, h: &mut StableHasher) {
        match self {
            Job::Counter {
                mcfg,
                kind,
                bar,
                contention,
                write_run_bits,
                rounds,
            } => {
                h.write_u8(0);
                put_machine(h, mcfg);
                h.write_u8(match kind {
                    CounterKind::LockFree => 0,
                    CounterKind::TtsLock => 1,
                    CounterKind::McsLock => 2,
                });
                put_bar(h, bar);
                h.write_u32(*contention);
                h.write_u64(*write_run_bits);
                h.write_u64(*rounds);
            }
            Job::App { app, bar, scale } => {
                h.write_u8(1);
                h.write_u8(match app {
                    App::WireRoute => 0,
                    App::Cholesky => 1,
                    App::TransitiveClosure => 2,
                });
                put_bar(h, bar);
                h.write_u32(scale.procs);
                h.write_u64(scale.rounds);
                h.write_u64(scale.tc_size);
                h.write_u64(scale.wires);
                h.write_u64(scale.tasks);
            }
            Job::Table1 { scenario } => {
                h.write_u8(2);
                h.write_usize(*scenario);
            }
            Job::Lockfree {
                mcfg,
                structure,
                prim,
                policy,
                ops_per_proc,
                key_space,
                buckets,
            } => {
                h.write_u8(3);
                put_machine(h, mcfg);
                h.write_u8(match structure {
                    LfStructure::Queue => 0,
                    LfStructure::List => 1,
                    LfStructure::Map => 2,
                });
                h.write_u8(match prim {
                    LinkPrim::Llsc => 0,
                    LinkPrim::EmulLlsc => 1,
                    LinkPrim::CasPlain => 2,
                });
                h.write_u8(match policy {
                    SyncPolicy::Inv => 0,
                    SyncPolicy::Upd => 1,
                    SyncPolicy::Unc => 2,
                });
                h.write_u32(*ops_per_proc);
                h.write_u64(*key_space);
                h.write_u32(*buckets);
            }
        }
    }
}

fn put_machine(h: &mut StableHasher, m: &MachineConfig) {
    h.write_u32(m.nodes);
    h.write_u32(m.mesh_width);
    h.write_u64(m.seed);
    let p = &m.params;
    for v in [
        p.line_size,
        p.cache_hit,
        p.cache_ctrl,
        p.mem_access,
        p.dir_access,
        p.hop_delay,
        p.flit_bytes,
        p.flit_cycle,
        p.header_flits,
        p.issue,
    ] {
        h.write_u64(v);
    }
    h.write_usize(m.cache.sets);
    h.write_usize(m.cache.ways);
    // Protocol-variant fields are hashed only when non-default, so
    // every pre-existing job fingerprint (and therefore every committed
    // golden artifact) is byte-for-byte unchanged.
    if m.proto != ProtoVariant::Dash {
        h.write_u8(0xA0);
        h.write_u8(match m.proto {
            ProtoVariant::Dash => 0,
            ProtoVariant::MesiF => 1,
            ProtoVariant::Hier => 2,
        });
    }
    if m.clusters != 1 {
        h.write_u8(0xA1);
        h.write_u32(m.clusters);
    }
    if m.params.cluster_penalty != 0 {
        h.write_u8(0xA2);
        h.write_u64(m.params.cluster_penalty);
    }
}

fn put_bar(h: &mut StableHasher, b: &BarSpec) {
    h.write_u8(match b.policy {
        SyncPolicy::Inv => 0,
        SyncPolicy::Upd => 1,
        SyncPolicy::Unc => 2,
    });
    h.write_u8(match b.prim {
        Primitive::FetchPhi => 0,
        Primitive::Llsc => 1,
        Primitive::Cas => 2,
    });
    h.write_u8(match b.cas_variant {
        CasVariant::Plain => 0,
        CasVariant::Deny => 1,
        CasVariant::Share => 2,
    });
    h.write_u8(u8::from(b.load_exclusive));
    h.write_u8(u8::from(b.drop_copy));
    match b.llsc {
        LlscScheme::BitVector => h.write_u8(0),
        LlscScheme::LinkedList => h.write_u8(1),
        LlscScheme::Limited(k) => {
            h.write_u8(2);
            h.write_u8(k);
        }
        LlscScheme::SerialNumber => h.write_u8(3),
    }
    // Non-default-only, like the machine's protocol-variant fields:
    // bars without home atomics keep their historical fingerprints.
    if b.home_atomics {
        h.write_u8(0xB7);
    }
}

/// The result of one [`Job`].
#[derive(Debug, Clone)]
pub enum JobOutput {
    /// Result of a [`Job::Counter`].
    Counter(CounterPoint),
    /// Result of a [`Job::App`].
    App(AppRun),
    /// Result of a [`Job::Table1`].
    Table1(Table1Row),
    /// Result of a [`Job::Lockfree`].
    Lockfree(LockfreePoint),
}

impl JobOutput {
    /// Unwraps a counter result.
    ///
    /// # Panics
    ///
    /// Panics if this is not a counter result.
    pub fn into_counter(self) -> CounterPoint {
        match self {
            JobOutput::Counter(p) => p,
            other => panic!("expected a counter result, got {other:?}"),
        }
    }

    /// Unwraps an application result.
    ///
    /// # Panics
    ///
    /// Panics if this is not an application result.
    pub fn into_app(self) -> AppRun {
        match self {
            JobOutput::App(r) => r,
            other => panic!("expected an application result, got {other:?}"),
        }
    }

    /// Unwraps a Table 1 row.
    ///
    /// # Panics
    ///
    /// Panics if this is not a Table 1 result.
    pub fn into_table1(self) -> Table1Row {
        match self {
            JobOutput::Table1(r) => r,
            other => panic!("expected a table-1 result, got {other:?}"),
        }
    }

    /// Unwraps a lock-free structure result.
    ///
    /// # Panics
    ///
    /// Panics if this is not a lock-free structure result.
    pub fn into_lockfree(self) -> LockfreePoint {
        match self {
            JobOutput::Lockfree(p) => p,
            other => panic!("expected a lock-free result, got {other:?}"),
        }
    }

    fn cycles(&self) -> u64 {
        match self {
            JobOutput::Counter(p) => p.cycles,
            JobOutput::App(r) => r.cycles,
            JobOutput::Table1(_) => 0,
            JobOutput::Lockfree(p) => p.cycles,
        }
    }
}

/// A failed [`Job`], rendered for reporting: which job failed and the
/// run's own diagnostic (deadlock, livelock, protocol error, invariant
/// violation, lost updates, ...).
///
/// *Deterministic* failures are cached like successes, so a failing job
/// is still simulated only once per process, and one bad job never
/// aborts the worker pool — every sibling in the batch completes and
/// reports its own `Result`. *Transient* failures (a host-side
/// wall-clock budget) are retried and never cached, in memory or on
/// disk: a slow host must not poison future runs with a stale verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError {
    /// A rendering of the failing job's key.
    pub job: String,
    /// The failure diagnostic, from the machine's
    /// [`dsm_machine::RunError`] or the experiment's own
    /// final-state check.
    pub message: String,
    /// True for host-side conditions (wall-clock budget exhausted) that
    /// a retry on a less loaded host may clear; false for anything
    /// reproducible from the job key alone.
    pub transient: bool,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job {} failed: {}", self.job, self.message)
    }
}

impl std::error::Error for JobError {}

/// A simulation failure before job attribution: the diagnostic text
/// plus whether the condition is transient (host wall-clock budget,
/// worth retrying) or deterministic (a property of the simulated
/// machine, cacheable). The experiment modules produce these; the
/// runner attributes them to a [`Job`] as [`JobError`]s.
#[derive(Debug)]
pub(crate) struct SimFailure {
    /// The failure diagnostic.
    pub message: String,
    /// See [`JobError::transient`].
    pub transient: bool,
}

impl SimFailure {
    /// A deterministic failure: reproducible from the job key alone.
    pub fn deterministic(message: String) -> Self {
        SimFailure {
            message,
            transient: false,
        }
    }

    /// Attributes a machine [`RunError`] to `label`, preserving its
    /// transience (wall-clock timeouts retry; everything else caches).
    pub fn from_run(label: &str, e: &RunError) -> Self {
        SimFailure {
            message: format!("{label}: {e}"),
            transient: e.is_transient(),
        }
    }
}

/// The completion stage of a [`PreparedRun`]: final-state checks plus
/// result assembly, consumed exactly once after the machine finishes.
pub(crate) type FinishFn =
    Box<dyn FnOnce(&mut Machine, RunReport) -> Result<JobOutput, SimFailure>>;

/// A job's machine built and seeded but not yet run.
///
/// [`try_execute`] drives these straight to completion; the checkpoint
/// layer drives them through [`Machine::run_until`] pauses instead.
/// Building is a pure function of the job key, so two `PreparedRun`s
/// for the same job hold bit-identical machines.
pub(crate) struct PreparedRun {
    /// Label used to attribute failure diagnostics (e.g. the bar name).
    pub label: String,
    /// The freshly built machine, seeded from the job key.
    pub machine: Machine,
    /// The run's simulated-cycle budget.
    pub limit: Cycle,
    /// Final-state checks plus result assembly.
    pub finish: FinishFn,
}

/// Builds the machine for a job without running it. Returns `None` for
/// [`Job::Table1`]: its directed micro-machines are driven by their own
/// harness, complete in microseconds, and are never checkpointed.
pub(crate) fn prepare(job: &Job) -> Option<PreparedRun> {
    match job {
        Job::Counter {
            mcfg,
            kind,
            bar,
            contention,
            write_run_bits,
            rounds,
        } => {
            let mut mcfg = mcfg.clone();
            mcfg.seed = job.seed();
            Some(counters::prepare(
                mcfg,
                *kind,
                bar,
                *contention,
                f64::from_bits(*write_run_bits),
                *rounds,
            ))
        }
        Job::App { app, bar, scale } => Some(apps::prepare(*app, bar, scale, job.seed())),
        Job::Table1 { .. } => None,
        Job::Lockfree {
            mcfg,
            structure,
            prim,
            policy,
            ops_per_proc,
            key_space,
            buckets,
        } => {
            let mut mcfg = mcfg.clone();
            mcfg.seed = job.seed();
            Some(lockfree::prepare(
                mcfg,
                *structure,
                *prim,
                *policy,
                *ops_per_proc,
                *key_space,
                *buckets,
            ))
        }
    }
}

/// Attributes a [`SimFailure`] to `job`, producing the reportable
/// [`JobError`]. Shared by the runner, the checkpoint layer and the
/// reproducer layer so failure rendering stays uniform.
pub(crate) fn attribute(job: &Job, f: SimFailure) -> JobError {
    JobError {
        job: format!("{job:?}"),
        message: f.message,
        transient: f.transient,
    }
}

/// Simulates one job from scratch (no cache involved). With a
/// reproducer directory configured, a deterministic failure also emits
/// a failure dump and a shrunk replayable reproducer, and the error
/// message references both (see [`super::repro`]).
fn try_execute(job: &Job, repro_dir: Option<&std::path::Path>) -> Result<JobOutput, JobError> {
    let result = match prepare(job) {
        Some(mut p) => {
            let finish = p.finish;
            let res = match p.machine.run(p.limit) {
                Ok(report) => finish(&mut p.machine, report),
                Err(e) => Err(SimFailure::from_run(&p.label, &e)),
            };
            match (res, repro_dir) {
                (Err(f), Some(dir)) if !f.transient => Err(repro::emit(job, &p.machine, f, dir)),
                (res, _) => res,
            }
        }
        // Table 1 micro-machines are fully directed (no randomized
        // behaviour reaches the measured chain), so the derived seed is
        // irrelevant to them, and they never fail.
        None => match job {
            Job::Table1 { scenario } => Ok(JobOutput::Table1(table1::run_scenario(*scenario))),
            other => unreachable!("prepare() only declines Table1 jobs, got {other:?}"),
        },
    };
    result.map_err(|f| attribute(job, f))
}

/// The outcome of one job: its output or its own failure report.
pub type JobResult = Result<JobOutput, JobError>;

/// Locks `m`, recovering the guard if a previous holder panicked.
///
/// Every value the runner keeps under a mutex (the result cache, the
/// fan-out result slots) is valid after any partial update — entries
/// are inserted or replaced whole — so a poisoned lock carries no
/// torn state. Propagating the poison instead would cascade one
/// panicking job into failing every later, unrelated experiment in the
/// process, which is exactly what a crash-safe pipeline must not do.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn cache() -> &'static Mutex<HashMap<Job, JobResult>> {
    static CACHE: OnceLock<Mutex<HashMap<Job, JobResult>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// True if a result may enter the caches (memory and disk): successes
/// and deterministic failures, but never transient host conditions.
fn cacheable(r: &JobResult) -> bool {
    match r {
        Ok(_) => true,
        Err(e) => !e.transient,
    }
}

static JOBS_QUEUED: AtomicU64 = AtomicU64::new(0);
static JOBS_RUNNING: AtomicU64 = AtomicU64::new(0);
static JOBS_COMPLETED: AtomicU64 = AtomicU64::new(0);
static CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static CYCLES_SIMULATED: AtomicU64 = AtomicU64::new(0);
static RETRIES: AtomicU64 = AtomicU64::new(0);
pub(crate) static DISK_HITS: AtomicU64 = AtomicU64::new(0);
pub(crate) static DISK_STORES: AtomicU64 = AtomicU64::new(0);
pub(crate) static DISK_QUARANTINED: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the runner's lifetime progress counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunnerStats {
    /// Jobs handed to the worker pool (cache misses only).
    pub queued: u64,
    /// Jobs currently simulating.
    pub running: u64,
    /// Jobs simulated to completion.
    pub completed: u64,
    /// Requests served from the cache without simulating.
    pub cache_hits: u64,
    /// Total simulated machine cycles across all completed jobs.
    pub cycles_simulated: u64,
    /// Transient-failure retries attempted.
    pub retries: u64,
    /// Jobs served from the persistent disk cache.
    pub disk_hits: u64,
    /// Results persisted to the disk cache.
    pub disk_stores: u64,
    /// Corrupt disk-cache entries quarantined (and re-simulated).
    pub disk_quarantined: u64,
}

/// Reads the current progress counters.
pub fn stats() -> RunnerStats {
    RunnerStats {
        queued: JOBS_QUEUED.load(Ordering::Relaxed),
        running: JOBS_RUNNING.load(Ordering::Relaxed),
        completed: JOBS_COMPLETED.load(Ordering::Relaxed),
        cache_hits: CACHE_HITS.load(Ordering::Relaxed),
        cycles_simulated: CYCLES_SIMULATED.load(Ordering::Relaxed),
        retries: RETRIES.load(Ordering::Relaxed),
        disk_hits: DISK_HITS.load(Ordering::Relaxed),
        disk_stores: DISK_STORES.load(Ordering::Relaxed),
        disk_quarantined: DISK_QUARANTINED.load(Ordering::Relaxed),
    }
}

/// Empties the in-memory result cache (results are re-simulated, or
/// re-read from the disk cache, on next request). Intended for tests
/// and serial-vs-parallel timing comparisons; the progress counters are
/// *not* reset.
pub fn clear_cache() {
    lock_recover(cache()).clear();
}

thread_local! {
    static WORKER_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    static RETRY_OVERRIDE: Cell<Option<u32>> = const { Cell::new(None) };
}

/// The worker count [`run_all`] will use on this thread: the
/// [`with_workers`] override if active, else `DSM_JOBS` from the
/// environment, else [`std::thread::available_parallelism`].
pub fn workers() -> usize {
    if let Some(n) = WORKER_OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("DSM_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs `f` with the worker count pinned to `n` on this thread,
/// restoring the previous setting afterwards (also on panic). This is
/// how tests compare serial and parallel execution without touching
/// the process environment.
pub fn with_workers<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            WORKER_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(WORKER_OVERRIDE.with(|c| c.replace(Some(n))));
    f()
}

/// The transient-failure retry budget: the [`with_retries`] override if
/// active, else `DSM_RETRIES` from the environment, else 2. A budget of
/// `n` means a transiently failing job is attempted at most `1 + n`
/// times before its failure is reported (uncached).
pub fn retry_budget() -> u32 {
    if let Some(n) = RETRY_OVERRIDE.with(Cell::get) {
        return n;
    }
    std::env::var("DSM_RETRIES")
        .ok()
        .and_then(|v| v.trim().parse::<u32>().ok())
        .unwrap_or(2)
}

/// Runs `f` with the transient-retry budget pinned to `n` on this
/// thread, restoring the previous setting afterwards (also on panic).
/// Like [`with_workers`], the override is thread-local: combine it with
/// `with_workers(1, ..)` so jobs execute on the calling thread.
pub fn with_retries<R>(n: u32, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<u32>);
    impl Drop for Restore {
        fn drop(&mut self) {
            RETRY_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(RETRY_OVERRIDE.with(|c| c.replace(Some(n))));
    f()
}

/// The deterministic backoff schedule: 25 ms doubling per attempt,
/// capped at ~1.6 s. A pure function of the attempt number — no
/// randomness — so supervised runs remain reproducible in wall-clock
/// shape as well as in results.
fn backoff_delay(attempt: u32) -> Duration {
    const BASE_MS: u64 = 25;
    Duration::from_millis(BASE_MS << attempt.saturating_sub(1).min(6))
}

/// Runs `run`, retrying transient failures up to `budget` times with
/// [`backoff_delay`] between attempts. Deterministic failures and
/// successes return immediately.
fn retry_transient(budget: u32, mut run: impl FnMut() -> JobResult) -> JobResult {
    let mut out = run();
    for attempt in 1..=budget {
        match &out {
            Err(e) if e.transient => {
                RETRIES.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(backoff_delay(attempt));
                out = run();
            }
            _ => break,
        }
    }
    out
}

/// Maps `f` over `items` on a scoped worker pool, preserving input
/// order in the returned vector.
///
/// Work is distributed dynamically (an atomic cursor), so uneven job
/// costs balance across workers. With `workers <= 1` (or fewer than
/// two items) everything runs serially on the calling thread.
///
/// # Panics
///
/// If `f` panics for any item, the panic propagates to the caller once
/// the pool has stopped — remaining workers abandon the queue instead
/// of deadlocking, and unfinished items are never observed.
pub fn fan_out<I, O, F>(items: &[I], workers: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    if workers <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }

    /// Flags the shared abort switch if dropped during a panic.
    struct AbortOnPanic<'a>(&'a AtomicBool);
    impl Drop for AbortOnPanic<'_> {
        fn drop(&mut self) {
            if std::thread::panicking() {
                self.0.store(true, Ordering::Relaxed);
            }
        }
    }

    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let slots: Vec<Mutex<Option<O>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers.min(items.len()) {
            s.spawn(|| loop {
                if abort.load(Ordering::Relaxed) {
                    return;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    return;
                }
                let guard = AbortOnPanic(&abort);
                let out = f(&items[i]);
                std::mem::forget(guard);
                *lock_recover(&slots[i]) = Some(out);
            });
        }
        // A panicking worker makes scope() itself resume the panic here.
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("every item completed")
        })
        .collect()
}

fn try_execute_counted(
    job: &Job,
    retry_budget: u32,
    repro_dir: Option<&std::path::Path>,
) -> JobResult {
    JOBS_RUNNING.fetch_add(1, Ordering::Relaxed);
    let out = retry_transient(retry_budget, || try_execute(job, repro_dir));
    JOBS_RUNNING.fetch_sub(1, Ordering::Relaxed);
    JOBS_COMPLETED.fetch_add(1, Ordering::Relaxed);
    if let Ok(out) = &out {
        CYCLES_SIMULATED.fetch_add(out.cycles(), Ordering::Relaxed);
    }
    if std::env::var_os("DSM_PROGRESS").is_some() {
        let s = stats();
        eprintln!(
            "dsm-runner: {}/{} jobs done ({} cache hits, {} cycles simulated)",
            s.completed, s.queued, s.cache_hits, s.cycles_simulated
        );
    }
    out
}

/// Runs a batch of jobs — memory cache first, then the persistent disk
/// cache, then parallel fan-out for the remaining misses — and returns
/// each job's own `Result` in input order.
///
/// Duplicate jobs in the batch (and jobs already simulated earlier in
/// the process) are simulated only once. The output for a given job
/// list is a pure function of that list: bitwise identical at any
/// worker count, and whether a result came from a simulation, the
/// memory cache or the disk cache. A failing job (deadlock, livelock,
/// protocol error, invariant violation, lost updates — typically under
/// fault injection) reports a [`JobError`] in its slot without aborting
/// its siblings; transient failures (wall-clock budget) are retried and
/// never cached.
pub fn try_run_all(jobs: &[Job]) -> Vec<JobResult> {
    // Partition into hits and (deduplicated, order-preserving) misses.
    let mut misses: Vec<Job> = Vec::new();
    {
        let cached = lock_recover(cache());
        let mut seen: HashSet<&Job> = HashSet::new();
        for job in jobs {
            if cached.contains_key(job) {
                CACHE_HITS.fetch_add(1, Ordering::Relaxed);
            } else if seen.insert(job) {
                misses.push(job.clone());
            }
        }
    }

    // Probe the persistent store for the misses. Disk I/O stays on the
    // calling thread: entries are read before the fan-out and written
    // after it, so workers never contend on the filesystem and the
    // thread-local test overrides (cache dir, retry budget) apply.
    let mut fresh: HashMap<Job, JobResult> = HashMap::new();
    let mut to_run: Vec<Job> = Vec::new();
    for job in misses {
        match diskcache::load(&job) {
            Some(result) => {
                fresh.insert(job, result);
            }
            None => to_run.push(job),
        }
    }

    if !to_run.is_empty() {
        JOBS_QUEUED.fetch_add(to_run.len() as u64, Ordering::Relaxed);
        let budget = retry_budget();
        let repro_dir = repro::dir();
        let outputs = fan_out(&to_run, workers(), |job| {
            try_execute_counted(job, budget, repro_dir.as_deref())
        });
        for (job, out) in to_run.into_iter().zip(outputs) {
            diskcache::store(&job, &out);
            fresh.insert(job, out);
        }
    }

    // Publish cacheable fresh results (simulated or disk-loaded) to the
    // process-wide memory cache; transient failures stay out of it.
    {
        let mut cached = lock_recover(cache());
        for (job, out) in &fresh {
            if cacheable(out) {
                cached.insert(job.clone(), out.clone());
            }
        }
    }

    let cached = lock_recover(cache());
    jobs.iter()
        .map(|job| {
            fresh
                .get(job)
                .or_else(|| cached.get(job))
                .expect("job simulated")
                .clone()
        })
        .collect()
}

/// Like [`try_run_all`], but panics on the first failed job — the
/// contract the artifact drivers want, where any failure is a bug.
///
/// # Panics
///
/// Panics if any job's simulation fails (wrong counter value, run
/// limit exceeded); the panic carries the failing job's own message.
pub fn run_all(jobs: &[Job]) -> Vec<JobOutput> {
    try_run_all(jobs)
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic!("{e}")))
        .collect()
}

/// Runs (or fetches) a single job, reporting failure as a [`JobError`].
pub fn try_run_one(job: &Job) -> JobResult {
    try_run_all(std::slice::from_ref(job))
        .pop()
        .expect("one job, one result")
}

/// Runs (or fetches) a single job.
///
/// # Panics
///
/// Panics if the job's simulation fails, carrying its diagnostic.
pub fn run_one(job: &Job) -> JobOutput {
    run_all(std::slice::from_ref(job))
        .pop()
        .expect("one job, one result")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::BarSpec;

    fn tiny_counter_job(contention: u32) -> Job {
        Job::counter(
            MachineConfig::with_nodes(4),
            CounterKind::LockFree,
            BarSpec::new(SyncPolicy::Unc, Primitive::FetchPhi),
            contention,
            1.0,
            4,
        )
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(tiny_counter_job(1).seed(), tiny_counter_job(1).seed());
        assert_ne!(tiny_counter_job(1).seed(), tiny_counter_job(2).seed());
        assert_ne!(tiny_counter_job(1).seed(), Job::table1(0).seed());
    }

    #[test]
    fn contention_is_canonicalized() {
        // c=64 on a 4-node machine is the same point as c=4.
        assert_eq!(tiny_counter_job(64), tiny_counter_job(4));
    }

    #[test]
    fn fan_out_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = fan_out(&items, 8, |&i| i * 2);
        assert_eq!(doubled, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn fan_out_serial_fallback_matches() {
        let items: Vec<u64> = (0..10).collect();
        assert_eq!(
            fan_out(&items, 1, |&i| i + 1),
            fan_out(&items, 4, |&i| i + 1)
        );
    }

    #[test]
    fn with_workers_overrides_and_restores() {
        let outer = workers();
        with_workers(3, || assert_eq!(workers(), 3));
        assert_eq!(workers(), outer);
    }

    /// Serializes the tests that clear or poison the process-global
    /// cache, so they do not invalidate each other's entries mid-test.
    fn cache_test_guard() -> MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        lock_recover(&GUARD)
    }

    #[test]
    fn run_one_hits_cache_on_second_request() {
        let _serial = cache_test_guard();
        let job = tiny_counter_job(2);
        clear_cache();
        let first = run_one(&job).into_counter();
        let hits_before = stats().cache_hits;
        let second = run_one(&job).into_counter();
        assert_eq!(stats().cache_hits, hits_before + 1);
        assert_eq!(first.avg_cycles.to_bits(), second.avg_cycles.to_bits());
        assert_eq!(first.cycles, second.cycles);
    }

    /// Regression test for the poisoned-mutex cascade: a panic while
    /// holding the cache lock used to poison it, turning every later
    /// (unrelated) experiment in the process into a panic of its own.
    /// The runner now recovers the guard and keeps serving.
    #[test]
    fn poisoned_cache_lock_recovers() {
        let _serial = cache_test_guard();
        let poison = std::panic::catch_unwind(|| {
            let _guard = lock_recover(cache());
            panic!("deliberate panic while holding the runner cache lock");
        });
        assert!(poison.is_err(), "the poisoning panic must have fired");
        // Every cache-touching path still works.
        clear_cache();
        let p = run_one(&tiny_counter_job(2)).into_counter();
        assert!(p.cycles > 0);
        let again = run_one(&tiny_counter_job(2)).into_counter();
        assert_eq!(p.cycles, again.cycles);
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        assert_eq!(backoff_delay(1), Duration::from_millis(25));
        assert_eq!(backoff_delay(2), Duration::from_millis(50));
        assert_eq!(backoff_delay(3), Duration::from_millis(100));
        // The cap: attempts beyond 7 stop doubling.
        assert_eq!(backoff_delay(7), backoff_delay(100));
        assert_eq!(backoff_delay(100), Duration::from_millis(25 << 6));
    }

    fn transient_error() -> JobError {
        JobError {
            job: "test".into(),
            message: "wall-clock budget exhausted".into(),
            transient: true,
        }
    }

    #[test]
    fn transient_failures_retry_up_to_budget() {
        let calls = Cell::new(0u32);
        let out = retry_transient(3, || {
            calls.set(calls.get() + 1);
            Err(transient_error())
        });
        assert_eq!(calls.get(), 4, "1 attempt + 3 retries");
        assert!(out.unwrap_err().transient);
    }

    #[test]
    fn transient_failure_clearing_mid_retry_succeeds() {
        let calls = Cell::new(0u32);
        let out = retry_transient(3, || {
            calls.set(calls.get() + 1);
            if calls.get() < 2 {
                Err(transient_error())
            } else {
                Ok(JobOutput::Table1(table1::run_scenario(0)))
            }
        });
        assert_eq!(calls.get(), 2, "success stops the retry loop");
        assert!(out.is_ok());
    }

    #[test]
    fn deterministic_failures_never_retry() {
        let calls = Cell::new(0u32);
        let out = retry_transient(5, || {
            calls.set(calls.get() + 1);
            Err(JobError {
                job: "test".into(),
                message: "invariant violation".into(),
                transient: false,
            })
        });
        assert_eq!(calls.get(), 1, "deterministic failures are final");
        assert!(!out.unwrap_err().transient);
    }

    #[test]
    fn with_retries_overrides_and_restores() {
        let outer = retry_budget();
        with_retries(7, || assert_eq!(retry_budget(), 7));
        assert_eq!(retry_budget(), outer);
    }

    #[test]
    fn transient_failures_are_not_cached() {
        let job = tiny_counter_job(2);
        let transient: JobResult = Err(transient_error());
        let ok_result: JobResult = Ok(JobOutput::Table1(table1::run_scenario(0)));
        assert!(!cacheable(&transient));
        assert!(cacheable(&ok_result));
        assert!(cacheable(&Err(JobError {
            job: format!("{job:?}"),
            message: "livelock".into(),
            transient: false,
        })));
    }

    /// The runner round-trips results through the persistent store: a
    /// second process (simulated here by clearing the memory cache)
    /// serves the job from disk, byte-identically, without simulating.
    #[test]
    fn disk_cache_serves_after_memory_cache_clears() {
        let _serial = cache_test_guard();
        let dir = std::env::temp_dir().join(format!("dsm-runner-disk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        diskcache::with_cache_dir(Some(&dir), || {
            let job = tiny_counter_job(3);
            clear_cache();
            let first = run_one(&job).into_counter();
            assert!(stats().disk_stores > 0, "result must have been persisted");
            clear_cache(); // "new process": memory cache gone, disk remains
            let hits_before = stats().disk_hits;
            let second = run_one(&job).into_counter();
            assert!(stats().disk_hits > hits_before, "must be a disk hit");
            assert_eq!(first.avg_cycles.to_bits(), second.avg_cycles.to_bits());
            assert_eq!(first.cycles, second.cycles);
            assert_eq!(first.updates, second.updates);
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
}
