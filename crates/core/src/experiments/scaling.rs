//! A scalability sweep the paper fixes at p=64: average cycles per
//! fully-contended counter update as the machine grows from 2 to 64
//! processors, for the headline implementations.

use crate::experiments::counters::CounterPoint;
use crate::experiments::runner::{self, Job, JobOutput};
use crate::experiments::{BarSpec, CounterKind};
use dsm_protocol::SyncPolicy;
use dsm_sim::MachineConfig;
use dsm_sync::Primitive;

/// Processor counts swept by the paper-scale artifact.
pub const PROCS: [u32; 6] = [2, 4, 8, 16, 32, 64];

/// Beyond-paper machine sizes (`figures scaling-xl`). These are kept
/// out of `all` so the committed paper artifacts stay byte-identical;
/// they exist because the PDES engine (`DSM_WORKERS`) makes machines
/// this large simulable in reasonable wall-clock time.
pub const PROCS_XL: [u32; 2] = [256, 1024];

/// One sweep line: an implementation across machine sizes.
#[derive(Debug, Clone)]
pub struct ScalingLine {
    /// The implementation.
    pub bar: BarSpec,
    /// `(procs, point)` per machine size.
    pub points: Vec<(u32, CounterPoint)>,
}

/// The implementations worth watching scale: the paper's
/// recommendation (INV CAS + load_exclusive), its counter special-case
/// (UNC FAΦ), and the two universal alternatives.
pub fn scaling_bars() -> Vec<BarSpec> {
    vec![
        BarSpec::new(SyncPolicy::Unc, Primitive::FetchPhi),
        BarSpec {
            load_exclusive: true,
            ..BarSpec::new(SyncPolicy::Inv, Primitive::Cas)
        },
        BarSpec::new(SyncPolicy::Inv, Primitive::Cas),
        BarSpec::new(SyncPolicy::Inv, Primitive::Llsc),
        BarSpec::new(SyncPolicy::Unc, Primitive::Llsc),
    ]
}

/// Runs the sweep: every processor updates the counter every round
/// (full contention), `rounds` rounds per size.
///
/// All `bars × sizes` points are collected into one job list and fanned
/// out across the experiment [`runner`]'s worker pool.
pub fn run_scaling(kind: CounterKind, rounds: u64) -> Vec<ScalingLine> {
    run_scaling_on(kind, rounds, &PROCS)
}

/// [`run_scaling`] over an arbitrary list of machine sizes (the
/// `scaling-xl` artifact passes [`PROCS_XL`]).
pub fn run_scaling_on(kind: CounterKind, rounds: u64, procs: &[u32]) -> Vec<ScalingLine> {
    let bars = scaling_bars();
    let jobs: Vec<Job> = bars
        .iter()
        .flat_map(|bar| {
            procs.iter().map(move |&p| {
                Job::counter(MachineConfig::with_nodes(p), kind, *bar, p, 1.0, rounds)
            })
        })
        .collect();
    let mut results = runner::run_all(&jobs)
        .into_iter()
        .map(JobOutput::into_counter);
    bars.into_iter()
        .map(|bar| ScalingLine {
            bar,
            points: procs
                .iter()
                .map(|&p| (p, results.next().expect("one result per job")))
                .collect(),
        })
        .collect()
}

/// Renders the sweep as a table (rows = implementations, columns =
/// machine sizes).
pub fn render(lines: &[ScalingLine]) -> String {
    let mut rows = vec![{
        let mut h = vec!["implementation".to_string()];
        if let Some(first) = lines.first() {
            h.extend(first.points.iter().map(|(p, _)| format!("p={p}")));
        }
        h
    }];
    for line in lines {
        let mut row = vec![line.bar.label()];
        row.extend(
            line.points
                .iter()
                .map(|(_, pt)| format!("{:.0}", pt.avg_cycles)),
        );
        rows.push(row);
    }
    dsm_stats::render_table(&rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::counters::measure_bar_on;

    #[test]
    fn sweep_runs_and_renders() {
        // A miniature sweep (sizes 2 and 4 only) to keep tests fast.
        let bar = BarSpec::new(SyncPolicy::Unc, Primitive::FetchPhi);
        let line = ScalingLine {
            bar,
            points: [2u32, 4]
                .iter()
                .map(|&p| {
                    let mcfg = MachineConfig::with_nodes(p);
                    (
                        p,
                        measure_bar_on(mcfg, CounterKind::LockFree, &bar, p, 1.0, 8),
                    )
                })
                .collect(),
        };
        assert!(line.points.iter().all(|(_, pt)| pt.avg_cycles > 0.0));
        let text = render(std::slice::from_ref(&line));
        assert!(text.contains("UNC FAP"));
        assert!(text.contains("p=2"));
    }

    /// The LL/SC reservation-storm effect grows with machine size while
    /// UNC fetch_and_add stays flat — the scalability story behind the
    /// paper's recommendation.
    #[test]
    fn llsc_degrades_faster_than_unc_faa() {
        let cost = |bar: &BarSpec, p: u32| {
            measure_bar_on(
                MachineConfig::with_nodes(p),
                CounterKind::LockFree,
                bar,
                p,
                1.0,
                12,
            )
            .avg_cycles
        };
        let faa = BarSpec::new(SyncPolicy::Unc, Primitive::FetchPhi);
        let llsc = BarSpec::new(SyncPolicy::Unc, Primitive::Llsc);
        let faa_growth = cost(&faa, 16) / cost(&faa, 2);
        let llsc_growth = cost(&llsc, 16) / cost(&llsc, 2);
        assert!(
            llsc_growth > faa_growth,
            "LL/SC ({llsc_growth:.2}x) must degrade faster than FAA ({faa_growth:.2}x)"
        );
    }
}
