//! Table 1: serialized network messages for stores to shared memory
//! under the different coherence policies.
//!
//! Each row is measured by a micro-program that engineers the directory
//! into the named state and then issues one store, reading the
//! serialized-chain length of that store from the machine.

use crate::experiments::runner::{self, Job, JobOutput};
use dsm_machine::{Action, MachineBuilder, ProcCtx};
use dsm_protocol::{MemOp, SyncConfig, SyncPolicy};
use dsm_sim::{Addr, Cycle, MachineConfig};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Row {
    /// The scenario name, as in the paper.
    pub scenario: &'static str,
    /// The value the paper reports.
    pub paper: u32,
    /// The value our simulator measures.
    pub measured: u32,
}

const LINE: Addr = Addr::new(0x40);

/// The number of micro-experiment scenarios (rows of Table 1).
pub const SCENARIOS: usize = SCENARIO_TABLE.len();

/// One row's recipe: name, paper-reported value, measurement function.
type Scenario = (&'static str, u32, fn() -> u32);

/// The paper's rows, in order.
const SCENARIO_TABLE: [Scenario; 7] = [
    ("UNC", 2, unc),
    ("INV to cached exclusive", 0, inv_cached_exclusive),
    ("INV to remote exclusive", 4, inv_remote_exclusive),
    ("INV to remote shared", 3, inv_remote_shared),
    ("INV to uncached", 2, inv_uncached),
    ("UPD to cached", 3, upd_cached),
    ("UPD to uncached", 2, upd_uncached),
];

/// Measures one row by index. Only the [`runner`] calls this; use
/// [`run`] to get the whole table through the cache.
///
/// # Panics
///
/// Panics if `scenario` is out of range or the micro-machine fails to
/// complete (a simulator bug).
pub(crate) fn run_scenario(scenario: usize) -> Table1Row {
    let (name, paper, measure) = SCENARIO_TABLE[scenario];
    Table1Row {
        scenario: name,
        paper,
        measured: measure(),
    }
}

/// Runs all seven micro-experiments and returns the rows in the paper's
/// order, fanned out across the experiment [`runner`].
///
/// # Panics
///
/// Panics if any micro-machine fails to complete (a simulator bug).
pub fn run() -> Vec<Table1Row> {
    let jobs: Vec<Job> = (0..SCENARIOS).map(Job::table1).collect();
    runner::run_all(&jobs)
        .into_iter()
        .map(JobOutput::into_table1)
        .collect()
}

/// Builds a 4-node machine where processor 0 optionally primes the line
/// (`prime0`), then processor 1 optionally primes it (`prime1`), then
/// processor 1 performs the measured store. Returns the measured chain.
fn measure(policy: SyncPolicy, prime0: Option<MemOp>, prime1: Option<MemOp>, store_by: u32) -> u32 {
    let chain: Arc<AtomicU32> = Arc::new(AtomicU32::new(u32::MAX));
    let mut b = MachineBuilder::new(MachineConfig::with_nodes(4));
    b.register_sync(
        LINE,
        SyncConfig {
            policy,
            ..Default::default()
        },
    );
    for p in 0..4u32 {
        let chain = Arc::clone(&chain);
        let mut stage = 0u32;
        b.add_program(move |ctx: &mut ProcCtx<'_>| {
            stage += 1;
            // Stages are globally ordered by barriers so the priming
            // accesses strictly precede the measured store.
            match stage {
                1 => {
                    if p == 0 {
                        if let Some(op) = prime0 {
                            return Action::Op(op);
                        }
                    }
                    Action::Compute(1)
                }
                2 => Action::Barrier(0),
                3 => {
                    if p == 1 {
                        if let Some(op) = prime1 {
                            return Action::Op(op);
                        }
                    }
                    Action::Compute(1)
                }
                4 => Action::Barrier(1),
                5 => {
                    if p == store_by {
                        Action::Op(MemOp::Store {
                            addr: LINE,
                            value: 99,
                        })
                    } else {
                        Action::Compute(1)
                    }
                }
                6 => {
                    if p == store_by {
                        chain.store(ctx.last_chain.expect("store completed"), Ordering::Relaxed);
                    }
                    Action::Done
                }
                _ => unreachable!(),
            }
        });
    }
    let mut m = b.build();
    m.run(Cycle::new(1_000_000))
        .expect("table-1 micro-run completes");
    let c = chain.load(Ordering::Relaxed);
    assert_ne!(c, u32::MAX, "measured store never ran");
    c
}

fn unc() -> u32 {
    measure(SyncPolicy::Unc, None, None, 1)
}

fn inv_cached_exclusive() -> u32 {
    // P1 stores first (acquiring exclusive), then the measured store
    // hits locally.
    measure(
        SyncPolicy::Inv,
        None,
        Some(MemOp::Store {
            addr: LINE,
            value: 1,
        }),
        1,
    )
}

fn inv_remote_exclusive() -> u32 {
    // P0 owns the line exclusively; P1 stores.
    measure(
        SyncPolicy::Inv,
        Some(MemOp::Store {
            addr: LINE,
            value: 1,
        }),
        None,
        1,
    )
}

fn inv_remote_shared() -> u32 {
    // P0 holds a shared copy; P1 (without any copy) stores, which
    // invalidates P0 and collects its acknowledgment.
    measure(SyncPolicy::Inv, Some(MemOp::Load { addr: LINE }), None, 1)
}

fn inv_uncached() -> u32 {
    measure(SyncPolicy::Inv, None, None, 1)
}

fn upd_cached() -> u32 {
    // P0 caches the line (UPD read); P1's store must update P0's copy
    // and collect its acknowledgment.
    measure(SyncPolicy::Upd, Some(MemOp::Load { addr: LINE }), None, 1)
}

fn upd_uncached() -> u32 {
    measure(SyncPolicy::Upd, None, None, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline reproduction check: every measured chain equals the
    /// paper's Table 1.
    #[test]
    fn table1_matches_paper_exactly() {
        for row in run() {
            assert_eq!(
                row.measured, row.paper,
                "{}: paper says {}, simulator measured {}",
                row.scenario, row.paper, row.measured
            );
        }
    }
}
