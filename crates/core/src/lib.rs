//! # atomic-dsm
//!
//! A from-scratch reproduction of *"Implementation of Atomic Primitives
//! on Distributed Shared Memory Multiprocessors"* (Michael & Scott,
//! HPCA 1995): a cycle-level simulator of a 64-node directory-based DSM
//! multiprocessor, hardware implementations of `fetch_and_Φ`,
//! `compare_and_swap` and `load_linked`/`store_conditional` under
//! write-invalidate (INV), write-update (UPD) and uncached (UNC)
//! policies, the auxiliary `load_exclusive` and `drop_copy`
//! instructions, and the full experimental apparatus that regenerates
//! every table and figure in the paper.
//!
//! ## Crate map
//!
//! This facade re-exports the workspace:
//!
//! * [`sim`] — discrete-event kernel, typed ids, machine configuration;
//! * [`mesh`] — the 2-D wormhole mesh (latency model + flit-level
//!   ablation router);
//! * [`protocol`] — directory coherence protocols and the primitive
//!   implementations;
//! * [`machine`] — the full-machine simulator and the [`Program`] API;
//! * [`mint`] — the MINT-like assembly front end (write workloads as
//!   assembly programs);
//! * [`sync`] — TTS/MCS locks, the scalable tree barrier, lock-free
//!   counters;
//! * [`workloads`] — the synthetic counter applications and the three
//!   application kernels;
//! * [`stats`] — contention/write-run/message instrumentation;
//! * [`trace`] — structured event tracing (Perfetto JSON + binary ring
//!   buffer sinks, per-node metrics);
//! * [`experiments`] — drivers for Table 1 and Figures 2–6.
//!
//! ## Quickstart
//!
//! ```
//! use atomic_dsm::machine::{Action, MachineBuilder, ProcCtx};
//! use atomic_dsm::protocol::{MemOp, PhiOp, SyncConfig, SyncPolicy};
//! use atomic_dsm::sim::{Addr, Cycle, MachineConfig};
//!
//! // Four processors fetch_and_add a shared uncached counter.
//! let counter = Addr::new(0x40);
//! let mut b = MachineBuilder::new(MachineConfig::with_nodes(4));
//! b.register_sync(counter, SyncConfig { policy: SyncPolicy::Unc, ..Default::default() });
//! for _ in 0..4 {
//!     let mut left = 100u32;
//!     b.add_program(move |ctx: &mut ProcCtx<'_>| {
//!         if ctx.last.is_some() {
//!             left -= 1;
//!         }
//!         if left == 0 {
//!             Action::Done
//!         } else {
//!             Action::Op(MemOp::FetchPhi { addr: counter, op: PhiOp::Add(1) })
//!         }
//!     });
//! }
//! let mut machine = b.build();
//! machine.run(Cycle::new(10_000_000))?;
//! assert_eq!(machine.read_word(counter), 400);
//! # Ok::<(), atomic_dsm::machine::RunError>(())
//! ```

#![warn(missing_docs)]

pub mod experiments;

pub use dsm_machine as machine;
pub use dsm_mesh as mesh;
pub use dsm_mint as mint;
pub use dsm_protocol as protocol;
pub use dsm_sim as sim;
pub use dsm_stats as stats;
pub use dsm_sync as sync;
pub use dsm_trace as trace;
pub use dsm_workloads as workloads;

pub use dsm_machine::{Machine, MachineBuilder, Program};
pub use dsm_protocol::{CasVariant, LlscScheme, MemOp, OpResult, PhiOp, SyncConfig, SyncPolicy};
pub use dsm_sim::MachineConfig;
pub use dsm_sync::{PrimChoice, Primitive};
