//! The full-machine simulator: ties processors, cache controllers, home
//! nodes, queued memory and the mesh network into one discrete-event
//! model of the paper's 64-node DSM multiprocessor.
//!
//! * [`Program`] / [`Action`] — the processor-program interface;
//! * [`MachineBuilder`] / [`Machine`] — construction and the event loop;
//! * [`MachineStats`] — contention, write-run, message-chain and latency
//!   instrumentation.
//!
//! # Example: 4 processors hammer one uncached fetch_and_add counter
//!
//! ```
//! use dsm_machine::{Action, MachineBuilder, ProcCtx};
//! use dsm_protocol::{MemOp, PhiOp, SyncConfig, SyncPolicy};
//! use dsm_sim::{Addr, Cycle, MachineConfig};
//!
//! let counter = Addr::new(0);
//! let mut b = MachineBuilder::new(MachineConfig::with_nodes(4));
//! b.register_sync(counter, SyncConfig { policy: SyncPolicy::Unc, ..Default::default() });
//! for _ in 0..4 {
//!     let mut remaining = 10;
//!     b.add_program(move |ctx: &mut ProcCtx<'_>| {
//!         if ctx.last.is_some() {
//!             remaining -= 1;
//!         }
//!         if remaining == 0 {
//!             Action::Done
//!         } else {
//!             Action::Op(MemOp::FetchPhi { addr: counter, op: PhiOp::Add(1) })
//!         }
//!     });
//! }
//! let mut m = b.build();
//! m.run(Cycle::new(1_000_000)).unwrap();
//! assert_eq!(m.read_word(counter), 40);
//! ```

#![deny(missing_docs)]

pub mod machine;
mod pdes;
pub mod program;
pub mod stats;
pub mod trace;

pub use machine::{
    with_fault_config, Machine, MachineBuilder, ProcDump, RunError, RunOutcome, RunReport, StopRule,
};
pub use program::{Action, ProcCtx, Program};
pub use stats::MachineStats;
pub use trace::{new_trace, TraceRecorder, TraceReplay};

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_protocol::{CasVariant, LlscScheme, MemOp, OpResult, PhiOp, SyncConfig, SyncPolicy};
    use dsm_sim::{Addr, Cycle, MachineConfig};

    const COUNTER: Addr = Addr::new(0);
    const LIMIT: Cycle = Cycle::new(50_000_000);

    fn config(policy: SyncPolicy) -> SyncConfig {
        SyncConfig {
            policy,
            ..Default::default()
        }
    }

    /// N processors each add 1 to a counter `iters` times with
    /// fetch_and_add; the total must be exact under every policy.
    fn fetch_add_total(policy: SyncPolicy, nodes: u32, iters: u64) -> Machine {
        let mut b = MachineBuilder::new(MachineConfig::with_nodes(nodes));
        b.register_sync(COUNTER, config(policy));
        for _ in 0..nodes {
            let mut remaining = iters;
            b.add_program(move |ctx: &mut ProcCtx<'_>| {
                if ctx.last.is_some() {
                    remaining -= 1;
                }
                if remaining == 0 {
                    Action::Done
                } else {
                    Action::Op(MemOp::FetchPhi {
                        addr: COUNTER,
                        op: PhiOp::Add(1),
                    })
                }
            });
        }
        let mut m = b.build();
        m.run(LIMIT).expect("run must complete");
        m
    }

    #[test]
    fn fetch_add_is_atomic_under_inv() {
        let m = fetch_add_total(SyncPolicy::Inv, 8, 50);
        assert_eq!(m.read_word(COUNTER), 400);
        m.validate_coherence().unwrap();
    }

    #[test]
    fn fetch_add_is_atomic_under_unc() {
        let m = fetch_add_total(SyncPolicy::Unc, 8, 50);
        assert_eq!(m.read_word(COUNTER), 400);
        m.validate_coherence().unwrap();
    }

    #[test]
    fn fetch_add_is_atomic_under_upd() {
        let m = fetch_add_total(SyncPolicy::Upd, 8, 50);
        assert_eq!(m.read_word(COUNTER), 400);
        m.validate_coherence().unwrap();
    }

    #[test]
    fn fetch_add_with_64_nodes() {
        let m = fetch_add_total(SyncPolicy::Inv, 64, 10);
        assert_eq!(m.read_word(COUNTER), 640);
        m.validate_coherence().unwrap();
    }

    /// A CAS-loop counter: load + compare_and_swap retry.
    fn cas_counter(policy: SyncPolicy, variant: CasVariant, use_load_exclusive: bool) {
        #[derive(Clone, Copy)]
        enum St {
            Idle,
            WaitLoad,
            WaitCas,
        }
        let nodes = 8;
        let iters = 30u64;
        let mut b = MachineBuilder::new(MachineConfig::with_nodes(nodes));
        b.register_sync(
            COUNTER,
            SyncConfig {
                policy,
                cas_variant: variant,
                ..Default::default()
            },
        );
        for _ in 0..nodes {
            let mut remaining = iters;
            let mut st = St::Idle;
            b.add_program(move |ctx: &mut ProcCtx<'_>| match st {
                St::Idle => {
                    st = St::WaitLoad;
                    if use_load_exclusive {
                        Action::Op(MemOp::LoadExclusive { addr: COUNTER })
                    } else {
                        Action::Op(MemOp::Load { addr: COUNTER })
                    }
                }
                St::WaitLoad => {
                    let value = ctx.result().value().expect("load returns a value");
                    st = St::WaitCas;
                    Action::Op(MemOp::Cas {
                        addr: COUNTER,
                        expected: value,
                        new: value + 1,
                    })
                }
                St::WaitCas => match ctx.result() {
                    OpResult::CasDone { success: true, .. } => {
                        remaining -= 1;
                        if remaining == 0 {
                            return Action::Done;
                        }
                        st = St::WaitLoad;
                        if use_load_exclusive {
                            Action::Op(MemOp::LoadExclusive { addr: COUNTER })
                        } else {
                            Action::Op(MemOp::Load { addr: COUNTER })
                        }
                    }
                    OpResult::CasDone {
                        success: false,
                        observed,
                    } => Action::Op(MemOp::Cas {
                        addr: COUNTER,
                        expected: observed,
                        new: observed + 1,
                    }),
                    other => panic!("unexpected result {other:?}"),
                },
            });
        }
        let mut m = b.build();
        m.run(LIMIT).expect("run must complete");
        assert_eq!(m.read_word(COUNTER), nodes as u64 * iters);
        m.validate_coherence().unwrap();
    }

    #[test]
    fn cas_loop_counter_inv_plain() {
        cas_counter(SyncPolicy::Inv, CasVariant::Plain, false);
    }

    #[test]
    fn cas_loop_counter_inv_plain_with_load_exclusive() {
        cas_counter(SyncPolicy::Inv, CasVariant::Plain, true);
    }

    #[test]
    fn cas_loop_counter_invd() {
        cas_counter(SyncPolicy::Inv, CasVariant::Deny, false);
    }

    #[test]
    fn cas_loop_counter_invs() {
        cas_counter(SyncPolicy::Inv, CasVariant::Share, false);
    }

    #[test]
    fn cas_loop_counter_unc() {
        cas_counter(SyncPolicy::Unc, CasVariant::Plain, false);
    }

    #[test]
    fn cas_loop_counter_upd() {
        cas_counter(SyncPolicy::Upd, CasVariant::Plain, false);
    }

    /// An LL/SC counter loop.
    fn llsc_counter(policy: SyncPolicy, scheme: LlscScheme) {
        let nodes = 8;
        let iters = 30u64;
        let mut b = MachineBuilder::new(MachineConfig::with_nodes(nodes));
        b.register_sync(
            COUNTER,
            SyncConfig {
                policy,
                llsc: scheme,
                ..Default::default()
            },
        );
        for _ in 0..nodes {
            let mut remaining = iters;
            b.add_program(move |ctx: &mut ProcCtx<'_>| match ctx.last {
                None => Action::Op(MemOp::LoadLinked { addr: COUNTER }),
                Some(OpResult::Loaded { value, serial, .. }) => {
                    Action::Op(MemOp::StoreConditional {
                        addr: COUNTER,
                        value: value + 1,
                        serial,
                    })
                }
                Some(OpResult::ScDone { success }) => {
                    if success {
                        remaining -= 1;
                        if remaining == 0 {
                            return Action::Done;
                        }
                    }
                    Action::Op(MemOp::LoadLinked { addr: COUNTER })
                }
                other => panic!("unexpected result {other:?}"),
            });
        }
        let mut m = b.build();
        m.run(LIMIT).expect("run must complete");
        assert_eq!(m.read_word(COUNTER), nodes as u64 * iters);
        m.validate_coherence().unwrap();
    }

    #[test]
    fn llsc_counter_inv() {
        llsc_counter(SyncPolicy::Inv, LlscScheme::BitVector);
    }

    #[test]
    fn llsc_counter_unc_bitvector() {
        llsc_counter(SyncPolicy::Unc, LlscScheme::BitVector);
    }

    #[test]
    fn llsc_counter_unc_serial() {
        llsc_counter(SyncPolicy::Unc, LlscScheme::SerialNumber);
    }

    #[test]
    fn llsc_counter_unc_linked_list() {
        llsc_counter(SyncPolicy::Unc, LlscScheme::LinkedList);
    }

    #[test]
    fn llsc_counter_upd() {
        llsc_counter(SyncPolicy::Upd, LlscScheme::BitVector);
    }

    #[test]
    fn llsc_counter_unc_limited_makes_progress() {
        // Limited(2) with 8 contenders: beyond-limit LLs fail their SCs
        // locally, but the reserved processors can succeed, so the loop
        // completes.
        llsc_counter(SyncPolicy::Unc, LlscScheme::Limited(2));
    }

    #[test]
    fn barrier_synchronizes_rounds() {
        use std::sync::{Arc, Mutex};
        let nodes = 4u32;
        let resume_times: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let mut b = MachineBuilder::new(MachineConfig::with_nodes(nodes));
        for p in 0..nodes {
            let resume_times = Arc::clone(&resume_times);
            let mut stage = 0;
            b.add_program(move |ctx: &mut ProcCtx<'_>| {
                stage += 1;
                match stage {
                    // Compute for different durations, then barrier.
                    1 => Action::Compute(10 * (p as u64 + 1)),
                    2 => Action::Barrier(1),
                    3 => {
                        resume_times.lock().unwrap().push(ctx.now.as_u64());
                        Action::Done
                    }
                    _ => unreachable!(),
                }
            });
        }
        let mut m = b.build();
        m.run(Cycle::new(100_000)).unwrap();
        let times = resume_times.lock().unwrap();
        assert_eq!(times.len(), nodes as usize);
        assert!(
            times.windows(2).all(|w| w[0] == w[1]),
            "constant-time barrier must release everyone at the same cycle: {times:?}"
        );
        // Release happens when the slowest (40-cycle) processor arrives.
        assert!(times[0] >= 40);
    }

    #[test]
    fn cycle_limit_is_reported() {
        let mut b = MachineBuilder::new(MachineConfig::with_nodes(2));
        b.add_program(|_: &mut ProcCtx<'_>| Action::Compute(1_000));
        b.add_program(|_: &mut ProcCtx<'_>| Action::Done);
        let mut m = b.build();
        let err = m.run(Cycle::new(10_000)).unwrap_err();
        assert!(matches!(err, RunError::CycleLimit { .. }));
        assert!(err.to_string().contains("cycle limit"));
    }

    #[test]
    fn stats_accumulate() {
        let m = fetch_add_total(SyncPolicy::Unc, 4, 5);
        let s = m.stats();
        assert_eq!(s.sync_ops, 20);
        assert!(
            s.msgs.chains().mean() >= 2.0,
            "UNC ops are 2-message chains"
        );
        assert!(s.sync_latency.mean() > 0.0);
        assert_eq!(s.contention.histogram().total(), 20);
    }

    #[test]
    fn mixed_ordinary_and_sync_traffic() {
        // Ordinary (base-protocol) data next to sync data: processors
        // write disjoint ordinary words, then fetch-add a shared counter.
        let nodes = 4u32;
        let mut b = MachineBuilder::new(MachineConfig::with_nodes(nodes));
        b.register_sync(COUNTER, config(SyncPolicy::Inv));
        for p in 0..nodes {
            let private = Addr::new(0x1000 + p as u64 * 64);
            let mut stage = 0;
            b.add_program(move |ctx: &mut ProcCtx<'_>| {
                stage += 1;
                match stage {
                    1 => Action::Op(MemOp::Store {
                        addr: private,
                        value: p as u64,
                    }),
                    2 => Action::Op(MemOp::FetchPhi {
                        addr: COUNTER,
                        op: PhiOp::Add(1),
                    }),
                    3 => Action::Op(MemOp::Load { addr: private }),
                    4 => {
                        assert_eq!(ctx.result().value(), Some(p as u64));
                        Action::Done
                    }
                    _ => unreachable!(),
                }
            });
        }
        let mut m = b.build();
        m.run(LIMIT).unwrap();
        assert_eq!(m.read_word(COUNTER), nodes as u64);
        m.validate_coherence().unwrap();
    }

    #[test]
    fn drop_copy_exercises_the_writeback_race_and_stays_exact() {
        // Alternate fetch-add and drop_copy under contention: drops race
        // with forwarded interventions (the NAK path), yet the counter
        // must stay exact and the final state coherent.
        let nodes = 8u32;
        let iters = 20u64;
        let mut b = MachineBuilder::new(MachineConfig::with_nodes(nodes));
        b.register_sync(COUNTER, config(SyncPolicy::Inv));
        for _ in 0..nodes {
            let mut adds_done = 0u64;
            let mut next_is_add = true;
            b.add_program(move |_: &mut ProcCtx<'_>| {
                if adds_done == iters {
                    return Action::Done;
                }
                if next_is_add {
                    next_is_add = false;
                    adds_done += 1;
                    Action::Op(MemOp::FetchPhi {
                        addr: COUNTER,
                        op: PhiOp::Add(1),
                    })
                } else {
                    next_is_add = true;
                    Action::Op(MemOp::DropCopy { addr: COUNTER })
                }
            });
        }
        let mut m = b.build();
        m.run(LIMIT).unwrap();
        assert_eq!(m.read_word(COUNTER), nodes as u64 * iters);
        m.validate_coherence().unwrap();
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let run = || {
            let mut b = MachineBuilder::new(MachineConfig::with_nodes(8));
            b.register_sync(COUNTER, config(SyncPolicy::Inv));
            for _ in 0..8 {
                let mut remaining = 20u64;
                b.add_program(move |ctx: &mut ProcCtx<'_>| {
                    if ctx.last.is_some() {
                        remaining -= 1;
                    }
                    if remaining == 0 {
                        Action::Done
                    } else {
                        Action::Op(MemOp::FetchPhi {
                            addr: COUNTER,
                            op: PhiOp::Add(1),
                        })
                    }
                });
            }
            let mut m = b.build();
            let report = m.run(LIMIT).unwrap();
            (
                report.cycles,
                report.events,
                m.stats().msgs.total_messages(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn init_word_seeds_memory() {
        let mut b = MachineBuilder::new(MachineConfig::with_nodes(2));
        b.init_word(Addr::new(0x40), 123);
        let seen = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let seen2 = std::sync::Arc::clone(&seen);
        b.add_program(move |ctx: &mut ProcCtx<'_>| match ctx.last {
            None => Action::Op(MemOp::Load {
                addr: Addr::new(0x40),
            }),
            Some(r) => {
                seen2.store(r.value().unwrap(), std::sync::atomic::Ordering::Relaxed);
                Action::Done
            }
        });
        b.add_program(|_: &mut ProcCtx<'_>| Action::Done);
        let mut m = b.build();
        m.run(LIMIT).unwrap();
        assert_eq!(seen.load(std::sync::atomic::Ordering::Relaxed), 123);
    }

    #[test]
    fn uncontended_inv_atomic_becomes_local_after_first_miss() {
        // One processor repeatedly fetch-adds an INV counter: after the
        // first exclusive miss, every subsequent op is a cache hit with
        // zero messages — the core advantage the paper claims for INV.
        let mut b = MachineBuilder::new(MachineConfig::with_nodes(2));
        b.register_sync(COUNTER, config(SyncPolicy::Inv));
        let mut remaining = 10u64;
        b.add_program(move |ctx: &mut ProcCtx<'_>| {
            if ctx.last.is_some() {
                remaining -= 1;
            }
            if remaining == 0 {
                Action::Done
            } else {
                Action::Op(MemOp::FetchPhi {
                    addr: COUNTER,
                    op: PhiOp::Add(1),
                })
            }
        });
        b.add_program(|_: &mut ProcCtx<'_>| Action::Done);
        let mut m = b.build();
        m.run(LIMIT).unwrap();
        let s = m.stats();
        assert_eq!(s.sync_ops, 10);
        assert_eq!(s.local_ops, 9, "all but the first op must be local hits");
        assert_eq!(m.read_word(COUNTER), 10);
    }
}
