//! The machine simulator: processors + cache controllers + home nodes +
//! network, driven by a discrete-event loop.

use crate::program::{Action, ProcCtx, Program};
use crate::stats::MachineStats;
use dsm_mesh::{LatencyNetwork, Mesh};
use dsm_protocol::{
    AddressMap, CacheNode, CacheState, DirState, HomeNode, MemOp, Msg, OpOutcome, OpResult, Outbox,
    SyncConfig, Value,
};
use dsm_sim::{Addr, Cycle, EventQueue, MachineConfig, NodeId, ProcId, SimRng};
use std::fmt;

/// Error returned when a run hits its cycle limit or deadlocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The cycle limit was reached with processors still active.
    CycleLimit {
        /// The limit that was exhausted.
        limit: Cycle,
        /// Processors that had not terminated.
        active: usize,
    },
    /// The event queue drained while processors were still blocked —
    /// a protocol or program bug.
    Deadlock {
        /// Time of the last processed event.
        at: Cycle,
        /// Processors that had not terminated.
        active: usize,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::CycleLimit { limit, active } => {
                write!(
                    f,
                    "cycle limit {limit} reached with {active} processors active"
                )
            }
            RunError::Deadlock { at, active } => {
                write!(
                    f,
                    "deadlock at {at}: {active} processors blocked with no pending events"
                )
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Summary of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunReport {
    /// Simulated time at which the last processor terminated.
    pub cycles: Cycle,
    /// Total discrete events processed.
    pub events: u64,
}

#[derive(Debug)]
enum Event {
    /// A message arrived at its destination's network exit.
    Deliver(Msg),
    /// A server (memory module or cache controller) finished processing
    /// a message.
    Process(Msg),
    /// A processor is ready for its next program step.
    ProcStep(ProcId),
    /// A processor's outstanding operation completed.
    OpDone(ProcId, OpOutcome),
}

struct ProcState {
    program: Box<dyn Program>,
    rng: SimRng,
    done: bool,
    blocked: bool,
    waiting_barrier: Option<u32>,
    last: Option<OpResult>,
    last_chain: Option<u32>,
    /// (op, issue time, tracked-as-sync) of the outstanding operation.
    current: Option<(MemOp, Cycle, bool)>,
}

/// Builder for a [`Machine`].
///
/// # Example
///
/// ```
/// use dsm_machine::{Action, MachineBuilder, ProcCtx};
/// use dsm_protocol::MemOp;
/// use dsm_sim::{Addr, MachineConfig};
///
/// let mut b = MachineBuilder::new(MachineConfig::with_nodes(4));
/// for _ in 0..4 {
///     b.add_program(|ctx: &mut ProcCtx<'_>| {
///         if ctx.last.is_none() {
///             Action::Op(MemOp::Load { addr: Addr::new(64) })
///         } else {
///             Action::Done
///         }
///     });
/// }
/// let mut machine = b.build();
/// let report = machine.run(dsm_sim::Cycle::new(100_000)).unwrap();
/// assert!(report.cycles > dsm_sim::Cycle::ZERO);
/// ```
pub struct MachineBuilder {
    cfg: MachineConfig,
    map: AddressMap,
    programs: Vec<Box<dyn Program>>,
    init: Vec<(Addr, Value)>,
    llsc_pool: usize,
}

impl MachineBuilder {
    /// Starts building a machine with the given configuration.
    pub fn new(cfg: MachineConfig) -> Self {
        cfg.validate().expect("invalid machine configuration");
        let line_size = cfg.params.line_size;
        MachineBuilder {
            cfg,
            map: AddressMap::new(line_size),
            programs: Vec::new(),
            init: Vec::new(),
            llsc_pool: 256,
        }
    }

    /// Registers the line containing `addr` as a synchronization line.
    pub fn register_sync(&mut self, addr: Addr, config: SyncConfig) -> &mut Self {
        self.map.register(addr, config);
        self
    }

    /// Initializes a word of memory before the run.
    pub fn init_word(&mut self, addr: Addr, value: Value) -> &mut Self {
        self.init.push((addr, value));
        self
    }

    /// Sets the linked-list reservation free-pool size per home node.
    pub fn llsc_pool(&mut self, entries: usize) -> &mut Self {
        self.llsc_pool = entries;
        self
    }

    /// Adds the program for the next processor (programs are assigned in
    /// order: the first added runs on processor 0).
    pub fn add_program<P: Program + 'static>(&mut self, program: P) -> &mut Self {
        self.programs.push(Box::new(program));
        self
    }

    /// Builds the machine.
    ///
    /// # Panics
    ///
    /// Panics if the number of programs does not equal the number of
    /// nodes.
    pub fn build(self) -> Machine {
        assert_eq!(
            self.programs.len(),
            self.cfg.nodes as usize,
            "one program per processor is required ({} programs for {} nodes)",
            self.programs.len(),
            self.cfg.nodes
        );
        let mesh = Mesh::new(&self.cfg);
        let net = LatencyNetwork::new(mesh, self.cfg.params.clone());
        let mut seed_rng = SimRng::new(self.cfg.seed);
        let procs: Vec<ProcState> = self
            .programs
            .into_iter()
            .map(|program| ProcState {
                program,
                rng: seed_rng.fork(0xFACE),
                done: false,
                blocked: false,
                waiting_barrier: None,
                last: None,
                last_chain: None,
                current: None,
            })
            .collect();
        let mut homes = Vec::with_capacity(self.cfg.nodes as usize);
        let mut caches = Vec::with_capacity(self.cfg.nodes as usize);
        for n in 0..self.cfg.nodes {
            homes.push(HomeNode::new(
                NodeId::new(n),
                self.cfg.params.line_size,
                self.llsc_pool,
            ));
            let mut cc = CacheNode::new(NodeId::new(n), self.cfg.params.line_size, self.cfg.cache);
            cc.set_nodes(self.cfg.nodes);
            caches.push(cc);
        }
        let mut machine = Machine {
            now: Cycle::ZERO,
            events: EventQueue::new(),
            net,
            homes,
            caches,
            procs,
            mem_busy: vec![Cycle::ZERO; self.cfg.nodes as usize],
            cache_busy: vec![Cycle::ZERO; self.cfg.nodes as usize],
            stats: MachineStats::new(),
            active: self.cfg.nodes as usize,
            events_processed: 0,
            trace: None,
            map: self.map,
            cfg: self.cfg,
        };
        for (addr, value) in self.init {
            machine.poke_word(addr, value);
        }
        for p in 0..machine.cfg.nodes {
            machine
                .events
                .push(Cycle::ZERO, Event::ProcStep(ProcId::new(p)));
        }
        machine
    }
}

/// The simulated 64-node DSM multiprocessor.
///
/// Construct with [`MachineBuilder`], then [`run`](Machine::run).
pub struct Machine {
    cfg: MachineConfig,
    map: AddressMap,
    now: Cycle,
    events: EventQueue<Event>,
    net: LatencyNetwork,
    homes: Vec<HomeNode>,
    caches: Vec<CacheNode>,
    procs: Vec<ProcState>,
    /// Per-node memory-module server availability.
    mem_busy: Vec<Cycle>,
    /// Per-node cache-controller server availability.
    cache_busy: Vec<Cycle>,
    stats: MachineStats,
    active: usize,
    events_processed: u64,
    /// Optional message-trace ring buffer (debugging aid).
    trace: Option<(usize, std::collections::VecDeque<String>)>,
}

impl Machine {
    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Current simulated time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MachineStats {
        &self.stats
    }

    /// Network statistics.
    pub fn network_stats(&self) -> &dsm_mesh::NetworkStats {
        self.net.stats()
    }

    /// Writes a word directly into its home memory (initialization /
    /// between quiescent phases only).
    pub fn poke_word(&mut self, addr: Addr, value: Value) {
        let home = addr.line(self.cfg.params.line_size).home(self.cfg.nodes);
        self.homes[home.index()].poke_word(addr, value);
    }

    /// Reads the current logical value of a word: the owner's cached
    /// copy if the line is dirty, otherwise home memory. Only meaningful
    /// when the machine is quiescent.
    pub fn read_word(&self, addr: Addr) -> Value {
        let line = addr.line(self.cfg.params.line_size);
        let home = line.home(self.cfg.nodes);
        if let DirState::Dirty(owner) = self.homes[home.index()].dir_state(line) {
            if let Some(v) = self.caches[owner.index()].peek_word(addr) {
                return v;
            }
        }
        self.homes[home.index()].peek_word(addr)
    }

    /// Runs until every processor terminates or `limit` is reached.
    ///
    /// # Errors
    ///
    /// [`RunError::CycleLimit`] if the limit was reached first, or
    /// [`RunError::Deadlock`] if the event queue drained with blocked
    /// processors (a protocol/program bug).
    pub fn run(&mut self, limit: Cycle) -> Result<RunReport, RunError> {
        while self.active > 0 {
            let Some((at, event)) = self.events.pop() else {
                return Err(RunError::Deadlock {
                    at: self.now,
                    active: self.active,
                });
            };
            debug_assert!(at >= self.now, "time ran backwards");
            if at > limit {
                return Err(RunError::CycleLimit {
                    limit,
                    active: self.active,
                });
            }
            self.now = at;
            self.events_processed += 1;
            self.dispatch(event);
        }
        let finished = self.now;
        // Drain in-flight traffic (e.g. final write-backs) so the
        // machine is quiescent: read_word and validate_coherence see the
        // committed state.
        while let Some((at, event)) = self.events.pop() {
            if at > limit {
                return Err(RunError::CycleLimit { limit, active: 0 });
            }
            self.now = at;
            self.events_processed += 1;
            self.dispatch(event);
        }
        Ok(RunReport {
            cycles: finished,
            events: self.events_processed,
        })
    }

    fn dispatch(&mut self, event: Event) {
        match event {
            Event::ProcStep(p) => self.proc_step(p),
            Event::OpDone(p, outcome) => self.op_done(p, outcome),
            Event::Deliver(msg) => self.deliver(msg),
            Event::Process(msg) => self.process(msg),
        }
    }

    /// Enables a message-trace ring buffer holding the last `capacity`
    /// sends, each formatted as `time src->dst line kind`. Useful when
    /// debugging protocol behaviour in tests.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some((
            capacity,
            std::collections::VecDeque::with_capacity(capacity),
        ));
    }

    /// The trace entries recorded so far (oldest first); empty unless
    /// [`enable_trace`](Machine::enable_trace) was called.
    pub fn trace(&self) -> impl Iterator<Item = &str> {
        self.trace
            .iter()
            .flat_map(|(_, q)| q.iter().map(String::as_str))
    }

    /// Routes freshly emitted messages into the network.
    fn route(&mut self, msgs: Vec<Msg>) {
        for msg in msgs {
            if let Some((cap, q)) = &mut self.trace {
                if q.len() == *cap {
                    q.pop_front();
                }
                q.push_back(format!(
                    "{} {}->{} {} {:?}",
                    self.now,
                    msg.src,
                    msg.dst,
                    msg.line,
                    std::mem::discriminant(&msg.kind)
                ));
            }
            self.stats.msgs.count(msg.kind.class());
            let flits = msg.flits(&self.cfg.params);
            let deliver_at = self.net.send(self.now, msg.src, msg.dst, flits);
            self.events.push(deliver_at, Event::Deliver(msg));
        }
    }

    fn proc_step(&mut self, p: ProcId) {
        let state = &mut self.procs[p.index()];
        if state.done || state.blocked || state.waiting_barrier.is_some() {
            return;
        }
        let action = {
            let mut ctx = ProcCtx {
                proc: p,
                now: self.now,
                last: state.last.take(),
                last_chain: state.last_chain.take(),
                rng: &mut state.rng,
            };
            state.program.step(&mut ctx)
        };
        match action {
            Action::Compute(cycles) => {
                self.events.push(self.now + cycles, Event::ProcStep(p));
            }
            Action::Barrier(id) => {
                self.procs[p.index()].waiting_barrier = Some(id);
                self.try_release_barrier();
            }
            Action::Done => {
                self.procs[p.index()].done = true;
                self.active -= 1;
                self.try_release_barrier();
            }
            Action::Op(op) => self.issue_op(p, op),
        }
    }

    fn issue_op(&mut self, p: ProcId, op: MemOp) {
        let is_sync = self.map.is_sync(op.addr());
        if is_sync {
            self.stats.contention.begin(op.addr().as_u64(), p.as_u32());
        }
        self.procs[p.index()].current = Some((op, self.now, is_sync));
        let mut out = Outbox::new();
        let completed = self.caches[p.index()].start_op(op, &self.map, &mut out);
        self.route(out.drain());
        match completed {
            Some(outcome) => {
                let latency = self.cfg.params.cache_hit;
                self.events
                    .push(self.now + latency, Event::OpDone(p, outcome));
                self.procs[p.index()].blocked = true;
            }
            None => {
                self.procs[p.index()].blocked = true;
            }
        }
    }

    fn op_done(&mut self, p: ProcId, outcome: OpOutcome) {
        let (op, issued, is_sync) = self.procs[p.index()]
            .current
            .take()
            .expect("completion without an op");
        let latency = (self.now - issued).as_u64() as f64;
        self.stats.ops += 1;
        self.stats.op_latency.add(latency);
        if outcome.local {
            self.stats.local_ops += 1;
        }
        if is_sync {
            self.stats.sync_ops += 1;
            self.stats.sync_latency.add(latency);
            self.stats
                .sync_latency_hist
                .record((latency / 10.0) as usize);
            self.stats.msgs.record_chain(outcome.chain);
            self.stats.contention.end(op.addr().as_u64(), p.as_u32());
            self.stats.write_runs.access(
                op.addr().as_u64(),
                p.as_u32(),
                op.is_write() && outcome.result.succeeded(),
            );
        }
        let state = &mut self.procs[p.index()];
        state.blocked = false;
        state.last = Some(outcome.result);
        state.last_chain = Some(outcome.chain);
        self.events
            .push(self.now + self.cfg.params.issue, Event::ProcStep(p));
    }

    fn deliver(&mut self, msg: Msg) {
        // Choose the server and its occupancy.
        let node = msg.dst.index();
        let (busy, service) = if msg.kind.home_bound() {
            (
                &mut self.mem_busy[node],
                self.cfg.params.dir_access + self.cfg.params.mem_access,
            )
        } else {
            (&mut self.cache_busy[node], self.cfg.params.cache_ctrl)
        };
        let start = self.now.max(*busy);
        let finish = start + service;
        *busy = finish;
        self.events.push(finish, Event::Process(msg));
    }

    fn process(&mut self, msg: Msg) {
        let node = msg.dst.index();
        let mut out = Outbox::new();
        if msg.kind.home_bound() {
            self.homes[node].handle(msg, &self.map, &mut out);
            self.route(out.drain());
        } else {
            let proc = ProcId::new(msg.dst.as_u32());
            let completed = self.caches[node].handle(msg, &mut out);
            self.route(out.drain());
            if let Some(outcome) = completed {
                self.events.push(self.now, Event::OpDone(proc, outcome));
            }
        }
    }

    /// Releases the barrier if every non-terminated processor has
    /// arrived (constant-time barrier: everyone resumes *now*).
    fn try_release_barrier(&mut self) {
        let mut waiting = 0;
        let mut id: Option<u32> = None;
        for s in &self.procs {
            if s.done {
                continue;
            }
            match s.waiting_barrier {
                Some(b) => {
                    if let Some(prev) = id {
                        assert_eq!(prev, b, "processors waiting at different barriers");
                    }
                    id = Some(b);
                    waiting += 1;
                }
                None => return, // someone is still running
            }
        }
        if waiting == 0 {
            return;
        }
        for (i, s) in self.procs.iter_mut().enumerate() {
            if !s.done && s.waiting_barrier.is_some() {
                s.waiting_barrier = None;
                self.events
                    .push(self.now, Event::ProcStep(ProcId::new(i as u32)));
            }
        }
    }

    /// Checks coherence invariants. Only valid when the machine is
    /// quiescent (after [`run`](Machine::run) returns successfully).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant:
    /// single-writer/multiple-reader, directory/cache agreement, and
    /// value agreement between shared copies and memory.
    pub fn validate_coherence(&self) -> Result<(), String> {
        use std::collections::HashMap;
        let mut copies: HashMap<dsm_sim::LineAddr, Vec<(NodeId, CacheState)>> = HashMap::new();
        for (i, cache) in self.caches.iter().enumerate() {
            for (line, state) in cache.cached_lines() {
                copies
                    .entry(line)
                    .or_default()
                    .push((NodeId::new(i as u32), state));
            }
        }
        for (line, holders) in &copies {
            let exclusives: Vec<NodeId> = holders
                .iter()
                .filter(|(_, s)| *s == CacheState::Exclusive)
                .map(|(n, _)| *n)
                .collect();
            if exclusives.len() > 1 {
                return Err(format!(
                    "line {line}: multiple exclusive copies {exclusives:?}"
                ));
            }
            if exclusives.len() == 1 && holders.len() > 1 {
                return Err(format!(
                    "line {line}: exclusive copy at {} coexists with shared copies",
                    exclusives[0]
                ));
            }
            let home = line.home(self.cfg.nodes);
            let dir = self.homes[home.index()].dir_state(*line);
            match (&dir, exclusives.first()) {
                (DirState::Dirty(owner), Some(e)) if owner == e => {}
                (DirState::Dirty(owner), _) => {
                    return Err(format!(
                        "line {line}: directory says dirty at {owner} but cache state disagrees"
                    ));
                }
                (DirState::Shared(sharers), None) => {
                    for (n, _) in holders {
                        if !sharers.contains(*n) {
                            return Err(format!(
                                "line {line}: {n} holds a shared copy unknown to the directory"
                            ));
                        }
                    }
                    // Shared copies must match memory.
                    let base = line.base(self.cfg.params.line_size);
                    for w in 0..(self.cfg.params.line_size / 8) {
                        let addr = base + w * 8;
                        let mem = self.homes[home.index()].peek_word(addr);
                        for (n, _) in holders {
                            let cached = self.caches[n.index()]
                                .peek_word(addr)
                                .expect("holder has the line");
                            if cached != mem {
                                return Err(format!(
                                    "line {line} word {w}: {n} caches {cached}, memory has {mem}"
                                ));
                            }
                        }
                    }
                }
                (DirState::Uncached, None) => {
                    // Silently evicted shared copies leave stale sharers,
                    // never stale cached copies; a cached copy with an
                    // Uncached directory is a bug.
                    return Err(format!(
                        "line {line}: cached copies but directory is uncached"
                    ));
                }
                (DirState::Shared(_), Some(e)) => {
                    return Err(format!(
                        "line {line}: directory says shared but {e} holds it exclusively"
                    ));
                }
                (DirState::Uncached, Some(e)) => {
                    return Err(format!(
                        "line {line}: directory says uncached but {e} holds it exclusively"
                    ));
                }
            }
        }
        Ok(())
    }
}
