//! The machine simulator: processors + cache controllers + home nodes +
//! network, driven by a discrete-event loop.

use crate::program::{Action, ProcCtx, Program};
use crate::stats::MachineStats;
use dsm_mesh::{LatencyNetwork, Mesh};
use dsm_protocol::{
    check_invariants, check_line, AddressMap, CacheNode, CacheState, DirState, HomeNode,
    InvariantViolation, MemOp, Msg, OpOutcome, OpResult, Outbox, ProtocolError, ProtocolErrorKind,
    SyncConfig, Value,
};
use dsm_sim::{
    Addr, Cycle, EventQueue, FaultConfig, FaultEvent, FaultFilter, FaultInjector, FaultRecord,
    LineAddr, MachineConfig, NodeId, ProcId, SimRng, StableHasher,
};
use dsm_trace::{Category, StateLabel, TraceSpec, Tracer};
use std::fmt;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Converts a directory state into the label-shaped form trace events
/// carry (`dsm-trace` does not depend on the protocol crate).
fn dir_label(state: &DirState) -> StateLabel {
    match state {
        DirState::Uncached => StateLabel::plain("Uncached"),
        DirState::Shared(sharers) => StateLabel {
            name: "Shared",
            n: sharers.len() as u32,
        },
        DirState::Dirty(owner) => StateLabel {
            name: "Dirty",
            n: owner.as_u32(),
        },
    }
}

/// Converts a cache-line state (`None` = not resident) into a label.
fn cache_label(state: Option<CacheState>) -> StateLabel {
    match state {
        None => StateLabel::plain("Invalid"),
        Some(CacheState::Shared) => StateLabel::plain("Shared"),
        Some(CacheState::Exclusive) => StateLabel::plain("Exclusive"),
    }
}

/// The state of one processor at the moment a run failed, for deadlock
/// and livelock diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcDump {
    /// Which processor.
    pub proc: ProcId,
    /// The outstanding memory operation, if the processor was blocked on
    /// one.
    pub op: Option<MemOp>,
    /// The target address of that operation.
    pub addr: Option<Addr>,
    /// When the outstanding operation was issued.
    pub issued: Option<Cycle>,
    /// The barrier the processor was waiting at, if any.
    pub barrier: Option<u32>,
}

impl fmt::Display for ProcDump {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.proc)?;
        match (self.op, self.issued) {
            (Some(op), Some(at)) => write!(f, " blocked on {op:?} issued at {at}")?,
            (Some(op), None) => write!(f, " blocked on {op:?}")?,
            _ => {}
        }
        if let Some(b) = self.barrier {
            write!(f, " waiting at barrier {b}")?;
        }
        Ok(())
    }
}

/// Error returned when a run cannot complete: cycle limit, deadlock,
/// livelock, a protocol-state error, or (in paranoid mode) a violated
/// protocol invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The cycle limit was reached with processors still active.
    CycleLimit {
        /// The limit that was exhausted.
        limit: Cycle,
        /// Processors that had not terminated.
        active: usize,
    },
    /// The event queue drained while processors were still blocked —
    /// a protocol or program bug.
    Deadlock {
        /// Time of the last processed event.
        at: Cycle,
        /// Processors that had not terminated.
        active: usize,
        /// Per-processor blocked-on state at the moment of deadlock.
        procs: Vec<ProcDump>,
    },
    /// Events kept firing but no memory operation retired for a full
    /// watchdog window ([`FaultConfig::watchdog`] cycles) while at least
    /// one processor had an operation outstanding.
    Livelock {
        /// Time at which the watchdog fired.
        at: Cycle,
        /// The retirement-progress window that elapsed, in cycles.
        window: u64,
        /// Per-processor blocked-on state when the watchdog fired.
        procs: Vec<ProcDump>,
    },
    /// A protocol engine reached a state it cannot legally handle.
    Protocol {
        /// Time of the offending transition.
        at: Cycle,
        /// The structured protocol diagnostic.
        error: ProtocolError,
    },
    /// Paranoid mode found a protocol invariant violated after a
    /// transition (or the quiescence sweep failed at run end).
    Invariant {
        /// Time of the check that failed.
        at: Cycle,
        /// The first violation found.
        violation: InvariantViolation,
    },
    /// The host wall-clock budget for this run elapsed before the
    /// simulation finished. Unlike every other variant this is a
    /// *transient* host condition, not a property of the simulated
    /// machine: rerunning the same job on a less loaded host may well
    /// succeed, so supervisors retry it and never cache it.
    Timeout {
        /// Simulated time when the budget check fired.
        at: Cycle,
        /// Host milliseconds actually spent.
        elapsed_ms: u64,
        /// The wall-clock budget that was exhausted, in milliseconds.
        limit_ms: u64,
    },
}

impl RunError {
    /// `true` for failures caused by the *host* (wall-clock timeouts)
    /// rather than by the simulated machine. Transient failures are
    /// worth retrying and must never be cached or treated as evidence
    /// of a protocol bug; deterministic failures (deadlock, livelock,
    /// protocol errors, invariant violations, cycle limits) reproduce
    /// under replay and are legitimate cache entries and shrink targets.
    pub fn is_transient(&self) -> bool {
        matches!(self, RunError::Timeout { .. })
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::CycleLimit { limit, active } => {
                write!(
                    f,
                    "cycle limit {limit} reached with {active} processors active"
                )
            }
            RunError::Deadlock { at, active, procs } => {
                write!(
                    f,
                    "deadlock at {at}: {active} processors blocked with no pending events"
                )?;
                for p in procs
                    .iter()
                    .filter(|p| p.op.is_some() || p.barrier.is_some())
                {
                    write!(f, "; {p}")?;
                }
                Ok(())
            }
            RunError::Livelock { at, window, procs } => {
                write!(f, "livelock at {at}: no op retired for {window} cycles")?;
                for p in procs.iter().filter(|p| p.op.is_some()) {
                    write!(f, "; {p}")?;
                }
                Ok(())
            }
            RunError::Protocol { at, error } => write!(f, "at {at}: {error}"),
            RunError::Invariant { at, violation } => write!(f, "at {at}: {violation}"),
            RunError::Timeout {
                at,
                elapsed_ms,
                limit_ms,
            } => write!(
                f,
                "wall-clock budget exhausted at {at}: {elapsed_ms}ms spent, limit {limit_ms}ms \
                 (transient host condition — retry)"
            ),
        }
    }
}

impl std::error::Error for RunError {}

/// Summary of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunReport {
    /// Simulated time at which the last processor terminated.
    pub cycles: Cycle,
    /// Total discrete events processed.
    pub events: u64,
}

/// Where [`Machine::run_until`] should pause, if anywhere.
///
/// Pauses happen on event boundaries: the rule is checked after each
/// dispatched event, so a paused machine holds a state that an
/// uninterrupted run passes through exactly. That makes
/// [`StopRule::AfterEvents`] the replay coordinate of the checkpoint
/// system — rebuilding the same machine and pausing after the same
/// event count reproduces the paused state bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopRule {
    /// Never pause (equivalent to [`Machine::run`]).
    None,
    /// Pause after the first event dispatched at or beyond this time.
    PauseAt(Cycle),
    /// Pause once this many events (counted from machine construction)
    /// have been dispatched.
    AfterEvents(u64),
}

/// What [`Machine::run_until`] returned: a finished run or a pause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every processor terminated and the machine is quiescent.
    Done(RunReport),
    /// The stop rule fired; call [`Machine::run_until`] again to resume.
    Paused(RunReport),
}

impl RunOutcome {
    /// The report, whether the run finished or paused.
    pub fn report(&self) -> RunReport {
        match *self {
            RunOutcome::Done(r) | RunOutcome::Paused(r) => r,
        }
    }
}

#[derive(Debug)]
enum Event {
    /// A message arrived at its destination's network exit.
    ///
    /// Messages are boxed so a queue entry stays pointer-sized: every
    /// message transits the queue twice (Deliver, then Process) and a
    /// `Msg` is over a hundred bytes, so by-value events would memcpy
    /// each message through the heap four extra times.
    Deliver(Box<Msg>),
    /// A server (memory module or cache controller) finished processing
    /// a message. The second field is the operation span the message
    /// works for (0 when tracing is off or the flow is span-less); it
    /// bridges the service-start → service-finish gap so protocol
    /// handler output inherits the requester's span. Diagnostic-only:
    /// it never influences simulation behaviour and is excluded from
    /// [`Machine::state_digest`] like the tracer that produces it.
    Process(Box<Msg>, u64),
    /// A processor is ready for its next program step.
    ProcStep(ProcId),
    /// A processor's outstanding operation completed.
    ///
    /// Boxed for the same reason as messages: completions outnumber
    /// every other event in cache-friendly workloads, and a slim queue
    /// entry halves the bytes the time wheel has to shuffle per event.
    /// The boxes come from (and return to) a recycling pool, so no
    /// allocation happens at steady state.
    OpDone(ProcId, Box<OpOutcome>),
}

struct ProcState {
    program: Box<dyn Program>,
    rng: SimRng,
    done: bool,
    blocked: bool,
    waiting_barrier: Option<u32>,
    last: Option<OpResult>,
    last_chain: Option<u32>,
    /// (op, issue time, tracked-as-sync) of the outstanding operation.
    current: Option<(MemOp, Cycle, bool)>,
    /// The trace span of the outstanding operation (0 = none).
    /// Diagnostic-only; excluded from [`Machine::state_digest`].
    span: u64,
}

/// Builder for a [`Machine`].
///
/// # Example
///
/// ```
/// use dsm_machine::{Action, MachineBuilder, ProcCtx};
/// use dsm_protocol::MemOp;
/// use dsm_sim::{Addr, MachineConfig};
///
/// let mut b = MachineBuilder::new(MachineConfig::with_nodes(4));
/// for _ in 0..4 {
///     b.add_program(|ctx: &mut ProcCtx<'_>| {
///         if ctx.last.is_none() {
///             Action::Op(MemOp::Load { addr: Addr::new(64) })
///         } else {
///             Action::Done
///         }
///     });
/// }
/// let mut machine = b.build();
/// let report = machine.run(dsm_sim::Cycle::new(100_000)).unwrap();
/// assert!(report.cycles > dsm_sim::Cycle::ZERO);
/// ```
pub struct MachineBuilder {
    cfg: MachineConfig,
    map: AddressMap,
    programs: Vec<Box<dyn Program>>,
    init: Vec<(Addr, Value)>,
    llsc_pool: usize,
    trace: Option<TraceSpec>,
}

thread_local! {
    static FAULT_OVERRIDE: std::cell::RefCell<Option<FaultConfig>> =
        const { std::cell::RefCell::new(None) };
}

/// Runs `f` with every machine built on this thread using exactly
/// `faults` — overriding both the configuration's own fault settings
/// and the `DSM_FAULTS`/`DSM_PARANOID` environment. The previous
/// override (if any) is restored afterwards, also on panic.
///
/// Reproducer replay uses this to pin the exact fault settings of the
/// original failing run without mutating the process environment, which
/// would race with concurrently building machines on other threads.
pub fn with_fault_config<R>(faults: FaultConfig, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<FaultConfig>);
    impl Drop for Restore {
        fn drop(&mut self) {
            FAULT_OVERRIDE.with(|c| *c.borrow_mut() = self.0.take());
        }
    }
    let _restore = Restore(FAULT_OVERRIDE.with(|c| c.borrow_mut().replace(faults)));
    f()
}

impl MachineBuilder {
    /// Starts building a machine with the given configuration.
    pub fn new(cfg: MachineConfig) -> Self {
        cfg.validate().expect("invalid machine configuration");
        let line_size = cfg.params.line_size;
        MachineBuilder {
            cfg,
            map: AddressMap::new(line_size),
            programs: Vec::new(),
            init: Vec::new(),
            llsc_pool: 256,
            trace: None,
        }
    }

    /// Enables structured event tracing for the built machine (see
    /// [`TraceSpec`] for sink and category selection). An explicit spec
    /// set here takes precedence over the `DSM_TRACE` environment
    /// variable.
    pub fn with_trace(&mut self, spec: TraceSpec) -> &mut Self {
        self.trace = Some(spec);
        self
    }

    /// Registers the line containing `addr` as a synchronization line.
    pub fn register_sync(&mut self, addr: Addr, config: SyncConfig) -> &mut Self {
        self.map.register(addr, config);
        self
    }

    /// Initializes a word of memory before the run.
    pub fn init_word(&mut self, addr: Addr, value: Value) -> &mut Self {
        self.init.push((addr, value));
        self
    }

    /// Sets the linked-list reservation free-pool size per home node.
    pub fn llsc_pool(&mut self, entries: usize) -> &mut Self {
        self.llsc_pool = entries;
        self
    }

    /// Adds the program for the next processor (programs are assigned in
    /// order: the first added runs on processor 0).
    pub fn add_program<P: Program + 'static>(&mut self, program: P) -> &mut Self {
        self.programs.push(Box::new(program));
        self
    }

    /// Builds the machine.
    ///
    /// When the configuration carries no fault settings, the
    /// environment variables `DSM_FAULTS` (a
    /// [`FaultConfig::from_spec`] string) and `DSM_PARANOID=1` are
    /// honored as overrides, so a whole test suite can be run under
    /// fault injection or paranoid invariant checking without code
    /// changes. An explicit [`MachineConfig::faults`] always wins, and
    /// a [`with_fault_config`] override on the building thread wins
    /// over both (reproducer replay relies on this).
    /// Likewise, when no trace spec was set with
    /// [`with_trace`](MachineBuilder::with_trace), `DSM_TRACE` (a
    /// [`TraceSpec::from_spec`] string) enables tracing.
    ///
    /// # Panics
    ///
    /// Panics if the number of programs does not equal the number of
    /// nodes, or if `DSM_FAULTS` / `DSM_TRACE` holds a malformed spec.
    pub fn build(mut self) -> Machine {
        assert_eq!(
            self.programs.len(),
            self.cfg.nodes as usize,
            "one program per processor is required ({} programs for {} nodes)",
            self.programs.len(),
            self.cfg.nodes
        );
        let mut faults = self.cfg.faults.clone();
        if let Some(pinned) = FAULT_OVERRIDE.with(|c| c.borrow().clone()) {
            faults = pinned;
        } else if !faults.is_active() {
            if let Ok(spec) = std::env::var("DSM_FAULTS") {
                faults = FaultConfig::from_spec(&spec)
                    .unwrap_or_else(|e| panic!("invalid DSM_FAULTS spec: {e}"));
            }
            if std::env::var("DSM_PARANOID").is_ok_and(|v| v == "1") {
                faults.paranoid = true;
            }
        }
        // Record the *effective* fault settings on the machine, so the
        // supervision layer can capture them into reproducer artifacts
        // regardless of where they came from.
        self.cfg.faults = faults.clone();
        let trace_spec = self.trace.or_else(|| {
            std::env::var("DSM_TRACE").ok().map(|spec| {
                TraceSpec::from_spec(&spec)
                    .unwrap_or_else(|e| panic!("invalid DSM_TRACE spec: {e}"))
            })
        });
        let tracer = trace_spec.map(|spec| Box::new(Tracer::new(&spec, self.cfg.nodes)));
        let mesh = Mesh::new(&self.cfg);
        let net = LatencyNetwork::new(mesh, self.cfg.params.clone());
        let mut seed_rng = SimRng::new(self.cfg.seed);
        let procs: Vec<ProcState> = self
            .programs
            .into_iter()
            .map(|program| ProcState {
                program,
                rng: seed_rng.fork(0xFACE),
                done: false,
                blocked: false,
                waiting_barrier: None,
                last: None,
                last_chain: None,
                current: None,
                span: 0,
            })
            .collect();
        let injector = faults
            .any_faults()
            .then(|| FaultInjector::new(faults.clone(), seed_rng.fork(0xFA17)));
        let mut homes = Vec::with_capacity(self.cfg.nodes as usize);
        let mut caches = Vec::with_capacity(self.cfg.nodes as usize);
        // Each home serves roughly the lines that fit in one node's
        // cache; each node can have a handful of events in flight
        // (messages, processor steps, memory completions).
        let resv_lines = self.cfg.cache.lines();
        for n in 0..self.cfg.nodes {
            let mut home = HomeNode::new(NodeId::new(n), self.cfg.params.line_size, self.llsc_pool);
            home.reserve_lines(resv_lines);
            homes.push(home);
            let mut cc = CacheNode::new(NodeId::new(n), self.cfg.params.line_size, self.cfg.cache);
            cc.set_nodes(self.cfg.nodes);
            caches.push(cc);
        }
        let mut machine = Machine {
            now: Cycle::ZERO,
            events: EventQueue::with_capacity(self.cfg.nodes as usize * 8),
            net,
            homes,
            caches,
            procs,
            mem_busy: vec![Cycle::ZERO; self.cfg.nodes as usize],
            cache_busy: vec![Cycle::ZERO; self.cfg.nodes as usize],
            stats: MachineStats::new(),
            active: self.cfg.nodes as usize,
            events_processed: 0,
            trace: None,
            tracer,
            trace_files: Vec::new(),
            map: self.map,
            injector,
            paranoid: faults.paranoid,
            watchdog: faults.watchdog,
            last_retire: Cycle::ZERO,
            injected_evictions: 0,
            injected_wipes: 0,
            injected_corruptions: 0,
            wall_limit: std::env::var("DSM_WALL_LIMIT")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .filter(|&ms| ms > 0)
                .map(Duration::from_millis),
            paused: false,
            outbox: Outbox::new(),
            msg_pool: Vec::new(),
            outcome_pool: Vec::new(),
            cfg: self.cfg,
        };
        for (addr, value) in self.init {
            machine.poke_word(addr, value);
        }
        for p in 0..machine.cfg.nodes {
            machine
                .events
                .push(Cycle::ZERO, Event::ProcStep(ProcId::new(p)));
        }
        machine
    }
}

/// The simulated 64-node DSM multiprocessor.
///
/// Construct with [`MachineBuilder`], then [`run`](Machine::run).
pub struct Machine {
    cfg: MachineConfig,
    map: AddressMap,
    now: Cycle,
    events: EventQueue<Event>,
    net: LatencyNetwork,
    homes: Vec<HomeNode>,
    caches: Vec<CacheNode>,
    procs: Vec<ProcState>,
    /// Per-node memory-module server availability.
    mem_busy: Vec<Cycle>,
    /// Per-node cache-controller server availability.
    cache_busy: Vec<Cycle>,
    stats: MachineStats,
    active: usize,
    events_processed: u64,
    /// Optional message-trace ring buffer (debugging aid).
    trace: Option<(usize, std::collections::VecDeque<String>)>,
    /// Structured event tracer (`--trace` / `DSM_TRACE`), boxed so the
    /// disabled case costs one pointer in the machine and one
    /// never-taken branch per instrumentation site.
    tracer: Option<Box<Tracer>>,
    /// Paths written by the last trace flush.
    trace_files: Vec<PathBuf>,
    /// Deterministic fault injector, present only when faults are on.
    injector: Option<FaultInjector>,
    /// Run the invariant checker after every protocol transition.
    paranoid: bool,
    /// Livelock watchdog window in cycles (0 = off).
    watchdog: u64,
    /// Last time a memory operation retired (watchdog bookkeeping).
    last_retire: Cycle,
    /// Evictions forced by the fault injector.
    injected_evictions: u64,
    /// Reservation wipes forced by the fault injector.
    injected_wipes: u64,
    /// Shared-to-exclusive corruptions forced by the fault injector.
    injected_corruptions: u64,
    /// Wall-clock budget per `run`/`run_until` call, if any.
    wall_limit: Option<Duration>,
    /// `true` between a stop-rule pause and the resuming call, so the
    /// resume does not reset watchdog bookkeeping.
    paused: bool,
    /// Reusable outbox: protocol handlers fill it, [`route`](Machine::route)
    /// drains it in place, and the backing vector's capacity survives
    /// from event to event instead of being reallocated per dispatch.
    outbox: Outbox,
    /// Recycled message boxes: every in-flight message lives in a
    /// `Box<Msg>` (see [`Event`]), and at steady state the simulator
    /// would otherwise pay a malloc/free pair per message. Boxes freed
    /// by [`process`](Machine::process) are reused by
    /// [`route`](Machine::route). The boxing is the point — these pools
    /// hold ready-made heap allocations for [`Event`] payloads — so
    /// clippy's vec_box (which assumes the indirection is accidental)
    /// does not apply.
    #[allow(clippy::vec_box)]
    msg_pool: Vec<Box<Msg>>,
    /// Recycled completion boxes, same idea as `msg_pool` but for
    /// [`Event::OpDone`] payloads.
    #[allow(clippy::vec_box)]
    outcome_pool: Vec<Box<OpOutcome>>,
}

impl Machine {
    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Current simulated time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MachineStats {
        &self.stats
    }

    /// Network statistics.
    pub fn network_stats(&self) -> &dsm_mesh::NetworkStats {
        self.net.stats()
    }

    /// Writes a word directly into its home memory (initialization /
    /// between quiescent phases only).
    pub fn poke_word(&mut self, addr: Addr, value: Value) {
        let home = addr.line(self.cfg.params.line_size).home(self.cfg.nodes);
        self.homes[home.index()].poke_word(addr, value);
    }

    /// Reads the current logical value of a word: the owner's cached
    /// copy if the line is dirty, otherwise home memory. Only meaningful
    /// when the machine is quiescent.
    pub fn read_word(&self, addr: Addr) -> Value {
        let line = addr.line(self.cfg.params.line_size);
        let home = line.home(self.cfg.nodes);
        if let DirState::Dirty(owner) = self.homes[home.index()].dir_state(line) {
            if let Some(v) = self.caches[owner.index()].peek_word(addr) {
                return v;
            }
        }
        self.homes[home.index()].peek_word(addr)
    }

    /// Runs until every processor terminates or `limit` is reached.
    ///
    /// # Errors
    ///
    /// [`RunError::CycleLimit`] if the limit was reached first,
    /// [`RunError::Deadlock`] if the event queue drained with blocked
    /// processors (a protocol/program bug), [`RunError::Livelock`] if the
    /// watchdog window elapsed without an op retiring,
    /// [`RunError::Protocol`] if a protocol engine reached an illegal
    /// state, or [`RunError::Invariant`] if paranoid checking found a
    /// violated invariant.
    pub fn run(&mut self, limit: Cycle) -> Result<RunReport, RunError> {
        match self.run_until(limit, StopRule::None)? {
            RunOutcome::Done(report) => Ok(report),
            RunOutcome::Paused(_) => unreachable!("StopRule::None never pauses"),
        }
    }

    /// Like [`run`](Machine::run), but pauses when `stop` fires (see
    /// [`StopRule`]); call again to resume. Because pauses land on event
    /// boundaries, a paused machine's [`state_digest`](Machine::state_digest)
    /// equals the digest an uninterrupted run has at the same event
    /// count — the property the checkpoint/restore layer verifies.
    ///
    /// # Errors
    ///
    /// The same errors as [`run`](Machine::run), plus
    /// [`RunError::Timeout`] when a wall-clock budget
    /// ([`set_wall_limit`](Machine::set_wall_limit) or `DSM_WALL_LIMIT`)
    /// elapses before the run finishes or pauses.
    pub fn run_until(&mut self, limit: Cycle, stop: StopRule) -> Result<RunOutcome, RunError> {
        let result = self.run_inner(limit, stop);
        // Traces are most valuable when a run fails (deadlock, protocol
        // error), so flush on the error path too. A trace I/O failure
        // must not masquerade as a simulation failure; report and move
        // on.
        if !matches!(result, Ok(RunOutcome::Paused(_))) {
            if let Err(e) = self.flush_trace() {
                eprintln!("warning: failed to write trace output: {e}");
            }
        }
        result
    }

    /// `true` if `stop` fires at the current event count / time.
    fn should_pause(&self, stop: StopRule) -> bool {
        match stop {
            StopRule::None => false,
            StopRule::PauseAt(cycle) => self.now >= cycle,
            StopRule::AfterEvents(n) => self.events_processed >= n,
        }
    }

    /// Checks the wall-clock budget (every `WALL_CHECK_MASK + 1` events,
    /// so the `Instant::now` syscall stays off the hot path).
    fn check_wall(&self, started: Instant) -> Result<(), RunError> {
        const WALL_CHECK_MASK: u64 = 8191;
        let Some(budget) = self.wall_limit else {
            return Ok(());
        };
        if self.events_processed & WALL_CHECK_MASK != 0 {
            return Ok(());
        }
        let elapsed = started.elapsed();
        if elapsed > budget {
            return Err(RunError::Timeout {
                at: self.now,
                elapsed_ms: elapsed.as_millis() as u64,
                limit_ms: budget.as_millis() as u64,
            });
        }
        Ok(())
    }

    fn run_inner(&mut self, limit: Cycle, stop: StopRule) -> Result<RunOutcome, RunError> {
        let started = Instant::now();
        if !self.paused {
            self.last_retire = self.now;
        }
        self.paused = false;
        while self.active > 0 {
            let Some((at, event)) = self.events.pop() else {
                return Err(RunError::Deadlock {
                    at: self.now,
                    active: self.active,
                    procs: self.proc_dumps(),
                });
            };
            debug_assert!(at >= self.now, "time ran backwards");
            if at > limit {
                return Err(RunError::CycleLimit {
                    limit,
                    active: self.active,
                });
            }
            self.now = at;
            self.events_processed += 1;
            self.poll_faults();
            self.check_watchdog()?;
            self.check_wall(started)?;
            self.dispatch(event)?;
            if self.should_pause(stop) {
                self.paused = true;
                return Ok(RunOutcome::Paused(RunReport {
                    cycles: self.now,
                    events: self.events_processed,
                }));
            }
        }
        let finished = self.now;
        // Drain in-flight traffic (e.g. final write-backs) so the
        // machine is quiescent: read_word and validate_coherence see the
        // committed state.
        while let Some((at, event)) = self.events.pop() {
            if at > limit {
                return Err(RunError::CycleLimit { limit, active: 0 });
            }
            self.now = at;
            self.events_processed += 1;
            self.check_wall(started)?;
            self.dispatch(event)?;
            if self.should_pause(stop) {
                self.paused = true;
                return Ok(RunOutcome::Paused(RunReport {
                    cycles: self.now,
                    events: self.events_processed,
                }));
            }
        }
        if self.paranoid {
            self.quiescence_check(finished)?;
        }
        Ok(RunOutcome::Done(RunReport {
            cycles: finished,
            events: self.events_processed,
        }))
    }

    /// Sets (or clears) the wall-clock budget applied to each
    /// [`run`](Machine::run) / [`run_until`](Machine::run_until) call,
    /// overriding the `DSM_WALL_LIMIT` environment variable read at
    /// build time.
    pub fn set_wall_limit(&mut self, limit: Option<Duration>) {
        self.wall_limit = limit;
    }

    /// Applies the window faults due at the current time, if any.
    fn poll_faults(&mut self) {
        let fired = match &mut self.injector {
            Some(inj) => inj.poll(self.now.as_u64(), self.cfg.nodes),
            None => return,
        };
        for fault in fired {
            match fault {
                FaultEvent::EvictLine { node } => {
                    let mut out = std::mem::take(&mut self.outbox);
                    if self.caches[node.index()].inject_evict(&mut out).is_some() {
                        self.injected_evictions += 1;
                    }
                    self.route(&mut out);
                    self.outbox = out;
                }
                FaultEvent::WipeReservations { node } => {
                    self.homes[node.index()].wipe_reservations();
                    self.injected_wipes += 1;
                    if let Some(tracer) = &mut self.tracer {
                        if tracer.wants(Category::Resv) {
                            tracer.reservation(self.now, node, "wipe");
                        }
                    }
                }
                FaultEvent::CorruptLine { node } => {
                    // Promote the first shared resident line (stable
                    // iteration order, so replays corrupt the same
                    // line). A cache with no shared line absorbs the
                    // fault silently.
                    let victim = self.caches[node.index()]
                        .cached_lines()
                        .find(|(_, s)| *s == CacheState::Shared)
                        .map(|(l, _)| l);
                    if let Some(line) = victim {
                        if self.caches[node.index()].corrupt_promote_shared(line) {
                            self.injected_corruptions += 1;
                        }
                    }
                }
            }
        }
    }

    /// Fails the run if events keep firing but no operation has retired
    /// for a full watchdog window while at least one is outstanding.
    fn check_watchdog(&mut self) -> Result<(), RunError> {
        if self.watchdog == 0 {
            return Ok(());
        }
        if !self.procs.iter().any(|s| s.current.is_some()) {
            // Nothing outstanding (compute/barrier phases): progress is
            // the program's business, not the protocol's.
            self.last_retire = self.now;
            return Ok(());
        }
        if (self.now - self.last_retire).as_u64() > self.watchdog {
            return Err(RunError::Livelock {
                at: self.now,
                window: self.watchdog,
                procs: self.proc_dumps(),
            });
        }
        Ok(())
    }

    /// Snapshots every processor's blocked-on state for diagnostics.
    fn proc_dumps(&self) -> Vec<ProcDump> {
        self.procs
            .iter()
            .enumerate()
            .map(|(i, s)| ProcDump {
                proc: ProcId::new(i as u32),
                op: s.current.map(|(op, _, _)| op),
                addr: s.current.map(|(op, _, _)| op.addr()),
                issued: s.current.map(|(_, at, _)| at),
                barrier: s.waiting_barrier,
            })
            .collect()
    }

    /// Full paranoid sweep once the machine is quiescent: every global
    /// invariant, message conservation (no half-done transaction may
    /// survive a drained event queue), then the coherence oracle.
    fn quiescence_check(&self, at: Cycle) -> Result<(), RunError> {
        if let Some(violation) = check_invariants(&self.caches, &self.homes, &self.map)
            .into_iter()
            .next()
        {
            return Err(RunError::Invariant { at, violation });
        }
        for (i, cache) in self.caches.iter().enumerate() {
            if cache.busy() {
                return Err(RunError::Invariant {
                    at,
                    violation: InvariantViolation {
                        invariant: "message-conservation",
                        line: cache.pending_line(),
                        nodes: vec![NodeId::new(i as u32)],
                        detail: "cache still has an outstanding request at quiescence".into(),
                    },
                });
            }
        }
        for (i, home) in self.homes.iter().enumerate() {
            if home.busy_lines() > 0 || home.queued_requests() > 0 {
                return Err(RunError::Invariant {
                    at,
                    violation: InvariantViolation {
                        invariant: "message-conservation",
                        line: None,
                        nodes: vec![NodeId::new(i as u32)],
                        detail: format!(
                            "home still busy at quiescence ({} busy lines, {} queued requests)",
                            home.busy_lines(),
                            home.queued_requests()
                        ),
                    },
                });
            }
        }
        if let Err(detail) = self.validate_coherence() {
            return Err(RunError::Invariant {
                at,
                violation: InvariantViolation {
                    invariant: "coherence",
                    line: None,
                    nodes: Vec::new(),
                    detail,
                },
            });
        }
        Ok(())
    }

    /// How many faults the injector has applied so far, as
    /// `(forced evictions, reservation wipes, forced corruptions)`.
    pub fn injected_faults(&self) -> (u64, u64, u64) {
        (
            self.injected_evictions,
            self.injected_wipes,
            self.injected_corruptions,
        )
    }

    /// The fault schedule applied so far (`None` when faults are off) —
    /// the raw material of reproducer shrinking.
    pub fn fault_record(&self) -> Option<&FaultRecord> {
        self.injector.as_ref().map(FaultInjector::record)
    }

    /// The *effective* fault configuration this machine was built with:
    /// the explicit [`MachineConfig::faults`], a [`with_fault_config`]
    /// override, or the `DSM_FAULTS`/`DSM_PARANOID` environment —
    /// whichever won at build time. Reproducer artifacts capture this
    /// so a replay pins identical fault behaviour.
    pub fn fault_config(&self) -> &FaultConfig {
        &self.cfg.faults
    }

    /// Installs (or clears) a candidate-index allow list on the fault
    /// injector, restricting which drawn faults are *applied* without
    /// changing the RNG draw sequence. No-op when faults are off.
    /// Install before running — mid-run installation is sound (queries
    /// are monotone) but makes the run depend on when the call happened.
    pub fn set_fault_filter(&mut self, filter: Option<FaultFilter>) {
        if let Some(inj) = &mut self.injector {
            inj.set_filter(filter);
        }
    }

    /// Total events dispatched since construction — the replay
    /// coordinate used by checkpoints (see [`StopRule::AfterEvents`]).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// A digest of the machine's complete dynamic state: simulated
    /// time, the pending event queue, network ports, every cache, home
    /// directory and memory line, LL/SC reservations, per-processor
    /// progress and RNG streams, server availability, statistics, and
    /// fault-injector position.
    ///
    /// Two machines built from the same configuration that have
    /// dispatched the same event sequence produce equal digests; any
    /// divergence in simulated state changes the digest. This is the
    /// verification primitive of checkpoint/restore: a restored run
    /// proves it reoccupied the checkpointed state by digest equality
    /// before resuming. Diagnostic-only state (tracers, recycling
    /// pools) is excluded — it cannot influence simulation results.
    pub fn state_digest(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_u64(self.now.as_u64());
        h.write_u64(self.events_processed);
        h.write_usize(self.active);
        self.events.digest_with(&mut h, |event, h| match event {
            Event::Deliver(m) => {
                h.write_u8(0);
                m.digest(h);
            }
            // The span word is deliberately not hashed: it is
            // tracer-produced diagnostic state, and digests must agree
            // between traced and untraced runs of the same simulation.
            Event::Process(m, _span) => {
                h.write_u8(1);
                m.digest(h);
            }
            Event::ProcStep(p) => {
                h.write_u8(2);
                h.write_u32(p.as_u32());
            }
            Event::OpDone(p, o) => {
                h.write_u8(3);
                h.write_u32(p.as_u32());
                o.digest(h);
            }
        });
        self.net.digest(&mut h);
        h.write_usize(self.homes.len());
        for home in &self.homes {
            home.digest(&mut h);
        }
        for cache in &self.caches {
            cache.digest(&mut h);
        }
        for proc in &self.procs {
            for w in proc.rng.state() {
                h.write_u64(w);
            }
            h.write_u8(proc.done as u8);
            h.write_u8(proc.blocked as u8);
            match proc.waiting_barrier {
                Some(b) => {
                    h.write_u8(1);
                    h.write_u32(b);
                }
                None => h.write_u8(0),
            }
            match &proc.last {
                Some(r) => {
                    h.write_u8(1);
                    r.digest(&mut h);
                }
                None => h.write_u8(0),
            }
            match proc.last_chain {
                Some(c) => {
                    h.write_u8(1);
                    h.write_u32(c);
                }
                None => h.write_u8(0),
            }
            match &proc.current {
                Some((op, at, sync)) => {
                    h.write_u8(1);
                    op.digest(&mut h);
                    h.write_u64(at.as_u64());
                    h.write_u8(*sync as u8);
                }
                None => h.write_u8(0),
            }
        }
        for c in &self.mem_busy {
            h.write_u64(c.as_u64());
        }
        for c in &self.cache_busy {
            h.write_u64(c.as_u64());
        }
        self.stats.digest(&mut h);
        h.write_u64(self.last_retire.as_u64());
        h.write_u64(self.injected_evictions);
        h.write_u64(self.injected_wipes);
        h.write_u64(self.injected_corruptions);
        match &self.injector {
            Some(inj) => {
                h.write_u8(1);
                inj.digest(&mut h);
            }
            None => h.write_u8(0),
        }
        h.finish()
    }

    /// Runs the per-transition invariant checker over the whole machine
    /// on demand (independent of paranoid mode).
    pub fn check_invariants(&self) -> Vec<InvariantViolation> {
        check_invariants(&self.caches, &self.homes, &self.map)
    }

    /// Test-only corruption hook: illegally promotes a Shared copy of
    /// `line` at `node` to Exclusive, bypassing the protocol. Returns
    /// whether the corruption was applied. Exists so tests can prove the
    /// paranoid checker reports corruption as a structured diagnostic.
    #[doc(hidden)]
    pub fn corrupt_promote_shared(&mut self, node: NodeId, line: LineAddr) -> bool {
        self.caches[node.index()].corrupt_promote_shared(line)
    }

    fn dispatch(&mut self, event: Event) -> Result<(), RunError> {
        match event {
            Event::ProcStep(p) => self.proc_step(p),
            Event::OpDone(p, outcome) => {
                let o = *outcome;
                self.outcome_pool.push(outcome);
                self.op_done(p, o)
            }
            Event::Deliver(msg) => {
                self.deliver(msg);
                Ok(())
            }
            Event::Process(msg, span) => self.process(msg, span),
        }
    }

    /// Enables a message-trace ring buffer holding the last `capacity`
    /// sends, each formatted as `time src->dst line kind`. Useful when
    /// debugging protocol behaviour in tests.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some((
            capacity,
            std::collections::VecDeque::with_capacity(capacity),
        ));
    }

    /// The trace entries recorded so far (oldest first); empty unless
    /// [`enable_trace`](Machine::enable_trace) was called.
    pub fn trace(&self) -> impl Iterator<Item = &str> {
        self.trace
            .iter()
            .flat_map(|(_, q)| q.iter().map(String::as_str))
    }

    /// The structured event tracer, if tracing is enabled (via
    /// [`MachineBuilder::with_trace`] or `DSM_TRACE`).
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_deref()
    }

    /// Mutable access to the tracer, e.g. to attach a custom
    /// [`TraceSink`](dsm_trace::TraceSink) before running.
    pub fn tracer_mut(&mut self) -> Option<&mut Tracer> {
        self.tracer.as_deref_mut()
    }

    /// Attaches a tracer to an already-built machine, replacing any
    /// existing one. Useful when the machine was constructed by a
    /// workload builder that offers no [`MachineBuilder::with_trace`]
    /// hook; attach before [`run`](Machine::run) or the trace will miss
    /// everything already simulated.
    pub fn attach_tracer(&mut self, spec: &TraceSpec) {
        self.tracer = Some(Box::new(Tracer::new(spec, self.cfg.nodes)));
    }

    /// Writes the attached trace sinks to disk (no-op when tracing is
    /// off). [`run`](Machine::run) calls this automatically on both the
    /// success and error paths; calling it again is idempotent because
    /// file names are content-addressed.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the trace files.
    pub fn flush_trace(&mut self) -> std::io::Result<Vec<PathBuf>> {
        let Some(tracer) = &self.tracer else {
            return Ok(Vec::new());
        };
        let paths = tracer.finish(self.cfg.seed)?;
        self.trace_files.clone_from(&paths);
        Ok(paths)
    }

    /// Paths written by the most recent trace flush (empty when tracing
    /// is off).
    pub fn trace_files(&self) -> &[PathBuf] {
        &self.trace_files
    }

    /// Routes freshly emitted messages into the network, draining the
    /// outbox in place so its allocation is reusable.
    fn route(&mut self, out: &mut Outbox) {
        for msg in out.msgs.drain(..) {
            if let Some((cap, q)) = &mut self.trace {
                if q.len() == *cap {
                    q.pop_front();
                }
                q.push_back(format!(
                    "{} {}->{} {} {:?}",
                    self.now,
                    msg.src,
                    msg.dst,
                    msg.line,
                    std::mem::discriminant(&msg.kind)
                ));
            }
            self.stats.msgs.count(msg.kind.class());
            let flits = msg.flits(&self.cfg.params);
            let deliver_at = match &mut self.injector {
                Some(inj) => {
                    let extra = inj.jitter(self.now.as_u64());
                    self.net
                        .send_jittered(self.now, msg.src, msg.dst, flits, extra)
                }
                None => self.net.send(self.now, msg.src, msg.dst, flits),
            };
            if let Some(tracer) = &mut self.tracer {
                if tracer.wants(Category::Msg) {
                    tracer.msg_send(
                        self.now,
                        msg.src,
                        msg.dst,
                        msg.line,
                        msg.kind.label(),
                        flits,
                        self.cfg.hops(msg.src, msg.dst),
                        deliver_at,
                    );
                }
            }
            let boxed = match self.msg_pool.pop() {
                Some(mut b) => {
                    *b = msg;
                    b
                }
                None => Box::new(msg),
            };
            self.events.push(deliver_at, Event::Deliver(boxed));
        }
    }

    fn proc_step(&mut self, p: ProcId) -> Result<(), RunError> {
        let state = &mut self.procs[p.index()];
        if state.done || state.blocked || state.waiting_barrier.is_some() {
            return Ok(());
        }
        let action = {
            let mut ctx = ProcCtx {
                proc: p,
                now: self.now,
                last: state.last.take(),
                last_chain: state.last_chain.take(),
                rng: &mut state.rng,
            };
            state.program.step(&mut ctx)
        };
        match action {
            Action::Compute(cycles) => {
                self.events.push(self.now + cycles, Event::ProcStep(p));
            }
            Action::Barrier(id) => {
                self.procs[p.index()].waiting_barrier = Some(id);
                self.try_release_barrier();
            }
            Action::Done => {
                self.procs[p.index()].done = true;
                self.active -= 1;
                self.try_release_barrier();
            }
            Action::Op(op) => self.issue_op(p, op)?,
        }
        Ok(())
    }

    fn issue_op(&mut self, p: ProcId, op: MemOp) -> Result<(), RunError> {
        // One map lookup answers both "sync line?" and "which policy?".
        let sync_cfg = self.map.sync_config_for(op.addr());
        let is_sync = sync_cfg.is_some();
        if is_sync {
            self.stats.contention.begin(op.addr().as_u64(), p.as_u32());
        }
        self.procs[p.index()].current = Some((op, self.now, is_sync));
        if let Some(tracer) = &mut self.tracer {
            let span = tracer.span_begin(
                self.now,
                p,
                op.label(),
                op.addr().line(self.cfg.params.line_size),
            );
            self.procs[p.index()].span = span;
        }
        let mut out = std::mem::take(&mut self.outbox);
        let completed = self.caches[p.index()]
            .start_op_with(op, sync_cfg.unwrap_or_default(), &mut out)
            .map_err(|error| RunError::Protocol {
                at: self.now,
                error,
            })?;
        self.route(&mut out);
        self.outbox = out;
        // Back to "no span": anything sent later (fault repair,
        // unrelated servicing) is not this operation's doing.
        if let Some(tracer) = &mut self.tracer {
            tracer.set_span_ctx(0);
        }
        match completed {
            Some(outcome) => {
                let latency = self.cfg.params.cache_hit;
                let boxed = self.box_outcome(outcome);
                self.events
                    .push(self.now + latency, Event::OpDone(p, boxed));
                self.procs[p.index()].blocked = true;
            }
            None => {
                self.procs[p.index()].blocked = true;
            }
        }
        Ok(())
    }

    fn op_done(&mut self, p: ProcId, outcome: OpOutcome) -> Result<(), RunError> {
        let Some((op, issued, is_sync)) = self.procs[p.index()].current.take() else {
            return Err(RunError::Protocol {
                at: self.now,
                error: ProtocolError::new(
                    ProtocolErrorKind::MissingRequest,
                    format!("operation completion at {p} with no operation outstanding"),
                ),
            });
        };
        self.last_retire = self.now;
        let cycles = (self.now - issued).as_u64();
        let latency = cycles as f64;
        self.stats.ops += 1;
        self.stats.op_latency.add(latency);
        self.stats.op_latency_hist.record(cycles);
        if outcome.local {
            self.stats.local_ops += 1;
        }
        if is_sync {
            self.stats.sync_ops += 1;
            self.stats.sync_latency.add(latency);
            self.stats
                .sync_latency_hist
                .record((latency / 10.0) as usize);
            self.stats.msgs.record_chain(outcome.chain);
            self.stats.contention.end(op.addr().as_u64(), p.as_u32());
            self.stats.write_runs.access(
                op.addr().as_u64(),
                p.as_u32(),
                op.is_write() && outcome.result.succeeded(),
            );
        }
        let span = std::mem::take(&mut self.procs[p.index()].span);
        if let Some(tracer) = &mut self.tracer {
            let outcome_label = match outcome.result {
                OpResult::CasDone { success: false, .. } => "cas-fail",
                OpResult::ScDone { success: false } => "sc-fail",
                OpResult::Loaded {
                    reserved: false, ..
                } if matches!(op, MemOp::LoadLinked { .. }) => "ll-unreserved",
                _ => "ok",
            };
            tracer.span_end(self.now, p, span, outcome_label);
            if tracer.wants(Category::Op) {
                tracer.op(
                    p,
                    issued,
                    self.now,
                    op.label(),
                    outcome.local,
                    outcome.chain,
                );
            }
            if tracer.wants(Category::Retry) {
                // A failed atomic attempt means the processor's loop
                // will come around again: the raw material of the
                // paper's retry-storm analysis.
                match outcome.result {
                    OpResult::CasDone { success: false, .. } => {
                        tracer.retry(self.now, p, "cas-fail");
                    }
                    OpResult::ScDone { success: false } => {
                        tracer.retry(self.now, p, "sc-fail");
                    }
                    OpResult::Loaded {
                        reserved: false, ..
                    } if matches!(op, MemOp::LoadLinked { .. }) => {
                        tracer.retry(self.now, p, "ll-unreserved");
                    }
                    _ => {}
                }
            }
            if tracer.wants(Category::Resv) {
                if let (MemOp::LoadLinked { .. }, OpResult::Loaded { reserved, .. }) =
                    (op, outcome.result)
                {
                    let home = op
                        .addr()
                        .line(self.cfg.params.line_size)
                        .home(self.cfg.nodes);
                    let label = if reserved {
                        "ll-reserved"
                    } else {
                        "ll-unreserved"
                    };
                    tracer.reservation(self.now, home, label);
                }
            }
        }
        let state = &mut self.procs[p.index()];
        state.blocked = false;
        state.last = Some(outcome.result);
        state.last_chain = Some(outcome.chain);
        self.events
            .push(self.now + self.cfg.params.issue, Event::ProcStep(p));
        Ok(())
    }

    fn deliver(&mut self, msg: Box<Msg>) {
        // Choose the server and its occupancy.
        let node = msg.dst.index();
        let (busy, service) = if msg.kind.home_bound() {
            (
                &mut self.mem_busy[node],
                self.cfg.params.dir_access + self.cfg.params.mem_access,
            )
        } else {
            (&mut self.cache_busy[node], self.cfg.params.cache_ctrl)
        };
        let start = self.now.max(*busy);
        let finish = start + service;
        *busy = finish;
        let mut span = 0;
        if let Some(tracer) = &mut self.tracer {
            if tracer.wants(Category::Msg) {
                span = tracer.msg_service(
                    start,
                    finish,
                    msg.src,
                    msg.dst,
                    msg.kind.label(),
                    msg.kind.home_bound(),
                    msg.kind.service_phase(),
                );
            }
        }
        self.events.push(finish, Event::Process(msg, span));
    }

    /// Wraps a completion in a (pooled) box for the event queue.
    fn box_outcome(&mut self, outcome: OpOutcome) -> Box<OpOutcome> {
        match self.outcome_pool.pop() {
            Some(mut b) => {
                *b = outcome;
                b
            }
            None => Box::new(outcome),
        }
    }

    /// Moves the message out of its box and returns the box to the
    /// recycling pool.
    fn recycle(&mut self, mut msg: Box<Msg>) -> Msg {
        let taken = std::mem::replace(
            &mut *msg,
            Msg {
                src: NodeId::new(0),
                dst: NodeId::new(0),
                line: dsm_sim::LineAddr::new(0),
                addr: dsm_sim::Addr::new(0),
                proc: ProcId::new(0),
                chain: 0,
                kind: dsm_protocol::MsgKind::GetS,
            },
        );
        self.msg_pool.push(msg);
        taken
    }

    fn process(&mut self, msg: Box<Msg>, span: u64) -> Result<(), RunError> {
        let node = msg.dst.index();
        let dst = msg.dst;
        let line = msg.line;
        let msg = self.recycle(msg);
        // Everything the handlers send below — forwards, invalidation
        // fan-out, replies — is on behalf of the operation that caused
        // this message, so those flows inherit its span.
        if let Some(tracer) = &mut self.tracer {
            tracer.set_span_ctx(span);
        }
        // Coherence-state probes bracket the handler call; the flags are
        // false when tracing is off, so the probes cost nothing then.
        let want_state = self
            .tracer
            .as_ref()
            .is_some_and(|t| t.wants(Category::State));
        let want_queue = self
            .tracer
            .as_ref()
            .is_some_and(|t| t.wants(Category::Queue));
        let mut out = std::mem::take(&mut self.outbox);
        if msg.kind.home_bound() {
            let before = want_state.then(|| dir_label(self.homes[node].dir_state(line)));
            self.homes[node]
                .handle(msg, &self.map, &mut out)
                .map_err(|error| RunError::Protocol {
                    at: self.now,
                    error,
                })?;
            if let Some(before) = before {
                let after = dir_label(self.homes[node].dir_state(line));
                if after != before {
                    if let Some(tracer) = &mut self.tracer {
                        tracer.dir_transition(self.now, dst, line, before, after);
                    }
                }
            }
            if want_queue {
                let depth =
                    (self.homes[node].queued_requests() + self.homes[node].busy_lines()) as u64;
                if let Some(tracer) = &mut self.tracer {
                    tracer.queue_depth(self.now, dst, depth);
                }
            }
            self.route(&mut out);
        } else {
            let proc = ProcId::new(msg.dst.as_u32());
            let before = want_state.then(|| cache_label(self.caches[node].cache_state(line)));
            let completed =
                self.caches[node]
                    .handle(msg, &mut out)
                    .map_err(|error| RunError::Protocol {
                        at: self.now,
                        error,
                    })?;
            if let Some(before) = before {
                let after = cache_label(self.caches[node].cache_state(line));
                if after != before {
                    if let Some(tracer) = &mut self.tracer {
                        tracer.cache_transition(self.now, dst, line, before, after);
                    }
                }
            }
            self.route(&mut out);
            if let Some(outcome) = completed {
                let boxed = self.box_outcome(outcome);
                self.events.push(self.now, Event::OpDone(proc, boxed));
            }
        }
        self.outbox = out;
        if let Some(tracer) = &mut self.tracer {
            tracer.set_span_ctx(0);
        }
        if self.paranoid {
            if let Some(violation) = check_line(&self.caches, &self.homes, &self.map, line)
                .into_iter()
                .next()
            {
                return Err(RunError::Invariant {
                    at: self.now,
                    violation,
                });
            }
        }
        Ok(())
    }

    /// Releases the barrier if every non-terminated processor has
    /// arrived (constant-time barrier: everyone resumes *now*).
    fn try_release_barrier(&mut self) {
        let mut waiting = 0;
        let mut id: Option<u32> = None;
        for s in &self.procs {
            if s.done {
                continue;
            }
            match s.waiting_barrier {
                Some(b) => {
                    if let Some(prev) = id {
                        assert_eq!(prev, b, "processors waiting at different barriers");
                    }
                    id = Some(b);
                    waiting += 1;
                }
                None => return, // someone is still running
            }
        }
        if waiting == 0 {
            return;
        }
        for (i, s) in self.procs.iter_mut().enumerate() {
            if !s.done && s.waiting_barrier.is_some() {
                s.waiting_barrier = None;
                self.events
                    .push(self.now, Event::ProcStep(ProcId::new(i as u32)));
            }
        }
    }

    /// Checks coherence invariants. Only valid when the machine is
    /// quiescent (after [`run`](Machine::run) returns successfully).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant:
    /// single-writer/multiple-reader, directory/cache agreement, and
    /// value agreement between shared copies and memory.
    pub fn validate_coherence(&self) -> Result<(), String> {
        use std::collections::HashMap;
        let mut copies: HashMap<dsm_sim::LineAddr, Vec<(NodeId, CacheState)>> = HashMap::new();
        for (i, cache) in self.caches.iter().enumerate() {
            for (line, state) in cache.cached_lines() {
                copies
                    .entry(line)
                    .or_default()
                    .push((NodeId::new(i as u32), state));
            }
        }
        for (line, holders) in &copies {
            let exclusives: Vec<NodeId> = holders
                .iter()
                .filter(|(_, s)| *s == CacheState::Exclusive)
                .map(|(n, _)| *n)
                .collect();
            if exclusives.len() > 1 {
                return Err(format!(
                    "line {line}: multiple exclusive copies {exclusives:?}"
                ));
            }
            if exclusives.len() == 1 && holders.len() > 1 {
                return Err(format!(
                    "line {line}: exclusive copy at {} coexists with shared copies",
                    exclusives[0]
                ));
            }
            let home = line.home(self.cfg.nodes);
            let dir = self.homes[home.index()].dir_state(*line);
            match (&dir, exclusives.first()) {
                (DirState::Dirty(owner), Some(e)) if owner == e => {}
                (DirState::Dirty(owner), _) => {
                    return Err(format!(
                        "line {line}: directory says dirty at {owner} but cache state disagrees"
                    ));
                }
                (DirState::Shared(sharers), None) => {
                    for (n, _) in holders {
                        if !sharers.contains(*n) {
                            return Err(format!(
                                "line {line}: {n} holds a shared copy unknown to the directory"
                            ));
                        }
                    }
                    // Shared copies must match memory.
                    let base = line.base(self.cfg.params.line_size);
                    for w in 0..(self.cfg.params.line_size / 8) {
                        let addr = base + w * 8;
                        let mem = self.homes[home.index()].peek_word(addr);
                        for (n, _) in holders {
                            let cached = self.caches[n.index()]
                                .peek_word(addr)
                                .expect("holder has the line");
                            if cached != mem {
                                return Err(format!(
                                    "line {line} word {w}: {n} caches {cached}, memory has {mem}"
                                ));
                            }
                        }
                    }
                }
                (DirState::Uncached, None) => {
                    // Silently evicted shared copies leave stale sharers,
                    // never stale cached copies; a cached copy with an
                    // Uncached directory is a bug.
                    return Err(format!(
                        "line {line}: cached copies but directory is uncached"
                    ));
                }
                (DirState::Shared(_), Some(e)) => {
                    return Err(format!(
                        "line {line}: directory says shared but {e} holds it exclusively"
                    ));
                }
                (DirState::Uncached, Some(e)) => {
                    return Err(format!(
                        "line {line}: directory says uncached but {e} holds it exclusively"
                    ));
                }
            }
        }
        Ok(())
    }
}
