//! The machine simulator: processors + cache controllers + home nodes +
//! network, driven by a discrete-event loop.
//!
//! The engine is split in two layers:
//!
//! * [`Core`] — the shardable simulation state (a contiguous node
//!   range: homes, caches, processors, network ports, per-node event
//!   queue and statistics) plus the event dispatcher. A serial run uses
//!   one full-range core; a PDES run ([`crate::pdes`]) splits the core
//!   into per-worker shards and merges them back afterwards.
//! * [`Machine`] — the public wrapper owning the run policy and the
//!   serial-only instrumentation (tracer, fault injector, paranoid
//!   checking, debug ring), which all force the serial path so the
//!   parallel dispatcher never has to synchronize on them.
//!
//! Every event carries an explicit 128-bit tie-break key (see
//! [`key_wire`] / [`key_local`] / [`key_barrier`]): same-cycle events
//! dispatch in key order, the key of an event is derived only from
//! deterministic per-node counters, and a key names the node it
//! belongs to in its top bits. That is what makes the parallel engine
//! bit-identical to the serial one — each shard dispatches exactly the
//! subsequence of the serial dispatch order that touches its nodes.

use crate::program::{Action, ProcCtx, Program};
use crate::stats::{merge_node_stats, MachineStats, NodeStats, SyncRec, SyncRecKind};
use dsm_mesh::{Mesh, NetPorts};
use dsm_protocol::{
    check_invariants, check_line, AddressMap, CacheNode, CacheState, DirState, HomeNode,
    InvariantViolation, MemOp, Msg, OpOutcome, OpResult, Outbox, ProtocolError, ProtocolErrorKind,
    SyncConfig, Value,
};
use dsm_sim::{
    Addr, Cycle, EventQueue, FaultConfig, FaultEvent, FaultFilter, FaultInjector, FaultRecord,
    LineAddr, MachineConfig, NodeId, ProcId, ProtoSpec, ProtoVariant, SimRng, StableHasher,
};
use dsm_trace::{Category, StateLabel, TraceSpec, Tracer};
use std::fmt;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Converts a directory state into the label-shaped form trace events
/// carry (`dsm-trace` does not depend on the protocol crate).
fn dir_label(state: &DirState) -> StateLabel {
    match state {
        DirState::Uncached => StateLabel::plain("Uncached"),
        DirState::Shared(sharers) => StateLabel {
            name: "Shared",
            n: sharers.len() as u32,
        },
        DirState::Dirty(owner) => StateLabel {
            name: "Dirty",
            n: owner.as_u32(),
        },
    }
}

/// Converts a cache-line state (`None` = not resident) into a label.
fn cache_label(state: Option<CacheState>) -> StateLabel {
    match state {
        None => StateLabel::plain("Invalid"),
        Some(CacheState::Shared) => StateLabel::plain("Shared"),
        Some(CacheState::Exclusive) => StateLabel::plain("Exclusive"),
    }
}

/// The state of one processor at the moment a run failed, for deadlock
/// and livelock diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcDump {
    /// Which processor.
    pub proc: ProcId,
    /// The outstanding memory operation, if the processor was blocked on
    /// one.
    pub op: Option<MemOp>,
    /// The target address of that operation.
    pub addr: Option<Addr>,
    /// When the outstanding operation was issued.
    pub issued: Option<Cycle>,
    /// The barrier the processor was waiting at, if any.
    pub barrier: Option<u32>,
}

impl fmt::Display for ProcDump {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.proc)?;
        match (self.op, self.issued) {
            (Some(op), Some(at)) => write!(f, " blocked on {op:?} issued at {at}")?,
            (Some(op), None) => write!(f, " blocked on {op:?}")?,
            _ => {}
        }
        if let Some(b) = self.barrier {
            write!(f, " waiting at barrier {b}")?;
        }
        Ok(())
    }
}

/// Error returned when a run cannot complete: cycle limit, deadlock,
/// livelock, a protocol-state error, or (in paranoid mode) a violated
/// protocol invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The cycle limit was reached with processors still active.
    CycleLimit {
        /// The limit that was exhausted.
        limit: Cycle,
        /// Processors that had not terminated.
        active: usize,
    },
    /// The event queue drained while processors were still blocked —
    /// a protocol or program bug.
    Deadlock {
        /// Time of the last processed event.
        at: Cycle,
        /// Processors that had not terminated.
        active: usize,
        /// Per-processor blocked-on state at the moment of deadlock.
        procs: Vec<ProcDump>,
    },
    /// Events kept firing but no memory operation retired for a full
    /// watchdog window ([`FaultConfig::watchdog`] cycles) while at least
    /// one processor had an operation outstanding.
    Livelock {
        /// Time at which the watchdog fired.
        at: Cycle,
        /// The retirement-progress window that elapsed, in cycles.
        window: u64,
        /// Per-processor blocked-on state when the watchdog fired.
        procs: Vec<ProcDump>,
    },
    /// A protocol engine reached a state it cannot legally handle.
    Protocol {
        /// Time of the offending transition.
        at: Cycle,
        /// The structured protocol diagnostic.
        error: ProtocolError,
    },
    /// Paranoid mode found a protocol invariant violated after a
    /// transition (or the quiescence sweep failed at run end).
    Invariant {
        /// Time of the check that failed.
        at: Cycle,
        /// The first violation found.
        violation: InvariantViolation,
    },
    /// The host wall-clock budget for this run elapsed before the
    /// simulation finished. Unlike every other variant this is a
    /// *transient* host condition, not a property of the simulated
    /// machine: rerunning the same job on a less loaded host may well
    /// succeed, so supervisors retry it and never cache it.
    Timeout {
        /// Simulated time when the budget check fired.
        at: Cycle,
        /// Host milliseconds actually spent.
        elapsed_ms: u64,
        /// The wall-clock budget that was exhausted, in milliseconds.
        limit_ms: u64,
    },
}

impl RunError {
    /// `true` for failures caused by the *host* (wall-clock timeouts)
    /// rather than by the simulated machine. Transient failures are
    /// worth retrying and must never be cached or treated as evidence
    /// of a protocol bug; deterministic failures (deadlock, livelock,
    /// protocol errors, invariant violations, cycle limits) reproduce
    /// under replay and are legitimate cache entries and shrink targets.
    pub fn is_transient(&self) -> bool {
        matches!(self, RunError::Timeout { .. })
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::CycleLimit { limit, active } => {
                write!(
                    f,
                    "cycle limit {limit} reached with {active} processors active"
                )
            }
            RunError::Deadlock { at, active, procs } => {
                write!(
                    f,
                    "deadlock at {at}: {active} processors blocked with no pending events"
                )?;
                for p in procs
                    .iter()
                    .filter(|p| p.op.is_some() || p.barrier.is_some())
                {
                    write!(f, "; {p}")?;
                }
                Ok(())
            }
            RunError::Livelock { at, window, procs } => {
                write!(f, "livelock at {at}: no op retired for {window} cycles")?;
                for p in procs.iter().filter(|p| p.op.is_some()) {
                    write!(f, "; {p}")?;
                }
                Ok(())
            }
            RunError::Protocol { at, error } => write!(f, "at {at}: {error}"),
            RunError::Invariant { at, violation } => write!(f, "at {at}: {violation}"),
            RunError::Timeout {
                at,
                elapsed_ms,
                limit_ms,
            } => write!(
                f,
                "wall-clock budget exhausted at {at}: {elapsed_ms}ms spent, limit {limit_ms}ms \
                 (transient host condition — retry)"
            ),
        }
    }
}

impl std::error::Error for RunError {}

/// Summary of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunReport {
    /// Simulated time at which the last processor terminated.
    pub cycles: Cycle,
    /// Total discrete events processed.
    pub events: u64,
}

/// Where [`Machine::run_until`] should pause, if anywhere.
///
/// Pauses happen on event boundaries: the rule is checked after each
/// dispatched event, so a paused machine holds a state that an
/// uninterrupted run passes through exactly. That makes
/// [`StopRule::AfterEvents`] the replay coordinate of the checkpoint
/// system — rebuilding the same machine and pausing after the same
/// event count reproduces the paused state bit for bit.
///
/// A stop rule other than [`StopRule::None`] forces the serial engine
/// (worker setting ignored): pause points are defined by the global
/// event order, which only the serial loop observes directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopRule {
    /// Never pause (equivalent to [`Machine::run`]).
    None,
    /// Pause after the first event dispatched at or beyond this time.
    PauseAt(Cycle),
    /// Pause once this many events (counted from machine construction)
    /// have been dispatched.
    AfterEvents(u64),
}

/// What [`Machine::run_until`] returned: a finished run or a pause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every processor terminated and the machine is quiescent.
    Done(RunReport),
    /// The stop rule fired; call [`Machine::run_until`] again to resume.
    Paused(RunReport),
}

impl RunOutcome {
    /// The report, whether the run finished or paused.
    pub fn report(&self) -> RunReport {
        match *self {
            RunOutcome::Done(r) | RunOutcome::Paused(r) => r,
        }
    }
}

// ---------------------------------------------------------------------
// Canonical event keys
// ---------------------------------------------------------------------
//
// Every queued event carries a `u128` key with the layout
//
//   bits 96..128  node the event belongs to (dispatch shard)
//   bits 88..96   rank: 0 = Wire, 1 = Deliver, 2 = local, 3 = barrier
//   bits  0..88   rank-specific sub-key
//
// Same-cycle events dispatch in ascending key order. Because the node
// occupies the top bits, the serial dispatch order visits same-cycle
// events grouped by node — so a per-node (per-shard) dispatch order is
// exactly the serial order restricted to that node, which is the
// invariant the PDES engine rides on. Sub-keys come from per-node
// monotone counters (the network's per-source launch sequence for
// wire/deliver events, `Core::local_seq` for local events), never from
// global state.

/// Bit position of the rank field in an event key.
pub(crate) const RANK_SHIFT: u32 = 88;

/// Key of a [`Event::Wire`] arrival: destination node, rank 0, then
/// `(src, launch_seq)` — the per-source FIFO coordinate.
#[inline]
pub(crate) fn key_wire(dst: NodeId, src: NodeId, seq: u64) -> u128 {
    debug_assert!(seq < 1 << 56, "launch sequence overflow");
    (u128::from(dst.as_u32()) << 96) | (u128::from(src.as_u32()) << 56) | u128::from(seq)
}

/// Key of a local event (`Process`, `ProcStep`, `OpDone`): node, rank
/// 2, then the node's monotone local sequence number.
#[inline]
pub(crate) fn key_local(node: u32, seq: u64) -> u128 {
    (u128::from(node) << 96) | (2u128 << RANK_SHIFT) | u128::from(seq)
}

/// Key of a barrier-release `ProcStep`: node, rank 3. Rank 3 sorts
/// after every other same-cycle event of the node, which matches the
/// serial engine where the release is pushed while dispatching the
/// trigger event (the last arrival) and therefore runs after all
/// already-queued same-cycle work.
#[inline]
pub(crate) fn key_barrier(node: u32) -> u128 {
    (u128::from(node) << 96) | (3u128 << RANK_SHIFT) | u128::from(node)
}

/// The node (= dispatch shard coordinate) an event key belongs to.
#[inline]
pub(crate) fn key_node(key: u128) -> u32 {
    (key >> 96) as u32
}

#[derive(Debug)]
pub(crate) enum Event {
    /// A message's head flit reached its destination's network exit
    /// port (split-phase network, phase 2 pending): the destination
    /// shard runs [`NetPorts::eject`] to serialize it through the exit
    /// port and learn the delivery time.
    Wire(Box<Msg>),
    /// A message arrived at its destination (exit port included).
    ///
    /// Messages are boxed so a queue entry stays pointer-sized: every
    /// message transits the queue two or three times and a `Msg` is
    /// over a hundred bytes, so by-value events would memcpy each
    /// message through the heap several extra times.
    Deliver(Box<Msg>),
    /// A server (memory module or cache controller) finished processing
    /// a message. The second field is the operation span the message
    /// works for (0 when tracing is off or the flow is span-less); it
    /// bridges the service-start → service-finish gap so protocol
    /// handler output inherits the requester's span. Diagnostic-only:
    /// it never influences simulation behaviour and is excluded from
    /// [`Machine::state_digest`] like the tracer that produces it.
    Process(Box<Msg>, u64),
    /// A processor is ready for its next program step.
    ProcStep(ProcId),
    /// A processor's outstanding operation completed.
    ///
    /// Boxed for the same reason as messages: completions outnumber
    /// every other event in cache-friendly workloads, and a slim queue
    /// entry halves the bytes the time wheel has to shuffle per event.
    /// The boxes come from (and return to) a recycling pool, so no
    /// allocation happens at steady state.
    OpDone(ProcId, Box<OpOutcome>),
}

/// What a dispatched event did to the global run condition — the only
/// two effects that need cross-shard coordination. The serial loop
/// reacts by scanning for a barrier release; the PDES coordinator
/// folds them into its generation bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Effect {
    /// Nothing the scheduler needs to know about.
    None,
    /// A processor arrived at a barrier.
    Arrived,
    /// A processor terminated.
    Finished,
}

/// The debug message-trace ring buffer: `(capacity, entries)`.
pub(crate) type TraceRing = (usize, std::collections::VecDeque<String>);

/// Everything a [`Core`] needs from its environment while dispatching:
/// instrumentation (tracer, debug ring, fault jitter, paranoid flag)
/// and the cross-shard message transport. The serial engine passes a
/// [`SerialIo`] borrowing the machine's instrumentation; shards pass a
/// transport that pushes into inter-worker channels and report no
/// instrumentation (those modes force the serial path).
pub(crate) trait ShardIo {
    /// Fault-injected extra network delay for a message sent now.
    fn jitter(&mut self, _now: Cycle) -> u64 {
        0
    }
    /// The structured tracer, when tracing is on.
    fn tracer(&mut self) -> Option<&mut Tracer> {
        None
    }
    /// The debug message ring, when enabled.
    fn ring(&mut self) -> Option<&mut TraceRing> {
        None
    }
    /// Run the per-transition invariant checker.
    fn paranoid(&self) -> bool {
        false
    }
    /// Hand a message whose destination is outside this core's range to
    /// the cross-shard transport, keyed for deterministic merge.
    fn send_remote(&mut self, wire_at: Cycle, key: u128, msg: Msg);
}

struct ProcState {
    program: Box<dyn Program>,
    rng: SimRng,
    done: bool,
    blocked: bool,
    waiting_barrier: Option<u32>,
    last: Option<OpResult>,
    last_chain: Option<u32>,
    /// (op, issue time, tracked-as-sync) of the outstanding operation.
    current: Option<(MemOp, Cycle, bool)>,
    /// The trace span of the outstanding operation (0 = none).
    /// Diagnostic-only; excluded from [`Machine::state_digest`].
    span: u64,
}

// ---------------------------------------------------------------------
// Core: the shardable engine
// ---------------------------------------------------------------------

/// The shardable simulation state for a contiguous node range
/// `[lo, hi)` plus the event dispatcher that advances it.
///
/// A serial run owns one full-range core. A PDES run splits the core
/// into per-worker shards ([`Core::split_off`]); each shard is a fully
/// self-contained simulator for its nodes — its own event queue,
/// network ports ([`NetPorts::split`]), statistics accumulators and
/// recycling pools — communicating with other shards only through
/// keyed cross-shard messages ([`ShardIo::send_remote`]) and the
/// coordinator's barrier/termination protocol. [`Core::absorb`] puts
/// the machine back together.
pub(crate) struct Core {
    /// First node owned by this core.
    pub(crate) lo: u32,
    /// One past the last node owned by this core.
    pub(crate) hi: u32,
    pub(crate) cfg: MachineConfig,
    pub(crate) map: AddressMap,
    pub(crate) mesh: Mesh,
    pub(crate) now: Cycle,
    pub(crate) events: EventQueue<Event>,
    pub(crate) ports: NetPorts,
    homes: Vec<HomeNode>,
    caches: Vec<CacheNode>,
    procs: Vec<ProcState>,
    /// Per-node memory-module server availability.
    mem_busy: Vec<Cycle>,
    /// Per-node cache-controller server availability.
    cache_busy: Vec<Cycle>,
    /// Per-node statistics, merged on demand (canonical node order).
    pub(crate) nstats: Vec<NodeStats>,
    /// Append-only log of sync begin/end records; replayed in canonical
    /// coordinate order when global statistics are read.
    pub(crate) sync_log: Vec<SyncRec>,
    /// Per-node monotone sequence for local event keys.
    local_seq: Vec<u64>,
    /// Per-node monotone sequence for sync-log coordinates.
    sync_seq: Vec<u64>,
    /// Non-terminated processors in this core's range.
    pub(crate) active: usize,
    pub(crate) events_processed: u64,
    /// Last time a memory operation retired (watchdog bookkeeping).
    pub(crate) last_retire: Cycle,
    /// Reusable outbox: protocol handlers fill it, [`Core::route`]
    /// drains it in place, and the backing vector's capacity survives
    /// from event to event instead of being reallocated per dispatch.
    outbox: Outbox,
    /// Recycled message boxes: every in-flight message lives in a
    /// `Box<Msg>` (see [`Event`]), and at steady state the simulator
    /// would otherwise pay a malloc/free pair per message. The boxing
    /// is the point — these pools hold ready-made heap allocations for
    /// [`Event`] payloads — so clippy's vec_box (which assumes the
    /// indirection is accidental) does not apply.
    #[allow(clippy::vec_box)]
    msg_pool: Vec<Box<Msg>>,
    /// Recycled completion boxes, same idea as `msg_pool` but for
    /// [`Event::OpDone`] payloads.
    #[allow(clippy::vec_box)]
    outcome_pool: Vec<Box<OpOutcome>>,
}

/// Partitions `nodes` into `workers` contiguous shard ranges
/// `(lo, count)`, remainder spread over the first shards.
pub(crate) fn shard_bounds(nodes: u32, workers: usize) -> Vec<(u32, u32)> {
    let w = (workers.max(1) as u32).min(nodes.max(1));
    let base = nodes / w;
    let rem = nodes % w;
    let mut out = Vec::with_capacity(w as usize);
    let mut lo = 0;
    for i in 0..w {
        let count = base + u32::from(i < rem);
        out.push((lo, count));
        lo += count;
    }
    out
}

/// Which shard of `bounds` owns `node`.
pub(crate) fn shard_of(bounds: &[(u32, u32)], node: u32) -> usize {
    bounds
        .iter()
        .position(|&(lo, count)| node >= lo && node < lo + count)
        .expect("node outside every shard")
}

impl Core {
    /// Local index of a node in this core's vectors.
    #[inline]
    fn li(&self, node: u32) -> usize {
        debug_assert!(
            node >= self.lo && node < self.hi,
            "node {node} outside shard [{}, {})",
            self.lo,
            self.hi
        );
        (node - self.lo) as usize
    }

    /// `true` if this core simulates `node`.
    #[inline]
    fn owns(&self, node: u32) -> bool {
        node >= self.lo && node < self.hi
    }

    /// Pushes a local event with the node's next monotone key.
    fn push_local(&mut self, at: Cycle, node: u32, event: Event) {
        let i = self.li(node);
        let key = key_local(node, self.local_seq[i]);
        self.local_seq[i] += 1;
        self.events.push_keyed(at, key, event);
    }

    /// Accepts a cross-shard message from the transport: re-boxes it
    /// from the local pool and queues its wire arrival under the
    /// sender-assigned key.
    pub(crate) fn push_remote(&mut self, wire_at: Cycle, key: u128, msg: Msg) {
        let boxed = self.box_msg(msg);
        self.events.push_keyed(wire_at, key, Event::Wire(boxed));
    }

    /// Wraps a message in a (pooled) box for the event queue.
    fn box_msg(&mut self, msg: Msg) -> Box<Msg> {
        match self.msg_pool.pop() {
            Some(mut b) => {
                *b = msg;
                b
            }
            None => Box::new(msg),
        }
    }

    /// Wraps a completion in a (pooled) box for the event queue.
    fn box_outcome(&mut self, outcome: OpOutcome) -> Box<OpOutcome> {
        match self.outcome_pool.pop() {
            Some(mut b) => {
                *b = outcome;
                b
            }
            None => Box::new(outcome),
        }
    }

    /// Moves the message out of its box and returns the box to the
    /// recycling pool.
    fn recycle(&mut self, mut msg: Box<Msg>) -> Msg {
        let taken = std::mem::replace(
            &mut *msg,
            Msg {
                src: NodeId::new(0),
                dst: NodeId::new(0),
                line: dsm_sim::LineAddr::new(0),
                addr: dsm_sim::Addr::new(0),
                proc: ProcId::new(0),
                chain: 0,
                kind: dsm_protocol::MsgKind::GetS,
            },
        );
        self.msg_pool.push(msg);
        taken
    }

    /// Dispatches one event. `key` is the event's queue key (needed to
    /// derive the delivery key of a wire arrival).
    pub(crate) fn dispatch(
        &mut self,
        key: u128,
        event: Event,
        io: &mut impl ShardIo,
    ) -> Result<Effect, RunError> {
        match event {
            Event::ProcStep(p) => self.proc_step(p, io),
            Event::OpDone(p, outcome) => {
                let o = *outcome;
                self.outcome_pool.push(outcome);
                self.op_done(p, o, io)?;
                Ok(Effect::None)
            }
            Event::Wire(msg) => {
                self.wire(key, msg, io);
                Ok(Effect::None)
            }
            Event::Deliver(msg) => {
                self.deliver(msg, io);
                Ok(Effect::None)
            }
            Event::Process(msg, span) => {
                self.process(msg, span, io)?;
                Ok(Effect::None)
            }
        }
    }

    /// Routes freshly emitted messages into the network, draining the
    /// outbox in place so its allocation is reusable. Phase 1 of the
    /// split-phase network: the *source* shard serializes the message
    /// through its entry port and learns the wire-arrival time; the
    /// destination shard finishes the job in [`Core::wire`].
    fn route(&mut self, out: &mut Outbox, io: &mut impl ShardIo) {
        for msg in out.msgs.drain(..) {
            if let Some((cap, q)) = io.ring() {
                if q.len() == *cap {
                    q.pop_front();
                }
                q.push_back(format!(
                    "{} {}->{} {} {:?}",
                    self.now,
                    msg.src,
                    msg.dst,
                    msg.line,
                    std::mem::discriminant(&msg.kind)
                ));
            }
            let src_li = self.li(msg.src.as_u32());
            self.nstats[src_li].msgs.count(msg.kind.class());
            let flits = msg.flits(&self.cfg.params);
            let extra = io.jitter(self.now);
            let (wire_at, seq) = self.ports.launch(
                &self.cfg.params,
                &self.mesh,
                self.now,
                msg.src,
                msg.dst,
                flits,
                extra,
            );
            if let Some(tracer) = io.tracer() {
                if tracer.wants(Category::Msg) {
                    // Wire arrival, not final delivery: the exit port is
                    // the destination's business and unknown at launch.
                    tracer.msg_send(
                        self.now,
                        msg.src,
                        msg.dst,
                        msg.line,
                        msg.kind.label(),
                        flits,
                        self.cfg.hops(msg.src, msg.dst),
                        wire_at,
                    );
                }
            }
            let key = key_wire(msg.dst, msg.src, seq);
            if self.owns(msg.dst.as_u32()) {
                let boxed = self.box_msg(msg);
                self.events.push_keyed(wire_at, key, Event::Wire(boxed));
            } else {
                io.send_remote(wire_at, key, msg);
            }
        }
    }

    /// Phase 2 of the split-phase network: the destination serializes
    /// the arrived message through its exit port. When the exit port is
    /// free the message is delivered inline (no extra queue transit).
    fn wire(&mut self, key: u128, msg: Box<Msg>, io: &mut impl ShardIo) {
        let flits = msg.flits(&self.cfg.params);
        let delivered = self
            .ports
            .eject(&self.cfg.params, self.now, msg.src, msg.dst, flits);
        if delivered == self.now {
            self.deliver(msg, io);
        } else {
            self.events
                .push_keyed(delivered, key | (1u128 << RANK_SHIFT), Event::Deliver(msg));
        }
    }

    /// A message reached its destination: queue it for the appropriate
    /// server (memory module or cache controller).
    fn deliver(&mut self, msg: Box<Msg>, io: &mut impl ShardIo) {
        let node = self.li(msg.dst.as_u32());
        let (busy, service) = if msg.kind.home_bound() {
            (
                &mut self.mem_busy[node],
                self.cfg.params.dir_access + self.cfg.params.mem_access,
            )
        } else {
            (&mut self.cache_busy[node], self.cfg.params.cache_ctrl)
        };
        let start = self.now.max(*busy);
        let finish = start + service;
        *busy = finish;
        let mut span = 0;
        if let Some(tracer) = io.tracer() {
            if tracer.wants(Category::Msg) {
                span = tracer.msg_service(
                    start,
                    finish,
                    msg.src,
                    msg.dst,
                    msg.kind.label(),
                    msg.kind.home_bound(),
                    msg.kind.service_phase(),
                );
            }
        }
        let dst = msg.dst.as_u32();
        self.push_local(finish, dst, Event::Process(msg, span));
    }

    fn proc_step(&mut self, p: ProcId, io: &mut impl ShardIo) -> Result<Effect, RunError> {
        let i = self.li(p.as_u32());
        let state = &mut self.procs[i];
        if state.done || state.blocked || state.waiting_barrier.is_some() {
            return Ok(Effect::None);
        }
        let action = {
            let mut ctx = ProcCtx {
                proc: p,
                now: self.now,
                last: state.last.take(),
                last_chain: state.last_chain.take(),
                rng: &mut state.rng,
            };
            state.program.step(&mut ctx)
        };
        match action {
            Action::Compute(cycles) => {
                self.push_local(self.now + cycles, p.as_u32(), Event::ProcStep(p));
                Ok(Effect::None)
            }
            Action::Barrier(id) => {
                self.procs[i].waiting_barrier = Some(id);
                Ok(Effect::Arrived)
            }
            Action::Done => {
                self.procs[i].done = true;
                self.active -= 1;
                Ok(Effect::Finished)
            }
            Action::Op(op) => {
                self.issue_op(p, op, io)?;
                Ok(Effect::None)
            }
        }
    }

    fn issue_op(&mut self, p: ProcId, op: MemOp, io: &mut impl ShardIo) -> Result<(), RunError> {
        // One map lookup answers both "sync line?" and "which policy?".
        let sync_cfg = self.map.sync_config_for(op.addr());
        let is_sync = sync_cfg.is_some();
        let i = self.li(p.as_u32());
        if is_sync {
            let seq = self.sync_seq[i];
            self.sync_seq[i] += 1;
            self.sync_log.push(SyncRec {
                at: self.now.as_u64(),
                proc: p.as_u32(),
                seq,
                addr: op.addr().as_u64(),
                kind: SyncRecKind::Begin,
            });
        }
        self.procs[i].current = Some((op, self.now, is_sync));
        if let Some(tracer) = io.tracer() {
            let span = tracer.span_begin(
                self.now,
                p,
                op.label(),
                op.addr().line(self.cfg.params.line_size),
            );
            self.procs[i].span = span;
        }
        let mut out = std::mem::replace(&mut self.outbox, Outbox::new());
        let completed = self.caches[i]
            .start_op_with(op, sync_cfg.unwrap_or_default(), &mut out)
            .map_err(|error| RunError::Protocol {
                at: self.now,
                error,
            })?;
        self.route(&mut out, io);
        self.outbox = out;
        // Back to "no span": anything sent later (fault repair,
        // unrelated servicing) is not this operation's doing.
        if let Some(tracer) = io.tracer() {
            tracer.set_span_ctx(0);
        }
        match completed {
            Some(outcome) => {
                let latency = self.cfg.params.cache_hit;
                let boxed = self.box_outcome(outcome);
                self.push_local(self.now + latency, p.as_u32(), Event::OpDone(p, boxed));
                self.procs[i].blocked = true;
            }
            None => {
                self.procs[i].blocked = true;
            }
        }
        Ok(())
    }

    fn op_done(
        &mut self,
        p: ProcId,
        outcome: OpOutcome,
        io: &mut impl ShardIo,
    ) -> Result<(), RunError> {
        let i = self.li(p.as_u32());
        let Some((op, issued, is_sync)) = self.procs[i].current.take() else {
            return Err(RunError::Protocol {
                at: self.now,
                error: ProtocolError::new(
                    ProtocolErrorKind::MissingRequest,
                    format!("operation completion at {p} with no operation outstanding"),
                ),
            });
        };
        self.last_retire = self.now;
        let cycles = (self.now - issued).as_u64();
        let latency = cycles as f64;
        {
            let ns = &mut self.nstats[i];
            ns.ops += 1;
            ns.op_latency.add(latency);
            ns.op_latency_hist.record(cycles);
            if outcome.local {
                ns.local_ops += 1;
            }
            if is_sync {
                ns.sync_ops += 1;
                ns.sync_latency.add(latency);
                ns.sync_latency_hist.record((latency / 10.0) as usize);
                ns.msgs.record_chain(outcome.chain);
            }
        }
        if is_sync {
            let seq = self.sync_seq[i];
            self.sync_seq[i] += 1;
            self.sync_log.push(SyncRec {
                at: self.now.as_u64(),
                proc: p.as_u32(),
                seq,
                addr: op.addr().as_u64(),
                kind: SyncRecKind::End {
                    write: op.is_write() && outcome.result.succeeded(),
                },
            });
        }
        let span = std::mem::take(&mut self.procs[i].span);
        if let Some(tracer) = io.tracer() {
            let outcome_label = match outcome.result {
                OpResult::CasDone { success: false, .. } => "cas-fail",
                OpResult::ScDone { success: false } => "sc-fail",
                OpResult::Loaded {
                    reserved: false, ..
                } if matches!(op, MemOp::LoadLinked { .. }) => "ll-unreserved",
                _ => "ok",
            };
            tracer.span_end(self.now, p, span, outcome_label);
            if tracer.wants(Category::Op) {
                tracer.op(
                    p,
                    issued,
                    self.now,
                    op.label(),
                    outcome.local,
                    outcome.chain,
                );
            }
            if tracer.wants(Category::Retry) {
                // A failed atomic attempt means the processor's loop
                // will come around again: the raw material of the
                // paper's retry-storm analysis.
                match outcome.result {
                    OpResult::CasDone { success: false, .. } => {
                        tracer.retry(self.now, p, "cas-fail");
                    }
                    OpResult::ScDone { success: false } => {
                        tracer.retry(self.now, p, "sc-fail");
                    }
                    OpResult::Loaded {
                        reserved: false, ..
                    } if matches!(op, MemOp::LoadLinked { .. }) => {
                        tracer.retry(self.now, p, "ll-unreserved");
                    }
                    _ => {}
                }
            }
            if tracer.wants(Category::Resv) {
                if let (MemOp::LoadLinked { .. }, OpResult::Loaded { reserved, .. }) =
                    (op, outcome.result)
                {
                    let home = op
                        .addr()
                        .line(self.cfg.params.line_size)
                        .home(self.cfg.nodes);
                    let label = if reserved {
                        "ll-reserved"
                    } else {
                        "ll-unreserved"
                    };
                    tracer.reservation(self.now, home, label);
                }
            }
        }
        let state = &mut self.procs[i];
        state.blocked = false;
        state.last = Some(outcome.result);
        state.last_chain = Some(outcome.chain);
        self.push_local(
            self.now + self.cfg.params.issue,
            p.as_u32(),
            Event::ProcStep(p),
        );
        Ok(())
    }

    fn process(&mut self, msg: Box<Msg>, span: u64, io: &mut impl ShardIo) -> Result<(), RunError> {
        let node = self.li(msg.dst.as_u32());
        let dst = msg.dst;
        let line = msg.line;
        let msg = self.recycle(msg);
        // Everything the handlers send below — forwards, invalidation
        // fan-out, replies — is on behalf of the operation that caused
        // this message, so those flows inherit its span.
        if let Some(tracer) = io.tracer() {
            tracer.set_span_ctx(span);
        }
        // Coherence-state probes bracket the handler call; the flags are
        // false when tracing is off, so the probes cost nothing then.
        let want_state = io.tracer().is_some_and(|t| t.wants(Category::State));
        let want_queue = io.tracer().is_some_and(|t| t.wants(Category::Queue));
        let mut out = std::mem::replace(&mut self.outbox, Outbox::new());
        if msg.kind.home_bound() {
            let before = want_state.then(|| dir_label(self.homes[node].dir_state(line)));
            self.homes[node]
                .handle(msg, &self.map, &mut out)
                .map_err(|error| RunError::Protocol {
                    at: self.now,
                    error,
                })?;
            if let Some(before) = before {
                let after = dir_label(self.homes[node].dir_state(line));
                if after != before {
                    if let Some(tracer) = io.tracer() {
                        tracer.dir_transition(self.now, dst, line, before, after);
                    }
                }
            }
            if want_queue {
                let depth =
                    (self.homes[node].queued_requests() + self.homes[node].busy_lines()) as u64;
                if let Some(tracer) = io.tracer() {
                    tracer.queue_depth(self.now, dst, depth);
                }
            }
            self.route(&mut out, io);
        } else {
            let proc = ProcId::new(msg.dst.as_u32());
            let before = want_state.then(|| cache_label(self.caches[node].cache_state(line)));
            let completed =
                self.caches[node]
                    .handle(msg, &mut out)
                    .map_err(|error| RunError::Protocol {
                        at: self.now,
                        error,
                    })?;
            if let Some(before) = before {
                let after = cache_label(self.caches[node].cache_state(line));
                if after != before {
                    if let Some(tracer) = io.tracer() {
                        tracer.cache_transition(self.now, dst, line, before, after);
                    }
                }
            }
            self.route(&mut out, io);
            if let Some(outcome) = completed {
                let boxed = self.box_outcome(outcome);
                self.push_local(self.now, proc.as_u32(), Event::OpDone(proc, boxed));
            }
        }
        self.outbox = out;
        if let Some(tracer) = io.tracer() {
            tracer.set_span_ctx(0);
        }
        if io.paranoid() {
            if let Some(violation) = check_line(&self.caches, &self.homes, &self.map, line)
                .into_iter()
                .next()
            {
                return Err(RunError::Invariant {
                    at: self.now,
                    violation,
                });
            }
        }
        Ok(())
    }

    /// Serial-path barrier scan: releases the barrier if every
    /// non-terminated processor has arrived. Requires the full node
    /// range (the PDES coordinator does the equivalent scan globally).
    pub(crate) fn try_release_barrier(&mut self) {
        debug_assert_eq!(self.lo, 0, "serial barrier scan needs the whole machine");
        let mut waiting = 0;
        let mut id: Option<u32> = None;
        for s in &self.procs {
            if s.done {
                continue;
            }
            match s.waiting_barrier {
                Some(b) => {
                    if let Some(prev) = id {
                        assert_eq!(prev, b, "processors waiting at different barriers");
                    }
                    id = Some(b);
                    waiting += 1;
                }
                None => return, // someone is still running
            }
        }
        if waiting == 0 {
            return;
        }
        self.apply_barrier_release(self.now);
    }

    /// Resumes every locally waiting processor at `at` (rank-3 keys, so
    /// the releases sort after all other same-cycle work of the node).
    /// Returns how many processors were resumed.
    pub(crate) fn apply_barrier_release(&mut self, at: Cycle) -> usize {
        let lo = self.lo;
        let mut resumed = 0;
        for (i, s) in self.procs.iter_mut().enumerate() {
            if !s.done && s.waiting_barrier.is_some() {
                s.waiting_barrier = None;
                let node = lo + i as u32;
                self.events
                    .push_keyed(at, key_barrier(node), Event::ProcStep(ProcId::new(node)));
                resumed += 1;
            }
        }
        resumed
    }

    /// Count of locally waiting (non-done) processors.
    pub(crate) fn waiting_count(&self) -> usize {
        self.procs
            .iter()
            .filter(|s| !s.done && s.waiting_barrier.is_some())
            .count()
    }

    /// `true` if any local processor has an operation outstanding.
    pub(crate) fn any_outstanding(&self) -> bool {
        self.procs.iter().any(|s| s.current.is_some())
    }

    /// Snapshots every local processor's blocked-on state.
    pub(crate) fn proc_dumps(&self) -> Vec<ProcDump> {
        self.procs
            .iter()
            .enumerate()
            .map(|(i, s)| ProcDump {
                proc: ProcId::new(self.lo + i as u32),
                op: s.current.map(|(op, _, _)| op),
                addr: s.current.map(|(op, _, _)| op.addr()),
                issued: s.current.map(|(_, at, _)| at),
                barrier: s.waiting_barrier,
            })
            .collect()
    }

    /// Splits a full-range core into per-shard cores for `bounds`,
    /// leaving `self` an empty husk that [`Core::absorb`] refills.
    /// Pending events are distributed by the node named in their key;
    /// the sync log, recycling pools and the event counter go to shard
    /// 0 (they are merged wholesale, not per node).
    pub(crate) fn split_off(&mut self, bounds: &[(u32, u32)]) -> Vec<Core> {
        assert_eq!(self.lo, 0, "only a whole machine can be split");
        assert_eq!(self.hi, self.cfg.nodes, "only a whole machine can be split");
        let ports = std::mem::replace(&mut self.ports, NetPorts::new_range(0, 0));
        let mut port_shards = ports.split(bounds).into_iter();
        let mut events = std::mem::replace(&mut self.events, EventQueue::new());
        let mut per_shard: Vec<Vec<(Cycle, u128, Event)>> =
            (0..bounds.len()).map(|_| Vec::new()).collect();
        while let Some((at, key, e)) = events.pop_keyed() {
            per_shard[shard_of(bounds, key_node(key))].push((at, key, e));
        }
        let mut out = Vec::with_capacity(bounds.len());
        for (si, &(lo, count)) in bounds.iter().enumerate() {
            let n = count as usize;
            let mut q = EventQueue::with_capacity(n * 8);
            for (at, key, e) in per_shard[si].drain(..) {
                q.push_keyed(at, key, e);
            }
            let procs: Vec<ProcState> = self.procs.drain(..n).collect();
            let active = procs.iter().filter(|s| !s.done).count();
            out.push(Core {
                lo,
                hi: lo + count,
                cfg: self.cfg.clone(),
                map: self.map.clone(),
                mesh: self.mesh.clone(),
                now: self.now,
                events: q,
                ports: port_shards.next().expect("one port shard per bound"),
                homes: self.homes.drain(..n).collect(),
                caches: self.caches.drain(..n).collect(),
                procs,
                mem_busy: self.mem_busy.drain(..n).collect(),
                cache_busy: self.cache_busy.drain(..n).collect(),
                nstats: self.nstats.drain(..n).collect(),
                sync_log: if si == 0 {
                    std::mem::take(&mut self.sync_log)
                } else {
                    Vec::new()
                },
                local_seq: self.local_seq.drain(..n).collect(),
                sync_seq: self.sync_seq.drain(..n).collect(),
                active,
                events_processed: if si == 0 { self.events_processed } else { 0 },
                last_retire: self.last_retire,
                outbox: if si == 0 {
                    std::mem::replace(&mut self.outbox, Outbox::new())
                } else {
                    Outbox::new()
                },
                msg_pool: if si == 0 {
                    std::mem::take(&mut self.msg_pool)
                } else {
                    Vec::new()
                },
                outcome_pool: if si == 0 {
                    std::mem::take(&mut self.outcome_pool)
                } else {
                    Vec::new()
                },
            });
        }
        self.active = 0;
        self.events_processed = 0;
        out
    }

    /// Reassembles shard cores (in node order) into this husk.
    pub(crate) fn absorb(&mut self, parts: Vec<Core>) {
        let mut ports = Vec::with_capacity(parts.len());
        for (si, mut p) in parts.into_iter().enumerate() {
            assert_eq!(
                p.lo,
                self.homes.len() as u32,
                "shards must be absorbed in node order"
            );
            self.now = self.now.max(p.now);
            while let Some((at, key, e)) = p.events.pop_keyed() {
                self.events.push_keyed(at, key, e);
            }
            ports.push(std::mem::replace(&mut p.ports, NetPorts::new_range(0, 0)));
            self.homes.append(&mut p.homes);
            self.caches.append(&mut p.caches);
            self.procs.append(&mut p.procs);
            self.mem_busy.append(&mut p.mem_busy);
            self.cache_busy.append(&mut p.cache_busy);
            self.nstats.append(&mut p.nstats);
            self.sync_log.append(&mut p.sync_log);
            self.local_seq.append(&mut p.local_seq);
            self.sync_seq.append(&mut p.sync_seq);
            self.active += p.active;
            self.events_processed += p.events_processed;
            self.last_retire = self.last_retire.max(p.last_retire);
            if si == 0 {
                self.outbox = std::mem::replace(&mut p.outbox, Outbox::new());
                self.msg_pool = std::mem::take(&mut p.msg_pool);
                self.outcome_pool = std::mem::take(&mut p.outcome_pool);
            }
        }
        self.hi = self.homes.len() as u32;
        self.ports = NetPorts::merge(ports);
    }
}

/// [`ShardIo`] for the serial engine: borrows the machine's
/// instrumentation (all of which forces the serial path, so the
/// parallel dispatcher never sees any of it).
struct SerialIo<'a> {
    tracer: Option<&'a mut Tracer>,
    ring: Option<&'a mut TraceRing>,
    injector: Option<&'a mut FaultInjector>,
    paranoid: bool,
}

impl ShardIo for SerialIo<'_> {
    fn jitter(&mut self, now: Cycle) -> u64 {
        match &mut self.injector {
            Some(inj) => inj.jitter(now.as_u64()),
            None => 0,
        }
    }
    fn tracer(&mut self) -> Option<&mut Tracer> {
        self.tracer.as_deref_mut()
    }
    fn ring(&mut self) -> Option<&mut TraceRing> {
        self.ring.as_deref_mut()
    }
    fn paranoid(&self) -> bool {
        self.paranoid
    }
    fn send_remote(&mut self, _wire_at: Cycle, _key: u128, _msg: Msg) {
        unreachable!("the serial core owns every node; no message is remote")
    }
}

/// Builder for a [`Machine`].
///
/// # Example
///
/// ```
/// use dsm_machine::{Action, MachineBuilder, ProcCtx};
/// use dsm_protocol::MemOp;
/// use dsm_sim::{Addr, MachineConfig};
///
/// let mut b = MachineBuilder::new(MachineConfig::with_nodes(4));
/// for _ in 0..4 {
///     b.add_program(|ctx: &mut ProcCtx<'_>| {
///         if ctx.last.is_none() {
///             Action::Op(MemOp::Load { addr: Addr::new(64) })
///         } else {
///             Action::Done
///         }
///     });
/// }
/// let mut machine = b.build();
/// let report = machine.run(dsm_sim::Cycle::new(100_000)).unwrap();
/// assert!(report.cycles > dsm_sim::Cycle::ZERO);
/// ```
pub struct MachineBuilder {
    cfg: MachineConfig,
    map: AddressMap,
    programs: Vec<Box<dyn Program>>,
    init: Vec<(Addr, Value)>,
    llsc_pool: usize,
    trace: Option<TraceSpec>,
    workers: Option<usize>,
    /// `DSM_PROTO` carried an `hna` clause: flip every registered
    /// INV-policy sync line to home-node atomics at build time.
    hna: bool,
}

thread_local! {
    static FAULT_OVERRIDE: std::cell::RefCell<Option<FaultConfig>> =
        const { std::cell::RefCell::new(None) };
}

/// Runs `f` with every machine built on this thread using exactly
/// `faults` — overriding both the configuration's own fault settings
/// and the `DSM_FAULTS`/`DSM_PARANOID` environment. The previous
/// override (if any) is restored afterwards, also on panic.
///
/// Reproducer replay uses this to pin the exact fault settings of the
/// original failing run without mutating the process environment, which
/// would race with concurrently building machines on other threads.
pub fn with_fault_config<R>(faults: FaultConfig, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<FaultConfig>);
    impl Drop for Restore {
        fn drop(&mut self) {
            FAULT_OVERRIDE.with(|c| *c.borrow_mut() = self.0.take());
        }
    }
    let _restore = Restore(FAULT_OVERRIDE.with(|c| c.borrow_mut().replace(faults)));
    f()
}

impl MachineBuilder {
    /// Starts building a machine with the given configuration.
    ///
    /// When the configuration carries the default protocol settings
    /// (DASH variant, one cluster, no cluster penalty), the `DSM_PROTO`
    /// environment variable — a [`ProtoSpec::from_spec`] string such as
    /// `mesif` or `hier,clusters=4,penalty=20` — is applied as an
    /// override, mirroring how `DSM_FAULTS` works. Its `hna` clause is
    /// remembered and flips every INV-policy sync line registered with
    /// [`register_sync`](Self::register_sync) to home-node atomics when
    /// [`build`](Self::build) runs. Explicit non-default configuration
    /// always wins over the environment.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `DSM_PROTO` holds a
    /// malformed spec.
    pub fn new(mut cfg: MachineConfig) -> Self {
        let mut hna = false;
        let proto_is_default =
            cfg.proto == ProtoVariant::Dash && cfg.clusters == 1 && cfg.params.cluster_penalty == 0;
        if proto_is_default {
            if let Ok(spec) = std::env::var("DSM_PROTO") {
                let spec = ProtoSpec::from_spec(&spec)
                    .unwrap_or_else(|e| panic!("invalid DSM_PROTO spec: {e}"));
                spec.apply(&mut cfg);
                hna = spec.home_atomics;
            }
        }
        cfg.validate().expect("invalid machine configuration");
        let line_size = cfg.params.line_size;
        MachineBuilder {
            cfg,
            map: AddressMap::new(line_size),
            programs: Vec::new(),
            init: Vec::new(),
            llsc_pool: 256,
            trace: None,
            workers: None,
            hna,
        }
    }

    /// Enables structured event tracing for the built machine (see
    /// [`TraceSpec`] for sink and category selection). An explicit spec
    /// set here takes precedence over the `DSM_TRACE` environment
    /// variable.
    pub fn with_trace(&mut self, spec: TraceSpec) -> &mut Self {
        self.trace = Some(spec);
        self
    }

    /// Sets how many PDES worker threads the machine may use for a
    /// single run (see [`Machine::set_workers`]). An explicit setting
    /// takes precedence over the `DSM_WORKERS` environment variable;
    /// the default is 1 (serial). Results are bit-identical across
    /// worker counts.
    pub fn with_workers(&mut self, workers: usize) -> &mut Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Registers the line containing `addr` as a synchronization line.
    pub fn register_sync(&mut self, addr: Addr, config: SyncConfig) -> &mut Self {
        self.map.register(addr, config);
        self
    }

    /// Initializes a word of memory before the run.
    pub fn init_word(&mut self, addr: Addr, value: Value) -> &mut Self {
        self.init.push((addr, value));
        self
    }

    /// Sets the linked-list reservation free-pool size per home node.
    pub fn llsc_pool(&mut self, entries: usize) -> &mut Self {
        self.llsc_pool = entries;
        self
    }

    /// Adds the program for the next processor (programs are assigned in
    /// order: the first added runs on processor 0).
    pub fn add_program<P: Program + 'static>(&mut self, program: P) -> &mut Self {
        self.programs.push(Box::new(program));
        self
    }

    /// Builds the machine.
    ///
    /// When the configuration carries no fault settings, the
    /// environment variables `DSM_FAULTS` (a
    /// [`FaultConfig::from_spec`] string) and `DSM_PARANOID=1` are
    /// honored as overrides, so a whole test suite can be run under
    /// fault injection or paranoid invariant checking without code
    /// changes. An explicit [`MachineConfig::faults`] always wins, and
    /// a [`with_fault_config`] override on the building thread wins
    /// over both (reproducer replay relies on this).
    /// Likewise, when no trace spec was set with
    /// [`with_trace`](MachineBuilder::with_trace), `DSM_TRACE` (a
    /// [`TraceSpec::from_spec`] string) enables tracing, and when no
    /// worker count was set with
    /// [`with_workers`](MachineBuilder::with_workers), `DSM_WORKERS`
    /// sets the PDES worker count.
    ///
    /// # Panics
    ///
    /// Panics if the number of programs does not equal the number of
    /// nodes, or if `DSM_FAULTS` / `DSM_TRACE` / `DSM_WORKERS` holds a
    /// malformed spec.
    pub fn build(mut self) -> Machine {
        assert_eq!(
            self.programs.len(),
            self.cfg.nodes as usize,
            "one program per processor is required ({} programs for {} nodes)",
            self.programs.len(),
            self.cfg.nodes
        );
        let mut faults = self.cfg.faults.clone();
        if let Some(pinned) = FAULT_OVERRIDE.with(|c| c.borrow().clone()) {
            faults = pinned;
        } else if !faults.is_active() {
            if let Ok(spec) = std::env::var("DSM_FAULTS") {
                faults = FaultConfig::from_spec(&spec)
                    .unwrap_or_else(|e| panic!("invalid DSM_FAULTS spec: {e}"));
            }
            if std::env::var("DSM_PARANOID").is_ok_and(|v| v == "1") {
                faults.paranoid = true;
            }
        }
        // Record the *effective* fault settings on the machine, so the
        // supervision layer can capture them into reproducer artifacts
        // regardless of where they came from.
        self.cfg.faults = faults.clone();
        let trace_spec = self.trace.or_else(|| {
            std::env::var("DSM_TRACE").ok().map(|spec| {
                TraceSpec::from_spec(&spec)
                    .unwrap_or_else(|e| panic!("invalid DSM_TRACE spec: {e}"))
            })
        });
        let workers = self.workers.unwrap_or_else(|| {
            std::env::var("DSM_WORKERS")
                .ok()
                .map(|v| {
                    v.trim()
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| panic!("invalid DSM_WORKERS value: {v:?}"))
                })
                .unwrap_or(1)
        });
        let tracer = trace_spec.map(|spec| Box::new(Tracer::new(&spec, self.cfg.nodes)));
        let mesh = Mesh::new(&self.cfg);
        let mut seed_rng = SimRng::new(self.cfg.seed);
        let procs: Vec<ProcState> = self
            .programs
            .into_iter()
            .map(|program| ProcState {
                program,
                rng: seed_rng.fork(0xFACE),
                done: false,
                blocked: false,
                waiting_barrier: None,
                last: None,
                last_chain: None,
                current: None,
                span: 0,
            })
            .collect();
        let injector = faults
            .any_faults()
            .then(|| FaultInjector::new(faults.clone(), seed_rng.fork(0xFA17)));
        let mut homes = Vec::with_capacity(self.cfg.nodes as usize);
        let mut caches = Vec::with_capacity(self.cfg.nodes as usize);
        // Each home serves roughly the lines that fit in one node's
        // cache; each node can have a handful of events in flight
        // (messages, processor steps, memory completions).
        if self.hna {
            self.map.enable_home_atomics();
        }
        let resv_lines = self.cfg.cache.lines();
        let (mesh_width, _) = self.cfg.mesh_dims();
        for n in 0..self.cfg.nodes {
            let mut home = HomeNode::new(NodeId::new(n), self.cfg.params.line_size, self.llsc_pool);
            home.reserve_lines(resv_lines);
            home.set_topology(
                self.cfg.proto,
                mesh_width,
                self.cfg.nodes,
                self.cfg.clusters,
            );
            homes.push(home);
            let mut cc = CacheNode::new(NodeId::new(n), self.cfg.params.line_size, self.cfg.cache);
            cc.set_nodes(self.cfg.nodes);
            caches.push(cc);
        }
        let nodes = self.cfg.nodes;
        let core = Core {
            lo: 0,
            hi: nodes,
            map: self.map,
            mesh,
            now: Cycle::ZERO,
            events: EventQueue::with_capacity(nodes as usize * 8),
            ports: NetPorts::new(nodes),
            homes,
            caches,
            procs,
            mem_busy: vec![Cycle::ZERO; nodes as usize],
            cache_busy: vec![Cycle::ZERO; nodes as usize],
            nstats: vec![NodeStats::default(); nodes as usize],
            sync_log: Vec::new(),
            local_seq: vec![0; nodes as usize],
            sync_seq: vec![0; nodes as usize],
            active: nodes as usize,
            events_processed: 0,
            last_retire: Cycle::ZERO,
            outbox: Outbox::new(),
            msg_pool: Vec::new(),
            outcome_pool: Vec::new(),
            cfg: self.cfg,
        };
        let mut machine = Machine {
            core,
            trace: None,
            tracer,
            trace_files: Vec::new(),
            injector,
            paranoid: faults.paranoid,
            watchdog: faults.watchdog,
            injected_evictions: 0,
            injected_wipes: 0,
            injected_corruptions: 0,
            wall_limit: std::env::var("DSM_WALL_LIMIT")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .filter(|&ms| ms > 0)
                .map(Duration::from_millis),
            paused: false,
            workers,
        };
        for (addr, value) in self.init {
            machine.poke_word(addr, value);
        }
        for p in 0..machine.core.cfg.nodes {
            machine
                .core
                .push_local(Cycle::ZERO, p, Event::ProcStep(ProcId::new(p)));
        }
        machine
    }
}

/// The simulated DSM multiprocessor.
///
/// Construct with [`MachineBuilder`], then [`run`](Machine::run).
pub struct Machine {
    /// The shardable engine state (full range while not running in
    /// parallel).
    pub(crate) core: Core,
    /// Optional message-trace ring buffer (debugging aid).
    trace: Option<TraceRing>,
    /// Structured event tracer (`--trace` / `DSM_TRACE`), boxed so the
    /// disabled case costs one pointer in the machine and one
    /// never-taken branch per instrumentation site.
    tracer: Option<Box<Tracer>>,
    /// Paths written by the last trace flush.
    trace_files: Vec<PathBuf>,
    /// Deterministic fault injector, present only when faults are on.
    injector: Option<FaultInjector>,
    /// Run the invariant checker after every protocol transition.
    paranoid: bool,
    /// Livelock watchdog window in cycles (0 = off).
    watchdog: u64,
    /// Evictions forced by the fault injector.
    injected_evictions: u64,
    /// Reservation wipes forced by the fault injector.
    injected_wipes: u64,
    /// Shared-to-exclusive corruptions forced by the fault injector.
    injected_corruptions: u64,
    /// Wall-clock budget per `run`/`run_until` call, if any.
    wall_limit: Option<Duration>,
    /// `true` between a stop-rule pause and the resuming call, so the
    /// resume does not reset watchdog bookkeeping.
    paused: bool,
    /// Requested PDES worker count (1 = serial).
    workers: usize,
}

impl Machine {
    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.core.cfg
    }

    /// Current simulated time.
    pub fn now(&self) -> Cycle {
        self.core.now
    }

    /// Accumulated statistics, merged from the per-node accumulators in
    /// canonical node order (so the result is bit-identical regardless
    /// of how many PDES workers produced them).
    pub fn stats(&self) -> MachineStats {
        merge_node_stats(&self.core.nstats, &self.core.sync_log)
    }

    /// Network statistics.
    pub fn network_stats(&self) -> &dsm_mesh::NetworkStats {
        self.core.ports.stats()
    }

    /// How many PDES worker threads [`run`](Machine::run) may use.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Sets how many PDES worker threads [`run`](Machine::run) may use
    /// (1 = serial). The effective count is clamped to the node count,
    /// and serial-only features (tracing, fault injection, paranoid
    /// checking, the livelock watchdog, the debug ring, stop rules)
    /// force the serial engine regardless — the parallel engine's
    /// results are bit-identical, so this only affects wall-clock time.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// The worker count a run would actually use under `stop`:
    /// serial-only instrumentation and stop rules override the setting.
    fn effective_workers(&self, stop: StopRule) -> usize {
        if self.workers <= 1
            || self.tracer.is_some()
            || self.injector.is_some()
            || self.paranoid
            || self.watchdog > 0
            || self.trace.is_some()
            || !matches!(stop, StopRule::None)
            || self.core.active == 0
        {
            return 1;
        }
        self.workers.min(self.core.cfg.nodes as usize)
    }

    /// Writes a word directly into its home memory (initialization /
    /// between quiescent phases only).
    pub fn poke_word(&mut self, addr: Addr, value: Value) {
        let home = addr
            .line(self.core.cfg.params.line_size)
            .home(self.core.cfg.nodes);
        self.core.homes[home.index()].poke_word(addr, value);
    }

    /// Reads the current logical value of a word: the owner's cached
    /// copy if the line is dirty, otherwise home memory. Only meaningful
    /// when the machine is quiescent.
    pub fn read_word(&self, addr: Addr) -> Value {
        let line = addr.line(self.core.cfg.params.line_size);
        let home = line.home(self.core.cfg.nodes);
        if let DirState::Dirty(owner) = self.core.homes[home.index()].dir_state(line) {
            if let Some(v) = self.core.caches[owner.index()].peek_word(addr) {
                return v;
            }
        }
        self.core.homes[home.index()].peek_word(addr)
    }

    /// Runs until every processor terminates or `limit` is reached,
    /// using the configured worker count (see
    /// [`set_workers`](Machine::set_workers)).
    ///
    /// # Errors
    ///
    /// [`RunError::CycleLimit`] if the limit was reached first,
    /// [`RunError::Deadlock`] if the event queue drained with blocked
    /// processors (a protocol/program bug), [`RunError::Livelock`] if the
    /// watchdog window elapsed without an op retiring,
    /// [`RunError::Protocol`] if a protocol engine reached an illegal
    /// state, or [`RunError::Invariant`] if paranoid checking found a
    /// violated invariant.
    pub fn run(&mut self, limit: Cycle) -> Result<RunReport, RunError> {
        match self.run_until(limit, StopRule::None)? {
            RunOutcome::Done(report) => Ok(report),
            RunOutcome::Paused(_) => unreachable!("StopRule::None never pauses"),
        }
    }

    /// Like [`run`](Machine::run), but pauses when `stop` fires (see
    /// [`StopRule`]); call again to resume. Because pauses land on event
    /// boundaries, a paused machine's [`state_digest`](Machine::state_digest)
    /// equals the digest an uninterrupted run has at the same event
    /// count — the property the checkpoint/restore layer verifies.
    ///
    /// # Errors
    ///
    /// The same errors as [`run`](Machine::run), plus
    /// [`RunError::Timeout`] when a wall-clock budget
    /// ([`set_wall_limit`](Machine::set_wall_limit) or `DSM_WALL_LIMIT`)
    /// elapses before the run finishes or pauses.
    pub fn run_until(&mut self, limit: Cycle, stop: StopRule) -> Result<RunOutcome, RunError> {
        let workers = self.effective_workers(stop);
        let result = if workers > 1 {
            crate::pdes::run_parallel(&mut self.core, limit, workers, self.wall_limit)
                .map(RunOutcome::Done)
        } else {
            self.run_inner(limit, stop)
        };
        // Traces are most valuable when a run fails (deadlock, protocol
        // error), so flush on the error path too. A trace I/O failure
        // must not masquerade as a simulation failure; report and move
        // on.
        if !matches!(result, Ok(RunOutcome::Paused(_))) {
            if let Err(e) = self.flush_trace() {
                eprintln!("warning: failed to write trace output: {e}");
            }
        }
        result
    }

    /// `true` if `stop` fires at the current event count / time.
    fn should_pause(&self, stop: StopRule) -> bool {
        match stop {
            StopRule::None => false,
            StopRule::PauseAt(cycle) => self.core.now >= cycle,
            StopRule::AfterEvents(n) => self.core.events_processed >= n,
        }
    }

    /// Checks the wall-clock budget (every `WALL_CHECK_MASK + 1` events,
    /// so the `Instant::now` syscall stays off the hot path).
    fn check_wall(&self, started: Instant) -> Result<(), RunError> {
        const WALL_CHECK_MASK: u64 = 8191;
        let Some(budget) = self.wall_limit else {
            return Ok(());
        };
        if self.core.events_processed & WALL_CHECK_MASK != 0 {
            return Ok(());
        }
        let elapsed = started.elapsed();
        if elapsed > budget {
            return Err(RunError::Timeout {
                at: self.core.now,
                elapsed_ms: elapsed.as_millis() as u64,
                limit_ms: budget.as_millis() as u64,
            });
        }
        Ok(())
    }

    /// Dispatches one event on the serial path, with the machine's
    /// instrumentation wired in.
    fn dispatch_serial(&mut self, key: u128, event: Event) -> Result<Effect, RunError> {
        let mut io = SerialIo {
            tracer: self.tracer.as_deref_mut(),
            ring: self.trace.as_mut(),
            injector: self.injector.as_mut(),
            paranoid: self.paranoid,
        };
        self.core.dispatch(key, event, &mut io)
    }

    fn run_inner(&mut self, limit: Cycle, stop: StopRule) -> Result<RunOutcome, RunError> {
        let started = Instant::now();
        if !self.paused {
            self.core.last_retire = self.core.now;
        }
        self.paused = false;
        while self.core.active > 0 {
            let Some((at, key, event)) = self.core.events.pop_keyed() else {
                return Err(RunError::Deadlock {
                    at: self.core.now,
                    active: self.core.active,
                    procs: self.core.proc_dumps(),
                });
            };
            debug_assert!(at >= self.core.now, "time ran backwards");
            if at > limit {
                return Err(RunError::CycleLimit {
                    limit,
                    active: self.core.active,
                });
            }
            self.core.now = at;
            self.core.events_processed += 1;
            self.poll_faults();
            self.check_watchdog()?;
            self.check_wall(started)?;
            if self.dispatch_serial(key, event)? != Effect::None {
                self.core.try_release_barrier();
            }
            if self.should_pause(stop) {
                self.paused = true;
                return Ok(RunOutcome::Paused(RunReport {
                    cycles: self.core.now,
                    events: self.core.events_processed,
                }));
            }
        }
        let finished = self.core.now;
        // Drain in-flight traffic (e.g. final write-backs) so the
        // machine is quiescent: read_word and validate_coherence see the
        // committed state.
        while let Some((at, key, event)) = self.core.events.pop_keyed() {
            if at > limit {
                return Err(RunError::CycleLimit { limit, active: 0 });
            }
            self.core.now = at;
            self.core.events_processed += 1;
            self.check_wall(started)?;
            self.dispatch_serial(key, event)?;
            if self.should_pause(stop) {
                self.paused = true;
                return Ok(RunOutcome::Paused(RunReport {
                    cycles: self.core.now,
                    events: self.core.events_processed,
                }));
            }
        }
        if self.paranoid {
            self.quiescence_check(finished)?;
        }
        Ok(RunOutcome::Done(RunReport {
            cycles: finished,
            events: self.core.events_processed,
        }))
    }

    /// Sets (or clears) the wall-clock budget applied to each
    /// [`run`](Machine::run) / [`run_until`](Machine::run_until) call,
    /// overriding the `DSM_WALL_LIMIT` environment variable read at
    /// build time.
    pub fn set_wall_limit(&mut self, limit: Option<Duration>) {
        self.wall_limit = limit;
    }

    /// Applies the window faults due at the current time, if any.
    fn poll_faults(&mut self) {
        let fired = match &mut self.injector {
            Some(inj) => inj.poll(self.core.now.as_u64(), self.core.cfg.nodes),
            None => return,
        };
        for fault in fired {
            match fault {
                FaultEvent::EvictLine { node } => {
                    let mut out = std::mem::replace(&mut self.core.outbox, Outbox::new());
                    if self.core.caches[node.index()]
                        .inject_evict(&mut out)
                        .is_some()
                    {
                        self.injected_evictions += 1;
                    }
                    let mut io = SerialIo {
                        tracer: self.tracer.as_deref_mut(),
                        ring: self.trace.as_mut(),
                        injector: self.injector.as_mut(),
                        paranoid: self.paranoid,
                    };
                    self.core.route(&mut out, &mut io);
                    self.core.outbox = out;
                }
                FaultEvent::WipeReservations { node } => {
                    self.core.homes[node.index()].wipe_reservations();
                    self.injected_wipes += 1;
                    if let Some(tracer) = &mut self.tracer {
                        if tracer.wants(Category::Resv) {
                            tracer.reservation(self.core.now, node, "wipe");
                        }
                    }
                }
                FaultEvent::CorruptLine { node } => {
                    // Promote the first shared resident line (stable
                    // iteration order, so replays corrupt the same
                    // line). A cache with no shared line absorbs the
                    // fault silently.
                    let victim = self.core.caches[node.index()]
                        .cached_lines()
                        .find(|(_, s)| *s == CacheState::Shared)
                        .map(|(l, _)| l);
                    if let Some(line) = victim {
                        if self.core.caches[node.index()].corrupt_promote_shared(line) {
                            self.injected_corruptions += 1;
                        }
                    }
                }
            }
        }
    }

    /// Fails the run if events keep firing but no operation has retired
    /// for a full watchdog window while at least one is outstanding.
    fn check_watchdog(&mut self) -> Result<(), RunError> {
        if self.watchdog == 0 {
            return Ok(());
        }
        if !self.core.any_outstanding() {
            // Nothing outstanding (compute/barrier phases): progress is
            // the program's business, not the protocol's.
            self.core.last_retire = self.core.now;
            return Ok(());
        }
        if (self.core.now - self.core.last_retire).as_u64() > self.watchdog {
            return Err(RunError::Livelock {
                at: self.core.now,
                window: self.watchdog,
                procs: self.core.proc_dumps(),
            });
        }
        Ok(())
    }

    /// Full paranoid sweep once the machine is quiescent: every global
    /// invariant, message conservation (no half-done transaction may
    /// survive a drained event queue), then the coherence oracle.
    fn quiescence_check(&self, at: Cycle) -> Result<(), RunError> {
        if let Some(violation) =
            check_invariants(&self.core.caches, &self.core.homes, &self.core.map)
                .into_iter()
                .next()
        {
            return Err(RunError::Invariant { at, violation });
        }
        for (i, cache) in self.core.caches.iter().enumerate() {
            if cache.busy() {
                return Err(RunError::Invariant {
                    at,
                    violation: InvariantViolation {
                        invariant: "message-conservation",
                        line: cache.pending_line(),
                        nodes: vec![NodeId::new(i as u32)],
                        detail: "cache still has an outstanding request at quiescence".into(),
                    },
                });
            }
        }
        for (i, home) in self.core.homes.iter().enumerate() {
            if home.busy_lines() > 0 || home.queued_requests() > 0 {
                return Err(RunError::Invariant {
                    at,
                    violation: InvariantViolation {
                        invariant: "message-conservation",
                        line: None,
                        nodes: vec![NodeId::new(i as u32)],
                        detail: format!(
                            "home still busy at quiescence ({} busy lines, {} queued requests)",
                            home.busy_lines(),
                            home.queued_requests()
                        ),
                    },
                });
            }
        }
        if let Err(detail) = self.validate_coherence() {
            return Err(RunError::Invariant {
                at,
                violation: InvariantViolation {
                    invariant: "coherence",
                    line: None,
                    nodes: Vec::new(),
                    detail,
                },
            });
        }
        Ok(())
    }

    /// How many faults the injector has applied so far, as
    /// `(forced evictions, reservation wipes, forced corruptions)`.
    pub fn injected_faults(&self) -> (u64, u64, u64) {
        (
            self.injected_evictions,
            self.injected_wipes,
            self.injected_corruptions,
        )
    }

    /// The fault schedule applied so far (`None` when faults are off) —
    /// the raw material of reproducer shrinking.
    pub fn fault_record(&self) -> Option<&FaultRecord> {
        self.injector.as_ref().map(FaultInjector::record)
    }

    /// The *effective* fault configuration this machine was built with:
    /// the explicit [`MachineConfig::faults`], a [`with_fault_config`]
    /// override, or the `DSM_FAULTS`/`DSM_PARANOID` environment —
    /// whichever won at build time. Reproducer artifacts capture this
    /// so a replay pins identical fault behaviour.
    pub fn fault_config(&self) -> &FaultConfig {
        &self.core.cfg.faults
    }

    /// Installs (or clears) a candidate-index allow list on the fault
    /// injector, restricting which drawn faults are *applied* without
    /// changing the RNG draw sequence. No-op when faults are off.
    /// Install before running — mid-run installation is sound (queries
    /// are monotone) but makes the run depend on when the call happened.
    pub fn set_fault_filter(&mut self, filter: Option<FaultFilter>) {
        if let Some(inj) = &mut self.injector {
            inj.set_filter(filter);
        }
    }

    /// Total events dispatched since construction — the replay
    /// coordinate used by checkpoints (see [`StopRule::AfterEvents`]).
    pub fn events_processed(&self) -> u64 {
        self.core.events_processed
    }

    /// A digest of the machine's complete dynamic state: simulated
    /// time, the pending event queue, network ports, every cache, home
    /// directory and memory line, LL/SC reservations, per-processor
    /// progress and RNG streams, server availability, statistics, and
    /// fault-injector position.
    ///
    /// Two machines built from the same configuration that have
    /// dispatched the same event sequence produce equal digests; any
    /// divergence in simulated state changes the digest — and a
    /// parallel run's post-run digest equals the serial run's, because
    /// the merged statistics and event keys are canonical.
    /// Diagnostic-only state (tracers, recycling pools) is excluded —
    /// it cannot influence simulation results.
    pub fn state_digest(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_u64(self.core.now.as_u64());
        h.write_u64(self.core.events_processed);
        h.write_usize(self.core.active);
        self.core
            .events
            .digest_with(&mut h, |event, h| match event {
                Event::Deliver(m) => {
                    h.write_u8(0);
                    m.digest(h);
                }
                // The span word is deliberately not hashed: it is
                // tracer-produced diagnostic state, and digests must agree
                // between traced and untraced runs of the same simulation.
                Event::Process(m, _span) => {
                    h.write_u8(1);
                    m.digest(h);
                }
                Event::ProcStep(p) => {
                    h.write_u8(2);
                    h.write_u32(p.as_u32());
                }
                Event::OpDone(p, o) => {
                    h.write_u8(3);
                    h.write_u32(p.as_u32());
                    o.digest(h);
                }
                Event::Wire(m) => {
                    h.write_u8(4);
                    m.digest(h);
                }
            });
        self.core.ports.digest(&mut h);
        h.write_usize(self.core.homes.len());
        for home in &self.core.homes {
            home.digest(&mut h);
        }
        for cache in &self.core.caches {
            cache.digest(&mut h);
        }
        for proc in &self.core.procs {
            for w in proc.rng.state() {
                h.write_u64(w);
            }
            h.write_u8(proc.done as u8);
            h.write_u8(proc.blocked as u8);
            match proc.waiting_barrier {
                Some(b) => {
                    h.write_u8(1);
                    h.write_u32(b);
                }
                None => h.write_u8(0),
            }
            match &proc.last {
                Some(r) => {
                    h.write_u8(1);
                    r.digest(&mut h);
                }
                None => h.write_u8(0),
            }
            match proc.last_chain {
                Some(c) => {
                    h.write_u8(1);
                    h.write_u32(c);
                }
                None => h.write_u8(0),
            }
            match &proc.current {
                Some((op, at, sync)) => {
                    h.write_u8(1);
                    op.digest(&mut h);
                    h.write_u64(at.as_u64());
                    h.write_u8(*sync as u8);
                }
                None => h.write_u8(0),
            }
        }
        for c in &self.core.mem_busy {
            h.write_u64(c.as_u64());
        }
        for c in &self.core.cache_busy {
            h.write_u64(c.as_u64());
        }
        self.stats().digest(&mut h);
        h.write_u64(self.core.last_retire.as_u64());
        h.write_u64(self.injected_evictions);
        h.write_u64(self.injected_wipes);
        h.write_u64(self.injected_corruptions);
        match &self.injector {
            Some(inj) => {
                h.write_u8(1);
                inj.digest(&mut h);
            }
            None => h.write_u8(0),
        }
        h.finish()
    }

    /// Runs the per-transition invariant checker over the whole machine
    /// on demand (independent of paranoid mode).
    pub fn check_invariants(&self) -> Vec<InvariantViolation> {
        check_invariants(&self.core.caches, &self.core.homes, &self.core.map)
    }

    /// Test-only corruption hook: illegally promotes a Shared copy of
    /// `line` at `node` to Exclusive, bypassing the protocol. Returns
    /// whether the corruption was applied. Exists so tests can prove the
    /// paranoid checker reports corruption as a structured diagnostic.
    #[doc(hidden)]
    pub fn corrupt_promote_shared(&mut self, node: NodeId, line: LineAddr) -> bool {
        self.core.caches[node.index()].corrupt_promote_shared(line)
    }

    /// Enables a message-trace ring buffer holding the last `capacity`
    /// sends, each formatted as `time src->dst line kind`. Useful when
    /// debugging protocol behaviour in tests. Forces the serial engine.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some((
            capacity,
            std::collections::VecDeque::with_capacity(capacity),
        ));
    }

    /// The trace entries recorded so far (oldest first); empty unless
    /// [`enable_trace`](Machine::enable_trace) was called.
    pub fn trace(&self) -> impl Iterator<Item = &str> {
        self.trace
            .iter()
            .flat_map(|(_, q)| q.iter().map(String::as_str))
    }

    /// The structured event tracer, if tracing is enabled (via
    /// [`MachineBuilder::with_trace`] or `DSM_TRACE`).
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_deref()
    }

    /// Mutable access to the tracer, e.g. to attach a custom
    /// [`TraceSink`](dsm_trace::TraceSink) before running.
    pub fn tracer_mut(&mut self) -> Option<&mut Tracer> {
        self.tracer.as_deref_mut()
    }

    /// Attaches a tracer to an already-built machine, replacing any
    /// existing one. Useful when the machine was constructed by a
    /// workload builder that offers no [`MachineBuilder::with_trace`]
    /// hook; attach before [`run`](Machine::run) or the trace will miss
    /// everything already simulated.
    pub fn attach_tracer(&mut self, spec: &TraceSpec) {
        self.tracer = Some(Box::new(Tracer::new(spec, self.core.cfg.nodes)));
    }

    /// Writes the attached trace sinks to disk (no-op when tracing is
    /// off). [`run`](Machine::run) calls this automatically on both the
    /// success and error paths; calling it again is idempotent because
    /// file names are content-addressed.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the trace files.
    pub fn flush_trace(&mut self) -> std::io::Result<Vec<PathBuf>> {
        let Some(tracer) = &self.tracer else {
            return Ok(Vec::new());
        };
        let paths = tracer.finish(self.core.cfg.seed)?;
        self.trace_files.clone_from(&paths);
        Ok(paths)
    }

    /// Paths written by the most recent trace flush (empty when tracing
    /// is off).
    pub fn trace_files(&self) -> &[PathBuf] {
        &self.trace_files
    }

    /// Checks coherence invariants. Only valid when the machine is
    /// quiescent (after [`run`](Machine::run) returns successfully).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant:
    /// single-writer/multiple-reader, directory/cache agreement, and
    /// value agreement between shared copies and memory.
    pub fn validate_coherence(&self) -> Result<(), String> {
        use std::collections::HashMap;
        let mut copies: HashMap<dsm_sim::LineAddr, Vec<(NodeId, CacheState)>> = HashMap::new();
        for (i, cache) in self.core.caches.iter().enumerate() {
            for (line, state) in cache.cached_lines() {
                copies
                    .entry(line)
                    .or_default()
                    .push((NodeId::new(i as u32), state));
            }
        }
        for (line, holders) in &copies {
            let exclusives: Vec<NodeId> = holders
                .iter()
                .filter(|(_, s)| *s == CacheState::Exclusive)
                .map(|(n, _)| *n)
                .collect();
            if exclusives.len() > 1 {
                return Err(format!(
                    "line {line}: multiple exclusive copies {exclusives:?}"
                ));
            }
            if exclusives.len() == 1 && holders.len() > 1 {
                return Err(format!(
                    "line {line}: exclusive copy at {} coexists with shared copies",
                    exclusives[0]
                ));
            }
            let home = line.home(self.core.cfg.nodes);
            let dir = self.core.homes[home.index()].dir_state(*line);
            match (&dir, exclusives.first()) {
                (DirState::Dirty(owner), Some(e)) if owner == e => {}
                (DirState::Dirty(owner), _) => {
                    return Err(format!(
                        "line {line}: directory says dirty at {owner} but cache state disagrees"
                    ));
                }
                (DirState::Shared(sharers), None) => {
                    for (n, _) in holders {
                        if !sharers.contains(*n) {
                            return Err(format!(
                                "line {line}: {n} holds a shared copy unknown to the directory"
                            ));
                        }
                    }
                    // Shared copies must match memory.
                    let base = line.base(self.core.cfg.params.line_size);
                    for w in 0..(self.core.cfg.params.line_size / 8) {
                        let addr = base + w * 8;
                        let mem = self.core.homes[home.index()].peek_word(addr);
                        for (n, _) in holders {
                            let cached = self.core.caches[n.index()]
                                .peek_word(addr)
                                .expect("holder has the line");
                            if cached != mem {
                                return Err(format!(
                                    "line {line} word {w}: {n} caches {cached}, memory has {mem}"
                                ));
                            }
                        }
                    }
                }
                (DirState::Uncached, None) => {
                    // Silently evicted shared copies leave stale sharers,
                    // never stale cached copies; a cached copy with an
                    // Uncached directory is a bug.
                    return Err(format!(
                        "line {line}: cached copies but directory is uncached"
                    ));
                }
                (DirState::Shared(_), Some(e)) => {
                    return Err(format!(
                        "line {line}: directory says shared but {e} holds it exclusively"
                    ));
                }
                (DirState::Uncached, Some(e)) => {
                    return Err(format!(
                        "line {line}: directory says uncached but {e} holds it exclusively"
                    ));
                }
            }
        }
        Ok(())
    }
}
