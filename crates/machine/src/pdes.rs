//! Conservative parallel discrete-event simulation of one machine.
//!
//! [`run_parallel`] shards a full-range [`Core`] into per-worker
//! logical processes ([`Core::split_off`]) and advances them in
//! bounded windows under a windowed-coordinator protocol:
//!
//! 1. **Report** — every worker publishes its next pending event time,
//!    barrier-waiting count, and the earliest wire-arrival it pushed to
//!    each peer shard since the last round, then waits on a barrier.
//! 2. **Plan** — the barrier leader computes the global virtual time
//!    `GVT` (the minimum over local queues *and* in-flight channel
//!    messages) and hands every shard a dispatch horizon
//!    `te = GVT + lookahead`, where the lookahead is the minimum
//!    latency any cross-shard message can take
//!    ([`dsm_mesh::pair_lookahead`] of the minimum cross-shard hop
//!    distance). No event below the horizon can be affected by a
//!    message a peer has not sent yet, so the window is safe — and
//!    because the bound is static, no null messages are ever needed.
//! 3. **Execute** — workers dispatch events strictly below their
//!    horizon, pushing cross-shard messages into mutex-guarded
//!    channels keyed with the sender-assigned deterministic tie-break
//!    key (see `key_wire` in the machine module), so the receiver's
//!    queue orders them exactly as the serial engine would.
//!
//! Global barriers (the simulated kind) are the one interaction that
//! is not a message: the serial engine releases all waiters inline at
//! the moment the last processor arrives. The coordinator reproduces
//! that time exactly: a shard that observes a local arrival stops its
//! window right after that cycle, a shard with waiting processors is
//! capped just past the earliest time any *runnable* shard could still
//! produce an arrival, and once every active processor is reported
//! waiting the leader schedules a release at the maximum reported
//! arrival time — which is, by construction, the cycle the serial
//! engine would have released at. Rank-3 release keys sort the resumed
//! `ProcStep`s after all same-cycle protocol work of the node, exactly
//! like the serial inline push.
//!
//! Everything a run produces — simulated cycle count, per-node
//! statistics, the sync-access log, network counters, the post-run
//! [`state_digest`](crate::Machine::state_digest) — is bit-identical
//! to the serial engine's, because each shard dispatches exactly the
//! subsequence of the serial dispatch order that touches its nodes and
//! all merged artifacts are combined in canonical node order.

use crate::machine::{
    key_node, shard_bounds, shard_of, Core, Effect, RunError, RunReport, ShardIo,
};
use dsm_protocol::Msg;
use dsm_sim::{Cycle, MachineConfig, NodeId};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::{Duration, Instant};

/// Matches the serial engine's wall-clock polling period.
const WALL_CHECK_MASK: u64 = 8191;

/// An in-flight cross-shard message: wire-arrival time, deterministic
/// tie-break key (assigned by the sender's entry port), payload.
type Flight = (Cycle, u128, Msg);

/// What one worker tells the coordinator at a round boundary.
#[derive(Debug)]
struct Report {
    /// Earliest pending local event, if any.
    next_local: Option<Cycle>,
    /// Local processors waiting at a simulated barrier.
    waiting: usize,
    /// Local processors that have not terminated.
    active_local: usize,
    /// Latest local barrier-arrival or termination time this window
    /// (`Cycle::ZERO` when none happened).
    arr_max: Cycle,
    /// Latest local termination time this window.
    fin_max: Cycle,
    /// The shard's local clock after the window.
    max_now: Cycle,
    /// Per-destination-shard minimum wire-arrival among messages sent
    /// this window. Covers every message that may still be sitting in a
    /// channel, so the leader's GVT never misses an in-flight event.
    sent_min: Vec<Option<Cycle>>,
    /// A terminal error the window hit, if any.
    error: Option<RunError>,
}

impl Report {
    fn empty(workers: usize) -> Self {
        Report {
            next_local: None,
            waiting: 0,
            active_local: 0,
            arr_max: Cycle::ZERO,
            fin_max: Cycle::ZERO,
            max_now: Cycle::ZERO,
            sent_min: vec![None; workers],
            error: None,
        }
    }

    /// Fills the queue/processor fields from the shard's current state.
    fn observe(&mut self, core: &mut Core) {
        self.next_local = core.events.peek_horizon();
        self.waiting = core.waiting_count();
        self.active_local = core.active;
        self.max_now = core.now;
    }
}

/// What the coordinator tells one worker to do next round.
#[derive(Debug, Clone, Default)]
struct Plan {
    /// Dispatch events strictly below this time (`Cycle::ZERO` =
    /// dispatch nothing, e.g. a pure release round).
    horizon: Cycle,
    /// Apply a simulated-barrier release at this time before executing.
    release_at: Option<Cycle>,
    /// The run is over; stop looping.
    done: bool,
}

/// How the run ended, decided by the coordinator.
#[derive(Debug, Clone)]
enum Verdict {
    /// Every processor terminated; `cycles` is the serial completion
    /// time (the latest termination).
    Done { cycles: Cycle },
    /// Queues and channels drained with processors still active.
    Deadlock { at: Cycle, active: usize },
    /// A worker hit a terminal error.
    Fail(RunError),
}

/// Everything the workers share.
struct Ctrl {
    barrier: Barrier,
    coord: Mutex<Coord>,
    /// `chans[dst][src]`: messages in flight from shard `src` to shard
    /// `dst`. Receivers drain their whole row at the start of every
    /// window.
    chans: Vec<Vec<Mutex<Vec<Flight>>>>,
    bounds: Vec<(u32, u32)>,
    /// Conservative lookahead: minimum cycles between a cross-shard
    /// send and its earliest wire arrival.
    lookahead: u64,
    limit: Cycle,
    wall_limit: Option<Duration>,
    started: Instant,
    /// A worker panicked inside its window; everyone shuts down and the
    /// payload is re-thrown on the coordinating thread.
    panicked: AtomicBool,
    panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// Coordinator state, touched only by the barrier leader between the
/// report barrier and the plan barrier.
struct Coord {
    reports: Vec<Report>,
    plans: Vec<Plan>,
    /// Monotone maximum of all reported arrival/termination times: the
    /// exact cycle the serial engine releases the current simulated
    /// barrier generation at.
    gen_max: Cycle,
    /// Monotone maximum of all reported termination times: the serial
    /// completion cycle.
    fin_max: Cycle,
    verdict: Option<Verdict>,
}

/// Minimum hop distance between nodes in *different* shards — the
/// distance that bounds how quickly one shard can affect another.
fn min_cross_shard_hops(cfg: &MachineConfig, bounds: &[(u32, u32)]) -> u32 {
    let mut min = u32::MAX;
    for a in 0..cfg.nodes {
        let sa = shard_of(bounds, a);
        for b in (a + 1)..cfg.nodes {
            if shard_of(bounds, b) != sa {
                min = min.min(cfg.hops(NodeId::new(a), NodeId::new(b)));
            }
        }
    }
    min
}

/// Runs `core` (a full-range machine core) to completion on `workers`
/// threads, bit-identically to the serial engine. See the module docs
/// for the protocol.
pub(crate) fn run_parallel(
    core: &mut Core,
    limit: Cycle,
    workers: usize,
    wall_limit: Option<Duration>,
) -> Result<RunReport, RunError> {
    debug_assert!(workers >= 2, "one worker is the serial engine's job");
    let bounds = shard_bounds(core.cfg.nodes, workers);
    let w = bounds.len();
    let lookahead =
        dsm_mesh::pair_lookahead(&core.cfg.params, min_cross_shard_hops(&core.cfg, &bounds));
    let ctrl = Ctrl {
        barrier: Barrier::new(w),
        coord: Mutex::new(Coord {
            reports: (0..w).map(|_| Report::empty(w)).collect(),
            plans: vec![Plan::default(); w],
            gen_max: Cycle::ZERO,
            fin_max: Cycle::ZERO,
            verdict: None,
        }),
        chans: (0..w)
            .map(|_| (0..w).map(|_| Mutex::new(Vec::new())).collect())
            .collect(),
        bounds: bounds.clone(),
        lookahead,
        limit,
        wall_limit,
        started: Instant::now(),
        panicked: AtomicBool::new(false),
        panic_payload: Mutex::new(None),
    };
    let shards = core.split_off(&bounds);
    let mut returned: Vec<Core> = std::thread::scope(|s| {
        let handles: Vec<_> = shards
            .into_iter()
            .enumerate()
            .map(|(me, shard)| {
                let ctrl = &ctrl;
                s.spawn(move || worker(me, shard, ctrl))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker infrastructure never panics"))
            .collect()
    });
    if let Some(payload) = ctrl.panic_payload.lock().unwrap().take() {
        // A simulated program panicked; surface it exactly as the
        // serial engine would have (the machine is left unusable, but
        // the panic unwinds through the caller just the same).
        resume_unwind(payload);
    }
    // Workers drained their inbound channels before returning, so the
    // shards hold every in-flight message and absorb loses nothing.
    returned.sort_by_key(|c| c.lo);
    core.absorb(returned);
    let verdict = ctrl
        .coord
        .lock()
        .unwrap()
        .verdict
        .take()
        .expect("workers only exit on a verdict");
    match verdict {
        Verdict::Done { cycles } => Ok(RunReport {
            cycles,
            events: core.events_processed,
        }),
        Verdict::Deadlock { at, active } => Err(RunError::Deadlock {
            at,
            active,
            procs: core.proc_dumps(),
        }),
        Verdict::Fail(e) => Err(e),
    }
}

/// One worker thread: report / barrier / plan / barrier / execute.
fn worker(me: usize, mut core: Core, ctrl: &Ctrl) -> Core {
    let mut rep = Report::empty(ctrl.bounds.len());
    rep.observe(&mut core);
    loop {
        {
            let mut coord = ctrl.coord.lock().unwrap();
            coord.reports[me] = rep;
        }
        if ctrl.barrier.wait().is_leader() {
            plan_round(ctrl);
        }
        ctrl.barrier.wait();
        let plan = {
            let coord = ctrl.coord.lock().unwrap();
            coord.plans[me].clone()
        };
        if plan.done {
            break;
        }
        rep = match catch_unwind(AssertUnwindSafe(|| run_window(&mut core, me, &plan, ctrl))) {
            Ok(rep) => rep,
            Err(payload) => {
                // Keep participating in barriers (or the other workers
                // hang); the leader sees the flag and winds everyone
                // down, and the payload is re-thrown after the join.
                ctrl.panicked.store(true, Ordering::SeqCst);
                let mut slot = ctrl.panic_payload.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
                Report::empty(ctrl.bounds.len())
            }
        };
    }
    drain_inbound(&mut core, me, ctrl);
    core
}

/// Moves every in-flight message addressed to shard `me` into its
/// local event queue (keys keep the serial order).
fn drain_inbound(core: &mut Core, me: usize, ctrl: &Ctrl) {
    for src in &ctrl.chans[me] {
        for (at, key, msg) in src.lock().unwrap().drain(..) {
            core.push_remote(at, key, msg);
        }
    }
}

/// [`ShardIo`] for a PDES worker: no instrumentation (it all forces
/// the serial engine), cross-shard sends go to the channels.
struct ParIo<'a> {
    ctrl: &'a Ctrl,
    me: usize,
    /// Minimum wire-arrival pushed to each destination shard this
    /// window (reported so the leader's GVT sees in-flight messages).
    sent_min: Vec<Option<Cycle>>,
}

impl ShardIo for ParIo<'_> {
    fn send_remote(&mut self, wire_at: Cycle, key: u128, msg: Msg) {
        let dst = shard_of(&self.ctrl.bounds, key_node(key));
        debug_assert_ne!(dst, self.me, "local messages never reach send_remote");
        self.sent_min[dst] = Some(match self.sent_min[dst] {
            Some(t) => t.min(wire_at),
            None => wire_at,
        });
        self.ctrl.chans[dst][self.me]
            .lock()
            .unwrap()
            .push((wire_at, key, msg));
    }
}

/// Executes one window: apply any planned barrier release, ingest
/// in-flight messages, then dispatch local events strictly below the
/// horizon (shrinking it past a local barrier arrival).
fn run_window(core: &mut Core, me: usize, plan: &Plan, ctrl: &Ctrl) -> Report {
    if let Some(at) = plan.release_at {
        debug_assert!(at >= core.now, "release planned in a shard's past");
        core.apply_barrier_release(at);
    }
    drain_inbound(core, me, ctrl);
    let mut io = ParIo {
        ctrl,
        me,
        sent_min: vec![None; ctrl.bounds.len()],
    };
    let mut rep = Report::empty(ctrl.bounds.len());
    let mut horizon = plan.horizon;
    while let Some((at, key, event)) = core.events.pop_before_keyed(horizon) {
        debug_assert!(at >= core.now, "time ran backwards");
        core.now = at;
        core.events_processed += 1;
        if core.events_processed & WALL_CHECK_MASK == 0 {
            if let Some(budget) = ctrl.wall_limit {
                let elapsed = ctrl.started.elapsed();
                if elapsed > budget {
                    rep.error = Some(RunError::Timeout {
                        at,
                        elapsed_ms: elapsed.as_millis() as u64,
                        limit_ms: budget.as_millis() as u64,
                    });
                    break;
                }
            }
        }
        match core.dispatch(key, event, &mut io) {
            Ok(Effect::None) => {}
            Ok(Effect::Arrived) => {
                // A local processor reached the simulated barrier. The
                // release cycle is not known until every shard's
                // processors arrive, so finish this cycle and stop: the
                // coordinator caps us near the release time from here
                // on, and the release itself can never precede this
                // arrival.
                rep.arr_max = rep.arr_max.max(at);
                horizon = horizon.min(at + 1);
            }
            Ok(Effect::Finished) => {
                // Terminations feed the same maximum: when the last
                // runnable processor terminates and only waiters
                // remain, the serial engine releases the barrier at
                // exactly that cycle.
                rep.arr_max = rep.arr_max.max(at);
                rep.fin_max = rep.fin_max.max(at);
            }
            Err(e) => {
                rep.error = Some(e);
                break;
            }
        }
    }
    rep.sent_min = io.sent_min;
    rep.observe(core);
    rep
}

/// The leader's round computation. Runs between the two barrier waits,
/// so every report is complete and no worker is reading its plan yet.
fn plan_round(ctrl: &Ctrl) {
    let coord = &mut *ctrl.coord.lock().unwrap();
    let w = coord.reports.len();
    let (arr, fin) = coord
        .reports
        .iter()
        .fold((Cycle::ZERO, Cycle::ZERO), |(a, f), r| {
            (a.max(r.arr_max), f.max(r.fin_max))
        });
    coord.gen_max = coord.gen_max.max(arr);
    coord.fin_max = coord.fin_max.max(fin);
    if ctrl.panicked.load(Ordering::SeqCst) {
        finish(
            coord,
            Verdict::Fail(RunError::Deadlock {
                // Placeholder verdict: the panic payload wins after the
                // join, so this error is never observed.
                at: Cycle::ZERO,
                active: 0,
                procs: Vec::new(),
            }),
        );
        return;
    }
    if let Some((si, _)) = coord
        .reports
        .iter()
        .enumerate()
        .filter(|(_, r)| r.error.is_some())
        .min_by_key(|(si, r)| (r.max_now, *si))
    {
        let e = coord.reports[si].error.take().expect("filtered on is_some");
        finish(coord, Verdict::Fail(e));
        return;
    }
    // The effective next event time of each shard: its own queue, plus
    // anything any peer sent it that may still sit in a channel.
    let eff_next: Vec<Option<Cycle>> = (0..w)
        .map(|q| {
            let mut t = coord.reports[q].next_local;
            for s in 0..w {
                if let Some(m) = coord.reports[s].sent_min[q] {
                    t = Some(match t {
                        Some(t) => t.min(m),
                        None => m,
                    });
                }
            }
            t
        })
        .collect();
    let total_active: usize = coord.reports.iter().map(|r| r.active_local).sum();
    let waiting_total: usize = coord.reports.iter().map(|r| r.waiting).sum();
    // Simulated-barrier release: every active processor is waiting, so
    // the generation is complete. The serial engine released inline at
    // the last arrival — `gen_max` — so schedule exactly that, then
    // replan with the resumed ProcSteps in the queues.
    if total_active > 0 && waiting_total == total_active {
        let at = coord.gen_max;
        for p in &mut coord.plans {
            *p = Plan {
                horizon: Cycle::ZERO,
                release_at: Some(at),
                done: false,
            };
        }
        return;
    }
    let gvt = eff_next.iter().flatten().copied().min();
    let Some(gvt) = gvt else {
        // No pending work anywhere. Either everything terminated (the
        // normal end) or active processors starved (a protocol or
        // program bug — the serial engine's deadlock).
        let verdict = if total_active == 0 {
            Verdict::Done {
                cycles: coord.fin_max,
            }
        } else {
            let at = coord
                .reports
                .iter()
                .map(|r| r.max_now)
                .max()
                .unwrap_or(Cycle::ZERO);
            Verdict::Deadlock {
                at,
                active: total_active,
            }
        };
        finish(coord, verdict);
        return;
    };
    if gvt > ctrl.limit {
        // Identical to the serial engine popping its next event past
        // the limit: every event at or below the limit has been
        // dispatched, none beyond it ever was.
        finish(
            coord,
            Verdict::Fail(RunError::CycleLimit {
                limit: ctrl.limit,
                active: total_active,
            }),
        );
        return;
    }
    // The conservative window: nothing below `te` can be affected by a
    // message not yet sent. Clamped just past the cycle limit so no
    // event beyond the limit is ever dispatched (keeps the CycleLimit
    // check above exact).
    let te = (gvt + ctrl.lookahead).min(ctrl.limit + 1);
    // Earliest time any shard that can still *run* a processor might
    // produce a barrier arrival: shards with waiters must not pass it,
    // because the release lands at the last arrival and a released
    // ProcStep may not be pushed into a shard's past.
    let runnable_next = (0..w)
        .filter(|&q| coord.reports[q].active_local > coord.reports[q].waiting)
        .filter_map(|q| eff_next[q])
        .min();
    for (q, p) in coord.plans.iter_mut().enumerate() {
        let mut horizon = te;
        if coord.reports[q].waiting > 0 {
            if let Some(r) = runnable_next {
                horizon = horizon.min(r + 1);
            }
        }
        *p = Plan {
            horizon,
            release_at: None,
            done: false,
        };
    }
}

/// Records the verdict and tells every worker to stop.
fn finish(coord: &mut Coord, verdict: Verdict) {
    coord.verdict = Some(verdict);
    for p in &mut coord.plans {
        p.done = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_bounds_cover_all_nodes_contiguously() {
        for nodes in [1u32, 2, 7, 64, 256] {
            for workers in [1usize, 2, 3, 8, 300] {
                let b = shard_bounds(nodes, workers);
                let mut expect = 0;
                for &(lo, count) in &b {
                    assert_eq!(lo, expect);
                    assert!(count > 0, "empty shard");
                    expect = lo + count;
                }
                assert_eq!(expect, nodes);
            }
        }
    }

    #[test]
    fn cross_shard_hops_is_min_over_cut_pairs() {
        // 4 nodes on a 2x2 mesh, split 2/2: adjacent cross pairs exist.
        let cfg = MachineConfig::with_nodes(4);
        let bounds = shard_bounds(4, 2);
        assert_eq!(min_cross_shard_hops(&cfg, &bounds), 1);
    }
}
