//! The processor-program interface.
//!
//! The paper drove its simulator with MINT, executing real MIPS code.
//! What the results depend on is the *memory-reference stream* each
//! processor generates, so our processors run [`Program`] state machines
//! that yield one [`Action`] at a time: a memory operation, a block of
//! local computation, a constant-time barrier (which MINT provided for
//! exactly this purpose), or termination.

use dsm_protocol::{MemOp, OpResult};
use dsm_sim::{Cycle, ProcId, SimRng};

/// What a processor does next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Issue a memory operation; the processor blocks until it
    /// completes and the result appears in [`ProcCtx::last`].
    Op(MemOp),
    /// Compute locally for the given number of cycles.
    Compute(u64),
    /// Wait at the constant-time barrier with the given id. All
    /// processors that have not terminated must reach the same barrier;
    /// they resume simultaneously and the barrier itself costs zero
    /// simulated time (like MINT's barriers, "they have no effect on the
    /// results other than enforcing the intended sharing patterns").
    Barrier(u32),
    /// The program has finished.
    Done,
}

/// Per-step context handed to a [`Program`].
#[derive(Debug)]
pub struct ProcCtx<'a> {
    /// This processor's id.
    pub proc: ProcId,
    /// Current simulated time.
    pub now: Cycle,
    /// Result of the previous [`Action::Op`], if the previous action was
    /// an operation.
    pub last: Option<OpResult>,
    /// Serialized network messages on the previous operation's critical
    /// path (0 for cache hits) — the quantity Table 1 reports.
    pub last_chain: Option<u32>,
    /// Deterministic per-processor randomness (backoff jitter etc.).
    pub rng: &'a mut SimRng,
}

impl ProcCtx<'_> {
    /// The last result, for programs that know one must exist.
    ///
    /// # Panics
    ///
    /// Panics if the previous action was not an operation.
    pub fn result(&self) -> OpResult {
        self.last
            .expect("previous action was not a memory operation")
    }
}

/// A program executed by one simulated processor.
///
/// Programs are Mealy machines: each call to [`step`](Program::step)
/// observes the result of the previous action (via [`ProcCtx::last`])
/// and yields the next action. Shared results are best communicated to
/// the experiment driver through `Arc<Mutex<...>>` handles captured by
/// the program when it is built (programs must be `Send`: a
/// partitioned machine steps each processor on its owning worker
/// thread).
pub trait Program: Send {
    /// Produces the next action. Called once at start (with
    /// `ctx.last == None`) and again after each action completes.
    fn step(&mut self, ctx: &mut ProcCtx<'_>) -> Action;
}

impl<F: FnMut(&mut ProcCtx<'_>) -> Action + Send> Program for F {
    fn step(&mut self, ctx: &mut ProcCtx<'_>) -> Action {
        self(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closures_are_programs() {
        let mut calls = 0;
        let mut p = |_ctx: &mut ProcCtx<'_>| {
            calls += 1;
            Action::Done
        };
        let mut rng = SimRng::new(1);
        let mut ctx = ProcCtx {
            proc: ProcId::new(0),
            now: Cycle::ZERO,
            last: None,
            last_chain: None,
            rng: &mut rng,
        };
        // Exercise through the trait to prove the blanket impl works.
        fn run(p: &mut dyn Program, ctx: &mut ProcCtx<'_>) -> Action {
            p.step(ctx)
        }
        assert_eq!(run(&mut p, &mut ctx), Action::Done);
        let _ = p;
        assert_eq!(calls, 1);
    }

    #[test]
    #[should_panic(expected = "not a memory operation")]
    fn result_panics_without_last() {
        let mut rng = SimRng::new(1);
        let ctx = ProcCtx {
            proc: ProcId::new(0),
            now: Cycle::ZERO,
            last: None,
            last_chain: None,
            rng: &mut rng,
        };
        let _ = ctx.result();
    }
}
