//! Machine-level instrumentation.

use dsm_stats::{
    ChainStats, ContentionTracker, Histogram, LatencyHist, OnlineMean, WriteRunTracker,
};

/// Everything the machine measures during a run.
///
/// * `msgs` — per-class message counts plus the serialized-chain length
///   of every completed synchronization operation (Table 1);
/// * `contention` — contention level sampled at the beginning of each
///   atomic access (Figure 2);
/// * `write_runs` — write-run-length tracking of sync locations (§4.2);
/// * `sync_latency` — end-to-end cycles of sync operations;
/// * counters for completed operations.
#[derive(Debug, Default)]
pub struct MachineStats {
    /// Message counts and serialized-chain statistics.
    pub msgs: ChainStats,
    /// Contention histogram over synchronization variables.
    pub contention: ContentionTracker,
    /// Write-run tracking over synchronization variables.
    pub write_runs: WriteRunTracker,
    /// Latency (cycles) of completed synchronization operations.
    pub sync_latency: OnlineMean,
    /// Latency (cycles) of all completed operations.
    pub op_latency: OnlineMean,
    /// Total operations completed.
    pub ops: u64,
    /// Synchronization operations completed.
    pub sync_ops: u64,
    /// Operations satisfied entirely in the local cache.
    pub local_ops: u64,
    /// Histogram of sync-op latencies (bucketed by 10 cycles).
    pub sync_latency_hist: Histogram,
    /// Cycle-exact log-bucketed latency histogram over *all* completed
    /// operations: the percentile source (p50/p99/...) for the latency
    /// tables and `figures analyze`.
    pub op_latency_hist: LatencyHist,
}

impl MachineStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fraction of operations that completed locally, in `[0, 1]`.
    pub fn local_fraction(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.local_ops as f64 / self.ops as f64
        }
    }

    /// Folds every measurement into a checkpoint digest.
    pub fn digest(&self, h: &mut dsm_sim::StableHasher) {
        self.msgs.digest(h);
        self.contention.digest(h);
        self.write_runs.digest(h);
        self.sync_latency.digest(h);
        self.op_latency.digest(h);
        h.write_u64(self.ops);
        h.write_u64(self.sync_ops);
        h.write_u64(self.local_ops);
        self.sync_latency_hist.digest(h);
        self.op_latency_hist.digest(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_fraction_handles_zero() {
        let s = MachineStats::new();
        assert_eq!(s.local_fraction(), 0.0);
    }

    #[test]
    fn local_fraction_computes() {
        let mut s = MachineStats::new();
        s.ops = 4;
        s.local_ops = 3;
        assert_eq!(s.local_fraction(), 0.75);
    }
}
