//! Machine-level instrumentation.

use dsm_stats::{
    ChainStats, ContentionTracker, Histogram, LatencyHist, OnlineMean, WriteRunTracker,
};

/// Everything the machine measures during a run.
///
/// * `msgs` — per-class message counts plus the serialized-chain length
///   of every completed synchronization operation (Table 1);
/// * `contention` — contention level sampled at the beginning of each
///   atomic access (Figure 2);
/// * `write_runs` — write-run-length tracking of sync locations (§4.2);
/// * `sync_latency` — end-to-end cycles of sync operations;
/// * counters for completed operations.
#[derive(Debug, Default)]
pub struct MachineStats {
    /// Message counts and serialized-chain statistics.
    pub msgs: ChainStats,
    /// Contention histogram over synchronization variables.
    pub contention: ContentionTracker,
    /// Write-run tracking over synchronization variables.
    pub write_runs: WriteRunTracker,
    /// Latency (cycles) of completed synchronization operations.
    pub sync_latency: OnlineMean,
    /// Latency (cycles) of all completed operations.
    pub op_latency: OnlineMean,
    /// Total operations completed.
    pub ops: u64,
    /// Synchronization operations completed.
    pub sync_ops: u64,
    /// Operations satisfied entirely in the local cache.
    pub local_ops: u64,
    /// Histogram of sync-op latencies (bucketed by 10 cycles).
    pub sync_latency_hist: Histogram,
    /// Cycle-exact log-bucketed latency histogram over *all* completed
    /// operations: the percentile source (p50/p99/...) for the latency
    /// tables and `figures analyze`.
    pub op_latency_hist: LatencyHist,
}

impl MachineStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fraction of operations that completed locally, in `[0, 1]`.
    pub fn local_fraction(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.local_ops as f64 / self.ops as f64
        }
    }

    /// Folds every measurement into a checkpoint digest.
    pub fn digest(&self, h: &mut dsm_sim::StableHasher) {
        self.msgs.digest(h);
        self.contention.digest(h);
        self.write_runs.digest(h);
        self.sync_latency.digest(h);
        self.op_latency.digest(h);
        h.write_u64(self.ops);
        h.write_u64(self.sync_ops);
        h.write_u64(self.local_ops);
        self.sync_latency_hist.digest(h);
        self.op_latency_hist.digest(h);
    }
}

/// Per-node statistics accumulator.
///
/// The machine accumulates every sample into the stats of the node that
/// produced it, in that node's own event order — an order that is
/// identical whether the run used one worker or many. Global
/// [`MachineStats`] are produced on demand by merging node accumulators
/// in node order ([`merge_node_stats`]), so floating-point sums (the
/// `OnlineMean`s) see a canonical addition order and the merged result
/// is bit-identical across worker counts.
#[derive(Debug, Default, Clone)]
pub(crate) struct NodeStats {
    pub msgs: ChainStats,
    pub sync_latency: OnlineMean,
    pub op_latency: OnlineMean,
    pub ops: u64,
    pub sync_ops: u64,
    pub local_ops: u64,
    pub sync_latency_hist: Histogram,
    pub op_latency_hist: LatencyHist,
}

/// One entry of the canonical synchronization-access log.
///
/// Contention and write-run tracking are inherently *global* — the
/// contention level of a line is the number of processors attempting it
/// across the whole machine — so they cannot be accumulated per node.
/// Instead every begin/end is logged with its canonical coordinates
/// `(cycle, proc, per-proc sequence)`, and the trackers replay the log
/// in sorted coordinate order when statistics are read
/// ([`merge_node_stats`]). Both the serial and the PDES engines log
/// identically, so the replayed histograms are identical too.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SyncRec {
    pub at: u64,
    pub proc: u32,
    pub seq: u64,
    pub addr: u64,
    pub kind: SyncRecKind,
}

/// What a [`SyncRec`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SyncRecKind {
    /// An atomic access began (samples the contention level).
    Begin,
    /// The access completed; `write` is true for a successful mutating
    /// access (extends the location's write run).
    End { write: bool },
}

/// Merges per-node accumulators (in node order) and replays the
/// synchronization log (in canonical coordinate order) into global
/// [`MachineStats`].
pub(crate) fn merge_node_stats(nodes: &[NodeStats], log: &[SyncRec]) -> MachineStats {
    let mut s = MachineStats::new();
    for ns in nodes {
        s.msgs.merge(&ns.msgs);
        s.sync_latency.merge(&ns.sync_latency);
        s.op_latency.merge(&ns.op_latency);
        s.ops += ns.ops;
        s.sync_ops += ns.sync_ops;
        s.local_ops += ns.local_ops;
        s.sync_latency_hist.merge(&ns.sync_latency_hist);
        s.op_latency_hist.merge(&ns.op_latency_hist);
    }
    let mut order: Vec<usize> = (0..log.len()).collect();
    order.sort_by_key(|&i| (log[i].at, log[i].proc, log[i].seq));
    for i in order {
        let r = &log[i];
        match r.kind {
            SyncRecKind::Begin => s.contention.begin(r.addr, r.proc),
            SyncRecKind::End { write } => {
                s.contention.end(r.addr, r.proc);
                s.write_runs.access(r.addr, r.proc, write);
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merged_stats_replay_sync_log_in_canonical_order() {
        let mut nodes = vec![NodeStats::default(), NodeStats::default()];
        nodes[0].ops = 2;
        nodes[0].op_latency.add(10.0);
        nodes[1].ops = 1;
        nodes[1].op_latency.add(30.0);
        // Log appended out of coordinate order (as a multi-worker run
        // would): replay must sort by (cycle, proc, seq).
        let log = vec![
            SyncRec {
                at: 5,
                proc: 1,
                seq: 0,
                addr: 64,
                kind: SyncRecKind::Begin,
            },
            SyncRec {
                at: 3,
                proc: 0,
                seq: 0,
                addr: 64,
                kind: SyncRecKind::Begin,
            },
            SyncRec {
                at: 9,
                proc: 0,
                seq: 1,
                addr: 64,
                kind: SyncRecKind::End { write: true },
            },
            SyncRec {
                at: 9,
                proc: 1,
                seq: 1,
                addr: 64,
                kind: SyncRecKind::End { write: true },
            },
        ];
        let s = merge_node_stats(&nodes, &log);
        assert_eq!(s.ops, 3);
        assert_eq!(s.op_latency.count(), 2);
        // proc0 begins alone (level 1), proc1 joins (level 2).
        assert_eq!(s.contention.histogram().count(1), 1);
        assert_eq!(s.contention.histogram().count(2), 1);
    }

    #[test]
    fn local_fraction_handles_zero() {
        let s = MachineStats::new();
        assert_eq!(s.local_fraction(), 0.0);
    }

    #[test]
    fn local_fraction_computes() {
        let mut s = MachineStats::new();
        s.ops = 4;
        s.local_ops = 3;
        assert_eq!(s.local_fraction(), 0.75);
    }
}
