//! Trace recording and trace-driven replay.
//!
//! The paper's simulator is *execution-driven* (MINT interprets the
//! program as the memory system responds), not *trace-driven* (replay a
//! pre-recorded reference stream). For synchronization studies the
//! distinction is load-bearing: retry loops (CAS, LL/SC, lock spins)
//! issue a *different* stream depending on contention, so a trace
//! recorded under one schedule replays incorrectly under another.
//!
//! These adapters make that argument executable: record a program's
//! action stream with [`TraceRecorder`], replay it with [`TraceReplay`],
//! and watch a contended counter lose updates — see
//! `ablation_tracedriven` in `dsm-bench` and the tests below.

use crate::program::{Action, ProcCtx, Program};
use std::sync::{Arc, Mutex};

/// A shared, growable recording of one processor's action stream.
///
/// Backed by `Arc<Mutex<..>>` (not `Rc<RefCell<..>>`) because programs
/// must be `Send`: a partitioned machine (`DSM_WORKERS`) steps each
/// processor on its owning worker thread.
pub type Trace = Arc<Mutex<Vec<Action>>>;

/// Creates an empty trace.
pub fn new_trace() -> Trace {
    Arc::new(Mutex::new(Vec::new()))
}

/// Wraps a program, recording every action it takes.
pub struct TraceRecorder<P> {
    inner: P,
    trace: Trace,
}

impl<P> TraceRecorder<P> {
    /// Wraps `inner`, appending its actions to `trace`.
    pub fn new(inner: P, trace: Trace) -> Self {
        TraceRecorder { inner, trace }
    }
}

impl<P: Program> Program for TraceRecorder<P> {
    fn step(&mut self, ctx: &mut ProcCtx<'_>) -> Action {
        let action = self.inner.step(ctx);
        self.trace.lock().unwrap().push(action);
        action
    }
}

/// Replays a recorded action stream verbatim, ignoring operation
/// results — a trace-driven processor.
///
/// Replaying is only *valid* when the program's control flow does not
/// depend on the values it reads; for synchronization code it is
/// exactly wrong, which is the point of the demonstration.
pub struct TraceReplay {
    actions: Vec<Action>,
    next: usize,
}

impl TraceReplay {
    /// Creates a replayer over a recorded stream.
    pub fn new(actions: Vec<Action>) -> Self {
        TraceReplay { actions, next: 0 }
    }
}

impl Program for TraceReplay {
    fn step(&mut self, _ctx: &mut ProcCtx<'_>) -> Action {
        let action = self.actions.get(self.next).copied().unwrap_or(Action::Done);
        self.next += 1;
        action
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineBuilder;
    use dsm_protocol::{MemOp, OpResult, SyncConfig, SyncPolicy};
    use dsm_sim::{Addr, Cycle, MachineConfig};

    const X: Addr = Addr::new(0x40);

    /// A CAS-loop increment program: its stream depends on contention.
    fn cas_counter(iters: u64) -> impl Program {
        let mut left = iters;
        let mut expecting: Option<u64> = None;
        move |ctx: &mut ProcCtx<'_>| match (expecting, ctx.last) {
            (None, _) => {
                expecting = Some(u64::MAX); // sentinel: load issued
                Action::Op(MemOp::Load { addr: X })
            }
            (Some(u64::MAX), Some(OpResult::Loaded { value, .. })) => {
                expecting = Some(value);
                Action::Op(MemOp::Cas {
                    addr: X,
                    expected: value,
                    new: value + 1,
                })
            }
            (Some(_), Some(OpResult::CasDone { success, observed })) => {
                if success {
                    left -= 1;
                    if left == 0 {
                        return Action::Done;
                    }
                    expecting = Some(u64::MAX);
                    Action::Op(MemOp::Load { addr: X })
                } else {
                    expecting = Some(observed);
                    Action::Op(MemOp::Cas {
                        addr: X,
                        expected: observed,
                        new: observed + 1,
                    })
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    fn record_solo(iters: u64) -> Vec<Action> {
        let trace = new_trace();
        let mut b = MachineBuilder::new(MachineConfig::with_nodes(2));
        b.register_sync(
            X,
            SyncConfig {
                policy: SyncPolicy::Inv,
                ..Default::default()
            },
        );
        b.add_program(TraceRecorder::new(cas_counter(iters), Arc::clone(&trace)));
        b.add_program(|_: &mut ProcCtx<'_>| Action::Done);
        let mut m = b.build();
        m.run(Cycle::new(10_000_000)).unwrap();
        assert_eq!(m.read_word(X), iters);
        let t = trace.lock().unwrap().clone();
        t
    }

    #[test]
    fn recorder_captures_the_stream() {
        let trace = record_solo(5);
        // Uncontended: load + CAS per iteration, plus the final Done.
        assert_eq!(trace.len(), 11);
        assert!(matches!(trace[0], Action::Op(MemOp::Load { .. })));
        assert!(matches!(trace[1], Action::Op(MemOp::Cas { .. })));
        assert!(matches!(trace[10], Action::Done));
    }

    #[test]
    fn replay_reproduces_solo_runs_exactly() {
        let trace = record_solo(5);
        // Replaying the trace in the same (uncontended) conditions is
        // valid and yields the same final state.
        let mut b = MachineBuilder::new(MachineConfig::with_nodes(2));
        b.register_sync(
            X,
            SyncConfig {
                policy: SyncPolicy::Inv,
                ..Default::default()
            },
        );
        b.add_program(TraceReplay::new(trace));
        b.add_program(|_: &mut ProcCtx<'_>| Action::Done);
        let mut m = b.build();
        m.run(Cycle::new(10_000_000)).unwrap();
        assert_eq!(m.read_word(X), 5);
    }

    /// The headline demonstration: traces recorded per-processor in
    /// *isolation* replay wrongly when run *concurrently* — failed CAS
    /// retries are missing from the streams, so updates are lost. This
    /// is why the paper's simulator (like MINT) must be
    /// execution-driven.
    #[test]
    fn trace_driven_replay_loses_updates_under_contention() {
        let iters = 20u64;
        let nodes = 4u32;
        // Record each processor alone (no contention: no retries in the
        // trace).
        let solo_trace = record_solo(iters);

        // Replay all four concurrently.
        let mut b = MachineBuilder::new(MachineConfig::with_nodes(nodes));
        b.register_sync(
            X,
            SyncConfig {
                policy: SyncPolicy::Inv,
                ..Default::default()
            },
        );
        for _ in 0..nodes {
            b.add_program(TraceReplay::new(solo_trace.clone()));
        }
        let mut m = b.build();
        m.run(Cycle::new(100_000_000)).unwrap();
        m.validate_coherence().unwrap();
        let got = m.read_word(X);
        assert!(
            got < nodes as u64 * iters,
            "trace-driven replay should LOSE updates ({got} of {})",
            nodes as u64 * iters
        );

        // Execution-driven processors running the same logic get it
        // exactly right.
        let mut b = MachineBuilder::new(MachineConfig::with_nodes(nodes));
        b.register_sync(
            X,
            SyncConfig {
                policy: SyncPolicy::Inv,
                ..Default::default()
            },
        );
        for _ in 0..nodes {
            b.add_program(cas_counter(iters));
        }
        let mut m = b.build();
        m.run(Cycle::new(100_000_000)).unwrap();
        assert_eq!(m.read_word(X), nodes as u64 * iters);
    }
}
