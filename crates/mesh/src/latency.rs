//! The paper-faithful network model: wormhole wire latency plus
//! entry/exit queue contention.
//!
//! The paper states that its simulator models "contention at the entry
//! and exit of the network (though not at internal nodes)". We reproduce
//! exactly that: each node has one injection (entry) port and one
//! ejection (exit) port, each of which can carry one flit per
//! [`flit_cycle`](dsm_sim::SimParams::flit_cycle); the wires and routers
//! between them are contention-free and add pipelined wormhole latency
//! `hops * hop_delay + flits * flit_cycle`.
//!
//! Delivery between the same (source, destination) pair is FIFO —
//! wormhole routing with deterministic XY paths cannot reorder messages
//! on the same path — and the model enforces this explicitly.

use crate::topology::Mesh;
use dsm_sim::{Cycle, NodeId, SimParams};

/// The conservative PDES lookahead of this network model: a lower
/// bound, in cycles, on `wire_arrival - send_time` for any message
/// between **distinct** nodes at least `min_hops` apart.
///
/// Every remote message pays `hops * hop_delay` of router latency plus
/// `flits * flit_cycle` of pipelined wormhole occupancy, with at least
/// the control-message flit count ([`SimParams::flits_for_payload`]
/// of a zero-byte payload). Entry-port contention and fault-injected
/// jitter only *delay* departures, so they can only increase the bound
/// — which is what makes it safe for a partitioned simulation: a
/// logical process whose local clock has reached cycle `t` cannot
/// receive any network effect earlier than `t + pair_lookahead(..)`
/// from a peer whose clock has also reached `t`.
///
/// The result is clamped to at least 1 so degenerate parameter sets
/// still yield a usable (if tiny) window.
pub fn pair_lookahead(params: &SimParams, min_hops: u32) -> u64 {
    let min_flits = params.flits_for_payload(0);
    (u64::from(min_hops) * params.hop_delay + min_flits * params.flit_cycle).max(1)
}

/// [`pair_lookahead`] for adjacent partitions (one hop): a safe
/// (if pessimistic) uniform lookahead for any partitioning. The PDES
/// scheduler computes the actual minimum cross-partition hop distance
/// and calls [`pair_lookahead`] directly; this is the floor it can
/// never go below.
pub fn min_remote_lookahead(params: &SimParams) -> u64 {
    pair_lookahead(params, 1)
}

/// Aggregate counters maintained by [`LatencyNetwork`] / [`NetPorts`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Total messages sent.
    pub messages: u64,
    /// Total flits sent.
    pub flits: u64,
    /// Total cycles messages spent waiting for a busy entry port.
    pub entry_wait: u64,
    /// Total cycles messages spent waiting for a busy exit port.
    pub exit_wait: u64,
    /// Total end-to-end latency summed over all messages.
    pub total_latency: u64,
    /// Total extra delay cycles added by fault injection
    /// ([`send_jittered`](LatencyNetwork::send_jittered)); 0 unless a
    /// fault injector is active.
    pub injected_delay: u64,
}

impl NetworkStats {
    /// Mean end-to-end message latency in cycles, or 0 if no messages.
    pub fn mean_latency(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.messages as f64
        }
    }

    /// Folds all counters into a checkpoint digest.
    pub fn digest(&self, h: &mut dsm_sim::StableHasher) {
        h.write_u64(self.messages);
        h.write_u64(self.flits);
        h.write_u64(self.entry_wait);
        h.write_u64(self.exit_wait);
        h.write_u64(self.total_latency);
        h.write_u64(self.injected_delay);
    }
}

/// Split-phase network port state for a contiguous range of nodes.
///
/// This is the shardable core of the network model. A message send is
/// two phases, each touching only one node's ports:
///
/// 1. [`launch`](NetPorts::launch) at the **source** — contends for the
///    source's entry port and computes the *wire arrival* time at the
///    destination (pipelined wormhole latency; the wires themselves are
///    contention-free, per the paper).
/// 2. [`eject`](NetPorts::eject) at the **destination**, executed when
///    simulated time reaches the wire arrival — contends for the
///    destination's exit port and yields the delivery time.
///
/// Because phase 1 reads/writes only source-side state and phase 2 only
/// destination-side state, a partitioned (PDES) machine can run the two
/// phases on different worker threads with no shared mutable state: the
/// wire arrival travels with the message. Per-pair FIFO needs no
/// explicit watermark for remote traffic — entry-port occupancy makes
/// successive wire arrivals on a pair strictly increasing, and exit-port
/// occupancy preserves that order through ejection. Local (`src == dst`)
/// messages bypass both ports; their wire time is clamped against a
/// per-node watermark because fault-injected jitter (serial runs only)
/// can otherwise reorder them.
///
/// Statistics accumulate in whichever shard performed the phase; the
/// counters are sums, so merging shards reproduces the serial totals
/// exactly.
#[derive(Debug, Clone)]
pub struct NetPorts {
    /// First node this shard owns.
    lo: u32,
    /// Time at which each owned node's injection port becomes free.
    entry_free: Vec<Cycle>,
    /// Time at which each owned node's ejection port becomes free.
    exit_free: Vec<Cycle>,
    /// Wire-time watermark for each owned node's *local* (self) pair.
    last_wire: Vec<Cycle>,
    /// Per-owned-source launch counter; stamps each message with a
    /// sequence number that is unique per source and canonical (it
    /// follows the source node's event order, which is identical across
    /// worker counts).
    launch_seq: Vec<u64>,
    stats: NetworkStats,
}

impl NetPorts {
    /// Creates quiescent port state for nodes `lo..lo + count`.
    pub fn new_range(lo: u32, count: u32) -> Self {
        let n = count as usize;
        NetPorts {
            lo,
            entry_free: vec![Cycle::ZERO; n],
            exit_free: vec![Cycle::ZERO; n],
            last_wire: vec![Cycle::ZERO; n],
            launch_seq: vec![0; n],
            stats: NetworkStats::default(),
        }
    }

    /// Creates quiescent port state covering all `count` nodes.
    pub fn new(count: u32) -> Self {
        Self::new_range(0, count)
    }

    fn idx(&self, node: NodeId) -> usize {
        (node.as_u32() - self.lo) as usize
    }

    /// Returns the accumulated statistics of this shard.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Resets the statistics (port state is kept).
    pub fn reset_stats(&mut self) {
        self.stats = NetworkStats::default();
    }

    /// Phase 1: injects a `flits`-flit message at `src` at time `now`,
    /// optionally held `extra` cycles by fault injection, and returns
    /// `(wire_arrival, launch_seq)`. `src` must be owned by this shard.
    ///
    /// # Panics
    ///
    /// Panics if `flits` is zero.
    #[allow(clippy::too_many_arguments)]
    pub fn launch(
        &mut self,
        params: &SimParams,
        mesh: &Mesh,
        now: Cycle,
        src: NodeId,
        dst: NodeId,
        flits: u64,
        extra: u64,
    ) -> (Cycle, u64) {
        assert!(flits > 0, "a message must carry at least one flit");
        let si = self.idx(src);
        let seq = self.launch_seq[si];
        self.launch_seq[si] += 1;
        self.stats.messages += 1;
        self.stats.flits += flits;
        self.stats.injected_delay += extra;
        let now = now + extra;

        if src == dst {
            // Local messages bypass the ports, but not FIFO: a jittered
            // send can push a local wire time past a later undelayed
            // one, and reordering a home's grant against its own
            // intervention to the co-located cache is not
            // protocol-legal. Clamp strict inversions only — without
            // jitter this never fires and fault-free runs are
            // untouched.
            let t = now + params.flit_cycle;
            let slot = &mut self.last_wire[si];
            let t = if t < *slot { *slot + 1 } else { t };
            *slot = t;
            self.stats.total_latency += (t - now).as_u64();
            return (t, seq);
        }

        let occupancy = flits * params.flit_cycle;

        // Entry port: serialize injections from this node.
        let entry = &mut self.entry_free[si];
        let depart = now.max(*entry);
        self.stats.entry_wait += (depart - now).as_u64();
        *entry = depart + occupancy;

        // Wire: pipelined wormhole — head flit takes hop_delay per hop,
        // the tail follows `flits` flit-times behind. Crossing a NUMA
        // cluster boundary adds the configured penalty (0 on the
        // paper's flat machine). The penalty only *increases* latency,
        // so the PDES lookahead bound remains conservative.
        let hops = mesh.hops(src, dst) as u64;
        let numa = if mesh.same_cluster(src, dst) {
            0
        } else {
            params.cluster_penalty
        };
        let wire_arrival = depart + hops * params.hop_delay + occupancy + numa;
        self.stats.total_latency += (wire_arrival - now).as_u64();
        (wire_arrival, seq)
    }

    /// Phase 2: ejects a message whose head reached `dst` at
    /// `wire_arrival` and returns its delivery time. `dst` must be
    /// owned by this shard. Local messages bypass the exit port.
    pub fn eject(
        &mut self,
        params: &SimParams,
        wire_arrival: Cycle,
        src: NodeId,
        dst: NodeId,
        flits: u64,
    ) -> Cycle {
        if src == dst {
            return wire_arrival;
        }
        let di = self.idx(dst);
        let occupancy = flits * params.flit_cycle;
        let exit = &mut self.exit_free[di];
        let delivered = wire_arrival.max(*exit);
        self.stats.exit_wait += (delivered - wire_arrival).as_u64();
        *exit = delivered + occupancy;
        self.stats.total_latency += (delivered - wire_arrival).as_u64();
        delivered
    }

    /// Splits full-range port state into per-shard states for the node
    /// ranges `(lo, count)` in `bounds`. Accumulated statistics move to
    /// the first shard (they are sums; [`NetPorts::merge`] restores the
    /// total).
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is not a partition of this range in order.
    pub fn split(mut self, bounds: &[(u32, u32)]) -> Vec<NetPorts> {
        let mut out = Vec::with_capacity(bounds.len());
        let mut expect = self.lo;
        for (i, &(lo, count)) in bounds.iter().enumerate() {
            assert_eq!(lo, expect, "bounds must partition the range in order");
            expect = lo + count;
            let n = count as usize;
            out.push(NetPorts {
                lo,
                entry_free: self.entry_free.drain(..n).collect(),
                exit_free: self.exit_free.drain(..n).collect(),
                last_wire: self.last_wire.drain(..n).collect(),
                launch_seq: self.launch_seq.drain(..n).collect(),
                stats: if i == 0 {
                    std::mem::take(&mut self.stats)
                } else {
                    NetworkStats::default()
                },
            });
        }
        assert!(self.entry_free.is_empty(), "bounds must cover the range");
        out
    }

    /// Reassembles shard port states (in node order) into one range,
    /// summing statistics.
    pub fn merge(parts: Vec<NetPorts>) -> NetPorts {
        let mut it = parts.into_iter();
        let mut whole = it.next().expect("at least one shard");
        for p in it {
            assert_eq!(
                p.lo,
                whole.lo + whole.entry_free.len() as u32,
                "shards must be contiguous"
            );
            whole.entry_free.extend(p.entry_free);
            whole.exit_free.extend(p.exit_free);
            whole.last_wire.extend(p.last_wire);
            whole.launch_seq.extend(p.launch_seq);
            whole.stats.messages += p.stats.messages;
            whole.stats.flits += p.stats.flits;
            whole.stats.entry_wait += p.stats.entry_wait;
            whole.stats.exit_wait += p.stats.exit_wait;
            whole.stats.total_latency += p.stats.total_latency;
            whole.stats.injected_delay += p.stats.injected_delay;
        }
        whole
    }

    /// Folds the dynamic port state and statistics into a checkpoint
    /// digest.
    pub fn digest(&self, h: &mut dsm_sim::StableHasher) {
        h.write_u64(u64::from(self.lo));
        h.write_usize(self.entry_free.len());
        for c in &self.entry_free {
            h.write_u64(c.as_u64());
        }
        for c in &self.exit_free {
            h.write_u64(c.as_u64());
        }
        for c in &self.last_wire {
            h.write_u64(c.as_u64());
        }
        for s in &self.launch_seq {
            h.write_u64(*s);
        }
        self.stats.digest(h);
    }
}

/// The uncontended latency of a `flits`-flit message between two nodes
/// — the lower bound an idle network approaches.
pub fn base_latency(
    params: &SimParams,
    mesh: &Mesh,
    src: NodeId,
    dst: NodeId,
    flits: u64,
) -> Cycle {
    if src == dst {
        return Cycle::new(params.flit_cycle);
    }
    let hops = mesh.hops(src, dst) as u64;
    let numa = if mesh.same_cluster(src, dst) {
        0
    } else {
        params.cluster_penalty
    };
    Cycle::new(hops * params.hop_delay + flits * params.flit_cycle + numa)
}

/// The entry/exit-contention network model used for all paper results.
///
/// [`send`](LatencyNetwork::send) computes the delivery time of a message
/// immediately; the caller schedules the delivery event itself. Because
/// the caller processes events in time order, every call observes all
/// earlier traffic, and the computed times are deterministic. This is a
/// convenience facade over [`NetPorts`] that fuses the launch and eject
/// phases — the machine simulator itself drives `NetPorts` directly so
/// the two phases can run on different PDES workers.
///
/// # Example
///
/// ```
/// use dsm_mesh::{LatencyNetwork, Mesh};
/// use dsm_sim::{Cycle, MachineConfig, NodeId, SimParams};
///
/// let cfg = MachineConfig::with_nodes(4);
/// let mut net = LatencyNetwork::new(Mesh::new(&cfg), cfg.params.clone());
/// let a = net.send(Cycle::ZERO, NodeId::new(0), NodeId::new(3), 2);
/// let b = net.send(Cycle::ZERO, NodeId::new(0), NodeId::new(3), 2);
/// assert!(b > a, "the second message queues behind the first at the entry port");
/// ```
#[derive(Debug, Clone)]
pub struct LatencyNetwork {
    mesh: Mesh,
    params: SimParams,
    ports: NetPorts,
}

impl LatencyNetwork {
    /// Creates a quiescent network.
    pub fn new(mesh: Mesh, params: SimParams) -> Self {
        let n = mesh.nodes();
        LatencyNetwork {
            mesh,
            params,
            ports: NetPorts::new(n),
        }
    }

    /// Returns the mesh this network runs on.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Returns the accumulated statistics.
    pub fn stats(&self) -> &NetworkStats {
        self.ports.stats()
    }

    /// Resets the statistics (the port state is kept).
    pub fn reset_stats(&mut self) {
        self.ports.reset_stats();
    }

    /// Sends a `flits`-flit message from `src` to `dst` at time `now` and
    /// returns its delivery time at `dst`.
    ///
    /// Local messages (`src == dst`) bypass the network and are delivered
    /// after one flit time.
    ///
    /// # Panics
    ///
    /// Panics if `flits` is zero or a node is out of range.
    pub fn send(&mut self, now: Cycle, src: NodeId, dst: NodeId, flits: u64) -> Cycle {
        let (wa, _) = self
            .ports
            .launch(&self.params, &self.mesh, now, src, dst, flits, 0);
        self.ports.eject(&self.params, wa, src, dst, flits)
    }

    /// Like [`send`](Self::send), but holds the message at the source for
    /// `extra` additional cycles before it contends for the entry port —
    /// the fault injector's network-delay hook. All contention, FIFO and
    /// statistics rules still apply at the delayed departure time, so the
    /// perturbation is protocol-legal. With `extra == 0` this is exactly
    /// `send`, which keeps faults-off runs byte-identical.
    ///
    /// # Panics
    ///
    /// Panics if `flits` is zero or a node is out of range.
    pub fn send_jittered(
        &mut self,
        now: Cycle,
        src: NodeId,
        dst: NodeId,
        flits: u64,
        extra: u64,
    ) -> Cycle {
        let (wa, _) = self
            .ports
            .launch(&self.params, &self.mesh, now, src, dst, flits, extra);
        self.ports.eject(&self.params, wa, src, dst, flits)
    }

    /// Folds the network's dynamic state — port busy times, per-node
    /// local watermarks and launch counters, and statistics — into a
    /// checkpoint digest. The mesh topology and timing parameters are
    /// static configuration and are excluded: they are fixed by the job
    /// being replayed.
    pub fn digest(&self, h: &mut dsm_sim::StableHasher) {
        self.ports.digest(h);
    }

    /// The uncontended latency of a `flits`-flit message between two
    /// nodes — the lower bound [`send`](Self::send) approaches on an idle
    /// network.
    pub fn base_latency(&self, src: NodeId, dst: NodeId, flits: u64) -> Cycle {
        base_latency(&self.params, &self.mesh, src, dst, flits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_sim::MachineConfig;

    fn net() -> LatencyNetwork {
        let cfg = MachineConfig::with_nodes(16);
        LatencyNetwork::new(Mesh::new(&cfg), cfg.params.clone())
    }

    #[test]
    fn idle_latency_matches_base() {
        let mut n = net();
        let (s, d) = (NodeId::new(0), NodeId::new(15));
        let t = n.send(Cycle::ZERO, s, d, 6);
        assert_eq!(t, n.base_latency(s, d, 6));
        // 6 hops * 2 + 6 flits * 1 = 18
        assert_eq!(t, Cycle::new(18));
    }

    #[test]
    fn entry_port_serializes_injections() {
        let mut n = net();
        let s = NodeId::new(0);
        let t1 = n.send(Cycle::ZERO, s, NodeId::new(3), 4);
        let t2 = n.send(Cycle::ZERO, s, NodeId::new(12), 4);
        // Second message departs 4 flit-cycles later.
        assert_eq!(t2, t1 + 4);
        assert_eq!(n.stats().entry_wait, 4);
    }

    #[test]
    fn exit_port_serializes_ejections() {
        let mut n = net();
        let d = NodeId::new(5);
        // Two sources equidistant from d inject simultaneously.
        let t1 = n.send(Cycle::ZERO, NodeId::new(4), d, 4);
        let t2 = n.send(Cycle::ZERO, NodeId::new(6), d, 4);
        assert_eq!(t2, t1 + 4);
        assert!(n.stats().exit_wait >= 4);
    }

    #[test]
    fn same_pair_delivery_is_fifo() {
        let mut n = net();
        let (s, d) = (NodeId::new(0), NodeId::new(15));
        // A long message followed immediately by a short one: the short
        // one must not overtake.
        let t1 = n.send(Cycle::ZERO, s, d, 16);
        let t2 = n.send(Cycle::new(1), s, d, 1);
        assert!(t2 > t1, "FIFO violated: {t2} <= {t1}");
    }

    #[test]
    fn local_delivery_is_fast() {
        let mut n = net();
        let t = n.send(Cycle::new(100), NodeId::new(7), NodeId::new(7), 6);
        assert_eq!(t, Cycle::new(101));
    }

    #[test]
    fn monotone_in_time() {
        let mut n = net();
        let mut last = Cycle::ZERO;
        for i in 0..50u64 {
            let t = n.send(Cycle::new(i * 3), NodeId::new(0), NodeId::new(15), 2);
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut n = net();
        n.send(Cycle::ZERO, NodeId::new(0), NodeId::new(1), 2);
        n.send(Cycle::ZERO, NodeId::new(0), NodeId::new(2), 2);
        let s = n.stats().clone();
        assert_eq!(s.messages, 2);
        assert_eq!(s.flits, 4);
        assert!(s.mean_latency() > 0.0);
        n.reset_stats();
        assert_eq!(n.stats().messages, 0);
        assert_eq!(n.stats().mean_latency(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_flit_message_rejected() {
        net().send(Cycle::ZERO, NodeId::new(0), NodeId::new(1), 0);
    }

    #[test]
    fn zero_jitter_is_bit_identical_to_send() {
        let mut a = net();
        let mut b = net();
        for i in 0..20u64 {
            let src = NodeId::new((i % 16) as u32);
            let dst = NodeId::new(((i * 7) % 16) as u32);
            let ta = a.send(Cycle::new(i * 2), src, dst, 3);
            let tb = b.send_jittered(Cycle::new(i * 2), src, dst, 3, 0);
            assert_eq!(ta, tb);
        }
        assert_eq!(a.stats(), b.stats());
        assert_eq!(b.stats().injected_delay, 0);
    }

    #[test]
    fn lookahead_lower_bounds_every_remote_send() {
        let cfg = MachineConfig::with_nodes(16);
        let mut n = LatencyNetwork::new(Mesh::new(&cfg), cfg.params.clone());
        let q = min_remote_lookahead(&cfg.params);
        // Defaults: 1 hop * 2 + 2 control flits * 1 = 4 cycles.
        assert_eq!(q, 4);
        // Saturate the network with traffic of every size and check no
        // remote delivery ever lands earlier than send + lookahead.
        for i in 0..200u64 {
            let src = NodeId::new((i % 16) as u32);
            let dst = NodeId::new(((i * 5 + 1) % 16) as u32);
            if src == dst {
                continue;
            }
            let now = Cycle::new(i);
            let t = n.send(now, src, dst, 2 + i % 7);
            assert!(
                t >= now + q,
                "delivery {t} beats lookahead bound {} for send at {now}",
                now + q
            );
            let hops = cfg.hops(src, dst);
            assert!(t >= now + pair_lookahead(&cfg.params, hops));
        }
    }

    #[test]
    fn split_phase_matches_fused_send_and_survives_split_merge() {
        let cfg = MachineConfig::with_nodes(16);
        let mesh = Mesh::new(&cfg);
        let p = cfg.params.clone();
        let mut fused = LatencyNetwork::new(mesh.clone(), p.clone());
        let mut ports = NetPorts::new(16);
        // Drive identical traffic through the fused facade and through
        // explicit launch/eject phases; delivery times and stats must
        // agree. Halfway through, split the explicit ports into four
        // shards and merge them back — state must survive losslessly.
        for i in 0..200u64 {
            if i == 100 {
                let parts = ports.split(&[(0, 4), (4, 4), (8, 4), (12, 4)]);
                assert_eq!(parts.len(), 4);
                ports = NetPorts::merge(parts);
            }
            let src = NodeId::new((i % 16) as u32);
            let dst = NodeId::new(((i * 11 + 3) % 16) as u32);
            let flits = 1 + i % 6;
            let now = Cycle::new(i * 2);
            let a = fused.send(now, src, dst, flits);
            let (wa, _) = ports.launch(&p, &mesh, now, src, dst, flits, 0);
            let b = ports.eject(&p, wa, src, dst, flits);
            assert_eq!(a, b, "divergence at message {i}");
        }
        assert_eq!(fused.stats(), ports.stats());
        let mut ha = dsm_sim::StableHasher::new();
        let mut hb = dsm_sim::StableHasher::new();
        fused.digest(&mut ha);
        ports.digest(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn launch_seq_is_per_source_monotone() {
        let cfg = MachineConfig::with_nodes(4);
        let mesh = Mesh::new(&cfg);
        let p = cfg.params.clone();
        let mut ports = NetPorts::new(4);
        let (_, s0) = ports.launch(&p, &mesh, Cycle::ZERO, NodeId::new(0), NodeId::new(1), 2, 0);
        let (_, s1) = ports.launch(&p, &mesh, Cycle::ZERO, NodeId::new(0), NodeId::new(2), 2, 0);
        let (_, s2) = ports.launch(&p, &mesh, Cycle::ZERO, NodeId::new(3), NodeId::new(0), 2, 0);
        assert_eq!((s0, s1, s2), (0, 1, 0));
    }

    #[test]
    fn cluster_penalty_charges_only_boundary_crossings() {
        let mut cfg = MachineConfig::with_nodes(16);
        cfg.clusters = 4;
        cfg.params.cluster_penalty = 25;
        let mut n = LatencyNetwork::new(Mesh::new(&cfg), cfg.params.clone());
        // Nodes 0..4 form cluster 0; node 4 starts cluster 1.
        let intra = n.send(Cycle::ZERO, NodeId::new(0), NodeId::new(1), 2);
        let inter = n.send(Cycle::new(1000), NodeId::new(0), NodeId::new(4), 2);
        // Same hop count (0->1 is 1 hop; 0->4 is 1 hop on a 4x4 mesh),
        // so the whole difference is the penalty.
        assert_eq!(inter - Cycle::new(1000), intra + 25);
        assert_eq!(
            n.base_latency(NodeId::new(0), NodeId::new(4), 2).as_u64(),
            intra.as_u64() + 25
        );
        // Lookahead stays a valid lower bound: the penalty only adds.
        let q = min_remote_lookahead(&cfg.params);
        assert!(intra.as_u64() >= q);
        // A flat machine with a configured penalty charges nothing.
        let flat = MachineConfig::with_nodes(16);
        let mut m = LatencyNetwork::new(Mesh::new(&flat), cfg.params.clone());
        assert_eq!(
            m.send(Cycle::ZERO, NodeId::new(0), NodeId::new(4), 2),
            intra
        );
    }

    #[test]
    fn jitter_delays_delivery_and_is_counted() {
        let mut n = net();
        let (s, d) = (NodeId::new(0), NodeId::new(15));
        let base = n.base_latency(s, d, 2);
        let t = n.send_jittered(Cycle::ZERO, s, d, 2, 10);
        assert_eq!(t, Cycle::new(10) + base.as_u64());
        assert_eq!(n.stats().injected_delay, 10);
    }
}
