//! The paper-faithful network model: wormhole wire latency plus
//! entry/exit queue contention.
//!
//! The paper states that its simulator models "contention at the entry
//! and exit of the network (though not at internal nodes)". We reproduce
//! exactly that: each node has one injection (entry) port and one
//! ejection (exit) port, each of which can carry one flit per
//! [`flit_cycle`](dsm_sim::SimParams::flit_cycle); the wires and routers
//! between them are contention-free and add pipelined wormhole latency
//! `hops * hop_delay + flits * flit_cycle`.
//!
//! Delivery between the same (source, destination) pair is FIFO —
//! wormhole routing with deterministic XY paths cannot reorder messages
//! on the same path — and the model enforces this explicitly.

use crate::topology::Mesh;
use dsm_sim::{Cycle, NodeId, SimParams};

/// Aggregate counters maintained by [`LatencyNetwork`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Total messages sent.
    pub messages: u64,
    /// Total flits sent.
    pub flits: u64,
    /// Total cycles messages spent waiting for a busy entry port.
    pub entry_wait: u64,
    /// Total cycles messages spent waiting for a busy exit port.
    pub exit_wait: u64,
    /// Total end-to-end latency summed over all messages.
    pub total_latency: u64,
    /// Total extra delay cycles added by fault injection
    /// ([`send_jittered`](LatencyNetwork::send_jittered)); 0 unless a
    /// fault injector is active.
    pub injected_delay: u64,
}

impl NetworkStats {
    /// Mean end-to-end message latency in cycles, or 0 if no messages.
    pub fn mean_latency(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.messages as f64
        }
    }

    /// Folds all counters into a checkpoint digest.
    pub fn digest(&self, h: &mut dsm_sim::StableHasher) {
        h.write_u64(self.messages);
        h.write_u64(self.flits);
        h.write_u64(self.entry_wait);
        h.write_u64(self.exit_wait);
        h.write_u64(self.total_latency);
        h.write_u64(self.injected_delay);
    }
}

/// The entry/exit-contention network model used for all paper results.
///
/// [`send`](LatencyNetwork::send) computes the delivery time of a message
/// immediately; the caller (the machine simulator) schedules the delivery
/// event itself. Because the machine processes events in time order,
/// every call observes all earlier traffic, and the computed times are
/// deterministic.
///
/// # Example
///
/// ```
/// use dsm_mesh::{LatencyNetwork, Mesh};
/// use dsm_sim::{Cycle, MachineConfig, NodeId, SimParams};
///
/// let cfg = MachineConfig::with_nodes(4);
/// let mut net = LatencyNetwork::new(Mesh::new(&cfg), cfg.params.clone());
/// let a = net.send(Cycle::ZERO, NodeId::new(0), NodeId::new(3), 2);
/// let b = net.send(Cycle::ZERO, NodeId::new(0), NodeId::new(3), 2);
/// assert!(b > a, "the second message queues behind the first at the entry port");
/// ```
#[derive(Debug, Clone)]
pub struct LatencyNetwork {
    mesh: Mesh,
    params: SimParams,
    /// Time at which each node's injection port becomes free.
    entry_free: Vec<Cycle>,
    /// Time at which each node's ejection port becomes free.
    exit_free: Vec<Cycle>,
    /// Last delivery time per (src, dst) pair, to enforce FIFO.
    last_delivery: Vec<Cycle>,
    stats: NetworkStats,
}

impl LatencyNetwork {
    /// Creates a quiescent network.
    pub fn new(mesh: Mesh, params: SimParams) -> Self {
        let n = mesh.nodes() as usize;
        LatencyNetwork {
            mesh,
            params,
            entry_free: vec![Cycle::ZERO; n],
            exit_free: vec![Cycle::ZERO; n],
            last_delivery: vec![Cycle::ZERO; n * n],
            stats: NetworkStats::default(),
        }
    }

    /// Returns the mesh this network runs on.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Returns the accumulated statistics.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Resets the statistics (the port/FIFO state is kept).
    pub fn reset_stats(&mut self) {
        self.stats = NetworkStats::default();
    }

    /// Sends a `flits`-flit message from `src` to `dst` at time `now` and
    /// returns its delivery time at `dst`.
    ///
    /// Local messages (`src == dst`) bypass the network and are delivered
    /// after one flit time.
    ///
    /// # Panics
    ///
    /// Panics if `flits` is zero or a node is out of range.
    pub fn send(&mut self, now: Cycle, src: NodeId, dst: NodeId, flits: u64) -> Cycle {
        assert!(flits > 0, "a message must carry at least one flit");
        let p = &self.params;
        self.stats.messages += 1;
        self.stats.flits += flits;

        if src == dst {
            // Local messages bypass the ports, but not FIFO: a jittered
            // send (`send_jittered`) can push a local delivery past a
            // later undelayed one, and reordering a home's grant against
            // its own intervention to the co-located cache is not
            // protocol-legal. Clamp strict inversions only — without
            // jitter, delivery times are monotone in send times and
            // equal-time deliveries pop in push order, so this never
            // fires and fault-free runs are untouched.
            let t = now + p.flit_cycle;
            let slot =
                &mut self.last_delivery[src.index() * self.mesh.nodes() as usize + dst.index()];
            let t = if t < *slot { *slot + 1 } else { t };
            *slot = t;
            self.stats.total_latency += (t - now).as_u64();
            return t;
        }

        let occupancy = flits * p.flit_cycle;

        // Entry port: serialize injections from this node.
        let entry = &mut self.entry_free[src.index()];
        let depart = now.max(*entry);
        self.stats.entry_wait += (depart - now).as_u64();
        *entry = depart + occupancy;

        // Wire: pipelined wormhole — head flit takes hop_delay per hop,
        // the tail follows `flits` flit-times behind.
        let hops = self.mesh.hops(src, dst) as u64;
        let wire_arrival = depart + hops * p.hop_delay + occupancy;

        // Exit port: serialize ejections into this node.
        let exit = &mut self.exit_free[dst.index()];
        let delivered = wire_arrival.max(*exit);
        self.stats.exit_wait += (delivered - wire_arrival).as_u64();
        *exit = delivered + occupancy;

        // FIFO per (src, dst): a later message on the same path can never
        // overtake an earlier one.
        let slot = &mut self.last_delivery[src.index() * self.mesh.nodes() as usize + dst.index()];
        let delivered = if delivered <= *slot {
            *slot + 1
        } else {
            delivered
        };
        *slot = delivered;

        self.stats.total_latency += (delivered - now).as_u64();
        delivered
    }

    /// Like [`send`](Self::send), but holds the message at the source for
    /// `extra` additional cycles before it contends for the entry port —
    /// the fault injector's network-delay hook. All contention, FIFO and
    /// statistics rules still apply at the delayed departure time, so the
    /// perturbation is protocol-legal. With `extra == 0` this is exactly
    /// `send`, which keeps faults-off runs byte-identical.
    ///
    /// # Panics
    ///
    /// Panics if `flits` is zero or a node is out of range.
    pub fn send_jittered(
        &mut self,
        now: Cycle,
        src: NodeId,
        dst: NodeId,
        flits: u64,
        extra: u64,
    ) -> Cycle {
        self.stats.injected_delay += extra;
        self.send(now + extra, src, dst, flits)
    }

    /// Folds the network's dynamic state — port busy times, per-pair
    /// FIFO watermarks, and statistics — into a checkpoint digest. The
    /// mesh topology and timing parameters are static configuration and
    /// are excluded: they are fixed by the job being replayed.
    pub fn digest(&self, h: &mut dsm_sim::StableHasher) {
        h.write_usize(self.entry_free.len());
        for c in &self.entry_free {
            h.write_u64(c.as_u64());
        }
        for c in &self.exit_free {
            h.write_u64(c.as_u64());
        }
        h.write_usize(self.last_delivery.len());
        for c in &self.last_delivery {
            h.write_u64(c.as_u64());
        }
        self.stats.digest(h);
    }

    /// The uncontended latency of a `flits`-flit message between two
    /// nodes — the lower bound [`send`](Self::send) approaches on an idle
    /// network.
    pub fn base_latency(&self, src: NodeId, dst: NodeId, flits: u64) -> Cycle {
        let p = &self.params;
        if src == dst {
            return Cycle::new(p.flit_cycle);
        }
        let hops = self.mesh.hops(src, dst) as u64;
        Cycle::new(hops * p.hop_delay + flits * p.flit_cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_sim::MachineConfig;

    fn net() -> LatencyNetwork {
        let cfg = MachineConfig::with_nodes(16);
        LatencyNetwork::new(Mesh::new(&cfg), cfg.params.clone())
    }

    #[test]
    fn idle_latency_matches_base() {
        let mut n = net();
        let (s, d) = (NodeId::new(0), NodeId::new(15));
        let t = n.send(Cycle::ZERO, s, d, 6);
        assert_eq!(t, n.base_latency(s, d, 6));
        // 6 hops * 2 + 6 flits * 1 = 18
        assert_eq!(t, Cycle::new(18));
    }

    #[test]
    fn entry_port_serializes_injections() {
        let mut n = net();
        let s = NodeId::new(0);
        let t1 = n.send(Cycle::ZERO, s, NodeId::new(3), 4);
        let t2 = n.send(Cycle::ZERO, s, NodeId::new(12), 4);
        // Second message departs 4 flit-cycles later.
        assert_eq!(t2, t1 + 4);
        assert_eq!(n.stats().entry_wait, 4);
    }

    #[test]
    fn exit_port_serializes_ejections() {
        let mut n = net();
        let d = NodeId::new(5);
        // Two sources equidistant from d inject simultaneously.
        let t1 = n.send(Cycle::ZERO, NodeId::new(4), d, 4);
        let t2 = n.send(Cycle::ZERO, NodeId::new(6), d, 4);
        assert_eq!(t2, t1 + 4);
        assert!(n.stats().exit_wait >= 4);
    }

    #[test]
    fn same_pair_delivery_is_fifo() {
        let mut n = net();
        let (s, d) = (NodeId::new(0), NodeId::new(15));
        // A long message followed immediately by a short one: the short
        // one must not overtake.
        let t1 = n.send(Cycle::ZERO, s, d, 16);
        let t2 = n.send(Cycle::new(1), s, d, 1);
        assert!(t2 > t1, "FIFO violated: {t2} <= {t1}");
    }

    #[test]
    fn local_delivery_is_fast() {
        let mut n = net();
        let t = n.send(Cycle::new(100), NodeId::new(7), NodeId::new(7), 6);
        assert_eq!(t, Cycle::new(101));
    }

    #[test]
    fn monotone_in_time() {
        let mut n = net();
        let mut last = Cycle::ZERO;
        for i in 0..50u64 {
            let t = n.send(Cycle::new(i * 3), NodeId::new(0), NodeId::new(15), 2);
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut n = net();
        n.send(Cycle::ZERO, NodeId::new(0), NodeId::new(1), 2);
        n.send(Cycle::ZERO, NodeId::new(0), NodeId::new(2), 2);
        let s = n.stats().clone();
        assert_eq!(s.messages, 2);
        assert_eq!(s.flits, 4);
        assert!(s.mean_latency() > 0.0);
        n.reset_stats();
        assert_eq!(n.stats().messages, 0);
        assert_eq!(n.stats().mean_latency(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_flit_message_rejected() {
        net().send(Cycle::ZERO, NodeId::new(0), NodeId::new(1), 0);
    }

    #[test]
    fn zero_jitter_is_bit_identical_to_send() {
        let mut a = net();
        let mut b = net();
        for i in 0..20u64 {
            let src = NodeId::new((i % 16) as u32);
            let dst = NodeId::new(((i * 7) % 16) as u32);
            let ta = a.send(Cycle::new(i * 2), src, dst, 3);
            let tb = b.send_jittered(Cycle::new(i * 2), src, dst, 3, 0);
            assert_eq!(ta, tb);
        }
        assert_eq!(a.stats(), b.stats());
        assert_eq!(b.stats().injected_delay, 0);
    }

    #[test]
    fn jitter_delays_delivery_and_is_counted() {
        let mut n = net();
        let (s, d) = (NodeId::new(0), NodeId::new(15));
        let base = n.base_latency(s, d, 2);
        let t = n.send_jittered(Cycle::ZERO, s, d, 2, 10);
        assert_eq!(t, Cycle::new(10) + base.as_u64());
        assert_eq!(n.stats().injected_delay, 10);
    }
}
