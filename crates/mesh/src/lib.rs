//! 2-D wormhole mesh interconnect models.
//!
//! The HPCA '95 paper simulates "a 2-D worm-hole mesh network" where
//! "memory and network latencies reflect the effect of memory contention
//! and of contention at the entry and exit of the network (though not at
//! internal nodes)". This crate provides:
//!
//! * [`Mesh`] — topology and dimension-ordered (XY) routing ([`topology`]);
//! * [`LatencyNetwork`] — the paper-faithful model: pipelined wormhole
//!   wire latency plus queueing contention at each node's network entry
//!   and exit ports ([`latency`]);
//! * [`FlitNetwork`] — a cycle-accurate flit-level wormhole router with
//!   credit-based flow control, used as an ablation to quantify what the
//!   paper's simplification ignores ([`wormhole`]).
//!
//! # Observability
//!
//! [`LatencyNetwork`] keeps aggregate [`NetworkStats`] (messages, flits,
//! entry/exit port wait, end-to-end latency). Per-message visibility
//! lives one layer up: when tracing is enabled (`DSM_TRACE`, see the
//! `dsm-trace` crate), `dsm-machine` emits a cycle-stamped event for
//! every `send` — source, destination, hop count, flit count and the
//! delivery time this model computed — so a Perfetto timeline shows each
//! message in flight, including the contention delay the ports added.
//!
//! # Example
//!
//! ```
//! use dsm_mesh::{LatencyNetwork, Mesh};
//! use dsm_sim::{Cycle, MachineConfig, NodeId};
//!
//! let cfg = MachineConfig::default();
//! let mesh = Mesh::new(&cfg);
//! let mut net = LatencyNetwork::new(mesh, cfg.params.clone());
//! let arrival = net.send(Cycle::ZERO, NodeId::new(0), NodeId::new(63), 6);
//! assert!(arrival > Cycle::ZERO);
//! ```

#![deny(missing_docs)]

pub mod latency;
pub mod topology;
pub mod wormhole;

pub use latency::{
    base_latency, min_remote_lookahead, pair_lookahead, LatencyNetwork, NetPorts, NetworkStats,
};
pub use topology::Mesh;
pub use wormhole::{FlitNetwork, FlitNetworkParams};
