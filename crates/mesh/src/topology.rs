//! Mesh geometry and dimension-ordered routing.

use dsm_sim::{MachineConfig, NodeId};

/// The geometry of a 2-D mesh: node coordinates and XY routes.
///
/// Routing is dimension-ordered ("XY"): a message first travels along the
/// X dimension to the destination column, then along Y to the destination
/// row. Dimension-ordered routing on a mesh is deterministic and
/// deadlock-free, and because every (src, dst) pair has exactly one path,
/// messages between the same pair of nodes can never overtake each other
/// — a property the coherence protocol relies on.
///
/// # Example
///
/// ```
/// use dsm_mesh::Mesh;
/// use dsm_sim::{MachineConfig, NodeId};
///
/// let mesh = Mesh::new(&MachineConfig::with_nodes(16)); // 4x4
/// assert_eq!(mesh.hops(NodeId::new(0), NodeId::new(15)), 6);
/// let route = mesh.route(NodeId::new(0), NodeId::new(5));
/// assert_eq!(route, vec![NodeId::new(0), NodeId::new(1), NodeId::new(5)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mesh {
    width: u32,
    height: u32,
    /// NUMA cluster count (contiguous node-id blocks of equal size);
    /// 1 on the paper's flat machine.
    clusters: u32,
}

/// One of the four mesh directions (plus local delivery), used by the
/// flit-level router to name output ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Toward larger X.
    East,
    /// Toward smaller X.
    West,
    /// Toward larger Y.
    North,
    /// Toward smaller Y.
    South,
    /// Delivered to the local node.
    Local,
}

impl Mesh {
    /// Builds the mesh described by `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid (see [`MachineConfig::validate`]).
    pub fn new(cfg: &MachineConfig) -> Self {
        cfg.validate().expect("invalid machine configuration");
        let (w, h) = cfg.mesh_dims();
        Mesh {
            width: w,
            height: h,
            clusters: cfg.clusters.max(1),
        }
    }

    /// Builds a mesh directly from its dimensions (one flat cluster).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn with_dims(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        Mesh {
            width,
            height,
            clusters: 1,
        }
    }

    /// NUMA cluster count (1 on a flat machine).
    pub fn clusters(&self) -> u32 {
        self.clusters
    }

    /// The NUMA cluster `node` belongs to (contiguous id blocks, same
    /// partition as [`dsm_sim::MachineConfig::cluster_of`]).
    pub fn cluster_of(&self, node: NodeId) -> u32 {
        node.as_u32() / (self.nodes() / self.clusters).max(1)
    }

    /// `true` when a message between the two nodes stays inside one
    /// NUMA cluster (always true on a flat machine).
    pub fn same_cluster(&self, a: NodeId, b: NodeId) -> bool {
        self.cluster_of(a) == self.cluster_of(b)
    }

    /// Mesh width (number of columns).
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Mesh height (number of rows).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Total node count.
    pub fn nodes(&self) -> u32 {
        self.width * self.height
    }

    /// Returns the (x, y) coordinates of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn coords(&self, node: NodeId) -> (u32, u32) {
        assert!(node.as_u32() < self.nodes(), "node {node} out of range");
        (node.as_u32() % self.width, node.as_u32() / self.width)
    }

    /// Returns the node at coordinates (x, y).
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are outside the mesh.
    pub fn node_at(&self, x: u32, y: u32) -> NodeId {
        assert!(x < self.width && y < self.height, "({x},{y}) outside mesh");
        NodeId::new(y * self.width + x)
    }

    /// Manhattan distance between two nodes, in hops.
    pub fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        ax.abs_diff(bx) + ay.abs_diff(by)
    }

    /// Returns the full XY route from `src` to `dst`, inclusive of both
    /// endpoints.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Vec<NodeId> {
        let (mut x, mut y) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        let mut path = vec![src];
        while x != dx {
            x = if x < dx { x + 1 } else { x - 1 };
            path.push(self.node_at(x, y));
        }
        while y != dy {
            y = if y < dy { y + 1 } else { y - 1 };
            path.push(self.node_at(x, y));
        }
        path
    }

    /// Returns the output port a router at `here` uses to move a packet
    /// toward `dst` under XY routing.
    pub fn next_direction(&self, here: NodeId, dst: NodeId) -> Direction {
        let (x, y) = self.coords(here);
        let (dx, dy) = self.coords(dst);
        if x < dx {
            Direction::East
        } else if x > dx {
            Direction::West
        } else if y < dy {
            Direction::North
        } else if y > dy {
            Direction::South
        } else {
            Direction::Local
        }
    }

    /// Iterates over all node identifiers.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes()).map(NodeId::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mesh4x4() -> Mesh {
        Mesh::with_dims(4, 4)
    }

    #[test]
    fn coords_round_trip() {
        let m = mesh4x4();
        for n in m.iter() {
            let (x, y) = m.coords(n);
            assert_eq!(m.node_at(x, y), n);
        }
    }

    #[test]
    fn route_is_x_then_y() {
        let m = mesh4x4();
        // 0 = (0,0), 14 = (2,3): go east twice, then north three times.
        let r = m.route(NodeId::new(0), NodeId::new(14));
        assert_eq!(
            r,
            vec![
                NodeId::new(0),
                NodeId::new(1),
                NodeId::new(2),
                NodeId::new(6),
                NodeId::new(10),
                NodeId::new(14)
            ]
        );
    }

    #[test]
    fn self_route_is_trivial() {
        let m = mesh4x4();
        assert_eq!(
            m.route(NodeId::new(5), NodeId::new(5)),
            vec![NodeId::new(5)]
        );
        assert_eq!(
            m.next_direction(NodeId::new(5), NodeId::new(5)),
            Direction::Local
        );
    }

    #[test]
    fn directions_point_the_right_way() {
        let m = mesh4x4();
        let c = NodeId::new(5); // (1,1)
        assert_eq!(m.next_direction(c, NodeId::new(6)), Direction::East);
        assert_eq!(m.next_direction(c, NodeId::new(4)), Direction::West);
        assert_eq!(m.next_direction(c, NodeId::new(9)), Direction::North);
        assert_eq!(m.next_direction(c, NodeId::new(1)), Direction::South);
        // X is corrected before Y.
        assert_eq!(m.next_direction(c, NodeId::new(10)), Direction::East);
    }

    #[test]
    fn from_machine_config() {
        let m = Mesh::new(&dsm_sim::MachineConfig::default());
        assert_eq!((m.width(), m.height()), (8, 8));
        assert_eq!(m.nodes(), 64);
    }

    proptest! {
        #[test]
        fn route_length_equals_manhattan_distance(
            w in 1u32..9, h in 1u32..9, a in 0u32..64, b in 0u32..64
        ) {
            let m = Mesh::with_dims(w, h);
            let (a, b) = (a % m.nodes(), b % m.nodes());
            let (a, b) = (NodeId::new(a), NodeId::new(b));
            let route = m.route(a, b);
            prop_assert_eq!(route.len() as u32 - 1, m.hops(a, b));
            prop_assert_eq!(route[0], a);
            prop_assert_eq!(*route.last().unwrap(), b);
        }

        #[test]
        fn consecutive_route_nodes_are_adjacent(
            a in 0u32..16, b in 0u32..16
        ) {
            let m = Mesh::with_dims(4, 4);
            let route = m.route(NodeId::new(a), NodeId::new(b));
            for pair in route.windows(2) {
                prop_assert_eq!(m.hops(pair[0], pair[1]), 1);
            }
        }

        #[test]
        fn following_next_direction_reaches_destination(
            a in 0u32..36, b in 0u32..36
        ) {
            let m = Mesh::with_dims(6, 6);
            let dst = NodeId::new(b);
            let mut here = NodeId::new(a);
            let mut steps = 0;
            while here != dst {
                let (x, y) = m.coords(here);
                here = match m.next_direction(here, dst) {
                    Direction::East => m.node_at(x + 1, y),
                    Direction::West => m.node_at(x - 1, y),
                    Direction::North => m.node_at(x, y + 1),
                    Direction::South => m.node_at(x, y - 1),
                    Direction::Local => unreachable!("not yet at destination"),
                };
                steps += 1;
                prop_assert!(steps <= 12, "route too long");
            }
            prop_assert_eq!(steps, m.hops(NodeId::new(a), dst));
        }
    }
}
