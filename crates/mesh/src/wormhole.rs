//! Cycle-accurate flit-level wormhole router (ablation model).
//!
//! The paper's simulator models contention only at the network entry and
//! exit ports. To quantify what that simplification leaves out, this
//! module implements a full flit-level 2-D mesh with dimension-ordered
//! routing, input-buffered routers and wormhole switching: a packet's
//! head flit allocates each output port along the path; body flits
//! follow; the tail flit releases the port. A blocked head leaves the
//! worm occupying buffers along its path, exactly the behaviour wormhole
//! networks are known for.
//!
//! The model is trace-driven: inject packets with [`FlitNetwork::inject`]
//! and then advance the simulation with [`FlitNetwork::run_until_drained`],
//! which reports delivery times. `dsm-bench`'s `ablation_mesh` bench
//! replays machine-generated traffic traces through both this model and
//! [`LatencyNetwork`](crate::LatencyNetwork) to compare latency
//! distributions.

use crate::topology::{Direction, Mesh};
use dsm_sim::{Cycle, NodeId};
use std::collections::VecDeque;

/// Identifies a packet injected into a [`FlitNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId(u64);

impl PacketId {
    /// Returns the raw injection sequence number.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

/// Tuning parameters for the flit-level router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlitNetworkParams {
    /// Input buffer depth per router port, in flits.
    pub buffer_depth: usize,
    /// Cycles for a flit to traverse one router + link stage.
    pub hop_cycles: u64,
}

impl Default for FlitNetworkParams {
    fn default() -> Self {
        FlitNetworkParams {
            buffer_depth: 4,
            hop_cycles: 2,
        }
    }
}

/// A completed delivery reported by [`FlitNetwork::run_until_drained`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// The packet that was delivered.
    pub packet: PacketId,
    /// Cycle at which the tail flit left the network at the destination.
    pub delivered_at: Cycle,
}

/// The error returned when the network fails to drain.
///
/// XY routing on a mesh is deadlock-free, so a stall indicates either a
/// model bug or an unreasonably small `max_cycles`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StalledError {
    /// Number of packets still in flight when the limit was reached.
    pub in_flight: usize,
    /// The cycle limit that was exhausted.
    pub limit: Cycle,
}

impl std::fmt::Display for StalledError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "network failed to drain {} packets within {}",
            self.in_flight, self.limit
        )
    }
}

impl std::error::Error for StalledError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlitKind {
    Head,
    Body,
    Tail,
    /// A single-flit packet: both head and tail.
    HeadTail,
}

impl FlitKind {
    fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::HeadTail)
    }
    fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::HeadTail)
    }
}

#[derive(Debug, Clone, Copy)]
struct Flit {
    packet: PacketId,
    dst: NodeId,
    kind: FlitKind,
    /// The flit is invisible to the downstream router before this cycle
    /// (models router/link pipeline latency).
    ready_at: u64,
}

const PORTS: usize = 5; // E, W, N, S, Local

fn port_index(d: Direction) -> usize {
    match d {
        Direction::East => 0,
        Direction::West => 1,
        Direction::North => 2,
        Direction::South => 3,
        Direction::Local => 4,
    }
}

#[derive(Debug, Clone, Default)]
struct Router {
    /// One FIFO of flits per input port.
    inputs: [VecDeque<Flit>; PORTS],
    /// For each output port: the input port of the worm that currently
    /// owns it, if any.
    out_owner: [Option<usize>; PORTS],
    /// Rotating arbitration pointer per output port.
    rr: [usize; PORTS],
}

/// A trace-driven flit-level wormhole mesh.
///
/// # Example
///
/// ```
/// use dsm_mesh::{FlitNetwork, FlitNetworkParams, Mesh};
/// use dsm_sim::{Cycle, NodeId};
///
/// let mut net = FlitNetwork::new(Mesh::with_dims(4, 4), FlitNetworkParams::default());
/// let p = net.inject(Cycle::ZERO, NodeId::new(0), NodeId::new(15), 6);
/// let deliveries = net.run_until_drained(Cycle::new(10_000))?;
/// assert_eq!(deliveries.len(), 1);
/// assert_eq!(deliveries[0].packet, p);
/// # Ok::<(), dsm_mesh::wormhole::StalledError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FlitNetwork {
    mesh: Mesh,
    params: FlitNetworkParams,
    routers: Vec<Router>,
    /// Per-node FIFO of packets waiting to be injected: (time, flits).
    /// A packet is injected contiguously; the next packet at the same
    /// node cannot start until the previous one has fully entered the
    /// local input buffer, so worms never interleave on the local port.
    pending: Vec<VecDeque<(u64, Vec<Flit>)>>,
    next_id: u64,
    in_flight: usize,
    /// Flits remaining per in-flight packet id (dense, indexed by id).
    deliveries: Vec<Delivery>,
}

impl FlitNetwork {
    /// Creates an empty network.
    pub fn new(mesh: Mesh, params: FlitNetworkParams) -> Self {
        assert!(
            params.buffer_depth >= 1,
            "buffers must hold at least one flit"
        );
        assert!(
            params.hop_cycles >= 1,
            "hop latency must be at least one cycle"
        );
        let routers = (0..mesh.nodes()).map(|_| Router::default()).collect();
        let pending = (0..mesh.nodes()).map(|_| VecDeque::new()).collect();
        FlitNetwork {
            mesh,
            params,
            routers,
            pending,
            next_id: 0,
            in_flight: 0,
            deliveries: Vec::new(),
        }
    }

    /// Queues a packet of `flits` flits for injection at time `at`.
    ///
    /// Injections at the same source node must be made in nondecreasing
    /// time order (they model a single network interface).
    ///
    /// # Panics
    ///
    /// Panics if `flits` is zero, or (in debug builds) if `at` precedes
    /// an injection already queued at `src`.
    pub fn inject(&mut self, at: Cycle, src: NodeId, dst: NodeId, flits: u64) -> PacketId {
        assert!(flits > 0, "a packet must carry at least one flit");
        let id = PacketId(self.next_id);
        self.next_id += 1;
        let flit_vec: Vec<Flit> = (0..flits)
            .map(|i| Flit {
                packet: id,
                dst,
                kind: if flits == 1 {
                    FlitKind::HeadTail
                } else if i == 0 {
                    FlitKind::Head
                } else if i == flits - 1 {
                    FlitKind::Tail
                } else {
                    FlitKind::Body
                },
                ready_at: 0,
            })
            .collect();
        debug_assert!(
            self.pending[src.index()]
                .back()
                .is_none_or(|(t, _)| *t <= at.as_u64()),
            "injections at a node must be in time order"
        );
        self.pending[src.index()].push_back((at.as_u64(), flit_vec));
        self.in_flight += 1;
        id
    }

    /// Runs the network until every injected packet is delivered, or
    /// until `max_cycles` is reached.
    ///
    /// Returns the deliveries accumulated so far, sorted by delivery
    /// time.
    ///
    /// # Errors
    ///
    /// Returns [`StalledError`] if packets remain in flight at the cycle
    /// limit.
    pub fn run_until_drained(&mut self, max_cycles: Cycle) -> Result<Vec<Delivery>, StalledError> {
        let mut now = 0u64;
        while self.in_flight > 0 {
            if now > max_cycles.as_u64() {
                return Err(StalledError {
                    in_flight: self.in_flight,
                    limit: max_cycles,
                });
            }
            self.step(now);
            now += 1;
        }
        let mut out = std::mem::take(&mut self.deliveries);
        out.sort_by_key(|d| (d.delivered_at, d.packet));
        Ok(out)
    }

    /// Advances the network by one cycle.
    fn step(&mut self, now: u64) {
        // Phase 0: inject packets whose time has come, head-of-queue per
        // node, at most buffer_depth flits per cycle; a partially
        // injected packet keeps its place at the front so its worm stays
        // contiguous on the local input port.
        for node in 0..self.pending.len() {
            while let Some((t, flits)) = self.pending[node].front_mut() {
                if *t > now {
                    break;
                }
                let local = &mut self.routers[node].inputs[port_index(Direction::Local)];
                while !flits.is_empty() && local.len() < self.params.buffer_depth {
                    let mut f = flits.remove(0);
                    f.ready_at = now;
                    local.push_back(f);
                }
                if flits.is_empty() {
                    self.pending[node].pop_front();
                } else {
                    break; // buffer full: continue this packet next cycle
                }
            }
        }

        // Phase 1: plan at most one flit movement per output port, in a
        // fixed router order with rotating per-port arbitration. Moves
        // are applied immediately but moved flits get ready_at = now +
        // hop_cycles, so they cannot move again this cycle (or before the
        // pipeline latency elapses).
        for r in 0..self.routers.len() {
            let here = NodeId::new(r as u32);
            for out in 0..PORTS {
                // Which input may use this output this cycle?
                let owner = self.routers[r].out_owner[out];
                let chosen_in = match owner {
                    Some(inp) => {
                        // The worm continues only if its next flit is ready.
                        let head = self.routers[r].inputs[inp].front().copied();
                        match head {
                            Some(f)
                                if f.ready_at <= now
                                    && port_index(self.mesh.next_direction(here, f.dst)) == out =>
                            {
                                Some(inp)
                            }
                            _ => None,
                        }
                    }
                    None => {
                        // Arbitrate among inputs whose ready head flit is
                        // a Head wanting this output.
                        let start = self.routers[r].rr[out];
                        (0..PORTS).map(|k| (start + k) % PORTS).find(|&inp| {
                            matches!(
                                self.routers[r].inputs[inp].front(),
                                Some(f) if f.ready_at <= now
                                    && f.kind.is_head()
                                    && port_index(self.mesh.next_direction(here, f.dst)) == out
                            )
                        })
                    }
                };
                let Some(inp) = chosen_in else { continue };

                // Check downstream capacity.
                if out == port_index(Direction::Local) {
                    // Ejection always drains one flit per cycle.
                } else {
                    let next = self.neighbor(here, out);
                    let din = self.downstream_input_port(out);
                    if self.routers[next.index()].inputs[din].len() >= self.params.buffer_depth {
                        continue; // no credit
                    }
                }

                // Move the flit.
                let mut flit = self.routers[r].inputs[inp]
                    .pop_front()
                    .expect("chosen input has a flit");
                let is_tail = flit.kind.is_tail();
                let is_head = flit.kind.is_head();
                if is_head {
                    self.routers[r].out_owner[out] = Some(inp);
                    self.routers[r].rr[out] = (inp + 1) % PORTS;
                }
                if is_tail {
                    self.routers[r].out_owner[out] = None;
                    self.routers[r].rr[out] = (inp + 1) % PORTS;
                }
                if out == port_index(Direction::Local) {
                    if is_tail {
                        self.in_flight -= 1;
                        self.deliveries.push(Delivery {
                            packet: flit.packet,
                            delivered_at: Cycle::new(now + self.params.hop_cycles),
                        });
                    }
                } else {
                    let next = self.neighbor(here, out);
                    let din = self.downstream_input_port(out);
                    flit.ready_at = now + self.params.hop_cycles;
                    self.routers[next.index()].inputs[din].push_back(flit);
                }
            }
        }
    }

    fn neighbor(&self, here: NodeId, out: usize) -> NodeId {
        let (x, y) = self.mesh.coords(here);
        match out {
            0 => self.mesh.node_at(x + 1, y),
            1 => self.mesh.node_at(x - 1, y),
            2 => self.mesh.node_at(x, y + 1),
            3 => self.mesh.node_at(x, y - 1),
            _ => unreachable!("local port has no neighbor"),
        }
    }

    /// A flit leaving through output port `out` arrives at the
    /// neighbor's opposite input port.
    fn downstream_input_port(&self, out: usize) -> usize {
        match out {
            0 => 1, // east -> arrives on west input
            1 => 0,
            2 => 3, // north -> arrives on south input
            3 => 2,
            _ => unreachable!("local port has no downstream"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net4x4() -> FlitNetwork {
        FlitNetwork::new(Mesh::with_dims(4, 4), FlitNetworkParams::default())
    }

    #[test]
    fn single_packet_delivery_time_scales_with_distance() {
        let mut near = net4x4();
        near.inject(Cycle::ZERO, NodeId::new(0), NodeId::new(1), 4);
        let t_near = near.run_until_drained(Cycle::new(1000)).unwrap()[0].delivered_at;

        let mut far = net4x4();
        far.inject(Cycle::ZERO, NodeId::new(0), NodeId::new(15), 4);
        let t_far = far.run_until_drained(Cycle::new(1000)).unwrap()[0].delivered_at;

        assert!(
            t_far > t_near,
            "6 hops ({t_far}) must take longer than 1 hop ({t_near})"
        );
    }

    #[test]
    fn single_flit_packet_works() {
        let mut n = net4x4();
        let p = n.inject(Cycle::ZERO, NodeId::new(0), NodeId::new(3), 1);
        let d = n.run_until_drained(Cycle::new(1000)).unwrap();
        assert_eq!(
            d,
            vec![Delivery {
                packet: p,
                delivered_at: d[0].delivered_at
            }]
        );
    }

    #[test]
    fn local_packet_is_delivered() {
        let mut n = net4x4();
        n.inject(Cycle::ZERO, NodeId::new(5), NodeId::new(5), 3);
        let d = n.run_until_drained(Cycle::new(1000)).unwrap();
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn all_to_one_drains_and_serializes() {
        let mut n = net4x4();
        let dst = NodeId::new(5);
        for s in 0..16u32 {
            if s != 5 {
                n.inject(Cycle::ZERO, NodeId::new(s), dst, 4);
            }
        }
        let d = n.run_until_drained(Cycle::new(100_000)).unwrap();
        assert_eq!(d.len(), 15);
        // The ejection port takes 4 flits per packet at 1 flit/cycle, so
        // total drain time is at least 15 * 4 cycles.
        assert!(d.last().unwrap().delivered_at >= Cycle::new(60));
    }

    #[test]
    fn uniform_random_traffic_drains() {
        let mut n = net4x4();
        let mut rng = dsm_sim::SimRng::new(42);
        for i in 0..200u64 {
            let s = NodeId::new(rng.range(16) as u32);
            let d = NodeId::new(rng.range(16) as u32);
            n.inject(Cycle::new(i / 2), s, d, 1 + rng.range(6));
        }
        let d = n.run_until_drained(Cycle::new(1_000_000)).unwrap();
        assert_eq!(d.len(), 200);
    }

    #[test]
    fn fifo_between_same_pair() {
        let mut n = net4x4();
        let p1 = n.inject(Cycle::ZERO, NodeId::new(0), NodeId::new(15), 8);
        let p2 = n.inject(Cycle::new(1), NodeId::new(0), NodeId::new(15), 1);
        let d = n.run_until_drained(Cycle::new(10_000)).unwrap();
        let t1 = d.iter().find(|x| x.packet == p1).unwrap().delivered_at;
        let t2 = d.iter().find(|x| x.packet == p2).unwrap().delivered_at;
        assert!(t2 > t1, "wormhole same-path FIFO violated");
    }

    #[test]
    fn stall_error_reports_in_flight() {
        let mut n = net4x4();
        n.inject(Cycle::ZERO, NodeId::new(0), NodeId::new(15), 64);
        let err = n.run_until_drained(Cycle::new(3)).unwrap_err();
        assert_eq!(err.in_flight, 1);
        assert!(err.to_string().contains("failed to drain"));
    }

    #[test]
    fn contention_increases_latency_vs_idle() {
        // One packet alone.
        let mut idle = net4x4();
        let p = idle.inject(Cycle::ZERO, NodeId::new(0), NodeId::new(3), 4);
        let t_idle = idle
            .run_until_drained(Cycle::new(10_000))
            .unwrap()
            .iter()
            .find(|d| d.packet == p)
            .unwrap()
            .delivered_at;

        // Same packet with cross traffic hammering the same row.
        let mut busy = net4x4();
        for _ in 0..8 {
            busy.inject(Cycle::ZERO, NodeId::new(1), NodeId::new(3), 8);
        }
        let p = busy.inject(Cycle::ZERO, NodeId::new(0), NodeId::new(3), 4);
        let t_busy = busy
            .run_until_drained(Cycle::new(100_000))
            .unwrap()
            .iter()
            .find(|d| d.packet == p)
            .unwrap()
            .delivered_at;
        assert!(
            t_busy > t_idle,
            "internal contention should delay the packet"
        );
    }
}
