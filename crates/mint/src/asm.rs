//! A two-pass assembler for the mini-MINT ISA.
//!
//! Syntax: one instruction per line; `name:` defines a label (possibly
//! on its own line); `;` or `#` starts a comment. Registers are
//! `r0`–`r15`; immediates are decimal or `0x`-prefixed hex.
//!
//! ```text
//! ; lock-free counter: r1 = &counter, r2 = iterations
//! loop:
//!     li   r3, 1
//!     faa  r4, r1, r3     ; r4 = fetch_and_add(counter, 1)
//!     addi r2, r2, -1
//!     bne  r2, r0, loop
//!     halt
//! ```

use crate::isa::{Inst, Reg};
use std::collections::HashMap;
use std::fmt;

/// An assembly error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    let rest = tok
        .strip_prefix('r')
        .ok_or_else(|| err(line, format!("expected a register, got `{tok}`")))?;
    let n: u8 = rest
        .parse()
        .map_err(|_| err(line, format!("expected a register, got `{tok}`")))?;
    if (n as usize) < Reg::COUNT {
        Ok(Reg(n))
    } else {
        Err(err(line, format!("register r{n} out of range (r0-r15)")))
    }
}

fn parse_imm(tok: &str, line: usize) -> Result<i64, AsmError> {
    let (neg, t) = match tok.strip_prefix('-') {
        Some(t) => (true, t),
        None => (false, tok),
    };
    let v = if let Some(hex) = t.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else {
        t.parse::<i64>()
    }
    .map_err(|_| err(line, format!("expected an immediate, got `{tok}`")))?;
    Ok(if neg { -v } else { v })
}

/// Assembles `source` into a program.
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered: unknown mnemonics, bad
/// operands, duplicate or undefined labels.
pub fn assemble(source: &str) -> Result<Vec<Inst>, AsmError> {
    // Pass 1: strip comments, collect labels and raw statements.
    let mut labels: HashMap<String, usize> = HashMap::new();
    let mut stmts: Vec<(usize, Vec<String>)> = Vec::new(); // (line_no, tokens)
    for (i, raw) in source.lines().enumerate() {
        let line_no = i + 1;
        let code = raw.split([';', '#']).next().unwrap_or("").trim();
        if code.is_empty() {
            continue;
        }
        let mut rest = code;
        while let Some(colon) = rest.find(':') {
            let (label, after) = rest.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                return Err(err(line_no, format!("malformed label `{label}:`")));
            }
            if labels.insert(label.to_string(), stmts.len()).is_some() {
                return Err(err(line_no, format!("duplicate label `{label}`")));
            }
            rest = after[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        let mut tokens: Vec<String> = Vec::new();
        let mut parts = rest.split_whitespace();
        tokens.push(parts.next().expect("non-empty").to_lowercase());
        let operands: String = parts.collect::<Vec<_>>().join(" ");
        for op in operands.split(',') {
            let op = op.trim();
            if !op.is_empty() {
                tokens.push(op.to_string());
            }
        }
        stmts.push((line_no, tokens));
    }

    // Pass 2: encode.
    let target = |name: &str, line: usize| -> Result<usize, AsmError> {
        labels
            .get(name)
            .copied()
            .ok_or_else(|| err(line, format!("undefined label `{name}`")))
    };
    let mut prog = Vec::with_capacity(stmts.len());
    for (line, toks) in &stmts {
        let line = *line;
        let op = toks[0].as_str();
        let args = &toks[1..];
        let want = |n: usize| -> Result<(), AsmError> {
            if args.len() == n {
                Ok(())
            } else {
                Err(err(
                    line,
                    format!("`{op}` expects {n} operand(s), got {}", args.len()),
                ))
            }
        };
        let r = |i: usize| parse_reg(&args[i], line);
        let inst = match op {
            "li" => {
                want(2)?;
                Inst::Li {
                    rd: r(0)?,
                    imm: parse_imm(&args[1], line)? as u64,
                }
            }
            "add" => {
                want(3)?;
                Inst::Add {
                    rd: r(0)?,
                    ra: r(1)?,
                    rb: r(2)?,
                }
            }
            "addi" => {
                want(3)?;
                Inst::Addi {
                    rd: r(0)?,
                    ra: r(1)?,
                    imm: parse_imm(&args[2], line)?,
                }
            }
            "sub" => {
                want(3)?;
                Inst::Sub {
                    rd: r(0)?,
                    ra: r(1)?,
                    rb: r(2)?,
                }
            }
            "and" => {
                want(3)?;
                Inst::And {
                    rd: r(0)?,
                    ra: r(1)?,
                    rb: r(2)?,
                }
            }
            "or" => {
                want(3)?;
                Inst::Or {
                    rd: r(0)?,
                    ra: r(1)?,
                    rb: r(2)?,
                }
            }
            "xor" => {
                want(3)?;
                Inst::Xor {
                    rd: r(0)?,
                    ra: r(1)?,
                    rb: r(2)?,
                }
            }
            "slli" => {
                want(3)?;
                let sh = parse_imm(&args[2], line)?;
                if !(0..64).contains(&sh) {
                    return Err(err(line, format!("shift amount {sh} out of range")));
                }
                Inst::Slli {
                    rd: r(0)?,
                    ra: r(1)?,
                    imm: sh as u8,
                }
            }
            "ld" => {
                want(2)?;
                Inst::Ld {
                    rd: r(0)?,
                    ra: r(1)?,
                }
            }
            "st" => {
                want(2)?;
                Inst::St {
                    rs: r(0)?,
                    ra: r(1)?,
                }
            }
            "lx" => {
                want(2)?;
                Inst::Lx {
                    rd: r(0)?,
                    ra: r(1)?,
                }
            }
            "ll" => {
                want(2)?;
                Inst::Ll {
                    rd: r(0)?,
                    ra: r(1)?,
                }
            }
            "sc" => {
                want(3)?;
                Inst::Sc {
                    rd: r(0)?,
                    rs: r(1)?,
                    ra: r(2)?,
                }
            }
            "cas" => {
                want(4)?;
                Inst::Cas {
                    rd: r(0)?,
                    ra: r(1)?,
                    re: r(2)?,
                    rn: r(3)?,
                }
            }
            "faa" => {
                want(3)?;
                Inst::Faa {
                    rd: r(0)?,
                    ra: r(1)?,
                    rb: r(2)?,
                }
            }
            "fas" => {
                want(3)?;
                Inst::Fas {
                    rd: r(0)?,
                    ra: r(1)?,
                    rb: r(2)?,
                }
            }
            "tas" => {
                want(2)?;
                Inst::Tas {
                    rd: r(0)?,
                    ra: r(1)?,
                }
            }
            "drop" => {
                want(1)?;
                Inst::Drop { ra: r(0)? }
            }
            "delay" => {
                want(1)?;
                Inst::Delay { ra: r(0)? }
            }
            "delayi" => {
                want(1)?;
                Inst::Delayi {
                    imm: parse_imm(&args[0], line)? as u64,
                }
            }
            "rnd" => {
                want(2)?;
                Inst::Rnd {
                    rd: r(0)?,
                    ra: r(1)?,
                }
            }
            "bar" => {
                want(1)?;
                Inst::Bar {
                    imm: parse_imm(&args[0], line)? as u32,
                }
            }
            "beq" => {
                want(3)?;
                Inst::Beq {
                    ra: r(0)?,
                    rb: r(1)?,
                    target: target(&args[2], line)?,
                }
            }
            "bne" => {
                want(3)?;
                Inst::Bne {
                    ra: r(0)?,
                    rb: r(1)?,
                    target: target(&args[2], line)?,
                }
            }
            "blt" => {
                want(3)?;
                Inst::Blt {
                    ra: r(0)?,
                    rb: r(1)?,
                    target: target(&args[2], line)?,
                }
            }
            "j" => {
                want(1)?;
                Inst::J {
                    target: target(&args[0], line)?,
                }
            }
            "halt" => {
                want(0)?;
                Inst::Halt
            }
            other => return Err(err(line, format!("unknown mnemonic `{other}`"))),
        };
        prog.push(inst);
    }
    Ok(prog)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_counter_loop() {
        let prog = assemble(
            "
            ; simple counter
            li   r3, 1
        loop:
            faa  r4, r1, r3
            addi r2, r2, -1
            bne  r2, r0, loop
            halt
            ",
        )
        .unwrap();
        assert_eq!(prog.len(), 5);
        assert_eq!(prog[0], Inst::Li { rd: Reg(3), imm: 1 });
        assert_eq!(
            prog[3],
            Inst::Bne {
                ra: Reg(2),
                rb: Reg(0),
                target: 1
            }
        );
        assert_eq!(prog[4], Inst::Halt);
    }

    #[test]
    fn labels_on_their_own_line_and_inline() {
        let prog = assemble("a:\n b: li r1, 7\n j a\n j b").unwrap();
        assert_eq!(prog[1], Inst::J { target: 0 });
        assert_eq!(prog[2], Inst::J { target: 0 });
    }

    #[test]
    fn hex_and_negative_immediates() {
        let prog = assemble("li r1, 0x40\n addi r2, r2, -3").unwrap();
        assert_eq!(
            prog[0],
            Inst::Li {
                rd: Reg(1),
                imm: 0x40
            }
        );
        assert_eq!(
            prog[1],
            Inst::Addi {
                rd: Reg(2),
                ra: Reg(2),
                imm: -3
            }
        );
    }

    #[test]
    fn comments_with_both_styles() {
        let prog = assemble("li r1, 1 ; one\n li r2, 2 # two").unwrap();
        assert_eq!(prog.len(), 2);
    }

    #[test]
    fn error_unknown_mnemonic() {
        let e = assemble("frobnicate r1").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.to_string().contains("unknown mnemonic"));
    }

    #[test]
    fn error_undefined_label() {
        let e = assemble("j nowhere").unwrap_err();
        assert!(e.message.contains("undefined label"));
    }

    #[test]
    fn error_duplicate_label() {
        let e = assemble("x:\nx:\nhalt").unwrap_err();
        assert!(e.message.contains("duplicate label"));
    }

    #[test]
    fn error_bad_register() {
        assert!(assemble("li r16, 0").is_err());
        assert!(assemble("li x3, 0").is_err());
    }

    #[test]
    fn error_wrong_arity() {
        let e = assemble("add r1, r2").unwrap_err();
        assert!(e.message.contains("expects 3"));
    }
}
