//! The CPU interpreter: runs an assembled program as a machine
//! [`Program`], issuing one shared-memory operation at a time and
//! charging one cycle per executed ALU instruction (batched into
//! `Compute` actions), exactly the shape of an execution-driven
//! simulation front end.

use crate::isa::{Inst, Reg};
use dsm_machine::{Action, ProcCtx, Program};
use dsm_protocol::{MemOp, OpResult, PhiOp};
use dsm_sim::Addr;

/// A mini-MINT CPU executing one assembled program.
///
/// # Example
///
/// ```
/// use dsm_mint::{assemble, Cpu};
/// use dsm_machine::MachineBuilder;
/// use dsm_sim::{Cycle, MachineConfig};
///
/// let prog = assemble("li r1, 0x40\n li r2, 7\n st r2, r1\n halt").unwrap();
/// let mut b = MachineBuilder::new(MachineConfig::with_nodes(1));
/// b.add_program(Cpu::new(prog));
/// let mut m = b.build();
/// m.run(Cycle::new(100_000)).unwrap();
/// assert_eq!(m.read_word(dsm_sim::Addr::new(0x40)), 7);
/// ```
#[derive(Debug, Clone)]
pub struct Cpu {
    prog: Vec<Inst>,
    regs: [u64; Reg::COUNT],
    pc: usize,
    /// Serial number captured by the last `ll` (serial-number scheme).
    ll_serial: Option<u64>,
    /// Destination register(s) of the in-flight memory op.
    pending: Option<Pending>,
    halted: bool,
    /// Total instructions retired (for IPC-style statistics).
    pub retired: u64,
}

#[derive(Debug, Clone, Copy)]
enum Pending {
    Load { rd: Reg },
    LoadLinked { rd: Reg },
    Store,
    ScFlag { rd: Reg },
    CasObserved { rd: Reg },
    Fetched { rd: Reg },
}

impl Cpu {
    /// Creates a CPU at `pc = 0` with all registers zero.
    pub fn new(prog: Vec<Inst>) -> Self {
        Cpu {
            prog,
            regs: [0; Reg::COUNT],
            pc: 0,
            ll_serial: None,
            pending: None,
            halted: false,
            retired: 0,
        }
    }

    /// Pre-sets a register (argument passing, like MINT's command line).
    pub fn with_reg(mut self, r: Reg, value: u64) -> Self {
        self.set(r, value);
        self
    }

    /// Reads a register.
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.0 as usize]
    }

    /// `true` once the program has executed `halt`.
    pub fn halted(&self) -> bool {
        self.halted
    }

    fn set(&mut self, r: Reg, v: u64) {
        if r != Reg::ZERO {
            self.regs[r.0 as usize] = v;
        }
    }

    fn get(&self, r: Reg) -> u64 {
        self.regs[r.0 as usize]
    }

    fn retire_result(&mut self, result: OpResult) {
        let pending = self
            .pending
            .take()
            .expect("memory result without a pending op");
        match (pending, result) {
            (Pending::Load { rd }, OpResult::Loaded { value, .. })
            | (Pending::Load { rd }, OpResult::Fetched { old: value }) => self.set(rd, value),
            (Pending::LoadLinked { rd }, OpResult::Loaded { value, serial, .. }) => {
                self.set(rd, value);
                self.ll_serial = serial;
            }
            (Pending::Store, _) => {}
            (Pending::ScFlag { rd }, OpResult::ScDone { success }) => {
                self.set(rd, u64::from(success))
            }
            (Pending::CasObserved { rd }, OpResult::CasDone { observed, .. }) => {
                self.set(rd, observed)
            }
            (Pending::Fetched { rd }, OpResult::Fetched { old }) => self.set(rd, old),
            (p, r) => panic!("mismatched memory result {r:?} for pending {p:?}"),
        }
    }
}

impl Program for Cpu {
    fn step(&mut self, ctx: &mut ProcCtx<'_>) -> Action {
        if let Some(result) = ctx.last.take() {
            if self.pending.is_some() {
                self.retire_result(result);
            }
        }
        let mut alu_cycles: u64 = 0;
        loop {
            if self.halted {
                return Action::Done;
            }
            let Some(&inst) = self.prog.get(self.pc) else {
                // Falling off the end halts, like returning from main.
                self.halted = true;
                return Action::Done;
            };
            self.pc += 1;
            self.retired += 1;

            // Memory instructions issue an operation; everything else
            // executes inline for one accumulated cycle.
            if inst.is_memory() {
                let action = match inst {
                    Inst::Ld { rd, ra } => {
                        self.pending = Some(Pending::Load { rd });
                        MemOp::Load {
                            addr: Addr::new(self.get(ra)),
                        }
                    }
                    Inst::Lx { rd, ra } => {
                        self.pending = Some(Pending::Load { rd });
                        MemOp::LoadExclusive {
                            addr: Addr::new(self.get(ra)),
                        }
                    }
                    Inst::St { rs, ra } => {
                        self.pending = Some(Pending::Store);
                        MemOp::Store {
                            addr: Addr::new(self.get(ra)),
                            value: self.get(rs),
                        }
                    }
                    Inst::Ll { rd, ra } => {
                        self.pending = Some(Pending::LoadLinked { rd });
                        MemOp::LoadLinked {
                            addr: Addr::new(self.get(ra)),
                        }
                    }
                    Inst::Sc { rd, rs, ra } => {
                        self.pending = Some(Pending::ScFlag { rd });
                        MemOp::StoreConditional {
                            addr: Addr::new(self.get(ra)),
                            value: self.get(rs),
                            serial: self.ll_serial.take(),
                        }
                    }
                    Inst::Cas { rd, ra, re, rn } => {
                        self.pending = Some(Pending::CasObserved { rd });
                        MemOp::Cas {
                            addr: Addr::new(self.get(ra)),
                            expected: self.get(re),
                            new: self.get(rn),
                        }
                    }
                    Inst::Faa { rd, ra, rb } => {
                        self.pending = Some(Pending::Fetched { rd });
                        MemOp::FetchPhi {
                            addr: Addr::new(self.get(ra)),
                            op: PhiOp::Add(self.get(rb)),
                        }
                    }
                    Inst::Fas { rd, ra, rb } => {
                        self.pending = Some(Pending::Fetched { rd });
                        MemOp::FetchPhi {
                            addr: Addr::new(self.get(ra)),
                            op: PhiOp::Store(self.get(rb)),
                        }
                    }
                    Inst::Tas { rd, ra } => {
                        self.pending = Some(Pending::Fetched { rd });
                        MemOp::FetchPhi {
                            addr: Addr::new(self.get(ra)),
                            op: PhiOp::TestAndSet,
                        }
                    }
                    Inst::Drop { ra } => {
                        self.pending = Some(Pending::Store);
                        MemOp::DropCopy {
                            addr: Addr::new(self.get(ra)),
                        }
                    }
                    _ => unreachable!("is_memory covers exactly these"),
                };
                // ALU work preceding the access costs its cycles first;
                // the issue itself is charged by the machine.
                if alu_cycles > 0 {
                    // Rewind: we'll re-execute this instruction after the
                    // compute completes.
                    self.pc -= 1;
                    self.retired -= 1;
                    self.pending = None;
                    return Action::Compute(alu_cycles);
                }
                return Action::Op(action);
            }

            match inst {
                Inst::Li { rd, imm } => self.set(rd, imm),
                Inst::Add { rd, ra, rb } => self.set(rd, self.get(ra).wrapping_add(self.get(rb))),
                Inst::Addi { rd, ra, imm } => self.set(rd, self.get(ra).wrapping_add_signed(imm)),
                Inst::Sub { rd, ra, rb } => self.set(rd, self.get(ra).wrapping_sub(self.get(rb))),
                Inst::And { rd, ra, rb } => self.set(rd, self.get(ra) & self.get(rb)),
                Inst::Or { rd, ra, rb } => self.set(rd, self.get(ra) | self.get(rb)),
                Inst::Xor { rd, ra, rb } => self.set(rd, self.get(ra) ^ self.get(rb)),
                Inst::Slli { rd, ra, imm } => self.set(rd, self.get(ra) << imm),
                Inst::Rnd { rd, ra } => {
                    let bound = self.get(ra).max(1);
                    let v = ctx.rng.range(bound);
                    self.set(rd, v);
                }
                Inst::Beq { ra, rb, target } => {
                    if self.get(ra) == self.get(rb) {
                        self.pc = target;
                    }
                }
                Inst::Bne { ra, rb, target } => {
                    if self.get(ra) != self.get(rb) {
                        self.pc = target;
                    }
                }
                Inst::Blt { ra, rb, target } => {
                    if self.get(ra) < self.get(rb) {
                        self.pc = target;
                    }
                }
                Inst::J { target } => self.pc = target,
                Inst::Delay { ra } => {
                    let cycles = alu_cycles + self.get(ra);
                    return Action::Compute(cycles.max(1));
                }
                Inst::Delayi { imm } => {
                    let cycles = alu_cycles + imm;
                    return Action::Compute(cycles.max(1));
                }
                Inst::Bar { imm } => {
                    // Pending ALU cycles are folded into the wait.
                    return Action::Barrier(imm);
                }
                Inst::Halt => {
                    self.halted = true;
                    return Action::Done;
                }
                _ => unreachable!("memory instructions handled above"),
            }
            alu_cycles += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use dsm_machine::MachineBuilder;
    use dsm_sim::{Cycle, MachineConfig};

    fn run_solo(src: &str) -> dsm_machine::Machine {
        let prog = assemble(src).unwrap();
        let mut b = MachineBuilder::new(MachineConfig::with_nodes(1));
        b.add_program(Cpu::new(prog));
        let mut m = b.build();
        m.run(Cycle::new(10_000_000)).unwrap();
        m
    }

    #[test]
    fn arithmetic_and_store() {
        let m = run_solo(
            "
            li r1, 0x40
            li r2, 5
            li r3, 7
            add r4, r2, r3
            sub r5, r4, r2      ; 7
            xor r5, r5, r4      ; 7 ^ 12 = 11
            st r5, r1
            halt
            ",
        );
        assert_eq!(m.read_word(Addr::new(0x40)), 7 ^ 12);
    }

    #[test]
    fn loops_and_branches() {
        // Sum 1..=10 into memory.
        let m = run_solo(
            "
            li r1, 0x40
            li r2, 10      ; i
            li r3, 0       ; sum
        loop:
            add r3, r3, r2
            addi r2, r2, -1
            bne r2, r0, loop
            st r3, r1
            halt
            ",
        );
        assert_eq!(m.read_word(Addr::new(0x40)), 55);
    }

    #[test]
    fn load_store_round_trip() {
        let m = run_solo(
            "
            li r1, 0x40
            li r2, 42
            st r2, r1
            ld r3, r1
            addi r4, r3, 1
            li r1, 0x80
            st r4, r1
            halt
            ",
        );
        assert_eq!(m.read_word(Addr::new(0x80)), 43);
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let m = run_solo(
            "
            li r0, 99
            li r1, 0x40
            st r0, r1
            halt
            ",
        );
        assert_eq!(m.read_word(Addr::new(0x40)), 0);
    }

    #[test]
    fn ll_sc_and_cas_solo() {
        let m = run_solo(
            "
            li r1, 0x40
            ll r2, r1          ; r2 = 0
            addi r3, r2, 5
            sc r4, r3, r1      ; mem = 5, r4 = 1
            li r5, 5
            li r6, 9
            cas r7, r1, r5, r6 ; observed 5 == expected 5 -> mem = 9
            halt
            ",
        );
        assert_eq!(m.read_word(Addr::new(0x40)), 9);
    }

    #[test]
    fn slli_shifts() {
        let m = run_solo("li r1, 0x40\nli r2, 3\nslli r3, r2, 4\nst r3, r1\nhalt");
        assert_eq!(m.read_word(Addr::new(0x40)), 48);
    }

    #[test]
    fn rnd_is_bounded() {
        let m = run_solo(
            "
            li r1, 0x40
            li r2, 8
            rnd r3, r2
            blt r3, r2, ok
            li r4, 999       ; out of range marker
            st r4, r1
            halt
        ok:
            li r4, 1
            st r4, r1
            halt
            ",
        );
        assert_eq!(m.read_word(Addr::new(0x40)), 1);
    }

    #[test]
    fn falling_off_the_end_halts() {
        let m = run_solo("li r1, 1");
        let _ = m; // completed without deadlock
    }
}
