//! Disassembler: renders programs back to assembly text that
//! re-assembles to the identical program (round-trip property-tested).

use crate::isa::{Inst, Reg};
use std::collections::BTreeSet;

fn label_for(target: usize) -> String {
    format!("L{target}")
}

/// Renders `prog` as assembly text.
///
/// Branch targets become `L<index>` labels. The output re-assembles to
/// exactly the same instruction sequence.
pub fn disassemble(prog: &[Inst]) -> String {
    // Collect every branch target so labels are emitted where needed.
    let mut targets: BTreeSet<usize> = BTreeSet::new();
    for inst in prog {
        match *inst {
            Inst::Beq { target, .. }
            | Inst::Bne { target, .. }
            | Inst::Blt { target, .. }
            | Inst::J { target } => {
                targets.insert(target);
            }
            _ => {}
        }
    }
    let mut out = String::new();
    for (i, inst) in prog.iter().enumerate() {
        if targets.contains(&i) {
            out.push_str(&label_for(i));
            out.push_str(":\n");
        }
        out.push_str("    ");
        out.push_str(&render(inst));
        out.push('\n');
    }
    // A label may point one past the last instruction (e.g. a forward
    // branch to the end); pad with a halt so it stays addressable.
    if targets.contains(&prog.len()) {
        out.push_str(&label_for(prog.len()));
        out.push_str(":\n    halt\n");
    }
    out
}

fn render(inst: &Inst) -> String {
    fn r3(op: &str, rd: Reg, ra: Reg, rb: Reg) -> String {
        format!("{op} {rd}, {ra}, {rb}")
    }
    match *inst {
        Inst::Li { rd, imm } => format!("li {rd}, {}", imm as i64),
        Inst::Add { rd, ra, rb } => r3("add", rd, ra, rb),
        Inst::Addi { rd, ra, imm } => format!("addi {rd}, {ra}, {imm}"),
        Inst::Sub { rd, ra, rb } => r3("sub", rd, ra, rb),
        Inst::And { rd, ra, rb } => r3("and", rd, ra, rb),
        Inst::Or { rd, ra, rb } => r3("or", rd, ra, rb),
        Inst::Xor { rd, ra, rb } => r3("xor", rd, ra, rb),
        Inst::Slli { rd, ra, imm } => format!("slli {rd}, {ra}, {imm}"),
        Inst::Ld { rd, ra } => format!("ld {rd}, {ra}"),
        Inst::St { rs, ra } => format!("st {rs}, {ra}"),
        Inst::Lx { rd, ra } => format!("lx {rd}, {ra}"),
        Inst::Ll { rd, ra } => format!("ll {rd}, {ra}"),
        Inst::Sc { rd, rs, ra } => format!("sc {rd}, {rs}, {ra}"),
        Inst::Cas { rd, ra, re, rn } => format!("cas {rd}, {ra}, {re}, {rn}"),
        Inst::Faa { rd, ra, rb } => r3("faa", rd, ra, rb),
        Inst::Fas { rd, ra, rb } => r3("fas", rd, ra, rb),
        Inst::Tas { rd, ra } => format!("tas {rd}, {ra}"),
        Inst::Drop { ra } => format!("drop {ra}"),
        Inst::Delay { ra } => format!("delay {ra}"),
        Inst::Delayi { imm } => format!("delayi {imm}"),
        Inst::Rnd { rd, ra } => format!("rnd {rd}, {ra}"),
        Inst::Bar { imm } => format!("bar {imm}"),
        Inst::Beq { ra, rb, target } => format!("beq {ra}, {rb}, {}", label_for(target)),
        Inst::Bne { ra, rb, target } => format!("bne {ra}, {rb}, {}", label_for(target)),
        Inst::Blt { ra, rb, target } => format!("blt {ra}, {rb}, {}", label_for(target)),
        Inst::J { target } => format!("j {}", label_for(target)),
        Inst::Halt => "halt".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use proptest::prelude::*;
    use proptest::strategy::ValueTree;

    #[test]
    fn round_trips_a_real_program() {
        let src = "
        again:
            ll r5, r1
            addi r6, r5, 1
            sc r7, r6, r1
            beq r7, r0, again
            addi r2, r2, -1
            bne r2, r0, again
            halt
        ";
        let prog = assemble(src).unwrap();
        let text = disassemble(&prog);
        let again = assemble(&text).unwrap();
        assert_eq!(prog, again, "disassembly:\n{text}");
    }

    #[test]
    fn renders_forward_edge_label() {
        use crate::isa::Reg;
        // A jump one past the end gets a synthetic trailing halt.
        let prog = vec![Inst::J { target: 1 }];
        let text = disassemble(&prog);
        assert!(text.contains("L1:"));
        let again = assemble(&text).unwrap();
        assert_eq!(again[0], Inst::J { target: 1 });
        let _ = Reg(0);
    }

    fn arb_reg() -> impl Strategy<Value = crate::isa::Reg> {
        (0u8..16).prop_map(crate::isa::Reg)
    }

    fn arb_inst(len: usize) -> impl Strategy<Value = Inst> {
        let t = 0..=len; // branch targets may point one past the end
        prop_oneof![
            (arb_reg(), any::<u32>()).prop_map(|(rd, imm)| Inst::Li {
                rd,
                imm: imm as u64
            }),
            (arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, ra, rb)| Inst::Add { rd, ra, rb }),
            (arb_reg(), arb_reg(), -1000i64..1000).prop_map(|(rd, ra, imm)| Inst::Addi {
                rd,
                ra,
                imm
            }),
            (arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, ra, rb)| Inst::Xor { rd, ra, rb }),
            (arb_reg(), arb_reg(), 0u8..64).prop_map(|(rd, ra, imm)| Inst::Slli { rd, ra, imm }),
            (arb_reg(), arb_reg()).prop_map(|(rd, ra)| Inst::Ld { rd, ra }),
            (arb_reg(), arb_reg()).prop_map(|(rs, ra)| Inst::St { rs, ra }),
            (arb_reg(), arb_reg()).prop_map(|(rd, ra)| Inst::Ll { rd, ra }),
            (arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, rs, ra)| Inst::Sc { rd, rs, ra }),
            (arb_reg(), arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, ra, re, rn)| Inst::Cas {
                rd,
                ra,
                re,
                rn
            }),
            (arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, ra, rb)| Inst::Faa { rd, ra, rb }),
            (arb_reg(), arb_reg()).prop_map(|(rd, ra)| Inst::Tas { rd, ra }),
            arb_reg().prop_map(|ra| Inst::Drop { ra }),
            (0u64..10_000).prop_map(|imm| Inst::Delayi { imm }),
            (0u32..8).prop_map(|imm| Inst::Bar { imm }),
            (arb_reg(), arb_reg(), t.clone()).prop_map(|(ra, rb, target)| Inst::Beq {
                ra,
                rb,
                target
            }),
            (arb_reg(), arb_reg(), t.clone()).prop_map(|(ra, rb, target)| Inst::Bne {
                ra,
                rb,
                target
            }),
            t.prop_map(|target| Inst::J { target }),
            Just(Inst::Halt),
        ]
    }

    proptest! {
        /// assemble(disassemble(p)) == p for arbitrary programs.
        #[test]
        fn round_trip_holds_for_random_programs(
            len in 1usize..24,
            seed in any::<u64>(),
        ) {
            // Build a deterministic random program of `len` instructions
            // (targets bounded by len).
            let mut runner = proptest::test_runner::TestRunner::deterministic();
            let mut prog = Vec::with_capacity(len);
            let mut s = seed;
            for _ in 0..len {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let tree = arb_inst(len).new_tree(&mut runner).unwrap();
                let inst = tree.current();
                let _ = s;
                prog.push(inst);
            }
            let text = disassemble(&prog);
            let again = assemble(&text).map_err(|e| {
                TestCaseError::fail(format!("reassembly failed: {e}\n{text}"))
            })?;
            // The synthetic trailing halt (for end-of-program labels) is
            // the only allowed difference.
            prop_assert!(
                again.len() == prog.len() || again.len() == prog.len() + 1,
                "length changed: {} -> {}\n{text}",
                prog.len(),
                again.len()
            );
            prop_assert_eq!(&again[..prog.len()], &prog[..], "program changed:\n{}", text);
        }
    }
}
