//! The instruction set of the mini-MINT front end.
//!
//! A small load-store RISC in the spirit of the MIPS-II subset MINT
//! interpreted for the paper, extended (as the paper's simulator was)
//! with `fetch_and_Φ`, `compare_and_swap`, `load_exclusive` and
//! `drop_copy`. Sixteen 64-bit registers; `r0` reads as zero and
//! ignores writes.

/// A register name (`r0`–`r15`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reg(pub u8);

impl Reg {
    /// The hardwired-zero register.
    pub const ZERO: Reg = Reg(0);

    /// Number of architectural registers.
    pub const COUNT: usize = 16;
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// One instruction. Branch/jump targets are instruction indices
/// (resolved from labels by the assembler).
///
/// Field conventions throughout: `rd` destination, `ra`/`rb` sources
/// (with `ra` holding the byte address for memory forms), `rs` store
/// data, `re`/`rn` CAS expected/new, `imm` an immediate, `target` a
/// resolved instruction index.
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inst {
    /// `rd = imm`
    Li { rd: Reg, imm: u64 },
    /// `rd = ra + rb`
    Add { rd: Reg, ra: Reg, rb: Reg },
    /// `rd = ra + imm`
    Addi { rd: Reg, ra: Reg, imm: i64 },
    /// `rd = ra - rb`
    Sub { rd: Reg, ra: Reg, rb: Reg },
    /// `rd = ra & rb`
    And { rd: Reg, ra: Reg, rb: Reg },
    /// `rd = ra | rb`
    Or { rd: Reg, ra: Reg, rb: Reg },
    /// `rd = ra ^ rb`
    Xor { rd: Reg, ra: Reg, rb: Reg },
    /// `rd = ra << imm`
    Slli { rd: Reg, ra: Reg, imm: u8 },

    /// `rd = mem[ra]` (ordinary load)
    Ld { rd: Reg, ra: Reg },
    /// `mem[ra] = rs` (ordinary store)
    St { rs: Reg, ra: Reg },
    /// `rd = mem[ra]`, acquiring exclusive access (`load_exclusive`)
    Lx { rd: Reg, ra: Reg },
    /// `rd = mem[ra]`, placing a reservation (`load_linked`)
    Ll { rd: Reg, ra: Reg },
    /// `mem[ra] = rs` if the reservation holds; `rd = 1/0`
    Sc { rd: Reg, rs: Reg, ra: Reg },
    /// `rd = old value`; `mem[ra] = rn` iff `old == re`
    /// (`compare_and_swap`; compare `rd` with `re` to learn the outcome)
    Cas { rd: Reg, ra: Reg, re: Reg, rn: Reg },
    /// `rd = fetch_and_add(mem[ra], rb)`
    Faa { rd: Reg, ra: Reg, rb: Reg },
    /// `rd = fetch_and_store(mem[ra], rb)` (atomic swap)
    Fas { rd: Reg, ra: Reg, rb: Reg },
    /// `rd = test_and_set(mem[ra])`
    Tas { rd: Reg, ra: Reg },
    /// `drop_copy(mem[ra])`
    Drop { ra: Reg },

    /// Stall for `ra` cycles (models local computation)
    Delay { ra: Reg },
    /// Stall for `imm` cycles
    Delayi { imm: u64 },
    /// `rd = uniform random in [0, ra)` (backoff jitter)
    Rnd { rd: Reg, ra: Reg },
    /// Constant-time barrier with id `imm`
    Bar { imm: u32 },

    /// Branch to `target` if `ra == rb`
    Beq { ra: Reg, rb: Reg, target: usize },
    /// Branch to `target` if `ra != rb`
    Bne { ra: Reg, rb: Reg, target: usize },
    /// Branch to `target` if `ra < rb` (unsigned)
    Blt { ra: Reg, rb: Reg, target: usize },
    /// Unconditional jump
    J { target: usize },
    /// Terminate the program
    Halt,
}

impl Inst {
    /// `true` if this instruction issues a shared-memory operation.
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            Inst::Ld { .. }
                | Inst::St { .. }
                | Inst::Lx { .. }
                | Inst::Ll { .. }
                | Inst::Sc { .. }
                | Inst::Cas { .. }
                | Inst::Faa { .. }
                | Inst::Fas { .. }
                | Inst::Tas { .. }
                | Inst::Drop { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_classification() {
        assert!(Inst::Ld {
            rd: Reg(1),
            ra: Reg(2)
        }
        .is_memory());
        assert!(Inst::Cas {
            rd: Reg(1),
            ra: Reg(2),
            re: Reg(3),
            rn: Reg(4)
        }
        .is_memory());
        assert!(!Inst::Add {
            rd: Reg(1),
            ra: Reg(2),
            rb: Reg(3)
        }
        .is_memory());
        assert!(!Inst::Bar { imm: 0 }.is_memory());
        assert!(!Inst::Halt.is_memory());
    }

    #[test]
    fn reg_display() {
        assert_eq!(format!("{}", Reg(7)), "r7");
        assert_eq!(Reg::ZERO, Reg(0));
    }
}
