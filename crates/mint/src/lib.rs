//! A MINT-like execution-driven front end for the DSM simulator.
//!
//! The paper's experimental apparatus used MINT — an interpreter for
//! MIPS R4000 object code — as its front end, with the back end
//! simulating the memory system. This crate reproduces that structure
//! in miniature: a small RISC instruction set ([`isa`]), a two-pass
//! assembler ([`asm`]), and a CPU interpreter ([`cpu`]) that implements
//! the machine's `Program` interface, so workloads can be written as
//! *assembly programs* whose execution drives the simulated memory
//! system — including `ll`/`sc`, `cas`, `faa`/`fas`/`tas`, the
//! auxiliary `lx` (load_exclusive) and `drop` (drop_copy), constant-time
//! barriers and backoff via `rnd`/`delay`.
//!
//! # Example: a two-processor fetch_and_add counter in assembly
//!
//! ```
//! use dsm_machine::MachineBuilder;
//! use dsm_mint::{assemble, Cpu, Reg};
//! use dsm_protocol::{SyncConfig, SyncPolicy};
//! use dsm_sim::{Addr, Cycle, MachineConfig};
//!
//! let prog = assemble("
//!     ; r1 = &counter, r2 = iterations
//!     li  r3, 1
//! loop:
//!     faa r4, r1, r3
//!     addi r2, r2, -1
//!     bne r2, r0, loop
//!     halt
//! ").unwrap();
//!
//! let counter = Addr::new(0x40);
//! let mut b = MachineBuilder::new(MachineConfig::with_nodes(2));
//! b.register_sync(counter, SyncConfig { policy: SyncPolicy::Unc, ..Default::default() });
//! for _ in 0..2 {
//!     b.add_program(Cpu::new(prog.clone()).with_reg(Reg(1), 0x40).with_reg(Reg(2), 100));
//! }
//! let mut m = b.build();
//! m.run(Cycle::new(10_000_000)).unwrap();
//! assert_eq!(m.read_word(counter), 200);
//! ```

#![warn(missing_docs)]

pub mod asm;
pub mod cpu;
pub mod disasm;
pub mod isa;

pub use asm::{assemble, AsmError};
pub use cpu::Cpu;
pub use disasm::disassemble;
pub use isa::{Inst, Reg};

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_machine::MachineBuilder;
    use dsm_protocol::{SyncConfig, SyncPolicy};
    use dsm_sim::{Addr, Cycle, MachineConfig};

    const COUNTER: Addr = Addr::new(0x40);
    const LOCK: Addr = Addr::new(0x80);

    fn run_on_all(
        src: &str,
        nodes: u32,
        regs: &[(Reg, u64)],
        sync: &[(Addr, SyncPolicy)],
    ) -> dsm_machine::Machine {
        let prog = assemble(src).expect("assembles");
        let mut b = MachineBuilder::new(MachineConfig::with_nodes(nodes));
        for &(a, policy) in sync {
            b.register_sync(
                a,
                SyncConfig {
                    policy,
                    ..Default::default()
                },
            );
        }
        for _ in 0..nodes {
            let mut cpu = Cpu::new(prog.clone());
            for &(r, v) in regs {
                cpu = cpu.with_reg(r, v);
            }
            b.add_program(cpu);
        }
        let mut m = b.build();
        m.run(Cycle::new(100_000_000)).expect("completes");
        m.validate_coherence().unwrap();
        m
    }

    /// The paper's lock-free counter, in assembly, exact under every
    /// policy and primitive.
    #[test]
    fn assembly_faa_counter_all_policies() {
        for policy in SyncPolicy::ALL {
            let m = run_on_all(
                "
                li r3, 1
            loop:
                faa r4, r1, r3
                addi r2, r2, -1
                bne r2, r0, loop
                halt
                ",
                8,
                &[(Reg(1), COUNTER.as_u64()), (Reg(2), 25)],
                &[(COUNTER, policy)],
            );
            assert_eq!(m.read_word(COUNTER), 200, "{policy}");
        }
    }

    /// A CAS retry loop in assembly.
    #[test]
    fn assembly_cas_counter() {
        let m = run_on_all(
            "
            ; r1 = &counter, r2 = iterations
        again:
            ld r5, r1          ; expected
        retry:
            addi r6, r5, 1     ; new
            cas r7, r1, r5, r6 ; r7 = observed
            beq r7, r5, won
            add r5, r7, r0     ; retry with the observed value
            j retry
        won:
            addi r2, r2, -1
            bne r2, r0, again
            halt
            ",
            8,
            &[(Reg(1), COUNTER.as_u64()), (Reg(2), 20)],
            &[(COUNTER, SyncPolicy::Inv)],
        );
        assert_eq!(m.read_word(COUNTER), 160);
    }

    /// An LL/SC retry loop in assembly.
    #[test]
    fn assembly_llsc_counter() {
        let m = run_on_all(
            "
        again:
            ll r5, r1
            addi r6, r5, 1
            sc r7, r6, r1
            beq r7, r0, again  ; SC failed: retry
            addi r2, r2, -1
            bne r2, r0, again
            halt
            ",
            8,
            &[(Reg(1), COUNTER.as_u64()), (Reg(2), 20)],
            &[(COUNTER, SyncPolicy::Inv)],
        );
        assert_eq!(m.read_word(COUNTER), 160);
    }

    /// The paper's test-and-test-and-set lock with bounded exponential
    /// backoff, in assembly, protecting an ordinary counter.
    #[test]
    fn assembly_tts_lock_counter() {
        let m = run_on_all(
            "
            ; r1 = &lock, r8 = &counter, r2 = iterations
            li r10, 16         ; backoff window
            li r11, 4096       ; backoff bound
        acquire:
            ld r3, r1          ; test
            bne r3, r0, backoff
            tas r4, r1         ; test_and_set
            beq r4, r0, locked
        backoff:
            rnd r5, r10        ; jittered delay
            delay r5
            add r10, r10, r10  ; double the window
            blt r10, r11, acquire
            add r10, r11, r0   ; clamp
            j acquire
        locked:
            ld r6, r8          ; critical section: counter += 1
            addi r6, r6, 1
            st r6, r8
            st r0, r1          ; release
            li r10, 16         ; reset backoff
            addi r2, r2, -1
            bne r2, r0, acquire
            halt
            ",
            8,
            &[
                (Reg(1), LOCK.as_u64()),
                (Reg(8), COUNTER.as_u64()),
                (Reg(2), 15),
            ],
            &[(LOCK, SyncPolicy::Inv)],
        );
        assert_eq!(m.read_word(COUNTER), 120, "TTS lock lost an update");
        assert_eq!(m.read_word(LOCK), 0, "lock released");
    }

    /// Barriers in assembly: everyone increments in turn, no lost
    /// updates even with plain loads/stores.
    #[test]
    fn assembly_barrier_turn_taking() {
        // Each CPU gets a distinct id in r9 and takes turns via
        // barriers: round-robin exclusive access needs no atomics.
        let prog = assemble(
            "
            ; r8 = &counter, r9 = my id, r7 = procs
            li r2, 0           ; round
        round:
            bne r2, r9, skip
            ld r3, r8
            addi r3, r3, 1
            st r3, r8
        skip:
            bar 0
            addi r2, r2, 1
            blt r2, r7, round
            halt
            ",
        )
        .unwrap();
        let nodes = 4;
        let mut b = MachineBuilder::new(MachineConfig::with_nodes(nodes));
        for p in 0..nodes {
            b.add_program(
                Cpu::new(prog.clone())
                    .with_reg(Reg(8), COUNTER.as_u64())
                    .with_reg(Reg(9), p as u64)
                    .with_reg(Reg(7), nodes as u64),
            );
        }
        let mut m = b.build();
        m.run(Cycle::new(10_000_000)).unwrap();
        assert_eq!(m.read_word(COUNTER), nodes as u64);
    }

    /// `lx` + `cas` (the paper's recommended combination) and `drop`.
    #[test]
    fn assembly_load_exclusive_and_drop() {
        let m = run_on_all(
            "
        again:
            lx r5, r1          ; load_exclusive
        retry:
            addi r6, r5, 1
            cas r7, r1, r5, r6
            beq r7, r5, won
            add r5, r7, r0
            j retry
        won:
            drop r1            ; self-invalidate
            addi r2, r2, -1
            bne r2, r0, again
            halt
            ",
            4,
            &[(Reg(1), COUNTER.as_u64()), (Reg(2), 10)],
            &[(COUNTER, SyncPolicy::Inv)],
        );
        assert_eq!(m.read_word(COUNTER), 40);
    }
}
