//! Front-end equivalence: the same workload expressed as a mini-MINT
//! assembly program and as a Rust state machine must produce the same
//! *memory behaviour* — identical final counter values and comparable
//! protocol traffic — because the simulator's results are a function of
//! the reference stream, not of how it was generated.

use dsm_machine::{Action, Machine, MachineBuilder, ProcCtx};
use dsm_mint::{assemble, Cpu, Reg};
use dsm_protocol::{MemOp, PhiOp, SyncConfig, SyncPolicy};
use dsm_sim::{Addr, Cycle, MachineConfig};

const COUNTER: Addr = Addr::new(0x40);
const PROCS: u32 = 8;
const ITERS: u64 = 50;

fn run_assembly(policy: SyncPolicy) -> Machine {
    let prog = assemble(
        "
        li r3, 1
    loop:
        faa r4, r1, r3
        addi r2, r2, -1
        bne r2, r0, loop
        halt
        ",
    )
    .unwrap();
    let mut b = MachineBuilder::new(MachineConfig::with_nodes(PROCS));
    b.register_sync(
        COUNTER,
        SyncConfig {
            policy,
            ..Default::default()
        },
    );
    for _ in 0..PROCS {
        b.add_program(
            Cpu::new(prog.clone())
                .with_reg(Reg(1), COUNTER.as_u64())
                .with_reg(Reg(2), ITERS),
        );
    }
    let mut m = b.build();
    m.run(Cycle::new(1_000_000_000)).unwrap();
    m
}

fn run_state_machine(policy: SyncPolicy) -> Machine {
    let mut b = MachineBuilder::new(MachineConfig::with_nodes(PROCS));
    b.register_sync(
        COUNTER,
        SyncConfig {
            policy,
            ..Default::default()
        },
    );
    for _ in 0..PROCS {
        let mut left = ITERS;
        b.add_program(move |ctx: &mut ProcCtx<'_>| {
            if ctx.last.is_some() {
                left -= 1;
            }
            if left == 0 {
                Action::Done
            } else {
                Action::Op(MemOp::FetchPhi {
                    addr: COUNTER,
                    op: PhiOp::Add(1),
                })
            }
        });
    }
    let mut m = b.build();
    m.run(Cycle::new(1_000_000_000)).unwrap();
    m
}

#[test]
fn both_front_ends_agree_on_memory_behaviour() {
    for policy in SyncPolicy::ALL {
        let asm = run_assembly(policy);
        let sm = run_state_machine(policy);

        // Exactness: both count to the same total.
        assert_eq!(asm.read_word(COUNTER), PROCS as u64 * ITERS, "{policy} asm");
        assert_eq!(sm.read_word(COUNTER), PROCS as u64 * ITERS, "{policy} sm");

        // Same number of sync operations.
        assert_eq!(asm.stats().sync_ops, sm.stats().sync_ops, "{policy}");
        // Under UNC every op is exactly one request + one reply, so the
        // message counts must be *identical*. (Under INV/UPD traffic
        // legitimately depends on issue timing — the ALU cycles between
        // the assembly version's ops change how often ownership
        // migrates — so only the semantic invariants apply there.)
        if policy == SyncPolicy::Unc {
            assert_eq!(
                asm.stats().msgs.total_messages(),
                sm.stats().msgs.total_messages(),
                "UNC traffic must be identical across front ends"
            );
            assert_eq!(asm.stats().msgs.chains().mean(), 2.0);
        }
    }
}

#[test]
fn trace_captures_protocol_messages() {
    let prog = assemble("li r3, 1\n faa r4, r1, r3\n halt").unwrap();
    let mut b = MachineBuilder::new(MachineConfig::with_nodes(2));
    b.register_sync(
        COUNTER,
        SyncConfig {
            policy: SyncPolicy::Unc,
            ..Default::default()
        },
    );
    b.add_program(Cpu::new(prog).with_reg(Reg(1), COUNTER.as_u64()));
    b.add_program(|_: &mut ProcCtx<'_>| Action::Done);
    let mut m = b.build();
    m.enable_trace(16);
    m.run(Cycle::new(1_000_000)).unwrap();
    let entries: Vec<&str> = m.trace().collect();
    assert_eq!(entries.len(), 2, "one request, one reply: {entries:?}");
    assert!(entries[0].contains("->"));
}
