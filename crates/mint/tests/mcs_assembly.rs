//! The MCS queue lock, written entirely in mini-MINT assembly and run
//! on the simulated machine — the strongest completeness test of the
//! ISA: pointer manipulation through registers, an atomic swap for
//! enqueue, a CAS for release, local spinning with delay, and a
//! lock-protected critical section.

use dsm_machine::MachineBuilder;
use dsm_mint::{assemble, Cpu, Reg};
use dsm_protocol::{SyncConfig, SyncPolicy};
use dsm_sim::{Addr, Cycle, MachineConfig};

/// Register contract:
/// * `r1`  — &tail (the lock word; synchronization variable)
/// * `r8`  — &counter (ordinary shared data)
/// * `r12` — &my_qnode.next (doubles as this node's id)
/// * `r2`  — iterations
const MCS_COUNTER: &str = "
    addi r13, r12, 8        ; &my_qnode.locked
outer:
    ; ---------- acquire ----------
    st   r0, r12            ; my.next = nil
    li   r4, 1
    st   r4, r13            ; my.locked = true
    fas  r5, r1, r12        ; pred = swap(tail, me)
    beq  r5, r0, locked     ; queue was empty: lock is ours
    st   r12, r5            ; pred->next = me
spin:
    ld   r6, r13
    beq  r6, r0, locked     ; predecessor handed over
    delayi 4
    j    spin
locked:
    ; ---------- critical section ----------
    ld   r7, r8
    addi r7, r7, 1
    st   r7, r8             ; counter += 1
    ; ---------- release ----------
    ld   r6, r12            ; do I have a successor?
    bne  r6, r0, handoff
    cas  r9, r1, r12, r0    ; try tail: me -> nil
    beq  r9, r12, done      ; nobody enqueued: done
wait_next:
    ld   r6, r12            ; a successor is linking itself
    bne  r6, r0, handoff
    delayi 4
    j    wait_next
handoff:
    addi r10, r6, 8         ; &next->locked
    st   r0, r10            ; next->locked = false
done:
    addi r2, r2, -1
    bne  r2, r0, outer
    halt
";

#[test]
fn assembly_mcs_lock_counter_is_exact() {
    let tail = Addr::new(0x40);
    let counter = Addr::new(0x80);
    let prog = assemble(MCS_COUNTER).expect("MCS assembles");

    for policy in [SyncPolicy::Inv, SyncPolicy::Unc] {
        let nodes = 8u32;
        let iters = 20u64;
        let mut b = MachineBuilder::new(MachineConfig::with_nodes(nodes));
        b.register_sync(
            tail,
            SyncConfig {
                policy,
                ..Default::default()
            },
        );
        for p in 0..nodes {
            // Each CPU's qnode on its own line, well away from the rest.
            let qnode = 0x1000 + p as u64 * 64;
            b.add_program(
                Cpu::new(prog.clone())
                    .with_reg(Reg(1), tail.as_u64())
                    .with_reg(Reg(8), counter.as_u64())
                    .with_reg(Reg(12), qnode)
                    .with_reg(Reg(2), iters),
            );
        }
        let mut m = b.build();
        m.run(Cycle::new(10_000_000_000)).expect("completes");
        m.validate_coherence().unwrap();
        assert_eq!(
            m.read_word(counter),
            nodes as u64 * iters,
            "{policy}: MCS-in-assembly lost an update"
        );
        assert_eq!(m.read_word(tail), 0, "{policy}: queue fully drained");
    }
}

#[test]
fn assembly_mcs_is_fifo_under_load() {
    // With heavy contention the MCS queue hands the lock off in FIFO
    // order: total throughput is one critical section at a time, and
    // the counter is still exact.
    let tail = Addr::new(0x40);
    let counter = Addr::new(0x80);
    let prog = assemble(MCS_COUNTER).unwrap();
    let nodes = 16u32;
    let iters = 10u64;
    let mut b = MachineBuilder::new(MachineConfig::with_nodes(nodes));
    b.register_sync(
        tail,
        SyncConfig {
            policy: SyncPolicy::Inv,
            ..Default::default()
        },
    );
    for p in 0..nodes {
        b.add_program(
            Cpu::new(prog.clone())
                .with_reg(Reg(1), tail.as_u64())
                .with_reg(Reg(8), counter.as_u64())
                .with_reg(Reg(12), 0x1000 + p as u64 * 64)
                .with_reg(Reg(2), iters),
        );
    }
    let mut m = b.build();
    m.run(Cycle::new(10_000_000_000)).unwrap();
    assert_eq!(m.read_word(counter), nodes as u64 * iters);
}
