//! Address-space configuration: which lines are synchronization lines
//! and which policy/variant applies to them.

use crate::types::SyncConfig;
use dsm_sim::{Addr, LineAddr};
use std::collections::HashMap;

/// Maps cache lines to their synchronization configuration.
///
/// Lines without an entry are ordinary data and use the base
/// write-invalidate protocol (as in the paper: "the base cache
/// coherence protocol — used for all data not accessed by atomic
/// primitives in all experiments — is a write-invalidate protocol").
///
/// # Example
///
/// ```
/// use dsm_protocol::{AddressMap, SyncConfig, SyncPolicy};
/// use dsm_sim::Addr;
///
/// let mut map = AddressMap::new(32);
/// let counter = Addr::new(0x1000);
/// map.register(counter, SyncConfig { policy: SyncPolicy::Unc, ..Default::default() });
/// assert_eq!(map.config_for(counter).policy, SyncPolicy::Unc);
/// assert!(map.is_sync(counter));
/// assert!(!map.is_sync(Addr::new(0x2000)));
/// ```
#[derive(Debug, Clone)]
pub struct AddressMap {
    line_size: u64,
    sync: HashMap<LineAddr, SyncConfig>,
}

impl AddressMap {
    /// Creates an empty map for a machine with `line_size`-byte lines.
    pub fn new(line_size: u64) -> Self {
        AddressMap {
            line_size,
            sync: HashMap::new(),
        }
    }

    /// The line size this map was built for.
    pub fn line_size(&self) -> u64 {
        self.line_size
    }

    /// Marks the line containing `addr` as a synchronization line with
    /// the given configuration.
    ///
    /// Registering the same line twice replaces the configuration (the
    /// whole line shares one policy).
    pub fn register(&mut self, addr: Addr, config: SyncConfig) {
        self.sync.insert(addr.line(self.line_size), config);
    }

    /// The configuration for the line containing `addr` (default
    /// [`SyncConfig`] — base INV — if unregistered).
    pub fn config_for(&self, addr: Addr) -> SyncConfig {
        self.config_for_line(addr.line(self.line_size))
    }

    /// The configuration for `line`.
    pub fn config_for_line(&self, line: LineAddr) -> SyncConfig {
        self.sync.get(&line).copied().unwrap_or_default()
    }

    /// `true` if the line containing `addr` was registered as a
    /// synchronization line.
    pub fn is_sync(&self, addr: Addr) -> bool {
        self.sync.contains_key(&addr.line(self.line_size))
    }

    /// `true` if `line` was registered as a synchronization line.
    pub fn is_sync_line(&self, line: LineAddr) -> bool {
        self.sync.contains_key(&line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::SyncPolicy;

    #[test]
    fn whole_line_shares_the_config() {
        let mut m = AddressMap::new(32);
        m.register(
            Addr::new(0x100),
            SyncConfig {
                policy: SyncPolicy::Upd,
                ..Default::default()
            },
        );
        // Another word in the same 32-byte line.
        assert_eq!(m.config_for(Addr::new(0x118)).policy, SyncPolicy::Upd);
        // The next line is unaffected.
        assert_eq!(m.config_for(Addr::new(0x120)).policy, SyncPolicy::Inv);
        assert!(!m.is_sync(Addr::new(0x120)));
    }

    #[test]
    fn reregistering_replaces() {
        let mut m = AddressMap::new(32);
        let a = Addr::new(0);
        m.register(
            a,
            SyncConfig {
                policy: SyncPolicy::Unc,
                ..Default::default()
            },
        );
        m.register(
            a,
            SyncConfig {
                policy: SyncPolicy::Inv,
                ..Default::default()
            },
        );
        assert_eq!(m.config_for(a).policy, SyncPolicy::Inv);
    }

    #[test]
    fn default_for_unregistered_is_base_inv() {
        let m = AddressMap::new(32);
        let c = m.config_for(Addr::new(0x40));
        assert_eq!(c.policy, SyncPolicy::Inv);
        assert!(!m.is_sync_line(LineAddr::new(2)));
    }
}
