//! Address-space configuration: which lines are synchronization lines
//! and which policy/variant applies to them.

use crate::types::SyncConfig;
use dsm_sim::StableHashMap;
use dsm_sim::{Addr, LineAddr};

/// Maps cache lines to their synchronization configuration.
///
/// Lines without an entry are ordinary data and use the base
/// write-invalidate protocol (as in the paper: "the base cache
/// coherence protocol — used for all data not accessed by atomic
/// primitives in all experiments — is a write-invalidate protocol").
///
/// # Example
///
/// ```
/// use dsm_protocol::{AddressMap, SyncConfig, SyncPolicy};
/// use dsm_sim::Addr;
///
/// let mut map = AddressMap::new(32);
/// let counter = Addr::new(0x1000);
/// map.register(counter, SyncConfig { policy: SyncPolicy::Unc, ..Default::default() });
/// assert_eq!(map.config_for(counter).policy, SyncPolicy::Unc);
/// assert!(map.is_sync(counter));
/// assert!(!map.is_sync(Addr::new(0x2000)));
/// ```
#[derive(Debug, Clone)]
pub struct AddressMap {
    line_size: u64,
    sync: StableHashMap<LineAddr, SyncConfig>,
    /// Inclusive line-number bounds of all registered sync lines
    /// (`lo > hi` when none). Workloads register a handful of sync
    /// lines but probe this map on *every* memory operation, so the
    /// overwhelmingly common data-address case must answer with two
    /// comparisons, not a hash lookup.
    lo: LineAddr,
    hi: LineAddr,
}

impl AddressMap {
    /// Creates an empty map for a machine with `line_size`-byte lines.
    pub fn new(line_size: u64) -> Self {
        AddressMap {
            line_size,
            sync: StableHashMap::default(),
            lo: LineAddr::new(u64::MAX),
            hi: LineAddr::new(0),
        }
    }

    /// The line size this map was built for.
    pub fn line_size(&self) -> u64 {
        self.line_size
    }

    /// Marks the line containing `addr` as a synchronization line with
    /// the given configuration.
    ///
    /// Registering the same line twice replaces the configuration (the
    /// whole line shares one policy).
    pub fn register(&mut self, addr: Addr, config: SyncConfig) {
        let line = addr.line(self.line_size);
        self.lo = self.lo.min(line);
        self.hi = self.hi.max(line);
        self.sync.insert(line, config);
    }

    /// Turns on home-node atomics for every registered INV-policy line
    /// (the `DSM_PROTO=hna` machine-wide override). UNC/UPD lines
    /// already execute atomics at memory and are left untouched.
    /// Returns the number of lines flipped.
    pub fn enable_home_atomics(&mut self) -> usize {
        let mut flipped = 0;
        for cfg in self.sync.values_mut() {
            if cfg.policy == crate::types::SyncPolicy::Inv && !cfg.home_atomics {
                cfg.home_atomics = true;
                flipped += 1;
            }
        }
        flipped
    }

    /// `true` if `line` is outside the range any sync line occupies.
    #[inline]
    fn out_of_range(&self, line: LineAddr) -> bool {
        line < self.lo || line > self.hi
    }

    /// The configuration for the line containing `addr` (default
    /// [`SyncConfig`] — base INV — if unregistered).
    pub fn config_for(&self, addr: Addr) -> SyncConfig {
        self.config_for_line(addr.line(self.line_size))
    }

    /// The configuration for `line`.
    pub fn config_for_line(&self, line: LineAddr) -> SyncConfig {
        if self.out_of_range(line) {
            return SyncConfig::default();
        }
        self.sync.get(&line).copied().unwrap_or_default()
    }

    /// The configuration for the line containing `addr`, or `None` if
    /// the line was never registered (ordinary data). One lookup
    /// answers both "is this a sync line?" and "with what config?",
    /// which the machine's issue path asks about every operation.
    pub fn sync_config_for(&self, addr: Addr) -> Option<SyncConfig> {
        let line = addr.line(self.line_size);
        if self.out_of_range(line) {
            return None;
        }
        self.sync.get(&line).copied()
    }

    /// `true` if the line containing `addr` was registered as a
    /// synchronization line.
    pub fn is_sync(&self, addr: Addr) -> bool {
        self.is_sync_line(addr.line(self.line_size))
    }

    /// `true` if `line` was registered as a synchronization line.
    pub fn is_sync_line(&self, line: LineAddr) -> bool {
        !self.out_of_range(line) && self.sync.contains_key(&line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::SyncPolicy;

    #[test]
    fn whole_line_shares_the_config() {
        let mut m = AddressMap::new(32);
        m.register(
            Addr::new(0x100),
            SyncConfig {
                policy: SyncPolicy::Upd,
                ..Default::default()
            },
        );
        // Another word in the same 32-byte line.
        assert_eq!(m.config_for(Addr::new(0x118)).policy, SyncPolicy::Upd);
        // The next line is unaffected.
        assert_eq!(m.config_for(Addr::new(0x120)).policy, SyncPolicy::Inv);
        assert!(!m.is_sync(Addr::new(0x120)));
    }

    #[test]
    fn reregistering_replaces() {
        let mut m = AddressMap::new(32);
        let a = Addr::new(0);
        m.register(
            a,
            SyncConfig {
                policy: SyncPolicy::Unc,
                ..Default::default()
            },
        );
        m.register(
            a,
            SyncConfig {
                policy: SyncPolicy::Inv,
                ..Default::default()
            },
        );
        assert_eq!(m.config_for(a).policy, SyncPolicy::Inv);
    }

    #[test]
    fn default_for_unregistered_is_base_inv() {
        let m = AddressMap::new(32);
        let c = m.config_for(Addr::new(0x40));
        assert_eq!(c.policy, SyncPolicy::Inv);
        assert!(!m.is_sync_line(LineAddr::new(2)));
    }
}
