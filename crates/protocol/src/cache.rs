//! The per-node processor cache.

use crate::data::LineData;
use dsm_sim::{CacheParams, LineAddr};

/// Stable coherence state of a cached line (invalid lines are absent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheState {
    /// Read-only copy; other caches may also hold the line.
    Shared,
    /// The only cached copy; may be dirty with respect to memory.
    Exclusive,
}

/// A resident cache line.
#[derive(Debug, Clone)]
pub struct CacheLine {
    /// Which line this is.
    pub line: LineAddr,
    /// Coherence state.
    pub state: CacheState,
    /// Contents.
    pub data: LineData,
    lru: u64,
}

/// A line displaced by [`Cache::insert`].
#[derive(Debug, Clone)]
pub struct Evicted {
    /// Which line was displaced.
    pub line: LineAddr,
    /// Its state at eviction.
    pub state: CacheState,
    /// Its contents (needed for the write-back if it was exclusive).
    pub data: LineData,
}

/// A set-associative, LRU-replacement cache.
///
/// # Example
///
/// ```
/// use dsm_protocol::{Cache, CacheState, LineData};
/// use dsm_sim::{CacheParams, LineAddr};
///
/// let mut c = Cache::new(CacheParams { sets: 2, ways: 1 });
/// c.insert(LineAddr::new(0), CacheState::Shared, LineData::zeroed(32));
/// assert_eq!(c.state(LineAddr::new(0)), Some(CacheState::Shared));
/// // Line 2 maps to the same set (2 % 2 == 0) and evicts line 0.
/// let ev = c.insert(LineAddr::new(2), CacheState::Exclusive, LineData::zeroed(32));
/// assert_eq!(ev.unwrap().line, LineAddr::new(0));
/// assert_eq!(c.state(LineAddr::new(0)), None);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    sets: Vec<Vec<CacheLine>>,
    ways: usize,
    tick: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (see [`CacheParams::validate`]).
    pub fn new(params: CacheParams) -> Self {
        params.validate().expect("invalid cache geometry");
        Cache {
            sets: vec![Vec::new(); params.sets],
            ways: params.ways,
            tick: 0,
        }
    }

    fn set_index(&self, line: LineAddr) -> usize {
        let n = self.sets.len() as u64;
        // Set counts are powers of two in every configuration in use;
        // masking avoids a hardware modulo on each cache probe. The
        // fallback keeps odd set counts (tests) working.
        if n.is_power_of_two() {
            (line.number() & (n - 1)) as usize
        } else {
            (line.number() % n) as usize
        }
    }

    /// Returns the state of `line`, or `None` if not resident.
    pub fn state(&self, line: LineAddr) -> Option<CacheState> {
        let set = &self.sets[self.set_index(line)];
        set.iter().find(|l| l.line == line).map(|l| l.state)
    }

    /// Returns the resident line, updating its LRU position.
    pub fn get_mut(&mut self, line: LineAddr) -> Option<&mut CacheLine> {
        let idx = self.set_index(line);
        let set = &mut self.sets[idx];
        let pos = set.iter().position(|l| l.line == line)?;
        // Tick only on a hit, so a miss-probe leaves LRU state (and
        // therefore future eviction choices) exactly as if it never
        // happened — callers may probe speculatively.
        self.tick += 1;
        // Move the hit line to slot 0: processors touch the same line
        // repeatedly (sequential word accesses), so keeping the MRU
        // line first makes the common re-probe a single tag compare.
        // Set order carries no meaning — residency is keyed by tag and
        // eviction by the `lru` stamps — so the swap is unobservable.
        if pos != 0 {
            set.swap(0, pos);
        }
        let l = &mut set[0];
        l.lru = self.tick;
        Some(l)
    }

    /// Returns the resident line without touching LRU state.
    pub fn peek(&self, line: LineAddr) -> Option<&CacheLine> {
        self.sets[self.set_index(line)]
            .iter()
            .find(|l| l.line == line)
    }

    /// Inserts (or overwrites) `line`, evicting the LRU line of a full
    /// set. Returns the displaced line, if any.
    pub fn insert(&mut self, line: LineAddr, state: CacheState, data: LineData) -> Option<Evicted> {
        self.tick += 1;
        let tick = self.tick;
        let ways = self.ways;
        let idx = self.set_index(line);
        let set = &mut self.sets[idx];
        if let Some(l) = set.iter_mut().find(|l| l.line == line) {
            l.state = state;
            l.data = data;
            l.lru = tick;
            return None;
        }
        let evicted = if set.len() >= ways {
            let (victim_idx, _) = set
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.lru)
                .expect("set is non-empty");
            let victim = set.swap_remove(victim_idx);
            Some(Evicted {
                line: victim.line,
                state: victim.state,
                data: victim.data,
            })
        } else {
            None
        };
        set.push(CacheLine {
            line,
            state,
            data,
            lru: tick,
        });
        evicted
    }

    /// Removes `line` from the cache, returning it if it was resident.
    pub fn remove(&mut self, line: LineAddr) -> Option<CacheLine> {
        let idx = self.set_index(line);
        let set = &mut self.sets[idx];
        let pos = set.iter().position(|l| l.line == line)?;
        Some(set.swap_remove(pos))
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// `true` if no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over all resident lines.
    pub fn iter(&self) -> impl Iterator<Item = &CacheLine> {
        self.sets.iter().flatten()
    }

    /// Folds the full cache state — geometry, LRU clock, and every
    /// resident line with its LRU stamp — into a checkpoint digest.
    /// Storage order within a set is hashed as-is: it evolves
    /// deterministically (MRU swap and `swap_remove` only), so replayed
    /// runs reproduce it exactly.
    pub fn digest(&self, h: &mut dsm_sim::StableHasher) {
        h.write_usize(self.ways);
        h.write_u64(self.tick);
        h.write_usize(self.sets.len());
        for set in &self.sets {
            h.write_usize(set.len());
            for l in set {
                h.write_u64(l.line.number());
                h.write_u8(match l.state {
                    CacheState::Shared => 0,
                    CacheState::Exclusive => 1,
                });
                l.data.digest(h);
                h.write_u64(l.lru);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(sets: usize, ways: usize) -> Cache {
        Cache::new(CacheParams { sets, ways })
    }

    fn data(v: u64) -> LineData {
        let mut d = LineData::zeroed(32);
        d.set_word(dsm_sim::Addr::new(0), v);
        d
    }

    #[test]
    fn insert_lookup_remove() {
        let mut c = cache(4, 2);
        assert!(c.is_empty());
        c.insert(LineAddr::new(5), CacheState::Shared, data(9));
        assert_eq!(c.state(LineAddr::new(5)), Some(CacheState::Shared));
        assert_eq!(
            c.peek(LineAddr::new(5))
                .unwrap()
                .data
                .word(dsm_sim::Addr::new(0)),
            9
        );
        let removed = c.remove(LineAddr::new(5)).unwrap();
        assert_eq!(removed.line, LineAddr::new(5));
        assert!(c.is_empty());
        assert!(c.remove(LineAddr::new(5)).is_none());
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut c = cache(2, 1);
        c.insert(LineAddr::new(0), CacheState::Shared, data(1));
        let ev = c.insert(LineAddr::new(0), CacheState::Exclusive, data(2));
        assert!(ev.is_none());
        assert_eq!(c.state(LineAddr::new(0)), Some(CacheState::Exclusive));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = cache(1, 2);
        c.insert(LineAddr::new(0), CacheState::Shared, data(0));
        c.insert(LineAddr::new(1), CacheState::Shared, data(1));
        // Touch line 0 so line 1 becomes LRU.
        c.get_mut(LineAddr::new(0));
        let ev = c
            .insert(LineAddr::new(2), CacheState::Shared, data(2))
            .unwrap();
        assert_eq!(ev.line, LineAddr::new(1));
        assert!(c.state(LineAddr::new(0)).is_some());
        assert!(c.state(LineAddr::new(2)).is_some());
    }

    #[test]
    fn eviction_returns_dirty_state_and_data() {
        let mut c = cache(1, 1);
        c.insert(LineAddr::new(0), CacheState::Exclusive, data(42));
        let ev = c
            .insert(LineAddr::new(1), CacheState::Shared, data(0))
            .unwrap();
        assert_eq!(ev.state, CacheState::Exclusive);
        assert_eq!(ev.data.word(dsm_sim::Addr::new(0)), 42);
    }

    #[test]
    fn sets_are_independent() {
        let mut c = cache(2, 1);
        c.insert(LineAddr::new(0), CacheState::Shared, data(0)); // set 0
        let ev = c.insert(LineAddr::new(1), CacheState::Shared, data(1)); // set 1
        assert!(ev.is_none());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn get_mut_allows_state_transitions() {
        let mut c = cache(4, 2);
        c.insert(LineAddr::new(3), CacheState::Shared, data(7));
        let l = c.get_mut(LineAddr::new(3)).unwrap();
        l.state = CacheState::Exclusive;
        l.data.set_word(dsm_sim::Addr::new(8), 99);
        assert_eq!(c.state(LineAddr::new(3)), Some(CacheState::Exclusive));
        assert_eq!(
            c.peek(LineAddr::new(3))
                .unwrap()
                .data
                .word(dsm_sim::Addr::new(8)),
            99
        );
    }

    #[test]
    fn iter_visits_all_lines() {
        let mut c = cache(4, 4);
        for i in 0..6 {
            c.insert(LineAddr::new(i), CacheState::Shared, data(i));
        }
        let mut lines: Vec<u64> = c.iter().map(|l| l.line.number()).collect();
        lines.sort_unstable();
        assert_eq!(lines, vec![0, 1, 2, 3, 4, 5]);
    }
}
