//! The per-node cache controller: local execution of atomic primitives
//! (INV policy), miss handling, and responses to interventions.
//!
//! Each processor is blocking: it has at most one outstanding memory
//! operation, tracked by a single MSHR. The controller also answers
//! invalidations, updates and forwarded interventions at any time.

use crate::addrmap::AddressMap;
use crate::cache::{Cache, CacheLine, CacheState};
use crate::data::LineData;
use crate::error::{ProtocolError, ProtocolErrorKind};
use crate::home::Outbox;
use crate::msg::{MemAtomicOp, Msg, MsgKind};
use crate::reservation::CacheReservation;
use crate::types::{CasVariant, MemOp, OpResult, SyncConfig, SyncPolicy};
use dsm_sim::{Addr, CacheParams, LineAddr, NodeId, ProcId};

/// The completion record of one processor operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpOutcome {
    /// The result to deliver to the processor.
    pub result: OpResult,
    /// Serialized network messages on the operation's critical path
    /// (0 when the operation completed in the cache).
    pub chain: u32,
    /// `true` if the operation completed without any network traffic.
    pub local: bool,
}

impl OpOutcome {
    /// Folds the outcome into a checkpoint digest.
    pub fn digest(&self, h: &mut dsm_sim::StableHasher) {
        self.result.digest(h);
        h.write_u32(self.chain);
        h.write_u8(self.local as u8);
    }
}

/// The single miss-status holding register of a (blocking) processor.
#[derive(Debug, Clone)]
struct Mshr {
    op: MemOp,
    line: LineAddr,
    reply_seen: bool,
    acks_needed: u32,
    acks_got: u32,
    chain: u32,
    /// Result staged by a reply that decides the outcome itself
    /// (CasGrant/CasFail/AtomicReply/ScInvReply).
    staged: Option<OpResult>,
    /// Interventions that arrived while acknowledgments were still
    /// outstanding; served right after completion.
    deferred: Vec<Msg>,
}

impl Mshr {
    /// Folds the in-flight miss record into a checkpoint digest.
    fn digest(&self, h: &mut dsm_sim::StableHasher) {
        self.op.digest(h);
        h.write_u64(self.line.number());
        h.write_u8(self.reply_seen as u8);
        h.write_u32(self.acks_needed);
        h.write_u32(self.acks_got);
        h.write_u32(self.chain);
        match &self.staged {
            Some(r) => {
                h.write_u8(1);
                r.digest(h);
            }
            None => h.write_u8(0),
        }
        h.write_usize(self.deferred.len());
        for m in &self.deferred {
            m.digest(h);
        }
    }
}

/// The cache-controller engine of one node.
///
/// # Example
///
/// ```
/// use dsm_protocol::{AddressMap, CacheNode, MemOp, Outbox};
/// use dsm_sim::{Addr, CacheParams, NodeId, ProcId};
///
/// let map = AddressMap::new(32);
/// let mut cc = CacheNode::new(NodeId::new(1), 32, CacheParams::default());
/// cc.set_nodes(4);
/// let mut out = Outbox::new();
/// // A load miss emits a GetS to the line's home node.
/// let done = cc
///     .start_op(MemOp::Load { addr: Addr::new(0x40) }, &map, &mut out)
///     .unwrap();
/// assert!(done.is_none());
/// assert_eq!(out.msgs.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct CacheNode {
    node: NodeId,
    proc: ProcId,
    line_size: u64,
    nodes: u32,
    cache: Cache,
    resv: CacheReservation,
    mshr: Option<Mshr>,
}

impl CacheNode {
    /// Creates the cache controller of `node` (with the co-located
    /// processor of the same index).
    pub fn new(node: NodeId, line_size: u64, cache: CacheParams) -> Self {
        CacheNode {
            node,
            proc: ProcId::new(node.as_u32()),
            line_size,
            nodes: 0, // set via set_nodes before first use
            cache: Cache::new(cache),
            resv: CacheReservation::default(),
            mshr: None,
        }
    }

    /// Sets the machine size (used to compute home nodes). Must be
    /// called once before issuing operations; [`CacheNode::new`] leaves
    /// it unset so construction stays infallible.
    pub fn set_nodes(&mut self, nodes: u32) {
        self.nodes = nodes;
    }

    /// The cache state of `line` (for tests and invariant sweeps).
    pub fn cache_state(&self, line: LineAddr) -> Option<CacheState> {
        self.cache.state(line)
    }

    /// Reads a word from the local cache, if the line is resident.
    pub fn peek_word(&self, addr: Addr) -> Option<crate::types::Value> {
        self.cache
            .peek(addr.line(self.line_size))
            .map(|l| l.data.word(addr))
    }

    /// `true` if an operation is outstanding.
    pub fn busy(&self) -> bool {
        self.mshr.is_some()
    }

    /// Iterates over resident lines (for invariant sweeps).
    pub fn cached_lines(&self) -> impl Iterator<Item = (LineAddr, CacheState)> + '_ {
        self.cache.iter().map(|l| (l.line, l.state))
    }

    /// The line reserved by the local processor's last LL, if any (for
    /// invariant sweeps).
    pub fn reserved_line(&self) -> Option<LineAddr> {
        self.resv.line()
    }

    /// The line the outstanding operation targets, if any.
    pub fn pending_line(&self) -> Option<LineAddr> {
        self.mshr.as_ref().map(|m| m.line)
    }

    /// MSHR progress of the outstanding operation, if any:
    /// `(reply_seen, acks_got, acks_needed)` (for invariant sweeps).
    pub fn mshr_progress(&self) -> Option<(bool, u32, u32)> {
        self.mshr
            .as_ref()
            .map(|m| (m.reply_seen, m.acks_got, m.acks_needed))
    }

    /// Fault-injection hook: displaces one resident line as if evicted
    /// by capacity pressure. Prefers an exclusive victim (exercising the
    /// write-back and intervention-NAK races) and never touches the line
    /// of the outstanding operation. Exclusive victims are written back;
    /// shared victims are dropped silently, exactly as
    /// [`Cache::insert`]-driven displacement would. Returns the evicted
    /// line, or `None` if no line was eligible.
    pub fn inject_evict(&mut self, out: &mut Outbox) -> Option<LineAddr> {
        let skip = self.mshr.as_ref().map(|m| m.line);
        let mut victim: Option<LineAddr> = None;
        for (line, state) in self.cached_lines() {
            if Some(line) == skip {
                continue;
            }
            if state == CacheState::Exclusive {
                victim = Some(line);
                break;
            }
            if victim.is_none() {
                victim = Some(line);
            }
        }
        let line = victim?;
        self.resv.invalidate_line(line);
        let l = self.cache.remove(line).expect("victim is resident");
        if l.state == CacheState::Exclusive {
            out.send(Msg {
                src: self.node,
                dst: self.home_of(line),
                line,
                addr: line.base(self.line_size),
                proc: self.proc,
                chain: 1,
                kind: MsgKind::WriteBack { data: l.data },
            });
        }
        Some(line)
    }

    /// Test-only corruption hook: illegally promotes a shared line to
    /// exclusive without telling the directory, manufacturing a
    /// single-writer violation for the paranoid invariant checker to
    /// catch. Returns `true` if the line was resident and shared.
    #[doc(hidden)]
    pub fn corrupt_promote_shared(&mut self, line: LineAddr) -> bool {
        match self.cache.get_mut(line) {
            Some(l) if l.state == CacheState::Shared => {
                l.state = CacheState::Exclusive;
                true
            }
            _ => false,
        }
    }

    /// Folds the controller's full state — identity, cache contents,
    /// LL reservation register, and outstanding MSHR — into a
    /// checkpoint digest.
    pub fn digest(&self, h: &mut dsm_sim::StableHasher) {
        h.write_u32(self.node.as_u32());
        h.write_u32(self.proc.as_u32());
        h.write_u64(self.line_size);
        h.write_u32(self.nodes);
        self.cache.digest(h);
        self.resv.digest(h);
        match &self.mshr {
            Some(m) => {
                h.write_u8(1);
                m.digest(h);
            }
            None => h.write_u8(0),
        }
    }

    fn err(&self, kind: ProtocolErrorKind, line: LineAddr, detail: String) -> ProtocolError {
        ProtocolError::new(kind, detail).on_line(line).at(self.node)
    }

    /// The resident line `line`, or a
    /// [`MissingLine`](ProtocolErrorKind::MissingLine) error carrying
    /// `detail`.
    fn resident(&mut self, line: LineAddr, detail: &str) -> Result<&mut CacheLine, ProtocolError> {
        let node = self.node;
        self.cache.get_mut(line).ok_or_else(|| {
            ProtocolError::new(ProtocolErrorKind::MissingLine, detail)
                .on_line(line)
                .at(node)
        })
    }

    fn home_of(&self, line: LineAddr) -> NodeId {
        debug_assert!(self.nodes > 0, "set_nodes() was not called");
        line.home(self.nodes)
    }

    fn request(&self, addr: Addr, kind: MsgKind) -> Msg {
        let line = addr.line(self.line_size);
        Msg {
            src: self.node,
            dst: self.home_of(line),
            line,
            addr,
            proc: self.proc,
            chain: 1,
            kind,
        }
    }

    fn local(result: OpResult) -> Option<OpOutcome> {
        Some(OpOutcome {
            result,
            chain: 0,
            local: true,
        })
    }

    /// Installs a line, emitting a write-back if a dirty line is
    /// displaced. Silent for displaced shared lines (the directory keeps
    /// a stale sharer; the eventual spurious invalidation is harmless).
    fn install(&mut self, line: LineAddr, state: CacheState, data: LineData, out: &mut Outbox) {
        if let Some(ev) = self.cache.insert(line, state, data) {
            self.resv.invalidate_line(ev.line);
            if ev.state == CacheState::Exclusive {
                out.send(Msg {
                    src: self.node,
                    dst: self.home_of(ev.line),
                    line: ev.line,
                    addr: ev.line.base(self.line_size),
                    proc: self.proc,
                    chain: 1,
                    kind: MsgKind::WriteBack { data: ev.data },
                });
            }
        }
    }

    fn alloc_mshr(&mut self, op: MemOp) {
        debug_assert!(
            self.mshr.is_none(),
            "processor issued a second outstanding op"
        );
        self.mshr = Some(Mshr {
            op,
            line: op.addr().line(self.line_size),
            reply_seen: false,
            acks_needed: 0,
            acks_got: 0,
            chain: 0,
            staged: None,
            deferred: Vec::new(),
        });
    }

    /// Begins a processor operation. Returns the outcome if it completed
    /// locally; otherwise a request was emitted and the processor blocks
    /// until [`handle`](Self::handle) reports completion.
    ///
    /// # Errors
    ///
    /// Fails with a [`ProtocolError`] if an operation is already
    /// outstanding or the controller reaches a state the protocol
    /// forbids.
    pub fn start_op(
        &mut self,
        op: MemOp,
        map: &AddressMap,
        out: &mut Outbox,
    ) -> Result<Option<OpOutcome>, ProtocolError> {
        self.start_op_with(op, map.config_for(op.addr()), out)
    }

    /// [`start_op`](Self::start_op) with the line's configuration
    /// already resolved, so a caller that had to consult the
    /// [`AddressMap`] anyway does not pay for a second lookup.
    ///
    /// # Errors
    ///
    /// As for [`start_op`](Self::start_op).
    pub fn start_op_with(
        &mut self,
        op: MemOp,
        cfg: SyncConfig,
        out: &mut Outbox,
    ) -> Result<Option<OpOutcome>, ProtocolError> {
        if self.mshr.is_some() {
            return Err(self.err(
                ProtocolErrorKind::DoubleIssue,
                op.addr().line(self.line_size),
                "processor issued a second outstanding op".to_string(),
            ));
        }
        Ok(match cfg.policy {
            SyncPolicy::Unc => self.start_unc(op, out),
            SyncPolicy::Upd => self.start_upd(op, out),
            SyncPolicy::Inv => self.start_inv(op, cfg, out)?,
        })
    }

    fn start_unc(&mut self, op: MemOp, out: &mut Outbox) -> Option<OpOutcome> {
        debug_assert!(
            self.cache.state(op.addr().line(self.line_size)).is_none(),
            "UNC lines must never be cached"
        );
        let mem_op = match op {
            MemOp::DropCopy { .. } => return Self::local(OpResult::Stored),
            MemOp::Load { .. } | MemOp::LoadExclusive { .. } => MemAtomicOp::Load,
            MemOp::Store { value, .. } => MemAtomicOp::Store { value },
            MemOp::FetchPhi { op, .. } => MemAtomicOp::Phi { op },
            MemOp::Cas { expected, new, .. } => MemAtomicOp::Cas { expected, new },
            MemOp::LoadLinked { .. } => MemAtomicOp::Ll,
            MemOp::StoreConditional { value, serial, .. } => MemAtomicOp::Sc { value, serial },
        };
        let msg = self.request(op.addr(), MsgKind::AtomicMem { op: mem_op });
        out.send(msg);
        self.alloc_mshr(op);
        None
    }

    fn start_upd(&mut self, op: MemOp, out: &mut Outbox) -> Option<OpOutcome> {
        let addr = op.addr();
        let line = addr.line(self.line_size);
        match op {
            // `load_exclusive` has no meaning under write-update; it
            // behaves as an ordinary load.
            MemOp::Load { .. } | MemOp::LoadExclusive { .. } => {
                if let Some(l) = self.cache.get_mut(line) {
                    let value = l.data.word(addr);
                    return Self::local(OpResult::Loaded {
                        value,
                        serial: None,
                        reserved: false,
                    });
                }
                let msg = self.request(addr, MsgKind::GetS);
                out.send(msg);
                self.alloc_mshr(op);
                None
            }
            MemOp::DropCopy { .. } => {
                if self.cache.remove(line).is_some() {
                    let msg = self.request(addr, MsgKind::DropShared);
                    out.send(msg);
                }
                Self::local(OpResult::Stored)
            }
            MemOp::Store { value, .. } => {
                let msg = self.request(
                    addr,
                    MsgKind::AtomicMem {
                        op: MemAtomicOp::Store { value },
                    },
                );
                out.send(msg);
                self.alloc_mshr(op);
                None
            }
            MemOp::FetchPhi { op: phi, .. } => {
                let msg = self.request(
                    addr,
                    MsgKind::AtomicMem {
                        op: MemAtomicOp::Phi { op: phi },
                    },
                );
                out.send(msg);
                self.alloc_mshr(op);
                None
            }
            MemOp::Cas { expected, new, .. } => {
                let msg = self.request(
                    addr,
                    MsgKind::AtomicMem {
                        op: MemAtomicOp::Cas { expected, new },
                    },
                );
                out.send(msg);
                self.alloc_mshr(op);
                None
            }
            // "Load_linked requests have to go to memory even if the
            // datum is cached, in order to set the reservation" (§3).
            MemOp::LoadLinked { .. } => {
                let msg = self.request(
                    addr,
                    MsgKind::AtomicMem {
                        op: MemAtomicOp::Ll,
                    },
                );
                out.send(msg);
                self.alloc_mshr(op);
                None
            }
            MemOp::StoreConditional { value, serial, .. } => {
                let msg = self.request(
                    addr,
                    MsgKind::AtomicMem {
                        op: MemAtomicOp::Sc { value, serial },
                    },
                );
                out.send(msg);
                self.alloc_mshr(op);
                None
            }
        }
    }

    fn start_inv(
        &mut self,
        op: MemOp,
        cfg: SyncConfig,
        out: &mut Outbox,
    ) -> Result<Option<OpOutcome>, ProtocolError> {
        let cas = cfg.cas_variant;
        let addr = op.addr();
        let line = addr.line(self.line_size);
        // Home-node atomics: Φ/CAS execute at the home memory without
        // migrating the line. Any local copy is given up first: an
        // exclusive copy carries the current data home via write-back
        // (same-channel FIFO keeps it ahead of the request); a shared
        // copy is dropped silently — the home prunes our sharer bit
        // while serving the operation. Loads, stores and LL/SC below
        // keep their normal INV handling.
        if cfg.home_atomics && matches!(op, MemOp::FetchPhi { .. } | MemOp::Cas { .. }) {
            let mem_op = match op {
                MemOp::FetchPhi { op: phi, .. } => MemAtomicOp::Phi { op: phi },
                MemOp::Cas { expected, new, .. } => MemAtomicOp::Cas { expected, new },
                _ => unreachable!("gated on FetchPhi | Cas"),
            };
            self.resv.invalidate_line(line);
            if let Some(l) = self.cache.remove(line) {
                if l.state == CacheState::Exclusive {
                    let msg = self.request(addr, MsgKind::WriteBack { data: l.data });
                    out.send(msg);
                }
            }
            let msg = self.request(addr, MsgKind::AtomicMem { op: mem_op });
            out.send(msg);
            self.alloc_mshr(op);
            return Ok(None);
        }
        // Loads hit in any state, so one LRU-updating probe suffices —
        // this is the simulator's single most common path. Write-type
        // ops below still pre-check the state: a shared-state hit takes
        // the upgrade-miss path and must leave LRU untouched.
        match op {
            MemOp::Load { .. } => {
                return Ok(if let Some(l) = self.cache.get_mut(line) {
                    let value = l.data.word(addr);
                    Self::local(OpResult::Loaded {
                        value,
                        serial: None,
                        reserved: false,
                    })
                } else {
                    let msg = self.request(addr, MsgKind::GetS);
                    out.send(msg);
                    self.alloc_mshr(op);
                    None
                });
            }
            MemOp::LoadLinked { .. } => {
                return Ok(if let Some(l) = self.cache.get_mut(line) {
                    let value = l.data.word(addr);
                    self.resv.set(line);
                    Self::local(OpResult::Loaded {
                        value,
                        serial: None,
                        reserved: true,
                    })
                } else {
                    let msg = self.request(addr, MsgKind::GetS);
                    out.send(msg);
                    self.alloc_mshr(op);
                    None
                });
            }
            _ => {}
        }
        let state = self.cache.state(line);
        Ok(match op {
            MemOp::Store { value, .. } => match state {
                Some(CacheState::Exclusive) => {
                    self.resident(line, "store hit on an absent line")?
                        .data
                        .set_word(addr, value);
                    Self::local(OpResult::Stored)
                }
                held => self.miss_for_exclusive(op, held.is_some(), out),
            },
            MemOp::LoadExclusive { .. } => match state {
                Some(CacheState::Exclusive) => {
                    let value = self
                        .resident(line, "load_exclusive hit on an absent line")?
                        .data
                        .word(addr);
                    Self::local(OpResult::Loaded {
                        value,
                        serial: None,
                        reserved: false,
                    })
                }
                held => self.miss_for_exclusive(op, held.is_some(), out),
            },
            MemOp::FetchPhi { op: phi, .. } => match state {
                Some(CacheState::Exclusive) => {
                    let l = self.resident(line, "fetch_phi hit on an absent line")?;
                    let old = l.data.word(addr);
                    l.data.set_word(addr, phi.apply(old));
                    Self::local(OpResult::Fetched { old })
                }
                held => self.miss_for_exclusive(op, held.is_some(), out),
            },
            MemOp::Cas { expected, new, .. } => match state {
                Some(CacheState::Exclusive) => {
                    let l = self.resident(line, "CAS hit on an absent line")?;
                    let observed = l.data.word(addr);
                    let success = observed == expected;
                    if success {
                        l.data.set_word(addr, new);
                    }
                    Self::local(OpResult::CasDone { success, observed })
                }
                held => match cas {
                    CasVariant::Plain => self.miss_for_exclusive(op, held.is_some(), out),
                    CasVariant::Deny | CasVariant::Share => {
                        let msg = self.request(
                            addr,
                            MsgKind::CasHome {
                                expected,
                                new,
                                variant: cas,
                            },
                        );
                        out.send(msg);
                        self.alloc_mshr(op);
                        None
                    }
                },
            },
            MemOp::StoreConditional { value, .. } => {
                if !self.resv.valid_for(line) {
                    // Fails locally without any network traffic.
                    return Ok(Self::local(OpResult::ScDone { success: false }));
                }
                self.resv.clear();
                match state {
                    Some(CacheState::Exclusive) => {
                        self.resident(line, "SC hit on an absent line")?
                            .data
                            .set_word(addr, value);
                        Self::local(OpResult::ScDone { success: true })
                    }
                    Some(CacheState::Shared) => {
                        let msg = self.request(addr, MsgKind::ScInv);
                        out.send(msg);
                        self.alloc_mshr(op);
                        None
                    }
                    None => {
                        // A valid reservation implies a resident line
                        // (losing the line clears the reservation).
                        return Err(self.err(
                            ProtocolErrorKind::MissingLine,
                            line,
                            "valid reservation without a resident line".to_string(),
                        ));
                    }
                }
            }
            MemOp::DropCopy { .. } => {
                self.resv.invalidate_line(line);
                if let Some(l) = self.cache.remove(line) {
                    let kind = match l.state {
                        CacheState::Exclusive => MsgKind::WriteBack { data: l.data },
                        CacheState::Shared => MsgKind::DropShared,
                    };
                    let msg = self.request(addr, kind);
                    out.send(msg);
                }
                Self::local(OpResult::Stored)
            }
            MemOp::Load { .. } | MemOp::LoadLinked { .. } => {
                unreachable!("handled by the single-probe fast path above")
            }
        })
    }

    fn miss_for_exclusive(
        &mut self,
        op: MemOp,
        from_shared: bool,
        out: &mut Outbox,
    ) -> Option<OpOutcome> {
        let msg = self.request(op.addr(), MsgKind::GetX { from_shared });
        out.send(msg);
        self.alloc_mshr(op);
        None
    }

    /// Handles an incoming network message. Returns the outcome if it
    /// completed the outstanding processor operation.
    ///
    /// # Errors
    ///
    /// Fails with a [`ProtocolError`] on any message the protocol state
    /// machine cannot legally receive in its current state.
    pub fn handle(
        &mut self,
        msg: Msg,
        out: &mut Outbox,
    ) -> Result<Option<OpOutcome>, ProtocolError> {
        match &msg.kind {
            MsgKind::Inv { .. } | MsgKind::Update { .. } => {
                self.handle_sharer_msg(msg, out)?;
                Ok(None)
            }
            MsgKind::FwdShare { .. } => {
                self.handle_fwd_share(msg, out)?;
                Ok(None)
            }
            MsgKind::FwdGetS | MsgKind::FwdGetX | MsgKind::FwdCas { .. } => {
                // Defer the intervention if we are mid-transaction on
                // this line with the exclusive grant already received but
                // acknowledgments still outstanding.
                if let Some(m) = &mut self.mshr {
                    if m.line == msg.line && m.reply_seen {
                        m.deferred.push(msg);
                        return Ok(None);
                    }
                }
                self.handle_intervention(msg, out)?;
                Ok(None)
            }
            _ => self.handle_reply(msg, out),
        }
    }

    fn handle_sharer_msg(&mut self, msg: Msg, out: &mut Outbox) -> Result<(), ProtocolError> {
        let (requester, ack_kind) = match msg.kind {
            MsgKind::Inv { requester } => {
                self.resv.invalidate_line(msg.line);
                self.cache.remove(msg.line);
                (requester, MsgKind::InvAck)
            }
            MsgKind::Update { data, requester } => {
                if let Some(l) = self.cache.get_mut(msg.line) {
                    debug_assert_eq!(l.state, CacheState::Shared, "UPD lines are never exclusive");
                    l.data = data;
                }
                (requester, MsgKind::UpdAck)
            }
            ref other => {
                return Err(self.err(
                    ProtocolErrorKind::UnexpectedMessage,
                    msg.line,
                    format!("{other:?} is not a sharer message"),
                ))
            }
        };
        out.send(Msg {
            src: self.node,
            dst: requester,
            line: msg.line,
            addr: msg.addr,
            proc: msg.proc,
            chain: msg.chain + 1,
            kind: ack_kind,
        });
        Ok(())
    }

    /// A MESI(F)/hierarchical forward: supply our clean shared copy
    /// directly to the requester (confirming to the home off the
    /// critical path), or NAK if the line was silently evicted.
    fn handle_fwd_share(&mut self, msg: Msg, out: &mut Outbox) -> Result<(), ProtocolError> {
        let MsgKind::FwdShare { requester } = msg.kind else {
            return Err(self.err(
                ProtocolErrorKind::UnexpectedMessage,
                msg.line,
                format!("handle_fwd_share got {:?}", msg.kind),
            ));
        };
        match self.cache.state(msg.line) {
            None => {
                // Shared copies evict silently, so the directory can
                // hold a stale sharer: decline and let memory serve.
                out.send(Msg {
                    src: self.node,
                    dst: msg.src,
                    line: msg.line,
                    addr: msg.addr,
                    proc: msg.proc,
                    chain: msg.chain + 1,
                    kind: MsgKind::FwdNak,
                });
                Ok(())
            }
            Some(CacheState::Shared) => {
                let data = self
                    .cache
                    .peek(msg.line)
                    .expect("state() checked residency")
                    .data
                    .clone();
                // Data leg goes straight to the requester — this is the
                // third (and last) message on its critical path.
                out.send(Msg {
                    src: self.node,
                    dst: requester,
                    line: msg.line,
                    addr: msg.addr,
                    proc: msg.proc,
                    chain: msg.chain + 1,
                    kind: MsgKind::DataS { data },
                });
                // Confirmation back to the home releases the line.
                out.send(Msg {
                    src: self.node,
                    dst: msg.src,
                    line: msg.line,
                    addr: msg.addr,
                    proc: msg.proc,
                    chain: msg.chain + 1,
                    kind: MsgKind::FwdShareAck,
                });
                Ok(())
            }
            Some(state) => Err(self.err(
                ProtocolErrorKind::DirectoryMismatch,
                msg.line,
                format!("FwdShare at a cache holding the line {state:?}"),
            )),
        }
    }

    fn handle_intervention(&mut self, msg: Msg, out: &mut Outbox) -> Result<(), ProtocolError> {
        let node = self.node;
        let reply = |kind: MsgKind| Msg {
            src: node,
            dst: msg.src,
            line: msg.line,
            addr: msg.addr,
            proc: msg.proc,
            chain: msg.chain + 1,
            kind,
        };
        let Some(state) = self.cache.state(msg.line) else {
            // The line left this cache (write-back in flight): NAK.
            out.send(reply(MsgKind::FwdNak));
            return Ok(());
        };
        if state != CacheState::Exclusive {
            return Err(self.err(
                ProtocolErrorKind::DirectoryMismatch,
                msg.line,
                format!(
                    "intervention {:?} at a non-owner (state {state:?})",
                    msg.kind
                ),
            ));
        }
        match msg.kind {
            MsgKind::FwdGetS => {
                let l = self.resident(msg.line, "FwdGetS at an owner without the line")?;
                l.state = CacheState::Shared;
                let data = l.data.clone();
                out.send(reply(MsgKind::SwbData { data }));
            }
            MsgKind::FwdGetX => {
                self.resv.invalidate_line(msg.line);
                let l = self
                    .cache
                    .remove(msg.line)
                    .expect("state() checked residency");
                out.send(reply(MsgKind::XferData { data: l.data }));
            }
            MsgKind::FwdCas {
                expected,
                addr,
                variant,
                ..
            } => {
                let observed = self
                    .cache
                    .peek(msg.line)
                    .expect("state() checked residency")
                    .data
                    .word(addr);
                if observed == expected {
                    self.resv.invalidate_line(msg.line);
                    let l = self
                        .cache
                        .remove(msg.line)
                        .expect("state() checked residency");
                    out.send(reply(MsgKind::XferData { data: l.data }));
                } else {
                    let kept_exclusive = variant == CasVariant::Deny;
                    let l = self.resident(msg.line, "FwdCas at an owner without the line")?;
                    if !kept_exclusive {
                        l.state = CacheState::Shared;
                    }
                    let data = l.data.clone();
                    out.send(reply(MsgKind::OwnerCasFail {
                        observed,
                        data,
                        kept_exclusive,
                    }));
                }
            }
            other => {
                return Err(self.err(
                    ProtocolErrorKind::UnexpectedMessage,
                    msg.line,
                    format!("{other:?} is not an intervention"),
                ))
            }
        }
        Ok(())
    }

    fn handle_reply(
        &mut self,
        msg: Msg,
        out: &mut Outbox,
    ) -> Result<Option<OpOutcome>, ProtocolError> {
        {
            let Some(m) = self.mshr.as_mut() else {
                return Err(self.err(
                    ProtocolErrorKind::MissingRequest,
                    msg.line,
                    format!("reply {:?} without an outstanding op", msg.kind),
                ));
            };
            debug_assert_eq!(m.line, msg.line, "reply for the wrong line");
            m.chain = m.chain.max(msg.chain);
        }
        match msg.kind {
            MsgKind::InvAck | MsgKind::UpdAck => {
                let m = self.mshr.as_mut().expect("checked at entry");
                m.acks_got += 1;
            }
            MsgKind::DataS { data } => {
                self.install(msg.line, CacheState::Shared, data, out);
                let m = self.mshr.as_mut().expect("checked at entry");
                m.reply_seen = true;
            }
            MsgKind::DataX { data, acks } => {
                self.install(msg.line, CacheState::Exclusive, data, out);
                let m = self.mshr.as_mut().expect("checked at entry");
                m.reply_seen = true;
                m.acks_needed += acks;
            }
            MsgKind::UpgradeAck { acks } => {
                let l = self.resident(msg.line, "upgrade of an absent line")?;
                l.state = CacheState::Exclusive;
                let m = self.mshr.as_mut().expect("checked at entry");
                m.reply_seen = true;
                m.acks_needed += acks;
            }
            MsgKind::CasGrant {
                data,
                acks,
                observed,
            } => {
                match data {
                    Some(d) => self.install(msg.line, CacheState::Exclusive, d, out),
                    None => {
                        let l = self.resident(msg.line, "CAS grant without data or copy")?;
                        l.state = CacheState::Exclusive;
                    }
                }
                let m = self.mshr.as_mut().expect("checked at entry");
                m.reply_seen = true;
                m.acks_needed += acks;
                m.staged = Some(OpResult::CasDone {
                    success: true,
                    observed,
                });
            }
            MsgKind::CasFail {
                observed,
                share_data,
            } => {
                if let Some(d) = share_data {
                    self.install(msg.line, CacheState::Shared, d, out);
                }
                let m = self.mshr.as_mut().expect("checked at entry");
                m.reply_seen = true;
                m.staged = Some(OpResult::CasDone {
                    success: false,
                    observed,
                });
            }
            MsgKind::AtomicReply { result, acks, data } => {
                if let Some(d) = data {
                    self.install(msg.line, CacheState::Shared, d, out);
                }
                let m = self.mshr.as_mut().expect("checked at entry");
                m.reply_seen = true;
                m.acks_needed += acks;
                m.staged = Some(result);
            }
            MsgKind::ScInvReply { success, acks } => {
                if success {
                    let l = self.resident(msg.line, "SC upgrade of an absent line")?;
                    l.state = CacheState::Exclusive;
                }
                let m = self.mshr.as_mut().expect("checked at entry");
                m.reply_seen = true;
                m.acks_needed += acks;
                m.staged = Some(OpResult::ScDone { success });
            }
            other => {
                return Err(self.err(
                    ProtocolErrorKind::UnexpectedMessage,
                    msg.line,
                    format!("cache controller received unexpected reply {other:?}"),
                ))
            }
        }
        self.try_complete(out)
    }

    fn try_complete(&mut self, out: &mut Outbox) -> Result<Option<OpOutcome>, ProtocolError> {
        {
            let Some(m) = self.mshr.as_ref() else {
                return Ok(None);
            };
            if !m.reply_seen || m.acks_got < m.acks_needed {
                return Ok(None);
            }
        }
        let m = self.mshr.take().expect("checked above");
        let addr = m.op.addr();
        let result = match m.staged {
            Some(staged) => {
                // Apply the final local write for staged outcomes that
                // carry one.
                match (staged, m.op) {
                    (OpResult::CasDone { success: true, .. }, MemOp::Cas { new, .. }) => {
                        // CasGrant (INVd/INVs) leaves us holding the line
                        // exclusively and the swap is applied here. For
                        // memory-side CAS (UNC/UPD AtomicReply) the swap
                        // already happened at the home and the line is
                        // absent or shared — nothing to do.
                        if let Some(l) = self.cache.get_mut(m.line) {
                            if l.state == CacheState::Exclusive {
                                l.data.set_word(addr, new);
                            }
                        }
                    }
                    (OpResult::ScDone { success: true }, MemOp::StoreConditional { value, .. }) => {
                        // INV-policy SC that went to the home: our shared
                        // copy was upgraded; store locally. (Memory-side
                        // SC under UNC/UPD stages Stored-like results and
                        // takes the AtomicReply arm instead.)
                        if let Some(l) = self.cache.get_mut(m.line) {
                            if l.state == CacheState::Exclusive {
                                l.data.set_word(addr, value);
                            }
                        }
                    }
                    _ => {}
                }
                staged
            }
            None => {
                // Plain data/upgrade reply: perform the operation now
                // that the line is resident with sufficient permission.
                match m.op {
                    MemOp::Load { .. } | MemOp::LoadExclusive { .. } => {
                        let value = self
                            .resident(m.line, "completing load of an absent line")?
                            .data
                            .word(addr);
                        OpResult::Loaded {
                            value,
                            serial: None,
                            reserved: false,
                        }
                    }
                    MemOp::LoadLinked { .. } => {
                        let value = self
                            .resident(m.line, "completing LL of an absent line")?
                            .data
                            .word(addr);
                        self.resv.set(m.line);
                        OpResult::Loaded {
                            value,
                            serial: None,
                            reserved: true,
                        }
                    }
                    MemOp::Store { value, .. } => {
                        let l = self.resident(m.line, "completing store of an absent line")?;
                        debug_assert_eq!(l.state, CacheState::Exclusive);
                        l.data.set_word(addr, value);
                        OpResult::Stored
                    }
                    MemOp::FetchPhi { op: phi, .. } => {
                        let l = self.resident(m.line, "completing fetch_phi of an absent line")?;
                        debug_assert_eq!(l.state, CacheState::Exclusive);
                        let old = l.data.word(addr);
                        l.data.set_word(addr, phi.apply(old));
                        OpResult::Fetched { old }
                    }
                    MemOp::Cas { expected, new, .. } => {
                        let l = self.resident(m.line, "completing CAS of an absent line")?;
                        debug_assert_eq!(l.state, CacheState::Exclusive);
                        let observed = l.data.word(addr);
                        let success = observed == expected;
                        if success {
                            l.data.set_word(addr, new);
                        }
                        OpResult::CasDone { success, observed }
                    }
                    MemOp::StoreConditional { .. } | MemOp::DropCopy { .. } => {
                        return Err(self.err(
                            ProtocolErrorKind::UnexpectedMessage,
                            m.line,
                            format!("{:?} never takes the plain-reply path", m.op),
                        ))
                    }
                }
            }
        };
        // Serve interventions that arrived during the ack wait.
        for deferred in m.deferred {
            self.handle_intervention(deferred, out)?;
        }
        Ok(Some(OpOutcome {
            result,
            chain: m.chain,
            local: false,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{PhiOp, SyncConfig};

    const NODES: u32 = 4;
    const ME: NodeId = NodeId::new(1);
    const A: Addr = Addr::new(0x40); // line 2, home = node 2
    const LINE: LineAddr = LineAddr::new(2);

    fn cc() -> CacheNode {
        let mut c = CacheNode::new(ME, 32, CacheParams::default());
        c.set_nodes(NODES);
        c
    }

    fn map() -> AddressMap {
        AddressMap::new(32)
    }

    fn data(v: u64) -> LineData {
        let mut d = LineData::zeroed(32);
        d.set_word(A, v);
        d
    }

    fn reply(kind: MsgKind, chain: u32) -> Msg {
        Msg {
            src: LINE.home(NODES),
            dst: ME,
            line: LINE,
            addr: A,
            proc: ProcId::new(1),
            chain,
            kind,
        }
    }

    fn hna_cfg() -> SyncConfig {
        SyncConfig {
            policy: SyncPolicy::Inv,
            home_atomics: true,
            ..Default::default()
        }
    }

    #[test]
    fn home_atomic_drops_a_shared_copy_silently() {
        let mut c = cc();
        let mut out = Outbox::new();
        // Acquire a shared copy via a load (loads keep INV handling).
        c.start_op_with(MemOp::Load { addr: A }, hna_cfg(), &mut out)
            .unwrap();
        out.drain();
        c.handle(reply(MsgKind::DataS { data: data(5) }, 2), &mut out)
            .unwrap();
        assert_eq!(c.cache_state(LINE), Some(CacheState::Shared));

        // Φ routes to the home; the shared copy is given up.
        let done = c
            .start_op_with(
                MemOp::FetchPhi {
                    addr: A,
                    op: PhiOp::Add(1),
                },
                hna_cfg(),
                &mut out,
            )
            .unwrap();
        assert!(done.is_none());
        let sent = out.drain();
        assert_eq!(sent.len(), 1);
        assert!(matches!(
            sent[0].kind,
            MsgKind::AtomicMem {
                op: MemAtomicOp::Phi { .. }
            }
        ));
        assert!(c.cache_state(LINE).is_none());

        let done = c
            .handle(
                reply(
                    MsgKind::AtomicReply {
                        result: OpResult::Fetched { old: 5 },
                        acks: 0,
                        data: None,
                    },
                    2,
                ),
                &mut out,
            )
            .unwrap()
            .unwrap();
        assert_eq!(done.result, OpResult::Fetched { old: 5 });
        assert_eq!(done.chain, 2);
        assert!(c.cache_state(LINE).is_none(), "no copy migrates back");
    }

    #[test]
    fn home_atomic_writes_back_an_exclusive_copy_first() {
        let mut c = cc();
        let mut out = Outbox::new();
        // Acquire the line exclusively via a plain store.
        c.start_op_with(MemOp::Store { addr: A, value: 3 }, hna_cfg(), &mut out)
            .unwrap();
        out.drain();
        c.handle(
            reply(
                MsgKind::DataX {
                    data: data(0),
                    acks: 0,
                },
                2,
            ),
            &mut out,
        )
        .unwrap();
        assert_eq!(c.cache_state(LINE), Some(CacheState::Exclusive));

        // CAS: the dirty copy travels home ahead of the request on the
        // same channel, so the home executes against current data.
        c.start_op_with(
            MemOp::Cas {
                addr: A,
                expected: 3,
                new: 9,
            },
            hna_cfg(),
            &mut out,
        )
        .unwrap();
        let sent = out.drain();
        assert_eq!(sent.len(), 2);
        match &sent[0].kind {
            MsgKind::WriteBack { data } => assert_eq!(data.word(A), 3),
            other => panic!("expected WriteBack first, got {other:?}"),
        }
        assert!(matches!(
            sent[1].kind,
            MsgKind::AtomicMem {
                op: MemAtomicOp::Cas { .. }
            }
        ));
        assert_eq!(sent[0].dst, sent[1].dst, "same src→home FIFO channel");
        assert!(c.cache_state(LINE).is_none());
    }

    #[test]
    fn fwd_share_supplies_requester_and_acks_home() {
        let mut c = cc();
        let mut out = Outbox::new();
        // Hold a shared copy.
        c.start_op_with(MemOp::Load { addr: A }, SyncConfig::default(), &mut out)
            .unwrap();
        out.drain();
        c.handle(reply(MsgKind::DataS { data: data(7) }, 2), &mut out)
            .unwrap();

        let requester = NodeId::new(3);
        let mut fwd = reply(MsgKind::FwdShare { requester }, 2);
        fwd.proc = ProcId::new(3);
        assert!(c.handle(fwd, &mut out).unwrap().is_none());
        let sent = out.drain();
        assert_eq!(sent.len(), 2);
        let data_leg = sent
            .iter()
            .find(|m| matches!(m.kind, MsgKind::DataS { .. }))
            .unwrap();
        assert_eq!(data_leg.dst, requester);
        assert_eq!(data_leg.chain, 3, "read from a sharer = 3 messages");
        let ack_leg = sent
            .iter()
            .find(|m| matches!(m.kind, MsgKind::FwdShareAck))
            .unwrap();
        assert_eq!(ack_leg.dst, LINE.home(NODES));
        // The forwarder keeps its copy.
        assert_eq!(c.cache_state(LINE), Some(CacheState::Shared));
    }

    #[test]
    fn fwd_share_on_an_absent_line_naks() {
        let mut c = cc();
        let mut out = Outbox::new();
        let fwd = reply(
            MsgKind::FwdShare {
                requester: NodeId::new(3),
            },
            2,
        );
        assert!(c.handle(fwd, &mut out).unwrap().is_none());
        let sent = out.drain();
        assert_eq!(sent.len(), 1);
        assert!(matches!(sent[0].kind, MsgKind::FwdNak));
        assert_eq!(sent[0].dst, LINE.home(NODES));
    }

    #[test]
    fn load_miss_then_hit() {
        let mut c = cc();
        let mut out = Outbox::new();
        assert!(c
            .start_op(MemOp::Load { addr: A }, &map(), &mut out)
            .unwrap()
            .is_none());
        let sent = out.drain();
        assert_eq!(sent.len(), 1);
        assert!(matches!(sent[0].kind, MsgKind::GetS));
        assert_eq!(sent[0].dst, NodeId::new(2));

        let done = c
            .handle(reply(MsgKind::DataS { data: data(7) }, 2), &mut out)
            .unwrap()
            .unwrap();
        assert_eq!(
            done.result,
            OpResult::Loaded {
                value: 7,
                serial: None,
                reserved: false
            }
        );
        assert_eq!(done.chain, 2);
        assert!(!done.local);

        // Second load hits.
        let done = c
            .start_op(MemOp::Load { addr: A }, &map(), &mut out)
            .unwrap()
            .unwrap();
        assert!(done.local);
        assert_eq!(done.result.value(), Some(7));
    }

    #[test]
    fn store_hit_exclusive_is_local() {
        let mut c = cc();
        let mut out = Outbox::new();
        c.start_op(MemOp::Store { addr: A, value: 3 }, &map(), &mut out)
            .unwrap();
        out.drain();
        c.handle(
            reply(
                MsgKind::DataX {
                    data: data(0),
                    acks: 0,
                },
                2,
            ),
            &mut out,
        )
        .unwrap();
        // Now exclusive: next store is a pure cache hit.
        let done = c
            .start_op(MemOp::Store { addr: A, value: 4 }, &map(), &mut out)
            .unwrap()
            .unwrap();
        assert!(done.local);
        assert_eq!(c.peek_word(A), Some(4));
        assert!(out.drain().is_empty());
    }

    #[test]
    fn upgrade_waits_for_acks() {
        let mut c = cc();
        let mut out = Outbox::new();
        // Acquire shared first.
        c.start_op(MemOp::Load { addr: A }, &map(), &mut out)
            .unwrap();
        c.handle(reply(MsgKind::DataS { data: data(0) }, 2), &mut out)
            .unwrap();
        out.drain();

        // Store from shared: GetX{from_shared}.
        assert!(c
            .start_op(MemOp::Store { addr: A, value: 9 }, &map(), &mut out)
            .unwrap()
            .is_none());
        let sent = out.drain();
        assert!(matches!(sent[0].kind, MsgKind::GetX { from_shared: true }));

        // UpgradeAck with 2 acks pending: not complete yet.
        assert!(c
            .handle(reply(MsgKind::UpgradeAck { acks: 2 }, 2), &mut out)
            .unwrap()
            .is_none());
        let mut ack = reply(MsgKind::InvAck, 3);
        ack.src = NodeId::new(3);
        assert!(c.handle(ack.clone(), &mut out).unwrap().is_none());
        let done = c.handle(ack, &mut out).unwrap().unwrap();
        assert_eq!(done.result, OpResult::Stored);
        assert_eq!(
            done.chain, 3,
            "Table 1: store to remote shared = 3 serialized messages"
        );
        assert_eq!(c.peek_word(A), Some(9));
        assert_eq!(c.cache_state(LINE), Some(CacheState::Exclusive));
    }

    #[test]
    fn fetch_phi_applies_on_arrival() {
        let mut c = cc();
        let mut out = Outbox::new();
        c.start_op(
            MemOp::FetchPhi {
                addr: A,
                op: PhiOp::Add(5),
            },
            &map(),
            &mut out,
        )
        .unwrap();
        out.drain();
        let done = c
            .handle(
                reply(
                    MsgKind::DataX {
                        data: data(10),
                        acks: 0,
                    },
                    2,
                ),
                &mut out,
            )
            .unwrap()
            .unwrap();
        assert_eq!(done.result, OpResult::Fetched { old: 10 });
        assert_eq!(c.peek_word(A), Some(15));
    }

    #[test]
    fn local_cas_on_exclusive_line() {
        let mut c = cc();
        let mut out = Outbox::new();
        c.start_op(MemOp::Store { addr: A, value: 1 }, &map(), &mut out)
            .unwrap();
        out.drain();
        c.handle(
            reply(
                MsgKind::DataX {
                    data: data(0),
                    acks: 0,
                },
                2,
            ),
            &mut out,
        )
        .unwrap();

        let done = c
            .start_op(
                MemOp::Cas {
                    addr: A,
                    expected: 1,
                    new: 2,
                },
                &map(),
                &mut out,
            )
            .unwrap()
            .unwrap();
        assert!(done.local);
        assert_eq!(
            done.result,
            OpResult::CasDone {
                success: true,
                observed: 1
            }
        );
        assert_eq!(c.peek_word(A), Some(2));

        let done = c
            .start_op(
                MemOp::Cas {
                    addr: A,
                    expected: 1,
                    new: 3,
                },
                &map(),
                &mut out,
            )
            .unwrap()
            .unwrap();
        assert_eq!(
            done.result,
            OpResult::CasDone {
                success: false,
                observed: 2
            }
        );
        assert_eq!(c.peek_word(A), Some(2), "failed CAS must not write");
    }

    #[test]
    fn inv_llsc_local_success() {
        let mut c = cc();
        let mut out = Outbox::new();
        // Get exclusive, then LL/SC locally.
        c.start_op(MemOp::LoadExclusive { addr: A }, &map(), &mut out)
            .unwrap();
        out.drain();
        c.handle(
            reply(
                MsgKind::DataX {
                    data: data(5),
                    acks: 0,
                },
                2,
            ),
            &mut out,
        )
        .unwrap();

        let done = c
            .start_op(MemOp::LoadLinked { addr: A }, &map(), &mut out)
            .unwrap()
            .unwrap();
        assert!(done.local);
        assert_eq!(done.result.value(), Some(5));
        let done = c
            .start_op(
                MemOp::StoreConditional {
                    addr: A,
                    value: 6,
                    serial: None,
                },
                &map(),
                &mut out,
            )
            .unwrap()
            .unwrap();
        assert!(
            done.local,
            "SC on an exclusive reserved line succeeds locally"
        );
        assert_eq!(done.result, OpResult::ScDone { success: true });
        assert_eq!(c.peek_word(A), Some(6));
    }

    #[test]
    fn sc_without_reservation_fails_locally() {
        let mut c = cc();
        let mut out = Outbox::new();
        let done = c
            .start_op(
                MemOp::StoreConditional {
                    addr: A,
                    value: 6,
                    serial: None,
                },
                &map(),
                &mut out,
            )
            .unwrap()
            .unwrap();
        assert!(done.local);
        assert_eq!(done.result, OpResult::ScDone { success: false });
        assert!(out.drain().is_empty(), "failed SC must cause no traffic");
    }

    #[test]
    fn invalidation_clears_reservation_and_fails_sc() {
        let mut c = cc();
        let mut out = Outbox::new();
        c.start_op(MemOp::LoadLinked { addr: A }, &map(), &mut out)
            .unwrap();
        out.drain();
        c.handle(reply(MsgKind::DataS { data: data(5) }, 2), &mut out)
            .unwrap();

        // Another node writes: we get an invalidation.
        let mut inv = reply(
            MsgKind::Inv {
                requester: NodeId::new(3),
            },
            2,
        );
        inv.proc = ProcId::new(3);
        c.handle(inv, &mut out).unwrap();
        let acks = out.drain();
        assert_eq!(acks.len(), 1);
        assert!(matches!(acks[0].kind, MsgKind::InvAck));
        assert_eq!(acks[0].dst, NodeId::new(3));
        assert_eq!(acks[0].chain, 3);
        assert_eq!(c.cache_state(LINE), None);

        let done = c
            .start_op(
                MemOp::StoreConditional {
                    addr: A,
                    value: 6,
                    serial: None,
                },
                &map(),
                &mut out,
            )
            .unwrap()
            .unwrap();
        assert_eq!(done.result, OpResult::ScDone { success: false });
    }

    #[test]
    fn sc_from_shared_goes_to_home() {
        let mut c = cc();
        let mut out = Outbox::new();
        c.start_op(MemOp::LoadLinked { addr: A }, &map(), &mut out)
            .unwrap();
        out.drain();
        c.handle(reply(MsgKind::DataS { data: data(5) }, 2), &mut out)
            .unwrap();

        assert!(c
            .start_op(
                MemOp::StoreConditional {
                    addr: A,
                    value: 6,
                    serial: None
                },
                &map(),
                &mut out
            )
            .unwrap()
            .is_none());
        let sent = out.drain();
        assert!(matches!(sent[0].kind, MsgKind::ScInv));

        let done = c
            .handle(
                reply(
                    MsgKind::ScInvReply {
                        success: true,
                        acks: 0,
                    },
                    2,
                ),
                &mut out,
            )
            .unwrap();
        let done = done.unwrap();
        assert_eq!(done.result, OpResult::ScDone { success: true });
        assert_eq!(c.cache_state(LINE), Some(CacheState::Exclusive));
        assert_eq!(c.peek_word(A), Some(6));
    }

    #[test]
    fn fwd_getx_hands_over_the_line() {
        let mut c = cc();
        let mut out = Outbox::new();
        c.start_op(MemOp::Store { addr: A, value: 8 }, &map(), &mut out)
            .unwrap();
        out.drain();
        c.handle(
            reply(
                MsgKind::DataX {
                    data: data(0),
                    acks: 0,
                },
                2,
            ),
            &mut out,
        )
        .unwrap();

        let mut fwd = reply(MsgKind::FwdGetX, 2);
        fwd.proc = ProcId::new(3);
        c.handle(fwd, &mut out).unwrap();
        let sent = out.drain();
        assert_eq!(sent.len(), 1);
        match &sent[0].kind {
            MsgKind::XferData { data } => assert_eq!(data.word(A), 8),
            other => panic!("expected XferData, got {other:?}"),
        }
        assert_eq!(sent[0].chain, 3);
        assert_eq!(c.cache_state(LINE), None);
    }

    #[test]
    fn fwd_to_absent_line_naks() {
        let mut c = cc();
        let mut out = Outbox::new();
        c.handle(reply(MsgKind::FwdGetS, 2), &mut out).unwrap();
        let sent = out.drain();
        assert!(matches!(sent[0].kind, MsgKind::FwdNak));
    }

    #[test]
    fn fwd_cas_failure_deny_keeps_line() {
        let mut c = cc();
        let mut out = Outbox::new();
        c.start_op(MemOp::Store { addr: A, value: 8 }, &map(), &mut out)
            .unwrap();
        out.drain();
        c.handle(
            reply(
                MsgKind::DataX {
                    data: data(0),
                    acks: 0,
                },
                2,
            ),
            &mut out,
        )
        .unwrap();

        let fwd = reply(
            MsgKind::FwdCas {
                expected: 99,
                new: 1,
                addr: A,
                variant: CasVariant::Deny,
            },
            2,
        );
        c.handle(fwd, &mut out).unwrap();
        let sent = out.drain();
        match &sent[0].kind {
            MsgKind::OwnerCasFail {
                observed,
                kept_exclusive,
                ..
            } => {
                assert_eq!(*observed, 8);
                assert!(kept_exclusive);
            }
            other => panic!("expected OwnerCasFail, got {other:?}"),
        }
        assert_eq!(c.cache_state(LINE), Some(CacheState::Exclusive));
    }

    #[test]
    fn deferred_intervention_served_after_completion() {
        let mut c = cc();
        let mut out = Outbox::new();
        // Upgrade in progress with one ack pending.
        c.start_op(MemOp::Load { addr: A }, &map(), &mut out)
            .unwrap();
        c.handle(reply(MsgKind::DataS { data: data(0) }, 2), &mut out)
            .unwrap();
        c.start_op(MemOp::Store { addr: A, value: 9 }, &map(), &mut out)
            .unwrap();
        c.handle(reply(MsgKind::UpgradeAck { acks: 1 }, 2), &mut out)
            .unwrap();
        out.drain();

        // A forward arrives before the ack: it must wait.
        c.handle(reply(MsgKind::FwdGetX, 2), &mut out).unwrap();
        assert!(out.drain().is_empty(), "intervention must be deferred");

        // The ack arrives: the store completes AND the deferred forward
        // is served with the *new* data.
        let mut ack = reply(MsgKind::InvAck, 3);
        ack.src = NodeId::new(3);
        let done = c.handle(ack, &mut out).unwrap().unwrap();
        assert_eq!(done.result, OpResult::Stored);
        let sent = out.drain();
        assert_eq!(sent.len(), 1);
        match &sent[0].kind {
            MsgKind::XferData { data } => assert_eq!(data.word(A), 9),
            other => panic!("expected XferData, got {other:?}"),
        }
        assert_eq!(c.cache_state(LINE), None);
    }

    #[test]
    fn unc_ops_bypass_the_cache() {
        let mut c = cc();
        let mut m = map();
        m.register(
            A,
            SyncConfig {
                policy: SyncPolicy::Unc,
                ..Default::default()
            },
        );
        let mut out = Outbox::new();
        assert!(c
            .start_op(
                MemOp::FetchPhi {
                    addr: A,
                    op: PhiOp::Add(1)
                },
                &m,
                &mut out
            )
            .unwrap()
            .is_none());
        let sent = out.drain();
        assert!(matches!(
            sent[0].kind,
            MsgKind::AtomicMem {
                op: MemAtomicOp::Phi { .. }
            }
        ));

        let done = c
            .handle(
                reply(
                    MsgKind::AtomicReply {
                        result: OpResult::Fetched { old: 4 },
                        acks: 0,
                        data: None,
                    },
                    2,
                ),
                &mut out,
            )
            .unwrap()
            .unwrap();
        assert_eq!(done.result, OpResult::Fetched { old: 4 });
        assert_eq!(done.chain, 2);
        assert_eq!(c.cache_state(LINE), None, "UNC lines are never cached");
    }

    #[test]
    fn upd_load_allocates_and_updates_apply() {
        let mut c = cc();
        let mut m = map();
        m.register(
            A,
            SyncConfig {
                policy: SyncPolicy::Upd,
                ..Default::default()
            },
        );
        let mut out = Outbox::new();
        c.start_op(MemOp::Load { addr: A }, &m, &mut out).unwrap();
        out.drain();
        c.handle(reply(MsgKind::DataS { data: data(1) }, 2), &mut out)
            .unwrap();
        assert_eq!(c.peek_word(A), Some(1));

        // An update from another node's write arrives.
        c.handle(
            reply(
                MsgKind::Update {
                    data: data(2),
                    requester: NodeId::new(3),
                },
                2,
            ),
            &mut out,
        )
        .unwrap();
        let acks = out.drain();
        assert!(matches!(acks[0].kind, MsgKind::UpdAck));
        assert_eq!(c.peek_word(A), Some(2));

        // Subsequent read hits with the updated value.
        let done = c
            .start_op(MemOp::Load { addr: A }, &m, &mut out)
            .unwrap()
            .unwrap();
        assert_eq!(done.result.value(), Some(2));
        assert!(done.local);
    }

    #[test]
    fn upd_store_goes_to_memory_and_waits_for_acks() {
        let mut c = cc();
        let mut m = map();
        m.register(
            A,
            SyncConfig {
                policy: SyncPolicy::Upd,
                ..Default::default()
            },
        );
        let mut out = Outbox::new();
        assert!(c
            .start_op(MemOp::Store { addr: A, value: 5 }, &m, &mut out)
            .unwrap()
            .is_none());
        let sent = out.drain();
        assert!(matches!(
            sent[0].kind,
            MsgKind::AtomicMem {
                op: MemAtomicOp::Store { .. }
            }
        ));

        // Reply says one sharer must ack; completion waits.
        assert!(c
            .handle(
                reply(
                    MsgKind::AtomicReply {
                        result: OpResult::Stored,
                        acks: 1,
                        data: None
                    },
                    2
                ),
                &mut out
            )
            .unwrap()
            .is_none());
        let mut ack = reply(MsgKind::UpdAck, 3);
        ack.src = NodeId::new(3);
        let done = c.handle(ack, &mut out).unwrap().unwrap();
        assert_eq!(done.result, OpResult::Stored);
        assert_eq!(
            done.chain, 3,
            "Table 1: UPD store to cached = 3 serialized messages"
        );
    }

    #[test]
    fn drop_copy_writes_back_exclusive_lines() {
        let mut c = cc();
        let mut out = Outbox::new();
        c.start_op(MemOp::Store { addr: A, value: 8 }, &map(), &mut out)
            .unwrap();
        out.drain();
        c.handle(
            reply(
                MsgKind::DataX {
                    data: data(0),
                    acks: 0,
                },
                2,
            ),
            &mut out,
        )
        .unwrap();

        let done = c
            .start_op(MemOp::DropCopy { addr: A }, &map(), &mut out)
            .unwrap()
            .unwrap();
        assert!(done.local);
        let sent = out.drain();
        assert_eq!(sent.len(), 1);
        match &sent[0].kind {
            MsgKind::WriteBack { data } => assert_eq!(data.word(A), 8),
            other => panic!("expected WriteBack, got {other:?}"),
        }
        assert_eq!(c.cache_state(LINE), None);
    }

    #[test]
    fn drop_copy_notifies_for_shared_lines() {
        let mut c = cc();
        let mut out = Outbox::new();
        c.start_op(MemOp::Load { addr: A }, &map(), &mut out)
            .unwrap();
        out.drain();
        c.handle(reply(MsgKind::DataS { data: data(0) }, 2), &mut out)
            .unwrap();

        c.start_op(MemOp::DropCopy { addr: A }, &map(), &mut out)
            .unwrap();
        let sent = out.drain();
        assert!(matches!(sent[0].kind, MsgKind::DropShared));
        assert_eq!(c.cache_state(LINE), None);
    }

    #[test]
    fn drop_copy_of_absent_line_is_silent() {
        let mut c = cc();
        let mut out = Outbox::new();
        let done = c
            .start_op(MemOp::DropCopy { addr: A }, &map(), &mut out)
            .unwrap()
            .unwrap();
        assert!(done.local);
        assert!(out.drain().is_empty());
    }

    #[test]
    fn cas_deny_share_variants_route_to_home() {
        for variant in [CasVariant::Deny, CasVariant::Share] {
            let mut c = cc();
            let mut m = map();
            m.register(
                A,
                SyncConfig {
                    cas_variant: variant,
                    ..Default::default()
                },
            );
            let mut out = Outbox::new();
            assert!(c
                .start_op(
                    MemOp::Cas {
                        addr: A,
                        expected: 0,
                        new: 1
                    },
                    &m,
                    &mut out
                )
                .unwrap()
                .is_none());
            let sent = out.drain();
            match &sent[0].kind {
                MsgKind::CasHome { variant: v, .. } => assert_eq!(*v, variant),
                other => panic!("expected CasHome, got {other:?}"),
            }
        }
    }

    #[test]
    fn cas_fail_share_installs_read_only_copy() {
        let mut c = cc();
        let mut m = map();
        m.register(
            A,
            SyncConfig {
                cas_variant: CasVariant::Share,
                ..Default::default()
            },
        );
        let mut out = Outbox::new();
        c.start_op(
            MemOp::Cas {
                addr: A,
                expected: 0,
                new: 1,
            },
            &m,
            &mut out,
        )
        .unwrap();
        out.drain();
        let done = c
            .handle(
                reply(
                    MsgKind::CasFail {
                        observed: 9,
                        share_data: Some(data(9)),
                    },
                    2,
                ),
                &mut out,
            )
            .unwrap()
            .unwrap();
        assert_eq!(
            done.result,
            OpResult::CasDone {
                success: false,
                observed: 9
            }
        );
        assert_eq!(c.cache_state(LINE), Some(CacheState::Shared));
        assert_eq!(c.peek_word(A), Some(9));
    }

    #[test]
    fn cas_grant_applies_swap() {
        let mut c = cc();
        let mut m = map();
        m.register(
            A,
            SyncConfig {
                cas_variant: CasVariant::Deny,
                ..Default::default()
            },
        );
        let mut out = Outbox::new();
        c.start_op(
            MemOp::Cas {
                addr: A,
                expected: 4,
                new: 5,
            },
            &m,
            &mut out,
        )
        .unwrap();
        out.drain();
        let done = c
            .handle(
                reply(
                    MsgKind::CasGrant {
                        data: Some(data(4)),
                        acks: 0,
                        observed: 4,
                    },
                    2,
                ),
                &mut out,
            )
            .unwrap()
            .unwrap();
        assert_eq!(
            done.result,
            OpResult::CasDone {
                success: true,
                observed: 4
            }
        );
        assert_eq!(c.peek_word(A), Some(5));
        assert_eq!(c.cache_state(LINE), Some(CacheState::Exclusive));
    }

    /// The SM_D race: an invalidation arrives while an upgrade is
    /// outstanding (the home served a competing writer first). The
    /// local copy must be invalidated and acked; the home will answer
    /// our upgrade with full data (it knows we were invalidated).
    #[test]
    fn inv_during_outstanding_upgrade_is_applied() {
        let mut c = cc();
        let mut out = Outbox::new();
        // Acquire shared, then issue a store (upgrade).
        c.start_op(MemOp::Load { addr: A }, &map(), &mut out)
            .unwrap();
        c.handle(reply(MsgKind::DataS { data: data(1) }, 2), &mut out)
            .unwrap();
        assert!(c
            .start_op(MemOp::Store { addr: A, value: 2 }, &map(), &mut out)
            .unwrap()
            .is_none());
        out.drain();

        // Competing writer's invalidation lands before our reply.
        let mut inv = reply(
            MsgKind::Inv {
                requester: NodeId::new(3),
            },
            2,
        );
        inv.proc = ProcId::new(3);
        assert!(c.handle(inv, &mut out).unwrap().is_none());
        let acks = out.drain();
        assert!(matches!(acks[0].kind, MsgKind::InvAck));
        assert_eq!(c.cache_state(LINE), None, "shared copy must be gone");

        // The home replies with full data (not an UpgradeAck).
        let done = c
            .handle(
                reply(
                    MsgKind::DataX {
                        data: data(9),
                        acks: 0,
                    },
                    4,
                ),
                &mut out,
            )
            .unwrap()
            .unwrap();
        assert_eq!(done.result, OpResult::Stored);
        assert_eq!(c.peek_word(A), Some(2), "store applied over fresh data");
        assert_eq!(done.chain, 4);
    }

    /// A forwarded CAS that arrives while we are collecting upgrade
    /// acknowledgments must be deferred, then served with the
    /// post-completion value.
    #[test]
    fn deferred_fwd_cas_sees_completed_value() {
        let mut c = cc();
        let mut out = Outbox::new();
        c.start_op(MemOp::Load { addr: A }, &map(), &mut out)
            .unwrap();
        c.handle(reply(MsgKind::DataS { data: data(0) }, 2), &mut out)
            .unwrap();
        c.start_op(MemOp::Store { addr: A, value: 7 }, &map(), &mut out)
            .unwrap();
        c.handle(reply(MsgKind::UpgradeAck { acks: 1 }, 2), &mut out)
            .unwrap();
        out.drain();

        let fwd = reply(
            MsgKind::FwdCas {
                expected: 7,
                new: 8,
                addr: A,
                variant: CasVariant::Deny,
            },
            2,
        );
        c.handle(fwd, &mut out).unwrap();
        assert!(out.drain().is_empty(), "FwdCas must wait for the ack");

        let mut ack = reply(MsgKind::InvAck, 3);
        ack.src = NodeId::new(3);
        let done = c.handle(ack, &mut out).unwrap().unwrap();
        assert_eq!(done.result, OpResult::Stored);
        // The deferred compare now sees 7 and succeeds: line handed over.
        let sent = out.drain();
        match &sent[0].kind {
            MsgKind::XferData { data } => assert_eq!(data.word(A), 7),
            other => panic!("expected XferData, got {other:?}"),
        }
        assert_eq!(c.cache_state(LINE), None);
    }

    /// An invalidation for a line we already evicted must still be
    /// acknowledged (the directory had a stale sharer).
    #[test]
    fn spurious_inv_is_acked() {
        let mut c = cc();
        let mut out = Outbox::new();
        let mut inv = reply(
            MsgKind::Inv {
                requester: NodeId::new(3),
            },
            2,
        );
        inv.proc = ProcId::new(3);
        assert!(c.handle(inv, &mut out).unwrap().is_none());
        let sent = out.drain();
        assert_eq!(sent.len(), 1);
        assert!(matches!(sent[0].kind, MsgKind::InvAck));
        assert_eq!(sent[0].dst, NodeId::new(3));
    }

    /// An update for a line we silently evicted must be acknowledged
    /// without being applied anywhere.
    #[test]
    fn update_to_absent_line_is_acked() {
        let mut c = cc();
        let mut out = Outbox::new();
        let upd = reply(
            MsgKind::Update {
                data: data(5),
                requester: NodeId::new(2),
            },
            2,
        );
        c.handle(upd, &mut out).unwrap();
        let sent = out.drain();
        assert!(matches!(sent[0].kind, MsgKind::UpdAck));
        assert_eq!(c.cache_state(LINE), None);
    }

    /// Acks may arrive before the primary reply; completion must wait
    /// for both.
    #[test]
    fn early_acks_do_not_complete_before_data() {
        let mut c = cc();
        let mut out = Outbox::new();
        c.start_op(MemOp::Store { addr: A, value: 1 }, &map(), &mut out)
            .unwrap();
        out.drain();
        // Two acks arrive first (sharers answered quickly).
        for n in [3u32, 0] {
            let mut ack = reply(MsgKind::InvAck, 3);
            ack.src = NodeId::new(n);
            assert!(
                c.handle(ack, &mut out).unwrap().is_none(),
                "must wait for DataX"
            );
        }
        let done = c
            .handle(
                reply(
                    MsgKind::DataX {
                        data: data(0),
                        acks: 2,
                    },
                    2,
                ),
                &mut out,
            )
            .unwrap()
            .unwrap();
        assert_eq!(done.result, OpResult::Stored);
        assert_eq!(done.chain, 3, "ack chain dominates");
    }

    /// Eviction of a reserved line clears the reservation, so a
    /// subsequent SC fails locally instead of succeeding wrongly.
    #[test]
    fn eviction_clears_reservation() {
        let mut c = CacheNode::new(ME, 32, CacheParams { sets: 1, ways: 1 });
        c.set_nodes(NODES);
        let mut out = Outbox::new();
        c.start_op(MemOp::LoadLinked { addr: A }, &map(), &mut out)
            .unwrap();
        c.handle(reply(MsgKind::DataS { data: data(5) }, 2), &mut out)
            .unwrap();
        out.drain();

        // A miss to a conflicting line evicts the reserved line.
        let other = Addr::new(0x40 + 32); // next line, same (only) set
        c.start_op(MemOp::Load { addr: other }, &map(), &mut out)
            .unwrap();
        let mut d2 = reply(
            MsgKind::DataS {
                data: LineData::zeroed(32),
            },
            2,
        );
        d2.line = other.line(32);
        d2.addr = other;
        c.handle(d2, &mut out).unwrap();
        out.drain();

        let done = c
            .start_op(
                MemOp::StoreConditional {
                    addr: A,
                    value: 9,
                    serial: None,
                },
                &map(),
                &mut out,
            )
            .unwrap()
            .unwrap();
        assert_eq!(done.result, OpResult::ScDone { success: false });
        assert!(done.local);
    }
}
