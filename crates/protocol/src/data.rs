//! Cache-line data payloads.

use crate::types::Value;
use dsm_sim::Addr;

/// Words stored inline before spilling to the heap. Every configuration
/// the paper (and this repo's harness) uses has 32-byte lines = 4 words,
/// so in practice a `LineData` never allocates.
const INLINE_WORDS: usize = 4;

/// The data contents of one cache line, as an array of 64-bit words.
///
/// Lines travel inside coherence messages and live in caches and memory
/// modules, so they are copied on the simulator's hottest paths. Up to
/// `INLINE_WORDS` (4) words (32-byte lines — every configuration in
/// use)
/// are stored inline, making `clone` a flat memcpy with no heap
/// traffic; larger lines spill to a heap vector and keep working.
///
/// All atomic primitives operate on single words within a line.
///
/// # Example
///
/// ```
/// use dsm_protocol::LineData;
/// use dsm_sim::Addr;
///
/// let mut line = LineData::zeroed(32);
/// line.set_word(Addr::new(0x48), 7); // offset 8 within a 32-byte line
/// assert_eq!(line.word(Addr::new(0x48)), 7);
/// assert_eq!(line.word(Addr::new(0x40)), 0);
/// ```
#[derive(Debug, Clone)]
pub struct LineData {
    /// Inline storage, used in full or in part when the line fits.
    inline: [Value; INLINE_WORDS],
    /// Heap spill for lines wider than `INLINE_WORDS` words; empty (and
    /// never allocated) otherwise.
    spill: Vec<Value>,
    line_size: u64,
}

impl LineData {
    /// Creates an all-zero line of `line_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `line_size` is not a positive multiple of 8.
    pub fn zeroed(line_size: u64) -> Self {
        assert!(
            line_size > 0 && line_size.is_multiple_of(8),
            "line size must be a multiple of 8 bytes"
        );
        let words = (line_size / 8) as usize;
        LineData {
            inline: [0; INLINE_WORDS],
            spill: if words > INLINE_WORDS {
                vec![0; words]
            } else {
                Vec::new()
            },
            line_size,
        }
    }

    /// The line size in bytes.
    pub fn size(&self) -> u64 {
        self.line_size
    }

    /// Number of words in the line.
    pub fn word_count(&self) -> usize {
        (self.line_size / 8) as usize
    }

    fn index(&self, addr: Addr) -> usize {
        let off = addr.offset_in_line(self.line_size);
        debug_assert_eq!(off % 8, 0, "atomic operations must be word-aligned");
        (off / 8) as usize
    }

    /// Reads the word containing `addr`.
    pub fn word(&self, addr: Addr) -> Value {
        self.words()[self.index(addr)]
    }

    /// Writes the word containing `addr`.
    pub fn set_word(&mut self, addr: Addr, value: Value) {
        let i = self.index(addr);
        self.words_mut()[i] = value;
    }

    /// Immutable view of all words.
    pub fn words(&self) -> &[Value] {
        if self.spill.is_empty() {
            &self.inline[..self.word_count()]
        } else {
            &self.spill
        }
    }

    /// Folds the line's size and contents into a checkpoint digest.
    pub fn digest(&self, h: &mut dsm_sim::StableHasher) {
        h.write_u64(self.line_size);
        for &w in self.words() {
            h.write_u64(w);
        }
    }

    /// Mutable view of all words.
    fn words_mut(&mut self) -> &mut [Value] {
        if self.spill.is_empty() {
            let n = self.word_count();
            &mut self.inline[..n]
        } else {
            &mut self.spill
        }
    }
}

// Manual impls: equality and hashing must see the logical words only,
// never unused inline slots, so inline and spilled lines of the same
// contents behave identically.
impl PartialEq for LineData {
    fn eq(&self, other: &Self) -> bool {
        self.line_size == other.line_size && self.words() == other.words()
    }
}

impl Eq for LineData {}

impl std::hash::Hash for LineData {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.line_size.hash(state);
        self.words().hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_line() {
        let l = LineData::zeroed(32);
        assert_eq!(l.size(), 32);
        assert_eq!(l.word_count(), 4);
        assert!(l.words().iter().all(|&w| w == 0));
    }

    #[test]
    fn word_addressing_uses_offset_in_line() {
        let mut l = LineData::zeroed(32);
        // 0x100 and 0x120 map to the same offset in different lines.
        l.set_word(Addr::new(0x100), 11);
        assert_eq!(l.word(Addr::new(0x120)), 11);
        l.set_word(Addr::new(0x118), 22);
        assert_eq!(l.words(), &[11, 0, 0, 22]);
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn bad_line_size_rejected() {
        let _ = LineData::zeroed(20);
    }

    #[test]
    fn small_lines_use_partial_inline_storage() {
        let mut l = LineData::zeroed(16);
        assert_eq!(l.word_count(), 2);
        l.set_word(Addr::new(0x18), 5);
        assert_eq!(l.words(), &[0, 5]);
    }

    #[test]
    fn wide_lines_spill_to_the_heap() {
        let mut l = LineData::zeroed(64);
        assert_eq!(l.word_count(), 8);
        l.set_word(Addr::new(0x38), 9);
        assert_eq!(l.word(Addr::new(0x38)), 9);
        assert_eq!(l.words().len(), 8);
        let copy = l.clone();
        assert_eq!(copy, l);
    }

    #[test]
    fn eq_and_hash_ignore_unused_inline_slots() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut a = LineData::zeroed(32);
        let mut b = LineData::zeroed(32);
        a.set_word(Addr::new(0x40), 1);
        b.set_word(Addr::new(0x40), 1);
        assert_eq!(a, b);
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
        // Different sizes with the same words differ.
        assert_ne!(LineData::zeroed(16), LineData::zeroed(32));
    }
}
