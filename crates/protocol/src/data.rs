//! Cache-line data payloads.

use crate::types::Value;
use dsm_sim::Addr;

/// The data contents of one cache line, as an array of 64-bit words.
///
/// Lines travel inside coherence messages and live in caches and memory
/// modules. All atomic primitives operate on single words within a line.
///
/// # Example
///
/// ```
/// use dsm_protocol::LineData;
/// use dsm_sim::Addr;
///
/// let mut line = LineData::zeroed(32);
/// line.set_word(Addr::new(0x48), 7); // offset 8 within a 32-byte line
/// assert_eq!(line.word(Addr::new(0x48)), 7);
/// assert_eq!(line.word(Addr::new(0x40)), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LineData {
    words: Vec<Value>,
    line_size: u64,
}

impl LineData {
    /// Creates an all-zero line of `line_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `line_size` is not a positive multiple of 8.
    pub fn zeroed(line_size: u64) -> Self {
        assert!(
            line_size > 0 && line_size.is_multiple_of(8),
            "line size must be a multiple of 8 bytes"
        );
        LineData {
            words: vec![0; (line_size / 8) as usize],
            line_size,
        }
    }

    /// The line size in bytes.
    pub fn size(&self) -> u64 {
        self.line_size
    }

    /// Number of words in the line.
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    fn index(&self, addr: Addr) -> usize {
        let off = addr.offset_in_line(self.line_size);
        debug_assert_eq!(off % 8, 0, "atomic operations must be word-aligned");
        (off / 8) as usize
    }

    /// Reads the word containing `addr`.
    pub fn word(&self, addr: Addr) -> Value {
        self.words[self.index(addr)]
    }

    /// Writes the word containing `addr`.
    pub fn set_word(&mut self, addr: Addr, value: Value) {
        let i = self.index(addr);
        self.words[i] = value;
    }

    /// Immutable view of all words.
    pub fn words(&self) -> &[Value] {
        &self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_line() {
        let l = LineData::zeroed(32);
        assert_eq!(l.size(), 32);
        assert_eq!(l.word_count(), 4);
        assert!(l.words().iter().all(|&w| w == 0));
    }

    #[test]
    fn word_addressing_uses_offset_in_line() {
        let mut l = LineData::zeroed(32);
        // 0x100 and 0x120 map to the same offset in different lines.
        l.set_word(Addr::new(0x100), 11);
        assert_eq!(l.word(Addr::new(0x120)), 11);
        l.set_word(Addr::new(0x118), 22);
        assert_eq!(l.words(), &[11, 0, 0, 22]);
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn bad_line_size_rejected() {
        let _ = LineData::zeroed(20);
    }
}
