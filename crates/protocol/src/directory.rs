//! Directory entries kept at each home node.

use crate::msg::Msg;
use crate::nodeset::NodeSet;
use dsm_sim::NodeId;
use std::collections::VecDeque;

/// The stable directory state of one line.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum DirState {
    /// No cached copies; memory is current.
    #[default]
    Uncached,
    /// Read-only copies at the member nodes; memory is current.
    Shared(NodeSet),
    /// One (possibly dirty) exclusive copy at the owner.
    Dirty(NodeId),
}

impl DirState {
    /// The owner, if the line is dirty.
    pub fn owner(&self) -> Option<NodeId> {
        match self {
            DirState::Dirty(n) => Some(*n),
            _ => None,
        }
    }

    /// The sharer set, if the line is shared.
    pub fn sharers(&self) -> Option<&NodeSet> {
        match self {
            DirState::Shared(s) => Some(s),
            _ => None,
        }
    }

    /// Folds the state into a checkpoint digest.
    pub fn digest(&self, h: &mut dsm_sim::StableHasher) {
        match self {
            DirState::Uncached => h.write_u8(0),
            DirState::Shared(s) => {
                h.write_u8(1);
                s.digest(h);
            }
            DirState::Dirty(n) => {
                h.write_u8(2);
                h.write_u32(n.as_u32());
            }
        }
    }
}

/// Why the directory is busy (an intervention is outstanding).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BusyKind {
    /// A read miss was forwarded to the owner.
    GetS,
    /// A write/exclusive miss was forwarded to the owner.
    GetX,
    /// An INVd/INVs compare-and-swap was forwarded to the owner.
    Cas {
        /// Deny or Share variant.
        variant: crate::types::CasVariant,
    },
    /// A read miss was forwarded to a clean sharer (MESI(F) /
    /// hierarchical variants); the home is waiting for its
    /// [`crate::MsgKind::FwdShareAck`] (or a NAK).
    Share {
        /// The sharer asked to supply the data.
        forwarder: NodeId,
    },
    /// A home-node atomic hit a dirty line; the owner's copy was
    /// recalled ([`crate::MsgKind::FwdGetX`]) so the operation can
    /// execute against current memory.
    Atomic,
}

/// In-flight intervention bookkeeping for a busy line.
#[derive(Debug, Clone)]
pub struct Busy {
    /// What kind of request is being served.
    pub kind: BusyKind,
    /// The message that triggered the intervention (kept whole so the
    /// reply can be built from it when the owner responds).
    pub request: Msg,
    /// A crossing write-back from the old owner has arrived.
    pub got_writeback: bool,
    /// The owner NAKed the intervention (it had already written back).
    pub got_nak: bool,
}

/// One line's directory entry: stable state plus the busy/waiter
/// machinery that serializes transactions per line ("queued memory").
#[derive(Debug, Clone, Default)]
pub struct DirEntry {
    /// Stable state.
    pub state: DirState,
    /// Outstanding intervention, if any.
    pub busy: Option<Busy>,
    /// Requests queued behind the busy transaction, FIFO.
    pub waiters: VecDeque<Msg>,
}

impl BusyKind {
    /// Folds the kind into a checkpoint digest.
    pub fn digest(&self, h: &mut dsm_sim::StableHasher) {
        match self {
            BusyKind::GetS => h.write_u8(0),
            BusyKind::GetX => h.write_u8(1),
            BusyKind::Cas { variant } => {
                h.write_u8(2);
                variant.digest(h);
            }
            BusyKind::Share { forwarder } => {
                h.write_u8(3);
                h.write_u32(forwarder.as_u32());
            }
            BusyKind::Atomic => h.write_u8(4),
        }
    }
}

impl Busy {
    /// Folds the in-flight intervention record into a checkpoint digest.
    pub fn digest(&self, h: &mut dsm_sim::StableHasher) {
        self.kind.digest(h);
        self.request.digest(h);
        h.write_u8(self.got_writeback as u8);
        h.write_u8(self.got_nak as u8);
    }
}

impl DirEntry {
    /// `true` if a transaction is in flight for this line.
    pub fn is_busy(&self) -> bool {
        self.busy.is_some()
    }

    /// Folds the entry (stable state, busy record, queued waiters in
    /// FIFO order) into a checkpoint digest.
    pub fn digest(&self, h: &mut dsm_sim::StableHasher) {
        self.state.digest(h);
        match &self.busy {
            Some(b) => {
                h.write_u8(1);
                b.digest(h);
            }
            None => h.write_u8(0),
        }
        h.write_usize(self.waiters.len());
        for w in &self.waiters {
            w.digest(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_uncached_and_idle() {
        let e = DirEntry::default();
        assert_eq!(e.state, DirState::Uncached);
        assert!(!e.is_busy());
        assert!(e.waiters.is_empty());
    }

    #[test]
    fn accessors() {
        let d = DirState::Dirty(NodeId::new(3));
        assert_eq!(d.owner(), Some(NodeId::new(3)));
        assert!(d.sharers().is_none());

        let s = DirState::Shared(NodeSet::singleton(NodeId::new(1)));
        assert!(s.owner().is_none());
        assert_eq!(s.sharers().unwrap().len(), 1);

        assert!(DirState::Uncached.owner().is_none());
        assert!(DirState::Uncached.sharers().is_none());
    }
}
