//! Structured protocol-error reporting.
//!
//! A healthy protocol never produces these values: every variant
//! describes a state the coherence machinery must not reach (a reply
//! with no outstanding request, a message kind a node cannot handle, a
//! directory record contradicting an owner's response). They used to be
//! `panic!`/`unreachable!` sites; surfacing them as data lets the
//! machine abort one run with a diagnosable [`ProtocolError`] instead of
//! killing the whole experiment process, which is what the fault
//! injector and paranoid invariant checker rely on.
//!
//! # Example
//!
//! ```
//! use dsm_protocol::{ProtocolError, ProtocolErrorKind};
//! use dsm_sim::{LineAddr, NodeId};
//!
//! let e = ProtocolError::new(ProtocolErrorKind::MissingLine, "upgrade of an absent line")
//!     .on_line(LineAddr::new(2))
//!     .at(NodeId::new(5));
//! assert_eq!(e.kind, ProtocolErrorKind::MissingLine);
//! assert!(e.to_string().contains("line L0x2"));
//! ```

use dsm_sim::{LineAddr, NodeId};
use std::fmt;

/// Classification of a protocol-level failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolErrorKind {
    /// A node received a message kind it never handles.
    UnexpectedMessage,
    /// A reply or response arrived with no matching outstanding request
    /// (no MSHR at a cache, no busy directory entry at a home).
    MissingRequest,
    /// A processor issued an operation while another was outstanding.
    DoubleIssue,
    /// A line the protocol state machine requires to be resident is
    /// absent from the cache.
    MissingLine,
    /// Directory state contradicts a message or a cache's view (e.g. a
    /// writeback from a non-owner, an owner response that does not match
    /// the recorded intervention).
    DirectoryMismatch,
    /// A line's memory-side reservations switched LL/SC schemes.
    SchemeMismatch,
}

impl ProtocolErrorKind {
    fn label(self) -> &'static str {
        match self {
            ProtocolErrorKind::UnexpectedMessage => "unexpected message",
            ProtocolErrorKind::MissingRequest => "missing outstanding request",
            ProtocolErrorKind::DoubleIssue => "double issue",
            ProtocolErrorKind::MissingLine => "missing cache line",
            ProtocolErrorKind::DirectoryMismatch => "directory mismatch",
            ProtocolErrorKind::SchemeMismatch => "reservation scheme mismatch",
        }
    }
}

/// A structured description of an illegal protocol state or transition.
///
/// Carries the offending block address and node when known, so a failed
/// run can be traced to a specific directory entry and cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// What class of rule was broken.
    pub kind: ProtocolErrorKind,
    /// The node at which the error was detected, if known.
    pub node: Option<NodeId>,
    /// The cache line involved, if known.
    pub line: Option<LineAddr>,
    /// Human-readable specifics (message kind, states observed, ...).
    pub detail: String,
}

impl ProtocolError {
    /// Creates an error with no location attached yet.
    pub fn new(kind: ProtocolErrorKind, detail: impl Into<String>) -> Self {
        ProtocolError {
            kind,
            node: None,
            line: None,
            detail: detail.into(),
        }
    }

    /// Attaches the cache line the error concerns.
    #[must_use]
    pub fn on_line(mut self, line: LineAddr) -> Self {
        self.line = Some(line);
        self
    }

    /// Attaches the node at which the error was detected.
    #[must_use]
    pub fn at(mut self, node: NodeId) -> Self {
        self.node = Some(node);
        self
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol error")?;
        if let Some(node) = self.node {
            write!(f, " at node {node}")?;
        }
        if let Some(line) = self.line {
            write!(f, ", line {line}")?;
        }
        write!(f, ": {}: {}", self.kind.label(), self.detail)
    }
}

impl std::error::Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location_and_kind() {
        let e = ProtocolError::new(
            ProtocolErrorKind::DirectoryMismatch,
            "writeback from sharer",
        )
        .on_line(LineAddr::new(9))
        .at(NodeId::new(3));
        let s = e.to_string();
        assert!(s.contains("node n3"), "{s}");
        assert!(s.contains("line L0x9"), "{s}");
        assert!(s.contains("directory mismatch"), "{s}");
        assert!(s.contains("writeback from sharer"), "{s}");
    }

    #[test]
    fn display_without_location() {
        let e = ProtocolError::new(ProtocolErrorKind::UnexpectedMessage, "Inv at a home node");
        let s = e.to_string();
        assert!(s.starts_with("protocol error: unexpected message"), "{s}");
    }
}
