//! The home-node protocol engine: directory, memory, and the
//! memory-side execution of atomic primitives.
//!
//! Every line has a home node (round-robin interleaving). The home
//! serializes transactions per line: while an intervention is
//! outstanding the directory entry is *busy* and later requests queue
//! behind it ("queued memory"). Intervention replies route through the
//! home, which yields the serialized-message counts of Table 1 (e.g. 4
//! messages for a store to a remote-exclusive line: requester → home →
//! owner → home → requester).

use crate::addrmap::AddressMap;
use crate::data::LineData;
use crate::directory::{Busy, BusyKind, DirEntry, DirState};
use crate::error::{ProtocolError, ProtocolErrorKind};
use crate::msg::{MemAtomicOp, Msg, MsgKind};
use crate::nodeset::NodeSet;
use crate::reservation::ReservationStore;
use crate::types::{CasVariant, OpResult, SyncPolicy, Value};
use dsm_sim::{LineAddr, NodeId, ProtoVariant, StableHashMap};

/// Messages emitted by a protocol engine during one handling step.
///
/// The caller (the machine simulator) assigns network timing and
/// delivers them.
#[derive(Debug, Default)]
pub struct Outbox {
    /// Messages to send, in emission order.
    pub msgs: Vec<Msg>,
}

impl Outbox {
    /// Creates an empty outbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a message.
    pub fn send(&mut self, msg: Msg) {
        self.msgs.push(msg);
    }

    /// Takes all queued messages.
    pub fn drain(&mut self) -> Vec<Msg> {
        std::mem::take(&mut self.msgs)
    }
}

/// The directory + memory-module controller of one node.
///
/// # Example
///
/// ```
/// use dsm_protocol::{AddressMap, HomeNode, Msg, MsgKind, Outbox};
/// use dsm_sim::{Addr, LineAddr, NodeId, ProcId};
///
/// let mut home = HomeNode::new(NodeId::new(0), 32, 256);
/// let map = AddressMap::new(32);
/// let mut out = Outbox::new();
/// home.handle(
///     Msg {
///         src: NodeId::new(1),
///         dst: NodeId::new(0),
///         line: LineAddr::new(0),
///         addr: Addr::new(0),
///         proc: ProcId::new(1),
///         chain: 1,
///         kind: MsgKind::GetS,
///     },
///     &map,
///     &mut out,
/// )
/// .unwrap();
/// // An uncached line yields an immediate shared-data reply.
/// assert!(matches!(out.msgs[0].kind, MsgKind::DataS { .. }));
/// assert_eq!(out.msgs[0].chain, 2);
/// ```
#[derive(Debug, Clone)]
pub struct HomeNode {
    node: NodeId,
    line_size: u64,
    dir: StableHashMap<LineAddr, DirEntry>,
    mem: StableHashMap<LineAddr, LineData>,
    resv: ReservationStore,
    /// Protocol variant (forwarding behaviour); [`ProtoVariant::Dash`]
    /// — the paper's base protocol — by default.
    proto: ProtoVariant,
    /// Mesh width, for nearest-sharer selection under MESI(F). Zero
    /// until [`set_topology`](Self::set_topology) is called.
    mesh_width: u32,
    /// Nodes per NUMA cluster (whole machine when flat).
    cluster_size: u32,
}

impl HomeNode {
    /// Creates the home controller for `node`.
    ///
    /// `llsc_pool` is the linked-list reservation free-pool capacity
    /// (§3.1); it only matters for lines configured with
    /// [`LlscScheme::LinkedList`](crate::types::LlscScheme::LinkedList).
    pub fn new(node: NodeId, line_size: u64, llsc_pool: usize) -> Self {
        HomeNode {
            node,
            line_size,
            dir: StableHashMap::default(),
            mem: StableHashMap::default(),
            resv: ReservationStore::new(llsc_pool),
            proto: ProtoVariant::Dash,
            mesh_width: 0,
            cluster_size: 0,
        }
    }

    /// Installs the protocol variant and the machine geometry the
    /// directory needs for forwarder selection: mesh width (nearest
    /// sharer under MESI(F)) and the node-count/cluster-count pair
    /// (cluster-local sharers under the hierarchical variant). Under the
    /// default [`ProtoVariant::Dash`] the geometry is unused and the
    /// home behaves exactly as the paper's base protocol.
    pub fn set_topology(
        &mut self,
        proto: ProtoVariant,
        mesh_width: u32,
        nodes: u32,
        clusters: u32,
    ) {
        self.proto = proto;
        self.mesh_width = mesh_width;
        self.cluster_size = (nodes / clusters.max(1)).max(1);
    }

    /// Manhattan distance on the mesh this home was configured with.
    fn mesh_hops(&self, a: NodeId, b: NodeId) -> u32 {
        let w = self.mesh_width.max(1);
        let (ax, ay) = (a.as_u32() % w, a.as_u32() / w);
        let (bx, by) = (b.as_u32() % w, b.as_u32() / w);
        ax.abs_diff(bx) + ay.abs_diff(by)
    }

    fn same_cluster(&self, a: NodeId, b: NodeId) -> bool {
        let cs = self.cluster_size.max(1);
        a.as_u32() / cs == b.as_u32() / cs
    }

    /// Picks the sharer that should supply a read miss directly, or
    /// `None` to serve from memory (always `None` under DASH).
    fn select_forwarder(&self, sharers: &NodeSet, requester: NodeId) -> Option<NodeId> {
        match self.proto {
            ProtoVariant::Dash => None,
            // MESI(F)-style: the sharer closest to the requester
            // supplies the line (ties broken by lowest node id).
            ProtoVariant::MesiF => sharers
                .iter()
                .filter(|&n| n != requester)
                .min_by_key(|&n| (self.mesh_hops(n, requester), n.as_u32())),
            // Hierarchical: only a sharer inside the requester's NUMA
            // cluster is worth asking; otherwise memory is no farther.
            ProtoVariant::Hier => sharers
                .iter()
                .filter(|&n| n != requester && self.same_cluster(n, requester))
                .min_by_key(|&n| (self.mesh_hops(n, requester), n.as_u32())),
        }
    }

    /// Pre-sizes the directory and memory tables for an expected number
    /// of distinct resident lines, avoiding rehash-and-grow churn during
    /// the run's warm-up.
    pub fn reserve_lines(&mut self, lines: usize) {
        self.dir.reserve(lines);
        self.mem.reserve(lines);
    }

    /// Reads a word directly from backing memory (for tests and the
    /// consistency oracle). Note that for a dirty line the current value
    /// lives in the owner's cache, not here.
    pub fn peek_word(&self, addr: dsm_sim::Addr) -> Value {
        let line = addr.line(self.line_size);
        self.mem.get(&line).map_or(0, |d| d.word(addr))
    }

    /// Writes a word directly into backing memory (initialization).
    pub fn poke_word(&mut self, addr: dsm_sim::Addr, value: Value) {
        let line = addr.line(self.line_size);
        self.mem_line(line).set_word(addr, value);
    }

    /// The directory state of `line` (for tests and invariant checks).
    /// Returns a reference — a `Shared` state owns a sharer bitmask, so
    /// cloning it on every read-only inspection would allocate.
    pub fn dir_state(&self, line: LineAddr) -> &DirState {
        static UNCACHED: DirState = DirState::Uncached;
        self.dir.get(&line).map_or(&UNCACHED, |e| &e.state)
    }

    /// `true` if `line` has an intervention outstanding.
    pub fn is_busy(&self, line: LineAddr) -> bool {
        self.dir.get(&line).is_some_and(DirEntry::is_busy)
    }

    /// Number of requests queued behind busy lines (for tests/metrics).
    pub fn queued_requests(&self) -> usize {
        self.dir.values().map(|e| e.waiters.len()).sum()
    }

    /// Access to the reservation store (for tests).
    pub fn reservations(&self) -> &ReservationStore {
        &self.resv
    }

    /// Number of lines with an intervention outstanding (for the
    /// quiescence conservation check: all must resolve by run end).
    pub fn busy_lines(&self) -> usize {
        self.dir.values().filter(|e| e.is_busy()).count()
    }

    /// Iterates over all directory entries (for invariant sweeps).
    pub fn dir_lines(&self) -> impl Iterator<Item = (LineAddr, &DirEntry)> {
        self.dir.iter().map(|(l, e)| (*l, e))
    }

    /// Forcibly invalidates every memory-side LL/SC reservation held
    /// here — the fault injector's reservation-storm hook.
    pub fn wipe_reservations(&mut self) {
        self.resv.invalidate_all();
    }

    /// Folds the home's full state — directory, backing memory, and
    /// memory-side reservations — into a checkpoint digest. Both tables
    /// are hashed in sorted line order, so equal states digest equally
    /// regardless of insertion history.
    pub fn digest(&self, h: &mut dsm_sim::StableHasher) {
        h.write_u32(self.node.as_u32());
        h.write_u64(self.line_size);
        let mut dir: Vec<(&LineAddr, &DirEntry)> = self.dir.iter().collect();
        dir.sort_unstable_by_key(|(l, _)| l.number());
        h.write_usize(dir.len());
        for (l, e) in dir {
            h.write_u64(l.number());
            e.digest(h);
        }
        let mut mem: Vec<(&LineAddr, &LineData)> = self.mem.iter().collect();
        mem.sort_unstable_by_key(|(l, _)| l.number());
        h.write_usize(mem.len());
        for (l, d) in mem {
            h.write_u64(l.number());
            d.digest(h);
        }
        self.resv.digest(h);
    }

    fn mem_line(&mut self, line: LineAddr) -> &mut LineData {
        let size = self.line_size;
        self.mem
            .entry(line)
            .or_insert_with(|| LineData::zeroed(size))
    }

    fn mem_clone(&mut self, line: LineAddr) -> LineData {
        self.mem_line(line).clone()
    }

    fn reply_to(&self, req: &Msg, kind: MsgKind) -> Msg {
        Msg {
            src: self.node,
            dst: req.src,
            line: req.line,
            addr: req.addr,
            proc: req.proc,
            chain: req.chain + 1,
            kind,
        }
    }

    fn set_state(&mut self, line: LineAddr, state: DirState) {
        self.dir.entry(line).or_default().state = state;
    }

    /// Moves `line`'s directory state out for in-place modification
    /// (leaving `Uncached` behind); the caller installs the successor
    /// state with [`set_state`](Self::set_state). Avoids cloning the
    /// sharer set on every transition.
    fn take_state(&mut self, line: LineAddr) -> DirState {
        std::mem::replace(
            &mut self.dir.entry(line).or_default().state,
            DirState::Uncached,
        )
    }

    fn send_invs(&self, msg: &Msg, others: &[NodeId], out: &mut Outbox) {
        for dest in others {
            out.send(Msg {
                src: self.node,
                dst: *dest,
                line: msg.line,
                addr: msg.addr,
                proc: msg.proc,
                chain: msg.chain + 1,
                kind: MsgKind::Inv { requester: msg.src },
            });
        }
    }

    /// A protocol error detected at this home, tagged with its location.
    fn err(&self, kind: ProtocolErrorKind, line: LineAddr, detail: String) -> ProtocolError {
        ProtocolError::new(kind, detail).on_line(line).at(self.node)
    }

    /// Handles one incoming message, emitting any responses into `out`.
    ///
    /// # Errors
    ///
    /// Returns a [`ProtocolError`] on protocol violations (e.g. a
    /// write-back from a node the directory does not consider the owner,
    /// or a response with no outstanding intervention), which indicate
    /// simulator bugs or injected corruption rather than recoverable
    /// conditions; the machine aborts the run with a diagnostic.
    pub fn handle(
        &mut self,
        msg: Msg,
        map: &AddressMap,
        out: &mut Outbox,
    ) -> Result<(), ProtocolError> {
        debug_assert_eq!(msg.dst, self.node, "message routed to the wrong home");
        match &msg.kind {
            MsgKind::GetS
            | MsgKind::GetX { .. }
            | MsgKind::AtomicMem { .. }
            | MsgKind::CasHome { .. }
            | MsgKind::ScInv => {
                if self.is_busy(msg.line) {
                    let line = msg.line;
                    let node = self.node;
                    self.dir
                        .get_mut(&line)
                        .ok_or_else(|| {
                            ProtocolError::new(
                                ProtocolErrorKind::MissingRequest,
                                "busy line has no directory entry",
                            )
                            .on_line(line)
                            .at(node)
                        })?
                        .waiters
                        .push_back(msg);
                    return Ok(());
                }
                self.handle_request(msg, map, out)
            }
            MsgKind::WriteBack { .. } => self.handle_writeback(msg, map, out),
            MsgKind::DropShared => {
                self.handle_drop_shared(&msg);
                Ok(())
            }
            MsgKind::FwdNak => self.handle_fwd_nak(msg, map, out),
            MsgKind::FwdShareAck => self.handle_share_ack(msg, map, out),
            MsgKind::XferData { .. } | MsgKind::SwbData { .. } | MsgKind::OwnerCasFail { .. } => {
                self.handle_owner_response(msg, map, out)
            }
            other => Err(self.err(
                ProtocolErrorKind::UnexpectedMessage,
                msg.line,
                format!("home node received unexpected message kind {other:?}"),
            )),
        }
    }

    fn handle_request(
        &mut self,
        msg: Msg,
        map: &AddressMap,
        out: &mut Outbox,
    ) -> Result<(), ProtocolError> {
        // Request payloads are all-`Copy` — bind them straight off the
        // message without cloning the enum.
        match msg.kind {
            MsgKind::GetS => self.handle_gets(msg, out),
            MsgKind::GetX { from_shared } => self.handle_getx(msg, from_shared, out),
            MsgKind::AtomicMem { op } => return self.handle_atomic_mem(msg, op, map, out),
            MsgKind::CasHome {
                expected,
                new,
                variant,
            } => self.handle_cas_home(msg, expected, new, variant, out),
            MsgKind::ScInv => self.handle_sc_inv(msg, out),
            _ => {
                return Err(self.err(
                    ProtocolErrorKind::UnexpectedMessage,
                    msg.line,
                    format!("queued message is not a request: {:?}", msg.kind),
                ))
            }
        }
        Ok(())
    }

    fn begin_intervention(
        &mut self,
        msg: Msg,
        kind: BusyKind,
        fwd_kind: MsgKind,
        owner: NodeId,
        out: &mut Outbox,
    ) {
        debug_assert_ne!(owner, msg.src, "owner re-requesting its own line");
        out.send(Msg {
            src: self.node,
            dst: owner,
            line: msg.line,
            addr: msg.addr,
            proc: msg.proc,
            chain: msg.chain + 1,
            kind: fwd_kind,
        });
        let line = msg.line;
        self.dir.entry(line).or_default().busy = Some(Busy {
            kind,
            request: msg,
            got_writeback: false,
            got_nak: false,
        });
    }

    fn handle_gets(&mut self, msg: Msg, out: &mut Outbox) {
        match *self.dir_state(msg.line) {
            DirState::Uncached | DirState::Shared(_) => {
                // MESI(F)/hierarchical variants: a clean sharer may
                // supply the line cache-to-cache instead of memory.
                let forwarder = match self.dir_state(msg.line) {
                    DirState::Shared(sharers) => self.select_forwarder(sharers, msg.src),
                    _ => None,
                };
                if let Some(f) = forwarder {
                    let fwd = MsgKind::FwdShare { requester: msg.src };
                    self.begin_intervention(msg, BusyKind::Share { forwarder: f }, fwd, f, out);
                    return;
                }
                let mut sharers = match self.take_state(msg.line) {
                    DirState::Shared(s) => s,
                    _ => NodeSet::new(),
                };
                sharers.insert(msg.src);
                self.set_state(msg.line, DirState::Shared(sharers));
                let data = self.mem_clone(msg.line);
                let reply = self.reply_to(&msg, MsgKind::DataS { data });
                out.send(reply);
            }
            DirState::Dirty(owner) => {
                self.begin_intervention(msg, BusyKind::GetS, MsgKind::FwdGetS, owner, out);
            }
        }
    }

    fn handle_getx(&mut self, msg: Msg, from_shared: bool, out: &mut Outbox) {
        match *self.dir_state(msg.line) {
            DirState::Uncached => {
                self.set_state(msg.line, DirState::Dirty(msg.src));
                let data = self.mem_clone(msg.line);
                let reply = self.reply_to(&msg, MsgKind::DataX { data, acks: 0 });
                out.send(reply);
            }
            DirState::Shared(_) => {
                let DirState::Shared(sharers) = self.take_state(msg.line) else {
                    unreachable!("state changed between inspection and take");
                };
                let requester_held_copy = sharers.contains(msg.src);
                let others: Vec<NodeId> = sharers.iter().filter(|&n| n != msg.src).collect();
                self.set_state(msg.line, DirState::Dirty(msg.src));
                self.send_invs(&msg, &others, out);
                let acks = others.len() as u32;
                let reply = if from_shared && requester_held_copy {
                    self.reply_to(&msg, MsgKind::UpgradeAck { acks })
                } else {
                    let data = self.mem_clone(msg.line);
                    self.reply_to(&msg, MsgKind::DataX { data, acks })
                };
                out.send(reply);
            }
            DirState::Dirty(owner) => {
                self.begin_intervention(msg, BusyKind::GetX, MsgKind::FwdGetX, owner, out);
            }
        }
    }

    fn handle_cas_home(
        &mut self,
        msg: Msg,
        expected: Value,
        new: Value,
        variant: CasVariant,
        out: &mut Outbox,
    ) {
        debug_assert_ne!(
            variant,
            CasVariant::Plain,
            "plain CAS executes in the cache"
        );
        match *self.dir_state(msg.line) {
            DirState::Dirty(owner) => {
                let fwd = MsgKind::FwdCas {
                    expected,
                    new,
                    addr: msg.addr,
                    variant,
                };
                self.begin_intervention(msg, BusyKind::Cas { variant }, fwd, owner, out);
            }
            _ => {
                // Memory has the most up-to-date copy: compare here.
                let observed = self.mem_line(msg.line).word(msg.addr);
                if observed == expected {
                    // Success: behave like INV — the requester acquires
                    // an exclusive copy and performs the swap locally.
                    let (requester_held_copy, others) = match self.take_state(msg.line) {
                        DirState::Shared(sharers) => (
                            sharers.contains(msg.src),
                            sharers.iter().filter(|&n| n != msg.src).collect(),
                        ),
                        _ => (false, Vec::new()),
                    };
                    self.set_state(msg.line, DirState::Dirty(msg.src));
                    self.send_invs(&msg, &others, out);
                    let data = if requester_held_copy {
                        None
                    } else {
                        Some(self.mem_clone(msg.line))
                    };
                    let reply = self.reply_to(
                        &msg,
                        MsgKind::CasGrant {
                            data,
                            acks: others.len() as u32,
                            observed,
                        },
                    );
                    out.send(reply);
                } else {
                    // Failure: deny a copy (INVd) or grant a shared copy
                    // (INVs) without disturbing other caches.
                    let share_data = match variant {
                        CasVariant::Share => {
                            let mut sharers = match self.take_state(msg.line) {
                                DirState::Shared(s) => s,
                                _ => NodeSet::new(),
                            };
                            sharers.insert(msg.src);
                            self.set_state(msg.line, DirState::Shared(sharers));
                            Some(self.mem_clone(msg.line))
                        }
                        _ => None,
                    };
                    let reply = self.reply_to(
                        &msg,
                        MsgKind::CasFail {
                            observed,
                            share_data,
                        },
                    );
                    out.send(reply);
                }
            }
        }
    }

    fn handle_sc_inv(&mut self, msg: Msg, out: &mut Outbox) {
        let succeeds =
            matches!(self.dir_state(msg.line), DirState::Shared(s) if s.contains(msg.src));
        match succeeds {
            true => {
                let DirState::Shared(sharers) = self.take_state(msg.line) else {
                    unreachable!("state changed between inspection and take");
                };
                let others: Vec<NodeId> = sharers.iter().filter(|&n| n != msg.src).collect();
                self.set_state(msg.line, DirState::Dirty(msg.src));
                self.send_invs(&msg, &others, out);
                let reply = self.reply_to(
                    &msg,
                    MsgKind::ScInvReply {
                        success: true,
                        acks: others.len() as u32,
                    },
                );
                out.send(reply);
            }
            false => {
                // Directory says exclusive elsewhere, uncached, or the
                // requester is no longer a sharer: the SC fails (§3).
                let reply = self.reply_to(
                    &msg,
                    MsgKind::ScInvReply {
                        success: false,
                        acks: 0,
                    },
                );
                out.send(reply);
            }
        }
    }

    fn handle_atomic_mem(
        &mut self,
        msg: Msg,
        op: MemAtomicOp,
        map: &AddressMap,
        out: &mut Outbox,
    ) -> Result<(), ProtocolError> {
        let cfg = map.config_for_line(msg.line);
        let line = msg.line;
        let addr = msg.addr;
        if cfg.policy == SyncPolicy::Inv {
            // Home-node atomics (the modern fourth implementation
            // point): the cache controller only routes Φ/CAS here when
            // `home_atomics` is set; everything else keeps INV handling.
            debug_assert!(
                cfg.home_atomics,
                "INV lines execute atomics in caches unless home_atomics is set"
            );
            debug_assert!(
                matches!(op, MemAtomicOp::Phi { .. } | MemAtomicOp::Cas { .. }),
                "home-node atomics are Φ/CAS only"
            );
            // A dirty copy holds the current data: recall it first so
            // the operation executes against up-to-date memory. The
            // recall and transfer legs count on the critical path
            // (request is re-handled with chain+2 once the owner
            // responds), giving the same 4-message cost as a remote
            // exclusive access in Table 1.
            if let DirState::Dirty(owner) = *self.dir_state(line) {
                self.begin_intervention(msg, BusyKind::Atomic, MsgKind::FwdGetX, owner, out);
                return Ok(());
            }
        }
        let word = self.mem_line(line).word(addr);
        let (result, wrote) = match op {
            MemAtomicOp::Load => (
                OpResult::Loaded {
                    value: word,
                    serial: None,
                    reserved: false,
                },
                false,
            ),
            MemAtomicOp::Store { value } => {
                self.mem_line(line).set_word(addr, value);
                self.resv.on_write(line, cfg.llsc);
                (OpResult::Stored, true)
            }
            MemAtomicOp::Phi { op } => {
                let new = op.apply(word);
                self.mem_line(line).set_word(addr, new);
                self.resv.on_write(line, cfg.llsc);
                (OpResult::Fetched { old: word }, true)
            }
            MemAtomicOp::Cas { expected, new } => {
                if word == expected {
                    self.mem_line(line).set_word(addr, new);
                    self.resv.on_write(line, cfg.llsc);
                    (
                        OpResult::CasDone {
                            success: true,
                            observed: word,
                        },
                        true,
                    )
                } else {
                    (
                        OpResult::CasDone {
                            success: false,
                            observed: word,
                        },
                        false,
                    )
                }
            }
            MemAtomicOp::Ll => {
                let grant = self
                    .resv
                    .load_linked(line, msg.proc, cfg.llsc)
                    .map_err(|e| e.at(self.node))?;
                (
                    OpResult::Loaded {
                        value: word,
                        serial: grant.serial,
                        reserved: grant.reserved,
                    },
                    false,
                )
            }
            MemAtomicOp::Sc { value, serial } => {
                let ok = self
                    .resv
                    .check_sc(line, msg.proc, serial, cfg.llsc)
                    .map_err(|e| e.at(self.node))?;
                if ok {
                    self.mem_line(line).set_word(addr, value);
                }
                (OpResult::ScDone { success: ok }, ok)
            }
        };

        match cfg.policy {
            SyncPolicy::Upd => {
                // UPD lines are never exclusive.
                debug_assert!(!matches!(self.dir_state(line), DirState::Dirty(_)));
                let mut sharers = match self.take_state(line) {
                    DirState::Shared(s) => s,
                    _ => NodeSet::new(),
                };
                // LL allocates a shared copy (the data comes back anyway).
                if matches!(op, MemAtomicOp::Ll) {
                    sharers.insert(msg.src);
                }
                let requester_cached = sharers.contains(msg.src);
                let mut acks = 0;
                if wrote {
                    let data = self.mem_clone(line);
                    for dest in sharers.iter().filter(|&n| n != msg.src) {
                        acks += 1;
                        out.send(Msg {
                            src: self.node,
                            dst: dest,
                            line,
                            addr,
                            proc: msg.proc,
                            chain: msg.chain + 1,
                            kind: MsgKind::Update {
                                data: data.clone(),
                                requester: msg.src,
                            },
                        });
                    }
                }
                let data = if requester_cached {
                    Some(self.mem_clone(line))
                } else {
                    None
                };
                let state = if sharers.is_empty() {
                    DirState::Uncached
                } else {
                    DirState::Shared(sharers)
                };
                self.set_state(line, state);
                let reply = self.reply_to(&msg, MsgKind::AtomicReply { result, acks, data });
                out.send(reply);
            }
            SyncPolicy::Inv => {
                // Home-node atomics. The operation already executed
                // against memory above; stale shared copies (read-only
                // loads cache normally on HNA lines) must be
                // invalidated when the operation wrote. The requester
                // holds no copy — it dropped any shared copy when it
                // issued — so it collects the acks and the line ends
                // uncached, ready for the next in-memory operation.
                let others: Vec<NodeId> = match self.take_state(line) {
                    DirState::Shared(s) => s.iter().filter(|&n| n != msg.src).collect(),
                    _ => Vec::new(),
                };
                let acks = if wrote {
                    self.send_invs(&msg, &others, out);
                    others.len() as u32
                } else if !others.is_empty() {
                    // Nothing written: existing copies stay valid.
                    let sharers = others.iter().copied().collect::<NodeSet>();
                    self.set_state(line, DirState::Shared(sharers));
                    0
                } else {
                    0
                };
                let reply = self.reply_to(
                    &msg,
                    MsgKind::AtomicReply {
                        result,
                        acks,
                        data: None,
                    },
                );
                out.send(reply);
            }
            SyncPolicy::Unc => {
                // UNC: caching disabled, plain request/reply.
                let reply = self.reply_to(
                    &msg,
                    MsgKind::AtomicReply {
                        result,
                        acks: 0,
                        data: None,
                    },
                );
                out.send(reply);
            }
        }
        Ok(())
    }

    fn handle_writeback(
        &mut self,
        msg: Msg,
        map: &AddressMap,
        out: &mut Outbox,
    ) -> Result<(), ProtocolError> {
        let data = match msg.kind {
            MsgKind::WriteBack { data } => data,
            ref other => {
                return Err(self.err(
                    ProtocolErrorKind::UnexpectedMessage,
                    msg.line,
                    format!("handle_writeback got {other:?}"),
                ))
            }
        };
        *self.mem_line(msg.line) = data;
        if self.is_busy(msg.line) {
            // Crossed with an intervention to the (former) owner.
            let node = self.node;
            let busy = self
                .dir
                .get_mut(&msg.line)
                .and_then(|e| e.busy.as_mut())
                .ok_or_else(|| {
                    ProtocolError::new(
                        ProtocolErrorKind::MissingRequest,
                        "busy line lost its intervention record",
                    )
                    .on_line(msg.line)
                    .at(node)
                })?;
            busy.got_writeback = true;
            if busy.got_nak {
                self.resolve_after_owner_gone(msg.line, map, out)?;
            }
            return Ok(());
        }
        if *self.dir_state(msg.line) != DirState::Dirty(msg.src) {
            return Err(self.err(
                ProtocolErrorKind::DirectoryMismatch,
                msg.line,
                format!(
                    "write-back from non-owner {} (state {:?})",
                    msg.src,
                    self.dir_state(msg.line)
                ),
            ));
        }
        self.set_state(msg.line, DirState::Uncached);
        Ok(())
    }

    fn handle_drop_shared(&mut self, msg: &Msg) {
        if let Some(entry) = self.dir.get_mut(&msg.line) {
            if let DirState::Shared(s) = &mut entry.state {
                s.remove(msg.src);
                if s.is_empty() {
                    entry.state = DirState::Uncached;
                }
            }
        }
    }

    fn handle_fwd_nak(
        &mut self,
        msg: Msg,
        map: &AddressMap,
        out: &mut Outbox,
    ) -> Result<(), ProtocolError> {
        let node = self.node;
        let busy = self
            .dir
            .get_mut(&msg.line)
            .and_then(|e| e.busy.as_mut())
            .ok_or_else(|| {
                ProtocolError::new(
                    ProtocolErrorKind::MissingRequest,
                    format!("NAK from {} without an outstanding intervention", msg.src),
                )
                .on_line(msg.line)
                .at(node)
            })?;
        if let BusyKind::Share { forwarder } = &busy.kind {
            let forwarder = *forwarder;
            // The clean sharer silently evicted its copy; unlike an
            // exclusive owner there is no write-back to wait for.
            // Forget the stale sharer and re-serve the read from
            // memory; the wasted forward + NAK legs stay on the
            // request's critical path.
            let busy = self
                .dir
                .get_mut(&msg.line)
                .and_then(|e| e.busy.take())
                .expect("checked busy above");
            if let Some(entry) = self.dir.get_mut(&msg.line) {
                if let DirState::Shared(s) = &mut entry.state {
                    s.remove(forwarder);
                    if s.is_empty() {
                        entry.state = DirState::Uncached;
                    }
                }
            }
            let mut request = busy.request;
            request.chain += 2;
            self.handle_request(request, map, out)?;
            return self.drain_waiters(msg.line, map, out);
        }
        busy.got_nak = true;
        if busy.got_writeback {
            self.resolve_after_owner_gone(msg.line, map, out)?;
        }
        // Otherwise wait: the owner's write-back is in flight and must
        // arrive (E lines always write back when dropped or evicted).
        Ok(())
    }

    /// A [`MsgKind::FwdShare`] forwarder confirms it supplied the data:
    /// record the requester as a sharer and release the line.
    fn handle_share_ack(
        &mut self,
        msg: Msg,
        map: &AddressMap,
        out: &mut Outbox,
    ) -> Result<(), ProtocolError> {
        let busy = self
            .dir
            .get_mut(&msg.line)
            .and_then(|e| e.busy.take())
            .ok_or_else(|| {
                self.err(
                    ProtocolErrorKind::MissingRequest,
                    msg.line,
                    format!("FwdShareAck from {} without an intervention", msg.src),
                )
            })?;
        let BusyKind::Share { forwarder } = &busy.kind else {
            return Err(self.err(
                ProtocolErrorKind::DirectoryMismatch,
                msg.line,
                format!("FwdShareAck does not match intervention {:?}", busy.kind),
            ));
        };
        let forwarder = *forwarder;
        if forwarder != msg.src {
            return Err(self.err(
                ProtocolErrorKind::DirectoryMismatch,
                msg.line,
                format!("FwdShareAck from {} but {forwarder} was asked", msg.src),
            ));
        }
        let mut sharers = match self.take_state(msg.line) {
            DirState::Shared(s) => s,
            _ => NodeSet::new(),
        };
        sharers.insert(busy.request.src);
        self.set_state(msg.line, DirState::Shared(sharers));
        self.drain_waiters(msg.line, map, out)
    }

    /// The forwarded-to owner turned out to have written the line back:
    /// serve the original request from (now current) memory. The two
    /// extra legs (forward + NAK) count on the request's critical path.
    fn resolve_after_owner_gone(
        &mut self,
        line: LineAddr,
        map: &AddressMap,
        out: &mut Outbox,
    ) -> Result<(), ProtocolError> {
        let busy = self
            .dir
            .get_mut(&line)
            .and_then(|e| {
                let busy = e.busy.take()?;
                e.state = DirState::Uncached;
                Some(busy)
            })
            .ok_or_else(|| {
                self.err(
                    ProtocolErrorKind::MissingRequest,
                    line,
                    "resolving a non-busy line".into(),
                )
            })?;
        let mut request = busy.request;
        request.chain += 2;
        self.handle_request(request, map, out)?;
        self.drain_waiters(line, map, out)
    }

    fn handle_owner_response(
        &mut self,
        msg: Msg,
        map: &AddressMap,
        out: &mut Outbox,
    ) -> Result<(), ProtocolError> {
        let busy = self
            .dir
            .get_mut(&msg.line)
            .and_then(|e| e.busy.take())
            .ok_or_else(|| {
                self.err(
                    ProtocolErrorKind::MissingRequest,
                    msg.line,
                    format!(
                        "owner response {:?} from {} without an intervention",
                        msg.kind, msg.src
                    ),
                )
            })?;
        let req = busy.request;
        // The response payload is moved out of `msg.kind` exactly once:
        // one (inline, allocation-free) copy refreshes memory, the
        // original moves on into the reply.
        match (&busy.kind, msg.kind) {
            (BusyKind::GetS, MsgKind::SwbData { data }) => {
                // Owner downgraded to shared.
                let mut sharers = NodeSet::singleton(msg.src);
                sharers.insert(req.src);
                self.set_state(msg.line, DirState::Shared(sharers));
                *self.mem_line(msg.line) = data.clone();
                out.send(Msg {
                    src: self.node,
                    dst: req.src,
                    line: req.line,
                    addr: req.addr,
                    proc: req.proc,
                    chain: msg.chain + 1,
                    kind: MsgKind::DataS { data },
                });
            }
            (BusyKind::GetX, MsgKind::XferData { data }) => {
                self.set_state(msg.line, DirState::Dirty(req.src));
                *self.mem_line(msg.line) = data.clone();
                out.send(Msg {
                    src: self.node,
                    dst: req.src,
                    line: req.line,
                    addr: req.addr,
                    proc: req.proc,
                    chain: msg.chain + 1,
                    kind: MsgKind::DataX { data, acks: 0 },
                });
            }
            (BusyKind::Cas { .. }, MsgKind::XferData { data }) => {
                // Compare succeeded at the owner; requester acquires an
                // exclusive copy and applies the swap locally.
                let MsgKind::CasHome { expected, .. } = req.kind else {
                    return Err(self.err(
                        ProtocolErrorKind::DirectoryMismatch,
                        msg.line,
                        format!("CAS busy state holds a non-CAS request {:?}", req.kind),
                    ));
                };
                self.set_state(msg.line, DirState::Dirty(req.src));
                *self.mem_line(msg.line) = data.clone();
                out.send(Msg {
                    src: self.node,
                    dst: req.src,
                    line: req.line,
                    addr: req.addr,
                    proc: req.proc,
                    chain: msg.chain + 1,
                    kind: MsgKind::CasGrant {
                        data: Some(data),
                        acks: 0,
                        observed: expected,
                    },
                });
            }
            (
                BusyKind::Cas { .. },
                MsgKind::OwnerCasFail {
                    observed,
                    data,
                    kept_exclusive,
                },
            ) => {
                *self.mem_line(msg.line) = data.clone();
                let share_data = if kept_exclusive {
                    // INVd: owner kept its exclusive copy; requester gets
                    // nothing.
                    self.set_state(msg.line, DirState::Dirty(msg.src));
                    None
                } else {
                    // INVs: owner downgraded; requester gets a read-only
                    // copy.
                    let mut sharers = NodeSet::singleton(msg.src);
                    sharers.insert(req.src);
                    self.set_state(msg.line, DirState::Shared(sharers));
                    Some(data)
                };
                out.send(Msg {
                    src: self.node,
                    dst: req.src,
                    line: req.line,
                    addr: req.addr,
                    proc: req.proc,
                    chain: msg.chain + 1,
                    kind: MsgKind::CasFail {
                        observed,
                        share_data,
                    },
                });
            }
            (BusyKind::Atomic, MsgKind::XferData { data }) => {
                // Home-node atomic recalled a dirty copy: memory is now
                // current, so re-run the operation here. The recall and
                // transfer legs ride on the request's critical path.
                *self.mem_line(msg.line) = data;
                self.set_state(msg.line, DirState::Uncached);
                let mut request = req;
                request.chain += 2;
                self.handle_request(request, map, out)?;
            }
            (kind, resp) => {
                return Err(self.err(
                    ProtocolErrorKind::DirectoryMismatch,
                    msg.line,
                    format!("owner response {resp:?} does not match intervention {kind:?}"),
                ))
            }
        }
        self.drain_waiters(msg.line, map, out)
    }

    /// Serves queued requests after a transaction completes; stops if a
    /// served request makes the line busy again.
    fn drain_waiters(
        &mut self,
        line: LineAddr,
        map: &AddressMap,
        out: &mut Outbox,
    ) -> Result<(), ProtocolError> {
        loop {
            let entry = self.dir.entry(line).or_default();
            if entry.is_busy() {
                return Ok(());
            }
            let Some(next) = entry.waiters.pop_front() else {
                return Ok(());
            };
            self.handle_request(next, map, out)?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_sim::{Addr, ProcId};

    const HOME: NodeId = NodeId::new(0);
    const R1: NodeId = NodeId::new(1);
    const R2: NodeId = NodeId::new(2);
    const LINE: LineAddr = LineAddr::new(0);
    const A: Addr = Addr::new(0);

    fn home() -> HomeNode {
        HomeNode::new(HOME, 32, 64)
    }

    fn map() -> AddressMap {
        AddressMap::new(32)
    }

    fn req(src: NodeId, kind: MsgKind) -> Msg {
        Msg {
            src,
            dst: HOME,
            line: LINE,
            addr: A,
            proc: ProcId::new(src.as_u32()),
            chain: 1,
            kind,
        }
    }

    fn handle(h: &mut HomeNode, m: Msg) -> Vec<Msg> {
        let mut out = Outbox::new();
        h.handle(m, &map(), &mut out).unwrap();
        out.drain()
    }

    #[test]
    fn gets_on_uncached_replies_data_s() {
        let mut h = home();
        h.poke_word(A, 42);
        let out = handle(&mut h, req(R1, MsgKind::GetS));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dst, R1);
        assert_eq!(out[0].chain, 2);
        match &out[0].kind {
            MsgKind::DataS { data } => assert_eq!(data.word(A), 42),
            other => panic!("expected DataS, got {other:?}"),
        }
        assert!(matches!(h.dir_state(LINE), DirState::Shared(_)));
    }

    #[test]
    fn getx_on_shared_invalidates_others() {
        let mut h = home();
        for r in [R1, R2] {
            handle(&mut h, req(r, MsgKind::GetS));
        }
        let out = handle(&mut h, req(R1, MsgKind::GetX { from_shared: true }));
        // One Inv to R2, one UpgradeAck to R1.
        assert_eq!(out.len(), 2);
        let inv = out
            .iter()
            .find(|m| matches!(m.kind, MsgKind::Inv { .. }))
            .unwrap();
        assert_eq!(inv.dst, R2);
        assert_eq!(inv.chain, 2);
        let ack = out
            .iter()
            .find(|m| matches!(m.kind, MsgKind::UpgradeAck { .. }))
            .unwrap();
        assert_eq!(ack.dst, R1);
        match ack.kind {
            MsgKind::UpgradeAck { acks } => assert_eq!(acks, 1),
            _ => unreachable!(),
        }
        assert_eq!(h.dir_state(LINE), &DirState::Dirty(R1));
    }

    #[test]
    fn getx_on_dirty_forwards_and_routes_through_home() {
        let mut h = home();
        handle(&mut h, req(R1, MsgKind::GetX { from_shared: false }));
        assert_eq!(h.dir_state(LINE), &DirState::Dirty(R1));

        // R2 wants it: home forwards to R1.
        let out = handle(&mut h, req(R2, MsgKind::GetX { from_shared: false }));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dst, R1);
        assert!(matches!(out[0].kind, MsgKind::FwdGetX));
        assert_eq!(out[0].chain, 2);
        assert!(h.is_busy(LINE));

        // Owner responds with the line; home replies to R2 with chain 4.
        let mut xfer = req(
            R1,
            MsgKind::XferData {
                data: LineData::zeroed(32),
            },
        );
        xfer.chain = 3;
        let out = handle(&mut h, xfer);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dst, R2);
        assert_eq!(
            out[0].chain, 4,
            "Table 1: remote exclusive store = 4 serialized messages"
        );
        assert!(matches!(out[0].kind, MsgKind::DataX { .. }));
        assert_eq!(h.dir_state(LINE), &DirState::Dirty(R2));
        assert!(!h.is_busy(LINE));
    }

    #[test]
    fn requests_queue_behind_busy_lines() {
        let mut h = home();
        handle(&mut h, req(R1, MsgKind::GetX { from_shared: false }));
        handle(&mut h, req(R2, MsgKind::GetX { from_shared: false })); // busy now
        let out = handle(&mut h, req(NodeId::new(3), MsgKind::GetS));
        assert!(out.is_empty(), "request while busy must queue, not reply");
        assert_eq!(h.queued_requests(), 1);

        // Owner response releases the queue: reply to R2 AND service of
        // node 3's GetS (a new forward to the new owner R2).
        let mut xfer = req(
            R1,
            MsgKind::XferData {
                data: LineData::zeroed(32),
            },
        );
        xfer.chain = 3;
        let out = handle(&mut h, xfer);
        assert_eq!(out.len(), 2);
        assert!(matches!(out[0].kind, MsgKind::DataX { .. }));
        assert!(matches!(out[1].kind, MsgKind::FwdGetS));
        assert_eq!(out[1].dst, R2);
        assert_eq!(h.queued_requests(), 0);
    }

    #[test]
    fn writeback_nak_race_resolves_from_memory() {
        let mut h = home();
        handle(&mut h, req(R1, MsgKind::GetX { from_shared: false }));
        // R2 requests; home forwards to R1 and goes busy.
        handle(&mut h, req(R2, MsgKind::GetS));
        assert!(h.is_busy(LINE));

        // R1's write-back (sent before it saw the forward) arrives.
        let mut wb_data = LineData::zeroed(32);
        wb_data.set_word(A, 77);
        handle(&mut h, req(R1, MsgKind::WriteBack { data: wb_data }));
        assert!(h.is_busy(LINE), "still waiting for the NAK");

        // R1 NAKs the forward; home serves R2 from memory.
        let out = handle(&mut h, req(R1, MsgKind::FwdNak));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dst, R2);
        match &out[0].kind {
            MsgKind::DataS { data } => assert_eq!(data.word(A), 77),
            other => panic!("expected DataS, got {other:?}"),
        }
        // Forward + NAK legs count on the critical path: 1+2 extra, +1.
        assert_eq!(out[0].chain, 4);
        assert!(!h.is_busy(LINE));
    }

    #[test]
    fn nak_before_writeback_also_resolves() {
        let mut h = home();
        handle(&mut h, req(R1, MsgKind::GetX { from_shared: false }));
        handle(&mut h, req(R2, MsgKind::GetS));
        let out = handle(&mut h, req(R1, MsgKind::FwdNak));
        assert!(out.is_empty(), "must wait for the write-back");
        let out = handle(
            &mut h,
            req(
                R1,
                MsgKind::WriteBack {
                    data: LineData::zeroed(32),
                },
            ),
        );
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].kind, MsgKind::DataS { .. }));
    }

    #[test]
    fn plain_writeback_returns_line_to_memory() {
        let mut h = home();
        handle(&mut h, req(R1, MsgKind::GetX { from_shared: false }));
        let mut data = LineData::zeroed(32);
        data.set_word(A, 5);
        handle(&mut h, req(R1, MsgKind::WriteBack { data }));
        assert_eq!(h.dir_state(LINE), &DirState::Uncached);
        assert_eq!(h.peek_word(A), 5);
    }

    #[test]
    fn drop_shared_removes_sharer() {
        let mut h = home();
        handle(&mut h, req(R1, MsgKind::GetS));
        handle(&mut h, req(R2, MsgKind::GetS));
        handle(&mut h, req(R1, MsgKind::DropShared));
        match h.dir_state(LINE) {
            DirState::Shared(s) => {
                assert!(!s.contains(R1));
                assert!(s.contains(R2));
            }
            other => panic!("expected Shared, got {other:?}"),
        }
        handle(&mut h, req(R2, MsgKind::DropShared));
        assert_eq!(h.dir_state(LINE), &DirState::Uncached);
    }

    #[test]
    fn cas_home_success_grants_exclusive() {
        let mut h = home();
        h.poke_word(A, 10);
        let out = handle(
            &mut h,
            req(
                R1,
                MsgKind::CasHome {
                    expected: 10,
                    new: 11,
                    variant: CasVariant::Deny,
                },
            ),
        );
        assert_eq!(out.len(), 1);
        match &out[0].kind {
            MsgKind::CasGrant {
                data,
                acks,
                observed,
            } => {
                assert!(data.is_some());
                assert_eq!(*acks, 0);
                assert_eq!(*observed, 10);
            }
            other => panic!("expected CasGrant, got {other:?}"),
        }
        assert_eq!(h.dir_state(LINE), &DirState::Dirty(R1));
    }

    #[test]
    fn cas_home_failure_deny_gives_no_copy() {
        let mut h = home();
        h.poke_word(A, 10);
        let out = handle(
            &mut h,
            req(
                R1,
                MsgKind::CasHome {
                    expected: 99,
                    new: 11,
                    variant: CasVariant::Deny,
                },
            ),
        );
        match &out[0].kind {
            MsgKind::CasFail {
                observed,
                share_data,
            } => {
                assert_eq!(*observed, 10);
                assert!(share_data.is_none());
            }
            other => panic!("expected CasFail, got {other:?}"),
        }
        assert_eq!(
            h.dir_state(LINE),
            &DirState::Uncached,
            "INVd: no copy handed out"
        );
    }

    #[test]
    fn cas_home_failure_share_gives_read_only_copy() {
        let mut h = home();
        h.poke_word(A, 10);
        let out = handle(
            &mut h,
            req(
                R1,
                MsgKind::CasHome {
                    expected: 99,
                    new: 11,
                    variant: CasVariant::Share,
                },
            ),
        );
        match &out[0].kind {
            MsgKind::CasFail { share_data, .. } => assert!(share_data.is_some()),
            other => panic!("expected CasFail, got {other:?}"),
        }
        match h.dir_state(LINE) {
            DirState::Shared(s) => assert!(s.contains(R1)),
            other => panic!("expected Shared, got {other:?}"),
        }
    }

    #[test]
    fn cas_home_forwards_to_dirty_owner() {
        let mut h = home();
        handle(&mut h, req(R1, MsgKind::GetX { from_shared: false }));
        let out = handle(
            &mut h,
            req(
                R2,
                MsgKind::CasHome {
                    expected: 0,
                    new: 1,
                    variant: CasVariant::Share,
                },
            ),
        );
        assert!(matches!(out[0].kind, MsgKind::FwdCas { .. }));
        assert_eq!(out[0].dst, R1);

        // Owner reports failure, keeping nothing (INVs): shared copies.
        let mut fail = req(
            R1,
            MsgKind::OwnerCasFail {
                observed: 9,
                data: LineData::zeroed(32),
                kept_exclusive: false,
            },
        );
        fail.chain = 3;
        let out = handle(&mut h, fail);
        assert_eq!(out[0].dst, R2);
        assert_eq!(out[0].chain, 4);
        match &out[0].kind {
            MsgKind::CasFail {
                observed,
                share_data,
            } => {
                assert_eq!(*observed, 9);
                assert!(share_data.is_some());
            }
            other => panic!("expected CasFail, got {other:?}"),
        }
        match h.dir_state(LINE) {
            DirState::Shared(s) => {
                assert!(s.contains(R1) && s.contains(R2));
            }
            other => panic!("expected Shared, got {other:?}"),
        }
    }

    #[test]
    fn sc_inv_succeeds_only_for_sharers() {
        let mut h = home();
        handle(&mut h, req(R1, MsgKind::GetS));
        handle(&mut h, req(R2, MsgKind::GetS));
        let out = handle(&mut h, req(R1, MsgKind::ScInv));
        let reply = out
            .iter()
            .find(|m| matches!(m.kind, MsgKind::ScInvReply { .. }))
            .unwrap();
        match reply.kind {
            MsgKind::ScInvReply { success, acks } => {
                assert!(success);
                assert_eq!(acks, 1);
            }
            _ => unreachable!(),
        }
        assert_eq!(h.dir_state(LINE), &DirState::Dirty(R1));

        // Non-sharer SC fails (line now exclusive).
        let out = handle(&mut h, req(R2, MsgKind::ScInv));
        match out[0].kind {
            MsgKind::ScInvReply { success, .. } => assert!(!success),
            _ => unreachable!(),
        }
    }

    #[test]
    fn unc_atomic_fetch_and_add() {
        let mut h = home();
        let mut m = map();
        m.register(
            A,
            crate::types::SyncConfig {
                policy: SyncPolicy::Unc,
                ..Default::default()
            },
        );
        let mut out = Outbox::new();
        h.handle(
            req(
                R1,
                MsgKind::AtomicMem {
                    op: MemAtomicOp::Phi {
                        op: crate::types::PhiOp::Add(5),
                    },
                },
            ),
            &m,
            &mut out,
        )
        .unwrap();
        let msgs = out.drain();
        assert_eq!(msgs.len(), 1);
        assert_eq!(
            msgs[0].chain, 2,
            "Table 1: uncached store = 2 serialized messages"
        );
        match msgs[0].kind {
            MsgKind::AtomicReply {
                result: OpResult::Fetched { old },
                acks,
                ..
            } => {
                assert_eq!(old, 0);
                assert_eq!(acks, 0);
            }
            ref other => panic!("expected AtomicReply, got {other:?}"),
        }
        assert_eq!(h.peek_word(A), 5);
    }

    #[test]
    fn upd_write_updates_sharers() {
        let mut h = home();
        let mut m = map();
        m.register(
            A,
            crate::types::SyncConfig {
                policy: SyncPolicy::Upd,
                ..Default::default()
            },
        );
        // R1 and R2 read (allocating shared copies) via GetS.
        let mut out = Outbox::new();
        h.handle(req(R1, MsgKind::GetS), &m, &mut out).unwrap();
        h.handle(req(R2, MsgKind::GetS), &m, &mut out).unwrap();
        out.drain();

        // R1 stores: R2 gets an Update, R1 gets the reply with new data.
        let mut out = Outbox::new();
        h.handle(
            req(
                R1,
                MsgKind::AtomicMem {
                    op: MemAtomicOp::Store { value: 8 },
                },
            ),
            &m,
            &mut out,
        )
        .unwrap();
        let msgs = out.drain();
        assert_eq!(msgs.len(), 2);
        let upd = msgs
            .iter()
            .find(|x| matches!(x.kind, MsgKind::Update { .. }))
            .unwrap();
        assert_eq!(upd.dst, R2);
        let reply = msgs
            .iter()
            .find(|x| matches!(x.kind, MsgKind::AtomicReply { .. }))
            .unwrap();
        match &reply.kind {
            MsgKind::AtomicReply { acks, data, .. } => {
                assert_eq!(*acks, 1);
                assert_eq!(data.as_ref().unwrap().word(A), 8);
            }
            _ => unreachable!(),
        }
        assert_eq!(h.peek_word(A), 8);
    }

    #[test]
    fn upd_failed_cas_sends_no_updates() {
        let mut h = home();
        let mut m = map();
        m.register(
            A,
            crate::types::SyncConfig {
                policy: SyncPolicy::Upd,
                ..Default::default()
            },
        );
        let mut out = Outbox::new();
        h.handle(req(R2, MsgKind::GetS), &m, &mut out).unwrap();
        out.drain();
        let mut out = Outbox::new();
        h.handle(
            req(
                R1,
                MsgKind::AtomicMem {
                    op: MemAtomicOp::Cas {
                        expected: 9,
                        new: 1,
                    },
                },
            ),
            &m,
            &mut out,
        )
        .unwrap();
        let msgs = out.drain();
        assert_eq!(msgs.len(), 1, "failed CAS must not generate updates");
        match msgs[0].kind {
            MsgKind::AtomicReply {
                result: OpResult::CasDone { success, observed },
                ..
            } => {
                assert!(!success);
                assert_eq!(observed, 0);
            }
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mesif_forwards_read_to_sharer_and_acks() {
        let mut h = home();
        h.set_topology(ProtoVariant::MesiF, 8, 64, 1);
        h.poke_word(A, 9);
        handle(&mut h, req(R1, MsgKind::GetS));

        // Second reader: the existing sharer supplies the line.
        let out = handle(&mut h, req(R2, MsgKind::GetS));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dst, R1);
        assert_eq!(out[0].chain, 2);
        match out[0].kind {
            MsgKind::FwdShare { requester } => assert_eq!(requester, R2),
            ref other => panic!("expected FwdShare, got {other:?}"),
        }
        assert!(h.is_busy(LINE));

        // Forwarder confirms; requester becomes a sharer, line released.
        let mut ack = req(R1, MsgKind::FwdShareAck);
        ack.chain = 3;
        let out = handle(&mut h, ack);
        assert!(out.is_empty(), "the data leg went straight to R2");
        assert!(!h.is_busy(LINE));
        match h.dir_state(LINE) {
            DirState::Shared(s) => assert!(s.contains(R1) && s.contains(R2)),
            other => panic!("expected Shared, got {other:?}"),
        }
    }

    #[test]
    fn mesif_stale_sharer_nak_falls_back_to_memory() {
        let mut h = home();
        h.set_topology(ProtoVariant::MesiF, 8, 64, 1);
        h.poke_word(A, 13);
        handle(&mut h, req(R1, MsgKind::GetS));
        handle(&mut h, req(R2, MsgKind::GetS)); // FwdShare to R1, busy

        // R1 silently evicted: NAK. Home serves memory with the wasted
        // forward + NAK legs on the critical path.
        let mut nak = req(R1, MsgKind::FwdNak);
        nak.chain = 3;
        let out = handle(&mut h, nak);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dst, R2);
        assert_eq!(out[0].chain, 4);
        match &out[0].kind {
            MsgKind::DataS { data } => assert_eq!(data.word(A), 13),
            other => panic!("expected DataS, got {other:?}"),
        }
        assert!(!h.is_busy(LINE));
        match h.dir_state(LINE) {
            DirState::Shared(s) => {
                assert!(!s.contains(R1), "stale sharer pruned");
                assert!(s.contains(R2));
            }
            other => panic!("expected Shared, got {other:?}"),
        }
    }

    #[test]
    fn hier_forwards_only_within_the_cluster() {
        let mut h = home();
        // 64 nodes, 4 clusters of 16: node 1 and node 2 share cluster
        // 0; node 20 lives in cluster 1.
        h.set_topology(ProtoVariant::Hier, 8, 64, 4);
        handle(&mut h, req(R1, MsgKind::GetS));

        // Remote-cluster reader: no eligible forwarder, memory serves.
        let out = handle(&mut h, req(NodeId::new(20), MsgKind::GetS));
        assert!(matches!(out[0].kind, MsgKind::DataS { .. }));

        // Same-cluster reader: the cluster-local sharer forwards.
        let out = handle(&mut h, req(R2, MsgKind::GetS));
        assert!(matches!(out[0].kind, MsgKind::FwdShare { .. }));
        assert_eq!(out[0].dst, R1);
    }

    fn hna_map() -> AddressMap {
        let mut m = AddressMap::new(32);
        m.register(
            A,
            crate::types::SyncConfig {
                policy: SyncPolicy::Inv,
                home_atomics: true,
                ..Default::default()
            },
        );
        m
    }

    fn handle_hna(h: &mut HomeNode, m: Msg) -> Vec<Msg> {
        let mut out = Outbox::new();
        h.handle(m, &hna_map(), &mut out).unwrap();
        out.drain()
    }

    #[test]
    fn home_atomic_on_uncached_line_is_two_messages() {
        let mut h = home();
        h.poke_word(A, 40);
        let out = handle_hna(
            &mut h,
            req(
                R1,
                MsgKind::AtomicMem {
                    op: MemAtomicOp::Phi {
                        op: crate::types::PhiOp::Add(2),
                    },
                },
            ),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].chain, 2, "uncached home-node atomic = 2 messages");
        match out[0].kind {
            MsgKind::AtomicReply {
                result: OpResult::Fetched { old },
                acks,
                ref data,
            } => {
                assert_eq!(old, 40);
                assert_eq!(acks, 0);
                assert!(data.is_none());
            }
            ref other => panic!("expected AtomicReply, got {other:?}"),
        }
        assert_eq!(h.peek_word(A), 42);
        assert_eq!(h.dir_state(LINE), &DirState::Uncached);
    }

    #[test]
    fn home_atomic_invalidates_stale_sharers() {
        let mut h = home();
        // R2 holds a read-only copy (loads cache normally on HNA lines).
        handle_hna(&mut h, req(R2, MsgKind::GetS));
        let out = handle_hna(
            &mut h,
            req(
                R1,
                MsgKind::AtomicMem {
                    op: MemAtomicOp::Phi {
                        op: crate::types::PhiOp::Add(1),
                    },
                },
            ),
        );
        assert_eq!(out.len(), 2);
        let inv = out
            .iter()
            .find(|m| matches!(m.kind, MsgKind::Inv { .. }))
            .unwrap();
        assert_eq!(inv.dst, R2);
        match inv.kind {
            MsgKind::Inv { requester } => assert_eq!(requester, R1),
            _ => unreachable!(),
        }
        let reply = out
            .iter()
            .find(|m| matches!(m.kind, MsgKind::AtomicReply { .. }))
            .unwrap();
        match reply.kind {
            MsgKind::AtomicReply { acks, .. } => assert_eq!(acks, 1),
            _ => unreachable!(),
        }
        assert_eq!(h.dir_state(LINE), &DirState::Uncached);
    }

    #[test]
    fn failed_home_cas_leaves_sharers_alone() {
        let mut h = home();
        handle_hna(&mut h, req(R2, MsgKind::GetS));
        let out = handle_hna(
            &mut h,
            req(
                R1,
                MsgKind::AtomicMem {
                    op: MemAtomicOp::Cas {
                        expected: 99,
                        new: 1,
                    },
                },
            ),
        );
        assert_eq!(out.len(), 1, "nothing written: no invalidations");
        match out[0].kind {
            MsgKind::AtomicReply {
                result: OpResult::CasDone { success, .. },
                acks,
                ..
            } => {
                assert!(!success);
                assert_eq!(acks, 0);
            }
            ref other => panic!("expected AtomicReply, got {other:?}"),
        }
        match h.dir_state(LINE) {
            DirState::Shared(s) => assert!(s.contains(R2), "copy still valid"),
            other => panic!("expected Shared, got {other:?}"),
        }
    }

    #[test]
    fn home_atomic_recalls_dirty_line_then_executes() {
        let mut h = home();
        // R2 owns the line exclusively (e.g. via a plain store).
        handle_hna(&mut h, req(R2, MsgKind::GetX { from_shared: false }));
        let out = handle_hna(
            &mut h,
            req(
                R1,
                MsgKind::AtomicMem {
                    op: MemAtomicOp::Phi {
                        op: crate::types::PhiOp::Add(1),
                    },
                },
            ),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dst, R2);
        assert!(matches!(out[0].kind, MsgKind::FwdGetX));
        assert!(h.is_busy(LINE));

        // Owner transfers its (dirty) copy; the operation then runs
        // against current memory: 4 serialized messages, as for a
        // remote-exclusive access in Table 1.
        let mut data = LineData::zeroed(32);
        data.set_word(A, 70);
        let mut xfer = req(R2, MsgKind::XferData { data });
        xfer.chain = 3;
        let out = handle_hna(&mut h, xfer);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dst, R1);
        assert_eq!(out[0].chain, 4);
        match out[0].kind {
            MsgKind::AtomicReply {
                result: OpResult::Fetched { old },
                ..
            } => assert_eq!(old, 70),
            ref other => panic!("expected AtomicReply, got {other:?}"),
        }
        assert_eq!(h.peek_word(A), 71);
        assert_eq!(h.dir_state(LINE), &DirState::Uncached);
        assert!(!h.is_busy(LINE));
    }

    #[test]
    fn unc_ll_sc_round_trip() {
        let mut h = home();
        let mut m = map();
        m.register(
            A,
            crate::types::SyncConfig {
                policy: SyncPolicy::Unc,
                ..Default::default()
            },
        );
        let mut out = Outbox::new();
        h.handle(
            req(
                R1,
                MsgKind::AtomicMem {
                    op: MemAtomicOp::Ll,
                },
            ),
            &m,
            &mut out,
        )
        .unwrap();
        match out.drain()[0].kind {
            MsgKind::AtomicReply {
                result: OpResult::Loaded { reserved, .. },
                ..
            } => {
                assert!(reserved)
            }
            ref other => panic!("unexpected {other:?}"),
        }
        let mut out = Outbox::new();
        h.handle(
            req(
                R1,
                MsgKind::AtomicMem {
                    op: MemAtomicOp::Sc {
                        value: 3,
                        serial: None,
                    },
                },
            ),
            &m,
            &mut out,
        )
        .unwrap();
        match out.drain()[0].kind {
            MsgKind::AtomicReply {
                result: OpResult::ScDone { success },
                ..
            } => assert!(success),
            ref other => panic!("unexpected {other:?}"),
        }
        assert_eq!(h.peek_word(A), 3);

        // A second SC without a fresh LL fails.
        let mut out = Outbox::new();
        h.handle(
            req(
                R1,
                MsgKind::AtomicMem {
                    op: MemAtomicOp::Sc {
                        value: 4,
                        serial: None,
                    },
                },
            ),
            &m,
            &mut out,
        )
        .unwrap();
        match out.drain()[0].kind {
            MsgKind::AtomicReply {
                result: OpResult::ScDone { success },
                ..
            } => assert!(!success),
            ref other => panic!("unexpected {other:?}"),
        }
        assert_eq!(h.peek_word(A), 3);
    }
}
