//! The paranoid-mode protocol invariant checker.
//!
//! [`check_invariants`] sweeps every cache and home node and reports all
//! violations of properties that must hold after *every* protocol
//! transition — not just at quiescence. The protocol legally passes
//! through transient states (an upgraded owner may coexist with stale
//! sharers until their invalidation acknowledgments drain), so the
//! per-transition set is deliberately weaker than the full coherence
//! oracle the machine runs at the end of a run:
//!
//! * **single writer** — at most one cache holds a line `Exclusive`;
//! * **reservation residency** — a cache-side LL reservation implies the
//!   reserved line is resident in that cache;
//! * **UNC discipline** — lines configured `Unc` are never cached;
//! * **UPD discipline** — lines configured `Upd` are never `Exclusive`
//!   in any cache (write-update keeps memory the owner);
//! * **linked-list pool accounting** — at every home, the reservation
//!   free-pool counter equals the total length of the per-line
//!   reservation lists and never exceeds capacity;
//! * **MSHR sanity** — an in-flight operation that has seen its primary
//!   reply never collects more acknowledgments than it asked for.
//!
//! Each violation carries the offending block address and node set, so a
//! failed paranoid run pins the bug to a specific line and cache.

use crate::addrmap::AddressMap;
use crate::cache::CacheState;
use crate::cachectl::CacheNode;
use crate::home::HomeNode;
use crate::types::SyncPolicy;
use dsm_sim::{LineAddr, NodeId};
use std::collections::HashMap;
use std::fmt;

/// One broken invariant, located as precisely as possible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Name of the invariant that failed (stable, test-matchable).
    pub invariant: &'static str,
    /// The block address involved, if the violation concerns one.
    pub line: Option<LineAddr>,
    /// The nodes involved (offending caches or homes), ascending.
    pub nodes: Vec<NodeId>,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invariant violated: {}", self.invariant)?;
        if let Some(line) = self.line {
            write!(f, ", line {line}")?;
        }
        if !self.nodes.is_empty() {
            write!(f, ", nodes [")?;
            for (i, n) in self.nodes.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{n}")?;
            }
            write!(f, "]")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// Checks the per-transition invariants that concern a single `line`
/// (plus the reservation-pool accounting of its home node). This is the
/// cheap check paranoid mode runs after every protocol transition; the
/// full-machine [`check_invariants`] sweep runs at quiescence.
pub fn check_line(
    caches: &[CacheNode],
    homes: &[HomeNode],
    map: &AddressMap,
    line: LineAddr,
) -> Vec<InvariantViolation> {
    let mut violations = Vec::new();
    let mut holders: Vec<(NodeId, CacheState)> = Vec::new();
    for (idx, cache) in caches.iter().enumerate() {
        let node = NodeId::new(idx as u32);
        if let Some(state) = cache.cache_state(line) {
            holders.push((node, state));
        }
        if cache.reserved_line() == Some(line) && cache.cache_state(line).is_none() {
            violations.push(InvariantViolation {
                invariant: "reservation-residency",
                line: Some(line),
                nodes: vec![node],
                detail: "cache-side LL reservation on a non-resident line".to_string(),
            });
        }
        if cache.pending_line() == Some(line) {
            if let Some((reply_seen, acks_got, acks_needed)) = cache.mshr_progress() {
                if reply_seen && acks_got > acks_needed {
                    violations.push(InvariantViolation {
                        invariant: "mshr-ack-overflow",
                        line: Some(line),
                        nodes: vec![node],
                        detail: format!(
                            "outstanding op got {acks_got} acks but needed only {acks_needed}"
                        ),
                    });
                }
            }
        }
    }

    let owners: Vec<NodeId> = holders
        .iter()
        .filter(|(_, s)| *s == CacheState::Exclusive)
        .map(|(n, _)| *n)
        .collect();
    if owners.len() > 1 {
        violations.push(InvariantViolation {
            invariant: "single-writer",
            line: Some(line),
            nodes: owners.clone(),
            detail: "more than one cache holds the line exclusively".to_string(),
        });
    }
    match map.config_for_line(line).policy {
        SyncPolicy::Unc if !holders.is_empty() => {
            violations.push(InvariantViolation {
                invariant: "unc-never-cached",
                line: Some(line),
                nodes: holders.iter().map(|(n, _)| *n).collect(),
                detail: "a line configured UNC is resident in a cache".to_string(),
            });
        }
        SyncPolicy::Upd if !owners.is_empty() => {
            violations.push(InvariantViolation {
                invariant: "upd-never-exclusive",
                line: Some(line),
                nodes: owners,
                detail: "a line configured UPD is held exclusively".to_string(),
            });
        }
        _ => {}
    }

    let home = &homes[line.home(homes.len() as u32).index()];
    let resv = home.reservations();
    let (used, entries, capacity) = (resv.pool_used(), resv.pool_entries(), resv.pool_capacity());
    if entries != used || used > capacity {
        violations.push(InvariantViolation {
            invariant: "linked-pool-accounting",
            line: Some(line),
            nodes: vec![line.home(homes.len() as u32)],
            detail: format!("pool counter {used} vs {entries} list entries (capacity {capacity})"),
        });
    }
    violations
}

/// Checks every per-transition invariant over the whole machine state,
/// returning all violations found (empty when the state is healthy).
/// Results are sorted by line then invariant name, so output order is
/// deterministic regardless of internal hash-map iteration order.
pub fn check_invariants(
    caches: &[CacheNode],
    homes: &[HomeNode],
    map: &AddressMap,
) -> Vec<InvariantViolation> {
    let mut violations = Vec::new();

    // One pass over all caches, bucketing holders per line.
    let mut holders: HashMap<LineAddr, Vec<(NodeId, CacheState)>> = HashMap::new();
    for (idx, cache) in caches.iter().enumerate() {
        let node = NodeId::new(idx as u32);
        for (line, state) in cache.cached_lines() {
            holders.entry(line).or_default().push((node, state));
        }

        if let Some(line) = cache.reserved_line() {
            if cache.cache_state(line).is_none() {
                violations.push(InvariantViolation {
                    invariant: "reservation-residency",
                    line: Some(line),
                    nodes: vec![node],
                    detail: "cache-side LL reservation on a non-resident line".to_string(),
                });
            }
        }

        if let Some((reply_seen, acks_got, acks_needed)) = cache.mshr_progress() {
            if reply_seen && acks_got > acks_needed {
                violations.push(InvariantViolation {
                    invariant: "mshr-ack-overflow",
                    line: cache.pending_line(),
                    nodes: vec![node],
                    detail: format!(
                        "outstanding op got {acks_got} acks but needed only {acks_needed}"
                    ),
                });
            }
        }
    }

    for (&line, entry) in &holders {
        let owners: Vec<NodeId> = entry
            .iter()
            .filter(|(_, s)| *s == CacheState::Exclusive)
            .map(|(n, _)| *n)
            .collect();
        if owners.len() > 1 {
            let mut nodes = owners;
            nodes.sort_unstable_by_key(|n| n.as_u32());
            violations.push(InvariantViolation {
                invariant: "single-writer",
                line: Some(line),
                nodes,
                detail: "more than one cache holds the line exclusively".to_string(),
            });
        }
        match map.config_for_line(line).policy {
            SyncPolicy::Unc => {
                let mut nodes: Vec<NodeId> = entry.iter().map(|(n, _)| *n).collect();
                nodes.sort_unstable_by_key(|n| n.as_u32());
                violations.push(InvariantViolation {
                    invariant: "unc-never-cached",
                    line: Some(line),
                    nodes,
                    detail: "a line configured UNC is resident in a cache".to_string(),
                });
            }
            SyncPolicy::Upd => {
                let mut nodes: Vec<NodeId> = entry
                    .iter()
                    .filter(|(_, s)| *s == CacheState::Exclusive)
                    .map(|(n, _)| *n)
                    .collect();
                if !nodes.is_empty() {
                    nodes.sort_unstable_by_key(|n| n.as_u32());
                    violations.push(InvariantViolation {
                        invariant: "upd-never-exclusive",
                        line: Some(line),
                        nodes,
                        detail: "a line configured UPD is held exclusively".to_string(),
                    });
                }
            }
            SyncPolicy::Inv => {}
        }
    }

    for (idx, home) in homes.iter().enumerate() {
        let node = NodeId::new(idx as u32);
        let resv = home.reservations();
        let used = resv.pool_used();
        let entries = resv.pool_entries();
        let capacity = resv.pool_capacity();
        if entries != used || used > capacity {
            violations.push(InvariantViolation {
                invariant: "linked-pool-accounting",
                line: None,
                nodes: vec![node],
                detail: format!(
                    "pool counter {used} vs {entries} list entries (capacity {capacity})"
                ),
            });
        }
    }

    violations.sort_by(|a, b| {
        let ka = (a.line.map(LineAddr::number), a.invariant);
        let kb = (b.line.map(LineAddr::number), b.invariant);
        ka.cmp(&kb)
    });
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::home::Outbox;
    use crate::types::{MemOp, SyncConfig};
    use dsm_sim::{Addr, CacheParams};

    const NODES: u32 = 4;
    const A: Addr = Addr::new(0x40); // line 2

    fn machine() -> (Vec<CacheNode>, Vec<HomeNode>, AddressMap) {
        let caches = (0..NODES)
            .map(|n| {
                let mut c = CacheNode::new(NodeId::new(n), 32, CacheParams::default());
                c.set_nodes(NODES);
                c
            })
            .collect();
        let homes = (0..NODES)
            .map(|n| HomeNode::new(NodeId::new(n), 32, 64))
            .collect();
        (caches, homes, AddressMap::new(32))
    }

    fn fill_shared(c: &mut CacheNode, map: &AddressMap) {
        let mut out = Outbox::new();
        c.start_op(MemOp::Load { addr: A }, map, &mut out).unwrap();
        let home = out.drain().remove(0).dst;
        let reply = crate::msg::Msg {
            src: home,
            dst: NodeId::new(1),
            line: A.line(32),
            addr: A,
            proc: dsm_sim::ProcId::new(1),
            chain: 2,
            kind: crate::msg::MsgKind::DataS {
                data: crate::data::LineData::zeroed(32),
            },
        };
        c.handle(reply, &mut out).unwrap();
    }

    #[test]
    fn healthy_state_has_no_violations() {
        let (mut caches, homes, map) = machine();
        fill_shared(&mut caches[1], &map);
        assert!(check_invariants(&caches, &homes, &map).is_empty());
    }

    #[test]
    fn corruption_hook_trips_single_writer() {
        let (mut caches, homes, map) = machine();
        fill_shared(&mut caches[1], &map);
        fill_shared(&mut caches[3], &map);
        assert!(caches[1].corrupt_promote_shared(A.line(32)));
        assert!(caches[3].corrupt_promote_shared(A.line(32)));
        let v = check_invariants(&caches, &homes, &map);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].invariant, "single-writer");
        assert_eq!(v[0].line, Some(A.line(32)));
        assert_eq!(v[0].nodes, vec![NodeId::new(1), NodeId::new(3)]);
    }

    #[test]
    fn unc_line_in_cache_is_flagged() {
        let (mut caches, homes, mut map) = machine();
        fill_shared(&mut caches[1], &map);
        // Reconfigure the line as UNC after the fact: the resident copy
        // is now illegal.
        map.register(
            A,
            SyncConfig {
                policy: SyncPolicy::Unc,
                ..Default::default()
            },
        );
        let v = check_invariants(&caches, &homes, &map);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "unc-never-cached");
    }

    #[test]
    fn upd_exclusive_is_flagged() {
        let (mut caches, homes, mut map) = machine();
        fill_shared(&mut caches[1], &map);
        map.register(
            A,
            SyncConfig {
                policy: SyncPolicy::Upd,
                ..Default::default()
            },
        );
        assert!(check_invariants(&caches, &homes, &map).is_empty());
        caches[1].corrupt_promote_shared(A.line(32));
        let v = check_invariants(&caches, &homes, &map);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, "upd-never-exclusive");
    }

    #[test]
    fn display_names_line_and_nodes() {
        let v = InvariantViolation {
            invariant: "single-writer",
            line: Some(LineAddr::new(7)),
            nodes: vec![NodeId::new(2), NodeId::new(5)],
            detail: "two owners".to_string(),
        };
        let s = v.to_string();
        assert!(s.contains("single-writer"), "{s}");
        assert!(s.contains("line L0x7"), "{s}");
        assert!(s.contains("n2") && s.contains("n5"), "{s}");
    }
}
