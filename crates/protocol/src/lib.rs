//! Directory-based cache-coherence protocols and hardware atomic
//! primitives for a DSM multiprocessor.
//!
//! This crate is the heart of the reproduction: it implements the
//! DASH-style write-invalidate base protocol, the three synchronization
//! coherence policies (INV / UPD / UNC), every primitive implementation
//! variant the paper studies, the auxiliary `load_exclusive` and
//! `drop_copy` instructions, and the four memory-side LL/SC reservation
//! schemes of §3.1.
//!
//! The crate is *pure protocol logic*: the [`HomeNode`] (directory +
//! memory module) and [`CacheNode`] (cache controller) engines consume
//! [`Msg`]s and emit [`Msg`]s into an [`Outbox`]; timing, the network
//! and processors live in `dsm-machine`.
//!
//! # Architecture
//!
//! * [`types`] — operations ([`MemOp`]), results ([`OpResult`]),
//!   policies ([`SyncPolicy`], [`CasVariant`], [`LlscScheme`]);
//! * [`msg`] — the message vocabulary ([`MsgKind`]) with payload sizing;
//! * [`cache`] — the set-associative processor cache;
//! * [`directory`] — directory entries with per-line busy serialization;
//! * [`reservation`] — LL/SC reservations (cache-side and all four
//!   memory-side schemes);
//! * [`home`] / [`cachectl`] — the two protocol engines;
//! * [`addrmap`] — per-line synchronization configuration.
//!
//! # Example: a fetch_and_add travelling to uncached memory
//!
//! ```
//! use dsm_protocol::{AddressMap, CacheNode, HomeNode, MemOp, Outbox};
//! use dsm_protocol::{PhiOp, SyncConfig, SyncPolicy};
//! use dsm_sim::{Addr, CacheParams, NodeId};
//!
//! let mut map = AddressMap::new(32);
//! let counter = Addr::new(0); // line 0, home node 0
//! map.register(counter, SyncConfig { policy: SyncPolicy::Unc, ..Default::default() });
//!
//! let mut home = HomeNode::new(NodeId::new(0), 32, 64);
//! let mut cc = CacheNode::new(NodeId::new(1), 32, CacheParams::default());
//! cc.set_nodes(4);
//!
//! let mut out = Outbox::new();
//! let started = cc
//!     .start_op(MemOp::FetchPhi { addr: counter, op: PhiOp::Add(2) }, &map, &mut out)
//!     .unwrap();
//! assert!(started.is_none());
//! let req = out.drain().remove(0);
//! home.handle(req, &map, &mut out).unwrap();
//! let reply = out.drain().remove(0);
//! let done = cc.handle(reply, &mut out).unwrap().unwrap();
//! assert_eq!(done.chain, 2); // Table 1: uncached access = 2 serialized messages
//! assert_eq!(home.peek_word(counter), 2);
//! ```

#![deny(missing_docs)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod addrmap;
pub mod cache;
pub mod cachectl;
pub mod data;
pub mod directory;
pub mod error;
pub mod home;
pub mod invariant;
pub mod msg;
pub mod nodeset;
pub mod reservation;
pub mod types;

pub use addrmap::AddressMap;
pub use cache::{Cache, CacheState};
pub use cachectl::{CacheNode, OpOutcome};
pub use data::LineData;
pub use directory::{DirEntry, DirState};
pub use error::{ProtocolError, ProtocolErrorKind};
pub use home::{HomeNode, Outbox};
pub use invariant::{check_invariants, check_line, InvariantViolation};
pub use msg::{MemAtomicOp, Msg, MsgKind};
pub use nodeset::NodeSet;
pub use reservation::{CacheReservation, LlGrant, ReservationStore};
pub use types::{CasVariant, LlscScheme, MemOp, OpResult, PhiOp, SyncConfig, SyncPolicy, Value};
