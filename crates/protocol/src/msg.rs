//! Coherence protocol messages.
//!
//! All coherence traffic flows between cache controllers and home nodes
//! (plus home-directed interventions to owners and sharers). There are
//! no cache-to-cache data transfers: intervention replies route through
//! the home node, which is what gives the "4 serialized messages for a
//! store to a remote exclusive line" of Table 1.

use crate::data::LineData;
use crate::types::{CasVariant, OpResult, PhiOp, Value};
use dsm_sim::{Addr, LineAddr, NodeId, ProcId};
use dsm_stats::MsgClass;

/// An operation executed at the memory module (UNC and UPD policies).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemAtomicOp {
    /// Read a word (UNC loads).
    Load,
    /// Write a word.
    Store {
        /// Value to store.
        value: Value,
    },
    /// Fetch-and-Φ.
    Phi {
        /// The Φ function.
        op: PhiOp,
    },
    /// Compare-and-swap.
    Cas {
        /// Expected value.
        expected: Value,
        /// Replacement value.
        new: Value,
    },
    /// Load-linked: read and set a reservation.
    Ll,
    /// Store-conditional: check the reservation, then write.
    Sc {
        /// Value to store on success.
        value: Value,
        /// Expected serial number (serial-number scheme only).
        serial: Option<u64>,
    },
}

impl MemAtomicOp {
    /// Whether a *successful* execution writes memory.
    pub fn writes(self) -> bool {
        matches!(
            self,
            MemAtomicOp::Store { .. }
                | MemAtomicOp::Phi { .. }
                | MemAtomicOp::Cas { .. }
                | MemAtomicOp::Sc { .. }
        )
    }

    /// Folds the operation into a checkpoint digest.
    pub fn digest(self, h: &mut dsm_sim::StableHasher) {
        match self {
            MemAtomicOp::Load => h.write_u8(0),
            MemAtomicOp::Store { value } => {
                h.write_u8(1);
                h.write_u64(value);
            }
            MemAtomicOp::Phi { op } => {
                h.write_u8(2);
                op.digest(h);
            }
            MemAtomicOp::Cas { expected, new } => {
                h.write_u8(3);
                h.write_u64(expected);
                h.write_u64(new);
            }
            MemAtomicOp::Ll => h.write_u8(4),
            MemAtomicOp::Sc { value, serial } => {
                h.write_u8(5);
                h.write_u64(value);
                match serial {
                    Some(s) => {
                        h.write_u8(1);
                        h.write_u64(s);
                    }
                    None => h.write_u8(0),
                }
            }
        }
    }
}

/// The kind (and payload) of a coherence message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MsgKind {
    // ---- cache -> home requests ----
    /// Request a shared copy.
    GetS,
    /// Request an exclusive copy. `from_shared` is set when the
    /// requester holds (or held) a shared copy and hopes for a data-less
    /// upgrade.
    GetX {
        /// Requester currently holds a shared copy.
        from_shared: bool,
    },
    /// Execute an operation at the memory module (UNC/UPD policies).
    AtomicMem {
        /// The operation to execute.
        op: MemAtomicOp,
    },
    /// INVd/INVs compare-and-swap: compare at home (or owner).
    CasHome {
        /// Expected value.
        expected: Value,
        /// Replacement value.
        new: Value,
        /// Deny or Share behaviour on failure.
        variant: CasVariant,
    },
    /// INV-policy store-conditional issued from a shared copy.
    ScInv,
    /// Write back a dirty line (eviction or `drop_copy`).
    WriteBack {
        /// The line contents.
        data: LineData,
    },
    /// Notify the home that a shared copy was dropped (`drop_copy`).
    DropShared,

    // ---- home -> requester replies ----
    /// Shared data reply.
    DataS {
        /// The line contents.
        data: LineData,
    },
    /// Exclusive data reply; the requester must additionally collect
    /// `acks` invalidation acknowledgments.
    DataX {
        /// The line contents.
        data: LineData,
        /// Invalidation acks the requester must collect.
        acks: u32,
    },
    /// Exclusive granted without data (requester's shared copy is
    /// current); collect `acks` acknowledgments.
    UpgradeAck {
        /// Invalidation acks the requester must collect.
        acks: u32,
    },
    /// INVd/INVs compare succeeded: exclusive granted; apply the swap
    /// locally.
    CasGrant {
        /// Line contents (`None` when the requester's shared copy is
        /// current).
        data: Option<LineData>,
        /// Invalidation acks the requester must collect.
        acks: u32,
        /// The observed (matching) value.
        observed: Value,
    },
    /// INVd/INVs compare failed.
    CasFail {
        /// The value actually observed.
        observed: Value,
        /// INVs: a read-only copy; INVd: `None`.
        share_data: Option<LineData>,
    },
    /// Reply to an [`MsgKind::AtomicMem`] request.
    AtomicReply {
        /// Result to deliver to the processor.
        result: OpResult,
        /// Update acks the requester must collect (UPD policy).
        acks: u32,
        /// New line contents for the requester's cached copy (UPD).
        data: Option<LineData>,
    },
    /// Reply to an [`MsgKind::ScInv`] request.
    ScInvReply {
        /// Whether the store-conditional succeeded.
        success: bool,
        /// Invalidation acks the requester must collect on success.
        acks: u32,
    },

    // ---- home -> third party ----
    /// Invalidate your copy; ack to `requester`.
    Inv {
        /// Node to acknowledge.
        requester: NodeId,
    },
    /// Write-update: replace your copy with `data`; ack to `requester`.
    Update {
        /// New line contents.
        data: LineData,
        /// Node to acknowledge.
        requester: NodeId,
    },
    /// Intervention: downgrade your exclusive copy to shared and send
    /// the data back to the home.
    FwdGetS,
    /// Intervention: invalidate your exclusive copy and send the data
    /// back to the home.
    FwdGetX,
    /// Intervention: compare locally (INVd/INVs CAS against a dirty
    /// owner).
    FwdCas {
        /// Expected value.
        expected: Value,
        /// Replacement value.
        new: Value,
        /// Word being compared.
        addr: Addr,
        /// Deny or Share behaviour on failure.
        variant: CasVariant,
    },
    /// MESI(F)/hierarchical read forwarding: a clean sharer is asked to
    /// send its copy directly to `requester` (and confirm to the home
    /// with [`MsgKind::FwdShareAck`]). Unlike [`MsgKind::FwdGetS`] the
    /// target keeps its copy; if it silently evicted the line it
    /// answers [`MsgKind::FwdNak`] and the home serves memory instead.
    FwdShare {
        /// Node the data should be sent to.
        requester: NodeId,
    },

    // ---- owner -> home intervention responses ----
    /// Owner invalidated itself; here is the line.
    XferData {
        /// The line contents.
        data: LineData,
    },
    /// Owner downgraded to shared; here is the line (sharing
    /// write-back).
    SwbData {
        /// The line contents.
        data: LineData,
    },
    /// Owner's local compare failed.
    OwnerCasFail {
        /// The value actually observed.
        observed: Value,
        /// The line contents (needed by INVs to give the requester a
        /// copy; also refreshes memory).
        data: LineData,
        /// INVd: owner kept its exclusive copy.
        kept_exclusive: bool,
    },
    /// Owner no longer has the line (it is being written back).
    FwdNak,
    /// Forwarder confirms a [`MsgKind::FwdShare`]: it sent its copy to
    /// the requester, which the directory should now record as a
    /// sharer.
    FwdShareAck,

    // ---- third party -> requester ----
    /// Invalidation acknowledgment.
    InvAck,
    /// Update acknowledgment.
    UpdAck,
}

impl MsgKind {
    /// Payload bytes carried (over and above the header/command flits).
    pub fn payload_bytes(&self, line_size: u64) -> u64 {
        match self {
            MsgKind::GetS
            | MsgKind::GetX { .. }
            | MsgKind::ScInv
            | MsgKind::DropShared
            | MsgKind::UpgradeAck { .. }
            | MsgKind::ScInvReply { .. }
            | MsgKind::Inv { .. }
            | MsgKind::FwdGetS
            | MsgKind::FwdGetX
            | MsgKind::FwdShare { .. }
            | MsgKind::FwdNak
            | MsgKind::FwdShareAck
            | MsgKind::InvAck
            | MsgKind::UpdAck => 0,
            MsgKind::CasHome { .. } | MsgKind::FwdCas { .. } => 16,
            MsgKind::AtomicMem { op } => match op {
                MemAtomicOp::Load | MemAtomicOp::Ll => 0,
                MemAtomicOp::Store { .. } | MemAtomicOp::Phi { .. } => 8,
                MemAtomicOp::Cas { .. } => 16,
                MemAtomicOp::Sc { serial, .. } => {
                    // The serial-number scheme widens the message (§3.1).
                    if serial.is_some() {
                        16
                    } else {
                        8
                    }
                }
            },
            MsgKind::WriteBack { .. }
            | MsgKind::DataS { .. }
            | MsgKind::DataX { .. }
            | MsgKind::XferData { .. }
            | MsgKind::SwbData { .. }
            | MsgKind::Update { .. } => line_size,
            MsgKind::CasGrant { data, .. } => 8 + data.as_ref().map_or(0, |_| line_size),
            MsgKind::CasFail { share_data, .. } => 8 + share_data.as_ref().map_or(0, |_| line_size),
            MsgKind::OwnerCasFail { .. } => 8 + line_size,
            MsgKind::AtomicReply { data, result, .. } => {
                let serial_extra = match result {
                    OpResult::Loaded {
                        serial: Some(_), ..
                    } => 8,
                    _ => 0,
                };
                8 + serial_extra + data.as_ref().map_or(0, |_| line_size)
            }
        }
    }

    /// Whether the destination processes this message at its memory
    /// module / directory (home-bound) rather than its cache controller.
    pub fn home_bound(&self) -> bool {
        matches!(
            self,
            MsgKind::GetS
                | MsgKind::GetX { .. }
                | MsgKind::AtomicMem { .. }
                | MsgKind::CasHome { .. }
                | MsgKind::ScInv
                | MsgKind::WriteBack { .. }
                | MsgKind::DropShared
                | MsgKind::XferData { .. }
                | MsgKind::SwbData { .. }
                | MsgKind::OwnerCasFail { .. }
                | MsgKind::FwdNak
                | MsgKind::FwdShareAck
        )
    }

    /// A short static name for this message kind, used as the slice
    /// label in trace output (payload-free, unlike `Debug`).
    pub fn label(&self) -> &'static str {
        match self {
            MsgKind::GetS => "GetS",
            MsgKind::GetX { .. } => "GetX",
            MsgKind::AtomicMem { .. } => "AtomicMem",
            MsgKind::CasHome { .. } => "CasHome",
            MsgKind::ScInv => "ScInv",
            MsgKind::WriteBack { .. } => "WriteBack",
            MsgKind::DropShared => "DropShared",
            MsgKind::DataS { .. } => "DataS",
            MsgKind::DataX { .. } => "DataX",
            MsgKind::UpgradeAck { .. } => "UpgradeAck",
            MsgKind::CasGrant { .. } => "CasGrant",
            MsgKind::CasFail { .. } => "CasFail",
            MsgKind::AtomicReply { .. } => "AtomicReply",
            MsgKind::ScInvReply { .. } => "ScInvReply",
            MsgKind::Inv { .. } => "Inv",
            MsgKind::Update { .. } => "Update",
            MsgKind::FwdGetS => "FwdGetS",
            MsgKind::FwdGetX => "FwdGetX",
            MsgKind::FwdCas { .. } => "FwdCas",
            MsgKind::FwdShare { .. } => "FwdShare",
            MsgKind::FwdShareAck => "FwdShareAck",
            MsgKind::XferData { .. } => "XferData",
            MsgKind::SwbData { .. } => "SwbData",
            MsgKind::OwnerCasFail { .. } => "OwnerCasFail",
            MsgKind::FwdNak => "FwdNak",
            MsgKind::InvAck => "InvAck",
            MsgKind::UpdAck => "UpdAck",
        }
    }

    /// Folds the message kind and its payload into a checkpoint digest.
    pub fn digest(&self, h: &mut dsm_sim::StableHasher) {
        fn opt_data(h: &mut dsm_sim::StableHasher, d: &Option<LineData>) {
            match d {
                Some(d) => {
                    h.write_u8(1);
                    d.digest(h);
                }
                None => h.write_u8(0),
            }
        }
        match self {
            MsgKind::GetS => h.write_u8(0),
            MsgKind::GetX { from_shared } => {
                h.write_u8(1);
                h.write_u8(*from_shared as u8);
            }
            MsgKind::AtomicMem { op } => {
                h.write_u8(2);
                op.digest(h);
            }
            MsgKind::CasHome {
                expected,
                new,
                variant,
            } => {
                h.write_u8(3);
                h.write_u64(*expected);
                h.write_u64(*new);
                variant.digest(h);
            }
            MsgKind::ScInv => h.write_u8(4),
            MsgKind::WriteBack { data } => {
                h.write_u8(5);
                data.digest(h);
            }
            MsgKind::DropShared => h.write_u8(6),
            MsgKind::DataS { data } => {
                h.write_u8(7);
                data.digest(h);
            }
            MsgKind::DataX { data, acks } => {
                h.write_u8(8);
                data.digest(h);
                h.write_u32(*acks);
            }
            MsgKind::UpgradeAck { acks } => {
                h.write_u8(9);
                h.write_u32(*acks);
            }
            MsgKind::CasGrant {
                data,
                acks,
                observed,
            } => {
                h.write_u8(10);
                opt_data(h, data);
                h.write_u32(*acks);
                h.write_u64(*observed);
            }
            MsgKind::CasFail {
                observed,
                share_data,
            } => {
                h.write_u8(11);
                h.write_u64(*observed);
                opt_data(h, share_data);
            }
            MsgKind::AtomicReply { result, acks, data } => {
                h.write_u8(12);
                result.digest(h);
                h.write_u32(*acks);
                opt_data(h, data);
            }
            MsgKind::ScInvReply { success, acks } => {
                h.write_u8(13);
                h.write_u8(*success as u8);
                h.write_u32(*acks);
            }
            MsgKind::Inv { requester } => {
                h.write_u8(14);
                h.write_u32(requester.as_u32());
            }
            MsgKind::Update { data, requester } => {
                h.write_u8(15);
                data.digest(h);
                h.write_u32(requester.as_u32());
            }
            MsgKind::FwdGetS => h.write_u8(16),
            MsgKind::FwdGetX => h.write_u8(17),
            MsgKind::FwdCas {
                expected,
                new,
                addr,
                variant,
            } => {
                h.write_u8(18);
                h.write_u64(*expected);
                h.write_u64(*new);
                h.write_u64(addr.as_u64());
                variant.digest(h);
            }
            MsgKind::XferData { data } => {
                h.write_u8(19);
                data.digest(h);
            }
            MsgKind::SwbData { data } => {
                h.write_u8(20);
                data.digest(h);
            }
            MsgKind::OwnerCasFail {
                observed,
                data,
                kept_exclusive,
            } => {
                h.write_u8(21);
                h.write_u64(*observed);
                data.digest(h);
                h.write_u8(*kept_exclusive as u8);
            }
            MsgKind::FwdNak => h.write_u8(22),
            MsgKind::InvAck => h.write_u8(23),
            MsgKind::UpdAck => h.write_u8(24),
            MsgKind::FwdShare { requester } => {
                h.write_u8(25);
                h.write_u32(requester.as_u32());
            }
            MsgKind::FwdShareAck => h.write_u8(26),
        }
    }

    /// The reporting class of this message.
    pub fn class(&self) -> MsgClass {
        match self {
            MsgKind::GetS
            | MsgKind::GetX { .. }
            | MsgKind::AtomicMem { .. }
            | MsgKind::CasHome { .. }
            | MsgKind::ScInv => MsgClass::Request,
            MsgKind::DataS { .. }
            | MsgKind::DataX { .. }
            | MsgKind::UpgradeAck { .. }
            | MsgKind::CasGrant { .. }
            | MsgKind::CasFail { .. }
            | MsgKind::AtomicReply { .. }
            | MsgKind::ScInvReply { .. } => MsgClass::Reply,
            MsgKind::FwdGetS
            | MsgKind::FwdGetX
            | MsgKind::FwdCas { .. }
            | MsgKind::FwdShare { .. } => MsgClass::Forward,
            MsgKind::Inv { .. } => MsgClass::Invalidate,
            MsgKind::Update { .. } => MsgClass::Update,
            MsgKind::InvAck | MsgKind::UpdAck => MsgClass::Ack,
            MsgKind::WriteBack { .. }
            | MsgKind::DropShared
            | MsgKind::XferData { .. }
            | MsgKind::SwbData { .. }
            | MsgKind::OwnerCasFail { .. }
            | MsgKind::FwdShareAck => MsgClass::WriteBack,
            MsgKind::FwdNak => MsgClass::Nak,
        }
    }

    /// The span-phase label for the service interval this message
    /// causes at its destination, used by the latency decomposition:
    /// home-bound messages occupy the directory (`"dir"`), and
    /// cache-bound ones are split by what they do to the cache —
    /// invalidation/update fan-out (`"inval"`), data replies
    /// (`"reply"`), forwarded requests (`"fwd"`), or other controller
    /// work (`"cachesvc"`).
    pub fn service_phase(&self) -> &'static str {
        if self.home_bound() {
            return "dir";
        }
        match self.class() {
            MsgClass::Invalidate | MsgClass::Update => "inval",
            MsgClass::Reply => "reply",
            MsgClass::Forward => "fwd",
            _ => "cachesvc",
        }
    }
}

/// A coherence message in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Msg {
    /// Sending node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// The cache line concerned.
    pub line: LineAddr,
    /// The word address the original operation targets.
    pub addr: Addr,
    /// The processor whose operation this message serves.
    pub proc: ProcId,
    /// Serialized messages on the critical path, including this one.
    pub chain: u32,
    /// Kind and payload.
    pub kind: MsgKind,
}

impl Msg {
    /// Total flits of this message under `params`.
    pub fn flits(&self, params: &dsm_sim::SimParams) -> u64 {
        params.flits_for_payload(self.kind.payload_bytes(params.line_size))
    }

    /// Folds the full message (routing header and payload) into a
    /// checkpoint digest.
    pub fn digest(&self, h: &mut dsm_sim::StableHasher) {
        h.write_u32(self.src.as_u32());
        h.write_u32(self.dst.as_u32());
        h.write_u64(self.line.number());
        h.write_u64(self.addr.as_u64());
        h.write_u32(self.proc.as_u32());
        h.write_u32(self.chain);
        self.kind.digest(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line() -> LineData {
        LineData::zeroed(32)
    }

    #[test]
    fn control_messages_have_no_payload() {
        assert_eq!(MsgKind::GetS.payload_bytes(32), 0);
        assert_eq!(MsgKind::InvAck.payload_bytes(32), 0);
        assert_eq!(MsgKind::FwdNak.payload_bytes(32), 0);
    }

    #[test]
    fn data_messages_carry_the_line() {
        assert_eq!(MsgKind::DataS { data: line() }.payload_bytes(32), 32);
        assert_eq!(MsgKind::WriteBack { data: line() }.payload_bytes(32), 32);
        assert_eq!(
            MsgKind::CasFail {
                observed: 0,
                share_data: Some(line())
            }
            .payload_bytes(32),
            40
        );
        assert_eq!(
            MsgKind::CasFail {
                observed: 0,
                share_data: None
            }
            .payload_bytes(32),
            8
        );
    }

    #[test]
    fn serial_number_scheme_widens_sc_messages() {
        let plain = MsgKind::AtomicMem {
            op: MemAtomicOp::Sc {
                value: 1,
                serial: None,
            },
        };
        let serial = MsgKind::AtomicMem {
            op: MemAtomicOp::Sc {
                value: 1,
                serial: Some(7),
            },
        };
        assert!(serial.payload_bytes(32) > plain.payload_bytes(32));

        let reply_plain = MsgKind::AtomicReply {
            result: OpResult::Loaded {
                value: 0,
                serial: None,
                reserved: true,
            },
            acks: 0,
            data: None,
        };
        let reply_serial = MsgKind::AtomicReply {
            result: OpResult::Loaded {
                value: 0,
                serial: Some(3),
                reserved: true,
            },
            acks: 0,
            data: None,
        };
        assert!(reply_serial.payload_bytes(32) > reply_plain.payload_bytes(32));
    }

    #[test]
    fn home_bound_classification() {
        assert!(MsgKind::GetS.home_bound());
        assert!(MsgKind::WriteBack { data: line() }.home_bound());
        assert!(MsgKind::FwdNak.home_bound());
        assert!(!MsgKind::DataS { data: line() }.home_bound());
        assert!(!MsgKind::Inv {
            requester: NodeId::new(0)
        }
        .home_bound());
        assert!(!MsgKind::InvAck.home_bound());
    }

    #[test]
    fn classes_cover_request_reply_forward() {
        assert_eq!(MsgKind::GetS.class(), MsgClass::Request);
        assert_eq!(MsgKind::UpgradeAck { acks: 0 }.class(), MsgClass::Reply);
        assert_eq!(MsgKind::FwdGetX.class(), MsgClass::Forward);
        assert_eq!(
            MsgKind::Inv {
                requester: NodeId::new(1)
            }
            .class(),
            MsgClass::Invalidate
        );
        assert_eq!(MsgKind::UpdAck.class(), MsgClass::Ack);
    }

    #[test]
    fn flit_count_uses_params() {
        let p = dsm_sim::SimParams::default();
        let m = Msg {
            src: NodeId::new(0),
            dst: NodeId::new(1),
            line: LineAddr::new(0),
            addr: Addr::new(0),
            proc: ProcId::new(0),
            chain: 1,
            kind: MsgKind::DataS { data: line() },
        };
        assert_eq!(m.flits(&p), p.flits_for_payload(32));
    }

    #[test]
    fn mem_atomic_write_classification() {
        assert!(MemAtomicOp::Store { value: 1 }.writes());
        assert!(MemAtomicOp::Sc {
            value: 1,
            serial: None
        }
        .writes());
        assert!(!MemAtomicOp::Load.writes());
        assert!(!MemAtomicOp::Ll.writes());
    }
}
