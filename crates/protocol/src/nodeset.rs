//! A compact set of node identifiers (directory sharer vectors).

use dsm_sim::NodeId;
use std::fmt;

/// A bit-vector set of [`NodeId`]s, as stored in directory entries.
///
/// Grows on demand, so machines larger than 64 nodes work; the common
/// 64-node case stays within one word.
///
/// # Example
///
/// ```
/// use dsm_protocol::NodeSet;
/// use dsm_sim::NodeId;
///
/// let mut s = NodeSet::new();
/// s.insert(NodeId::new(3));
/// s.insert(NodeId::new(70));
/// assert!(s.contains(NodeId::new(3)));
/// assert_eq!(s.len(), 2);
/// s.remove(NodeId::new(3));
/// assert!(!s.contains(NodeId::new(3)));
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct NodeSet {
    words: Vec<u64>,
}

impl NodeSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a set containing a single node.
    pub fn singleton(node: NodeId) -> Self {
        let mut s = Self::new();
        s.insert(node);
        s
    }

    /// Adds `node`; returns `true` if it was not already present.
    pub fn insert(&mut self, node: NodeId) -> bool {
        let (w, b) = (node.index() / 64, node.index() % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes `node`; returns `true` if it was present.
    pub fn remove(&mut self, node: NodeId) -> bool {
        let (w, b) = (node.index() / 64, node.index() % 64);
        if w >= self.words.len() {
            return false;
        }
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        had
    }

    /// Membership test.
    pub fn contains(&self, node: NodeId) -> bool {
        let (w, b) = (node.index() / 64, node.index() % 64);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if the set has no members.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all members.
    pub fn clear(&mut self) {
        self.words.clear();
    }

    /// Iterates members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |b| w & (1u64 << b) != 0)
                .map(move |b| NodeId::new((wi * 64 + b) as u32))
        })
    }

    /// Folds the set's members into a checkpoint digest. Trailing
    /// all-zero words are not hashed, so equal sets digest equally
    /// regardless of capacity history.
    pub fn digest(&self, h: &mut dsm_sim::StableHasher) {
        h.write_usize(self.len());
        for n in self.iter() {
            h.write_u32(n.as_u32());
        }
    }

    /// The single member, if the set has exactly one.
    pub fn sole_member(&self) -> Option<NodeId> {
        let mut it = self.iter();
        let first = it.next()?;
        if it.next().is_none() {
            Some(first)
        } else {
            None
        }
    }
}

impl fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<NodeId> for NodeSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let mut s = NodeSet::new();
        for n in iter {
            s.insert(n);
        }
        s
    }
}

impl Extend<NodeId> for NodeSet {
    fn extend<I: IntoIterator<Item = NodeId>>(&mut self, iter: I) {
        for n in iter {
            self.insert(n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = NodeSet::new();
        assert!(s.is_empty());
        assert!(s.insert(NodeId::new(5)));
        assert!(!s.insert(NodeId::new(5)), "double insert reports false");
        assert!(s.contains(NodeId::new(5)));
        assert!(!s.contains(NodeId::new(6)));
        assert!(s.remove(NodeId::new(5)));
        assert!(!s.remove(NodeId::new(5)));
        assert!(s.is_empty());
    }

    #[test]
    fn crosses_word_boundaries() {
        let mut s = NodeSet::new();
        s.insert(NodeId::new(63));
        s.insert(NodeId::new(64));
        s.insert(NodeId::new(200));
        assert_eq!(s.len(), 3);
        let members: Vec<_> = s.iter().map(|n| n.as_u32()).collect();
        assert_eq!(members, vec![63, 64, 200]);
    }

    #[test]
    fn sole_member() {
        let mut s = NodeSet::singleton(NodeId::new(9));
        assert_eq!(s.sole_member(), Some(NodeId::new(9)));
        s.insert(NodeId::new(10));
        assert_eq!(s.sole_member(), None);
        s.clear();
        assert_eq!(s.sole_member(), None);
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut s: NodeSet = [1u32, 3, 5].into_iter().map(NodeId::new).collect();
        s.extend([NodeId::new(7)]);
        assert_eq!(s.len(), 4);
        assert!(s.contains(NodeId::new(7)));
    }

    #[test]
    fn debug_lists_members() {
        let s = NodeSet::singleton(NodeId::new(2));
        assert_eq!(format!("{s:?}"), "{NodeId(2)}");
    }

    proptest! {
        #[test]
        fn matches_reference_set(ops in proptest::collection::vec((0u32..128, any::<bool>()), 0..200)) {
            let mut ours = NodeSet::new();
            let mut reference = std::collections::BTreeSet::new();
            for (n, add) in ops {
                if add {
                    prop_assert_eq!(ours.insert(NodeId::new(n)), reference.insert(n));
                } else {
                    prop_assert_eq!(ours.remove(NodeId::new(n)), reference.remove(&n));
                }
            }
            prop_assert_eq!(ours.len(), reference.len());
            let got: Vec<u32> = ours.iter().map(|n| n.as_u32()).collect();
            let want: Vec<u32> = reference.into_iter().collect();
            prop_assert_eq!(got, want);
        }
    }
}
