//! LL/SC reservation bookkeeping.
//!
//! For cache-based (INV) implementations each processor has a single
//! reservation bit and address register ([`CacheReservation`]), as on
//! the MIPS R4000. For memory-based (UNC/UPD) implementations, §3.1 of
//! the paper offers four schemes for keeping per-location reservations
//! at the home node; [`ReservationStore`] implements all of them:
//!
//! * a **bit vector** per line (one bit per processor);
//! * a **linked list** of reserving processors drawn from a bounded free
//!   pool maintained by the protocol;
//! * a **limited** count of reservations (beyond-limit `load_linked`s
//!   return a failure indicator so their `store_conditional`s can fail
//!   locally without network traffic);
//! * a **serial number** per line, incremented by every write;
//!   `store_conditional` carries the expected serial number, which also
//!   enables *bare* SC without a preceding LL.

use crate::error::{ProtocolError, ProtocolErrorKind};
use crate::types::LlscScheme;
use dsm_sim::StableHashMap;
use dsm_sim::{LineAddr, ProcId};

/// The error every reservation operation returns when a line's records
/// are found under a different scheme than the request assumes.
fn scheme_mismatch(line: LineAddr) -> ProtocolError {
    ProtocolError::new(
        ProtocolErrorKind::SchemeMismatch,
        "line switched reservation schemes",
    )
    .on_line(line)
}

/// The single cache-side reservation of one processor (INV policy).
///
/// # Example
///
/// ```
/// use dsm_protocol::CacheReservation;
/// use dsm_sim::LineAddr;
///
/// let mut r = CacheReservation::default();
/// r.set(LineAddr::new(4));
/// assert!(r.valid_for(LineAddr::new(4)));
/// r.invalidate_line(LineAddr::new(4)); // e.g. an invalidation arrived
/// assert!(!r.valid_for(LineAddr::new(4)));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheReservation {
    line: Option<LineAddr>,
}

impl CacheReservation {
    /// Places a reservation on `line` (displacing any previous one —
    /// processors have one reservation register).
    pub fn set(&mut self, line: LineAddr) {
        self.line = Some(line);
    }

    /// `true` if a valid reservation for `line` is held.
    pub fn valid_for(&self, line: LineAddr) -> bool {
        self.line == Some(line)
    }

    /// Clears the reservation unconditionally (context switch, SC).
    pub fn clear(&mut self) {
        self.line = None;
    }

    /// Clears the reservation if it names `line` (invalidation,
    /// eviction, `drop_copy`, loss of ownership).
    pub fn invalidate_line(&mut self, line: LineAddr) {
        if self.line == Some(line) {
            self.line = None;
        }
    }

    /// The line currently reserved, if any (for the invariant checker).
    pub fn line(&self) -> Option<LineAddr> {
        self.line
    }

    /// Folds the reservation register into a checkpoint digest.
    pub fn digest(&self, h: &mut dsm_sim::StableHasher) {
        match self.line {
            Some(l) => {
                h.write_u8(1);
                h.write_u64(l.number());
            }
            None => h.write_u8(0),
        }
    }
}

/// Result of a memory-side `load_linked`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlGrant {
    /// Serial number returned to the processor (serial-number scheme).
    pub serial: Option<u64>,
    /// Whether a reservation was actually recorded. Beyond-limit LLs
    /// under [`LlscScheme::Limited`] (or a full free pool under
    /// [`LlscScheme::LinkedList`]) return `false`, so the corresponding
    /// SC can fail locally without network traffic.
    pub reserved: bool,
}

#[derive(Debug, Clone)]
enum LineResv {
    BitVector(crate::nodeset::NodeSet),
    /// Indices into the shared free pool would be the hardware reality;
    /// we model the list as the ordered vector of processors plus the
    /// pool accounting in the store.
    LinkedList(Vec<ProcId>),
    Limited(Vec<ProcId>),
    Serial(u64),
}

/// Memory-side reservations for all lines homed at one node.
///
/// # Example
///
/// ```
/// use dsm_protocol::{LlscScheme, ReservationStore};
/// use dsm_sim::{LineAddr, ProcId};
///
/// let mut store = ReservationStore::new(64);
/// let line = LineAddr::new(7);
/// let g = store.load_linked(line, ProcId::new(3), LlscScheme::BitVector).unwrap();
/// assert!(g.reserved);
/// assert!(store.check_sc(line, ProcId::new(3), None, LlscScheme::BitVector).unwrap());
/// // The successful SC cleared every reservation on the line.
/// assert!(!store.check_sc(line, ProcId::new(3), None, LlscScheme::BitVector).unwrap());
/// ```
#[derive(Debug, Clone)]
pub struct ReservationStore {
    lines: StableHashMap<LineAddr, LineResv>,
    /// Free-pool capacity for the linked-list scheme (total list nodes
    /// available across all lines homed here).
    pool_capacity: usize,
    pool_used: usize,
}

impl ReservationStore {
    /// Creates a store with a linked-list free pool of `pool_capacity`
    /// entries.
    pub fn new(pool_capacity: usize) -> Self {
        ReservationStore {
            lines: StableHashMap::default(),
            pool_capacity,
            pool_used: 0,
        }
    }

    /// Records a `load_linked` by `proc` on `line` under `scheme` and
    /// returns what the reply should carry.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolErrorKind::SchemeMismatch`] if the line already
    /// holds reservations under a different scheme.
    pub fn load_linked(
        &mut self,
        line: LineAddr,
        proc: ProcId,
        scheme: LlscScheme,
    ) -> Result<LlGrant, ProtocolError> {
        match scheme {
            LlscScheme::BitVector => {
                let e = self
                    .lines
                    .entry(line)
                    .or_insert_with(|| LineResv::BitVector(crate::nodeset::NodeSet::new()));
                let LineResv::BitVector(set) = e else {
                    return Err(scheme_mismatch(line));
                };
                set.insert(dsm_sim::NodeId::new(proc.as_u32()));
                Ok(LlGrant {
                    serial: None,
                    reserved: true,
                })
            }
            LlscScheme::LinkedList => {
                let e = self
                    .lines
                    .entry(line)
                    .or_insert_with(|| LineResv::LinkedList(Vec::new()));
                let LineResv::LinkedList(list) = e else {
                    return Err(scheme_mismatch(line));
                };
                if list.contains(&proc) {
                    return Ok(LlGrant {
                        serial: None,
                        reserved: true,
                    });
                }
                if self.pool_used >= self.pool_capacity {
                    // Free pool exhausted: the reservation is dropped and
                    // the LL reply says so.
                    return Ok(LlGrant {
                        serial: None,
                        reserved: false,
                    });
                }
                self.pool_used += 1;
                list.push(proc);
                Ok(LlGrant {
                    serial: None,
                    reserved: true,
                })
            }
            LlscScheme::Limited(k) => {
                let e = self
                    .lines
                    .entry(line)
                    .or_insert_with(|| LineResv::Limited(Vec::new()));
                let LineResv::Limited(list) = e else {
                    return Err(scheme_mismatch(line));
                };
                if list.contains(&proc) {
                    return Ok(LlGrant {
                        serial: None,
                        reserved: true,
                    });
                }
                if list.len() >= k as usize {
                    return Ok(LlGrant {
                        serial: None,
                        reserved: false,
                    });
                }
                list.push(proc);
                Ok(LlGrant {
                    serial: None,
                    reserved: true,
                })
            }
            LlscScheme::SerialNumber => {
                let e = self.lines.entry(line).or_insert(LineResv::Serial(0));
                let LineResv::Serial(s) = e else {
                    return Err(scheme_mismatch(line));
                };
                Ok(LlGrant {
                    serial: Some(*s),
                    reserved: true,
                })
            }
        }
    }

    /// Checks (and on success consumes) the reservation for a
    /// `store_conditional` by `proc`. `serial` carries the expected
    /// serial number under [`LlscScheme::SerialNumber`].
    ///
    /// A successful SC also clears all other reservations on the line
    /// (it is a write); the caller needs no separate
    /// [`on_write`](Self::on_write).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolErrorKind::SchemeMismatch`] if the line's
    /// records are held under a different scheme.
    pub fn check_sc(
        &mut self,
        line: LineAddr,
        proc: ProcId,
        serial: Option<u64>,
        scheme: LlscScheme,
    ) -> Result<bool, ProtocolError> {
        match scheme {
            LlscScheme::BitVector => {
                let ok = matches!(
                    self.lines.get(&line),
                    Some(LineResv::BitVector(set)) if set.contains(dsm_sim::NodeId::new(proc.as_u32()))
                );
                if ok {
                    self.on_write(line, scheme);
                }
                Ok(ok)
            }
            LlscScheme::LinkedList => {
                let ok = matches!(
                    self.lines.get(&line),
                    Some(LineResv::LinkedList(list)) if list.contains(&proc)
                );
                if ok {
                    self.on_write(line, scheme);
                }
                Ok(ok)
            }
            LlscScheme::Limited(_) => {
                let ok = matches!(
                    self.lines.get(&line),
                    Some(LineResv::Limited(list)) if list.contains(&proc)
                );
                if ok {
                    self.on_write(line, scheme);
                }
                Ok(ok)
            }
            LlscScheme::SerialNumber => {
                let current = match self.lines.get(&line) {
                    Some(LineResv::Serial(s)) => *s,
                    None => 0,
                    Some(_) => return Err(scheme_mismatch(line)),
                };
                let ok = serial == Some(current);
                if ok {
                    self.on_write(line, scheme);
                }
                Ok(ok)
            }
        }
    }

    /// Records an ordinary write to `line`: clears reservations (bumping
    /// the serial number under the serial-number scheme).
    pub fn on_write(&mut self, line: LineAddr, scheme: LlscScheme) {
        match scheme {
            LlscScheme::SerialNumber => {
                let e = self.lines.entry(line).or_insert(LineResv::Serial(0));
                if let LineResv::Serial(s) = e {
                    *s = s.wrapping_add(1);
                }
            }
            LlscScheme::LinkedList => {
                if let Some(LineResv::LinkedList(list)) = self.lines.get_mut(&line) {
                    self.pool_used -= list.len();
                    list.clear();
                }
            }
            _ => {
                if let Some(r) = self.lines.get_mut(&line) {
                    match r {
                        LineResv::BitVector(set) => set.clear(),
                        LineResv::Limited(list) => list.clear(),
                        _ => {}
                    }
                }
            }
        }
    }

    /// Current serial number of `line` (serial-number scheme), for bare
    /// store-conditionals issued without a preceding LL.
    pub fn serial(&self, line: LineAddr) -> u64 {
        match self.lines.get(&line) {
            Some(LineResv::Serial(s)) => *s,
            _ => 0,
        }
    }

    /// Linked-list pool entries currently in use (for tests/metrics).
    pub fn pool_used(&self) -> usize {
        self.pool_used
    }

    /// Capacity of the linked-list free pool.
    pub fn pool_capacity(&self) -> usize {
        self.pool_capacity
    }

    /// Linked-list entries actually recorded across all lines — must
    /// always equal [`pool_used`](Self::pool_used); the invariant
    /// checker verifies the accounting.
    pub fn pool_entries(&self) -> usize {
        self.lines
            .values()
            .map(|r| match r {
                LineResv::LinkedList(list) => list.len(),
                _ => 0,
            })
            .sum()
    }

    /// Folds the store (pool accounting plus every line's records, in
    /// sorted line order) into a checkpoint digest.
    pub fn digest(&self, h: &mut dsm_sim::StableHasher) {
        h.write_usize(self.pool_capacity);
        h.write_usize(self.pool_used);
        let mut lines: Vec<(&LineAddr, &LineResv)> = self.lines.iter().collect();
        lines.sort_unstable_by_key(|(l, _)| l.number());
        h.write_usize(lines.len());
        for (l, r) in lines {
            h.write_u64(l.number());
            match r {
                LineResv::BitVector(set) => {
                    h.write_u8(0);
                    set.digest(h);
                }
                LineResv::LinkedList(list) => {
                    h.write_u8(1);
                    h.write_usize(list.len());
                    for p in list {
                        h.write_u32(p.as_u32());
                    }
                }
                LineResv::Limited(list) => {
                    h.write_u8(2);
                    h.write_usize(list.len());
                    for p in list {
                        h.write_u32(p.as_u32());
                    }
                }
                LineResv::Serial(s) => {
                    h.write_u8(3);
                    h.write_u64(*s);
                }
            }
        }
    }

    /// Forcibly invalidates every reservation held at this node — the
    /// fault injector's "reservation storm". Bit-vector and list schemes
    /// drop all reserving processors (releasing linked-list pool
    /// entries); the serial-number scheme bumps every line's serial so
    /// outstanding serials go stale. Protocol-legal: LL/SC only promises
    /// an SC *may* succeed, so spurious reservation loss is allowed.
    pub fn invalidate_all(&mut self) {
        for resv in self.lines.values_mut() {
            match resv {
                LineResv::BitVector(set) => set.clear(),
                LineResv::LinkedList(list) => {
                    self.pool_used -= list.len();
                    list.clear();
                }
                LineResv::Limited(list) => list.clear(),
                LineResv::Serial(s) => *s = s.wrapping_add(1),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L: LineAddr = LineAddr::new(3);
    const P0: ProcId = ProcId::new(0);
    const P1: ProcId = ProcId::new(1);
    const P2: ProcId = ProcId::new(2);

    #[test]
    fn cache_reservation_lifecycle() {
        let mut r = CacheReservation::default();
        assert!(!r.valid_for(L));
        r.set(L);
        assert!(r.valid_for(L));
        // A new LL displaces the old reservation.
        r.set(LineAddr::new(9));
        assert!(!r.valid_for(L));
        assert!(r.valid_for(LineAddr::new(9)));
        r.invalidate_line(L); // unrelated line: no effect
        assert!(r.valid_for(LineAddr::new(9)));
        r.clear();
        assert!(!r.valid_for(LineAddr::new(9)));
    }

    #[test]
    fn bitvector_basic_ll_sc() {
        let mut s = ReservationStore::new(0);
        assert!(
            s.load_linked(L, P0, LlscScheme::BitVector)
                .unwrap()
                .reserved
        );
        assert!(
            s.load_linked(L, P1, LlscScheme::BitVector)
                .unwrap()
                .reserved
        );
        // P0's SC succeeds and clears P1's reservation too.
        assert!(s.check_sc(L, P0, None, LlscScheme::BitVector).unwrap());
        assert!(!s.check_sc(L, P1, None, LlscScheme::BitVector).unwrap());
    }

    #[test]
    fn bitvector_cleared_by_ordinary_write() {
        let mut s = ReservationStore::new(0);
        s.load_linked(L, P0, LlscScheme::BitVector).unwrap();
        s.on_write(L, LlscScheme::BitVector);
        assert!(!s.check_sc(L, P0, None, LlscScheme::BitVector).unwrap());
    }

    #[test]
    fn sc_without_ll_fails() {
        let mut s = ReservationStore::new(0);
        assert!(!s.check_sc(L, P0, None, LlscScheme::BitVector).unwrap());
        assert!(!s.check_sc(L, P0, None, LlscScheme::Limited(4)).unwrap());
    }

    #[test]
    fn limited_scheme_caps_reservations() {
        let mut s = ReservationStore::new(0);
        assert!(
            s.load_linked(L, P0, LlscScheme::Limited(2))
                .unwrap()
                .reserved
        );
        assert!(
            s.load_linked(L, P1, LlscScheme::Limited(2))
                .unwrap()
                .reserved
        );
        // Third processor is beyond the limit.
        let g = s
            .load_linked(L, P2, LlscScheme::Limited(2))
            .unwrap()
            .reserved;
        assert!(!g, "beyond-limit LL must report failure");
        // Re-LL by an already reserved processor is fine.
        assert!(
            s.load_linked(L, P0, LlscScheme::Limited(2))
                .unwrap()
                .reserved
        );
        assert!(s.check_sc(L, P1, None, LlscScheme::Limited(2)).unwrap());
        // The successful SC cleared the rest.
        assert!(!s.check_sc(L, P0, None, LlscScheme::Limited(2)).unwrap());
    }

    #[test]
    fn linked_list_pool_exhaustion() {
        let mut s = ReservationStore::new(2);
        assert!(
            s.load_linked(L, P0, LlscScheme::LinkedList)
                .unwrap()
                .reserved
        );
        assert!(
            s.load_linked(LineAddr::new(4), P1, LlscScheme::LinkedList)
                .unwrap()
                .reserved
        );
        assert_eq!(s.pool_used(), 2);
        // Pool is exhausted; the next LL fails to reserve.
        assert!(
            !s.load_linked(L, P2, LlscScheme::LinkedList)
                .unwrap()
                .reserved
        );
        // A write releases line L's entries back to the pool.
        s.on_write(L, LlscScheme::LinkedList);
        assert_eq!(s.pool_used(), 1);
        assert!(
            s.load_linked(L, P2, LlscScheme::LinkedList)
                .unwrap()
                .reserved
        );
    }

    #[test]
    fn serial_numbers_advance_on_writes() {
        let mut s = ReservationStore::new(0);
        let g = s.load_linked(L, P0, LlscScheme::SerialNumber).unwrap();
        assert_eq!(g.serial, Some(0));
        assert!(g.reserved);
        // SC with the right serial succeeds and bumps the serial.
        assert!(s
            .check_sc(L, P0, Some(0), LlscScheme::SerialNumber)
            .unwrap());
        assert_eq!(s.serial(L), 1);
        // Stale serial now fails.
        assert!(!s
            .check_sc(L, P0, Some(0), LlscScheme::SerialNumber)
            .unwrap());
        // Bare SC by a different processor with the current serial works.
        assert!(s
            .check_sc(L, P1, Some(1), LlscScheme::SerialNumber)
            .unwrap());
        assert_eq!(s.serial(L), 2);
    }

    #[test]
    fn serial_scheme_detects_aba() {
        // The value can return to its original, but the serial number
        // cannot: this is the paper's fix for the pointer/ABA problem.
        let mut s = ReservationStore::new(0);
        let g = s.load_linked(L, P0, LlscScheme::SerialNumber).unwrap();
        // Two intervening writes restore the "same value" in memory.
        s.on_write(L, LlscScheme::SerialNumber);
        s.on_write(L, LlscScheme::SerialNumber);
        assert!(!s
            .check_sc(L, P0, g.serial, LlscScheme::SerialNumber)
            .unwrap());
    }

    #[test]
    fn serial_none_fails() {
        let mut s = ReservationStore::new(0);
        s.load_linked(L, P0, LlscScheme::SerialNumber).unwrap();
        assert!(!s.check_sc(L, P0, None, LlscScheme::SerialNumber).unwrap());
    }

    #[test]
    fn lines_are_independent() {
        let mut s = ReservationStore::new(16);
        s.load_linked(L, P0, LlscScheme::BitVector).unwrap();
        s.load_linked(LineAddr::new(8), P0, LlscScheme::BitVector)
            .unwrap();
        s.on_write(L, LlscScheme::BitVector);
        assert!(!s.check_sc(L, P0, None, LlscScheme::BitVector).unwrap());
        assert!(s
            .check_sc(LineAddr::new(8), P0, None, LlscScheme::BitVector)
            .unwrap());
    }
}
