//! Operation, policy and result types shared across the protocol engine.

use dsm_sim::Addr;
use std::fmt;

/// A 64-bit machine word — the granularity of all atomic operations.
pub type Value = u64;

/// The coherence policy used for a synchronization variable (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncPolicy {
    /// Computational power in the cache controllers, write-invalidate
    /// coherence. Atomic updates execute locally once the line is held
    /// exclusively.
    Inv,
    /// Computational power in the memory, write-update coherence. Reads
    /// hit even under alternating access; writes and atomics go to the
    /// home node, which pushes updates to sharers.
    Upd,
    /// Computational power in the memory, caching disabled. Every access
    /// is a two-message request/reply with the home node.
    Unc,
}

impl SyncPolicy {
    /// All policies, in the paper's reporting order (UNC, INV, UPD).
    pub const ALL: [SyncPolicy; 3] = [SyncPolicy::Unc, SyncPolicy::Inv, SyncPolicy::Upd];

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            SyncPolicy::Inv => "INV",
            SyncPolicy::Upd => "UPD",
            SyncPolicy::Unc => "UNC",
        }
    }
}

impl fmt::Display for SyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Variant of the INV implementation of `compare_and_swap` (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CasVariant {
    /// Always acquire an exclusive copy and compare locally.
    #[default]
    Plain,
    /// "INVd": compare at the home (or owner); on failure the requester
    /// is *denied* a cached copy, so failing CAS's do not invalidate
    /// other nodes' copies.
    Deny,
    /// "INVs": compare at the home (or owner); on failure the requester
    /// receives a read-only *shared* copy.
    Share,
}

impl CasVariant {
    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            CasVariant::Plain => "INV",
            CasVariant::Deny => "INVd",
            CasVariant::Share => "INVs",
        }
    }

    /// Folds the variant into a checkpoint digest.
    pub fn digest(self, h: &mut dsm_sim::StableHasher) {
        h.write_u8(match self {
            CasVariant::Plain => 0,
            CasVariant::Deny => 1,
            CasVariant::Share => 2,
        });
    }
}

/// The fetch-and-Φ function family (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhiOp {
    /// `fetch_and_add(addr, k)`.
    Add(Value),
    /// `fetch_and_store(addr, v)` (atomic swap).
    Store(Value),
    /// `fetch_and_or(addr, v)`.
    Or(Value),
    /// `test_and_set(addr)`: fetch and store 1.
    TestAndSet,
    /// `fetch_and_and(addr, v)`; with a mask this provides `clear`.
    And(Value),
}

impl PhiOp {
    /// Applies Φ to `old`, returning the new value to store.
    pub fn apply(self, old: Value) -> Value {
        match self {
            PhiOp::Add(k) => old.wrapping_add(k),
            PhiOp::Store(v) => v,
            PhiOp::Or(v) => old | v,
            PhiOp::TestAndSet => 1,
            PhiOp::And(v) => old & v,
        }
    }

    /// Folds the operation into a checkpoint digest.
    pub fn digest(self, h: &mut dsm_sim::StableHasher) {
        let (tag, operand) = match self {
            PhiOp::Add(k) => (0u8, k),
            PhiOp::Store(v) => (1, v),
            PhiOp::Or(v) => (2, v),
            PhiOp::TestAndSet => (3, 0),
            PhiOp::And(v) => (4, v),
        };
        h.write_u8(tag);
        h.write_u64(operand);
    }
}

/// The scheme used to hold LL/SC reservations at the memory (§3.1),
/// relevant for the UNC and UPD implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LlscScheme {
    /// A bit vector with one reservation bit per processor per line.
    #[default]
    BitVector,
    /// A linked list of reserving processors drawn from a free pool.
    LinkedList,
    /// At most `k` reservations per line; beyond-limit `load_linked`s
    /// return a failure indicator so their `store_conditional`s fail
    /// locally without network traffic.
    Limited(u8),
    /// A per-line serial number incremented by every write;
    /// `store_conditional` succeeds only if it presents the current
    /// serial number. Supports *bare* SC without a preceding LL.
    SerialNumber,
}

/// A memory operation issued by a simulated processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOp {
    /// Ordinary load of the word at `addr`.
    Load {
        /// Word address.
        addr: Addr,
    },
    /// Ordinary store of `value` to the word at `addr`.
    Store {
        /// Word address.
        addr: Addr,
        /// Value to store.
        value: Value,
    },
    /// `load_exclusive`: load that acquires exclusive access (§3).
    LoadExclusive {
        /// Word address.
        addr: Addr,
    },
    /// `drop_copy`: self-invalidate the line containing `addr` (§3).
    DropCopy {
        /// Any address within the line to drop.
        addr: Addr,
    },
    /// A fetch-and-Φ primitive.
    FetchPhi {
        /// Word address.
        addr: Addr,
        /// The Φ function to apply.
        op: PhiOp,
    },
    /// `compare_and_swap(addr, expected, new)`.
    Cas {
        /// Word address.
        addr: Addr,
        /// Expected value.
        expected: Value,
        /// Replacement value.
        new: Value,
    },
    /// `load_linked(addr)`.
    LoadLinked {
        /// Word address.
        addr: Addr,
    },
    /// `store_conditional(addr, value)`. When the serial-number scheme
    /// is in use, `serial` carries the expected serial number (taken
    /// from the preceding LL result, or synthesized for a bare SC).
    StoreConditional {
        /// Word address.
        addr: Addr,
        /// Value to store on success.
        value: Value,
        /// Expected serial number (serial-number scheme only).
        serial: Option<u64>,
    },
}

impl MemOp {
    /// The word address this operation targets.
    pub fn addr(self) -> Addr {
        match self {
            MemOp::Load { addr }
            | MemOp::Store { addr, .. }
            | MemOp::LoadExclusive { addr }
            | MemOp::DropCopy { addr }
            | MemOp::FetchPhi { addr, .. }
            | MemOp::Cas { addr, .. }
            | MemOp::LoadLinked { addr }
            | MemOp::StoreConditional { addr, .. } => addr,
        }
    }

    /// Whether this operation writes memory when it succeeds (used for
    /// write-run accounting, which counts "writes including atomic
    /// updates").
    pub fn is_write(self) -> bool {
        matches!(
            self,
            MemOp::Store { .. }
                | MemOp::FetchPhi { .. }
                | MemOp::Cas { .. }
                | MemOp::StoreConditional { .. }
        )
    }

    /// Whether this is one of the atomic read-modify-write primitives.
    pub fn is_atomic(self) -> bool {
        matches!(
            self,
            MemOp::FetchPhi { .. }
                | MemOp::Cas { .. }
                | MemOp::LoadLinked { .. }
                | MemOp::StoreConditional { .. }
        )
    }

    /// A short static name for this operation, used as the slice label
    /// in trace output.
    pub fn label(self) -> &'static str {
        match self {
            MemOp::Load { .. } => "Load",
            MemOp::Store { .. } => "Store",
            MemOp::LoadExclusive { .. } => "LoadExclusive",
            MemOp::DropCopy { .. } => "DropCopy",
            MemOp::FetchPhi { .. } => "FetchPhi",
            MemOp::Cas { .. } => "Cas",
            MemOp::LoadLinked { .. } => "LoadLinked",
            MemOp::StoreConditional { .. } => "StoreConditional",
        }
    }

    /// Folds the operation (kind, address and payload) into a checkpoint
    /// digest.
    pub fn digest(self, h: &mut dsm_sim::StableHasher) {
        h.write_u64(self.addr().as_u64());
        match self {
            MemOp::Load { .. } => h.write_u8(0),
            MemOp::Store { value, .. } => {
                h.write_u8(1);
                h.write_u64(value);
            }
            MemOp::LoadExclusive { .. } => h.write_u8(2),
            MemOp::DropCopy { .. } => h.write_u8(3),
            MemOp::FetchPhi { op, .. } => {
                h.write_u8(4);
                op.digest(h);
            }
            MemOp::Cas { expected, new, .. } => {
                h.write_u8(5);
                h.write_u64(expected);
                h.write_u64(new);
            }
            MemOp::LoadLinked { .. } => h.write_u8(6),
            MemOp::StoreConditional { value, serial, .. } => {
                h.write_u8(7);
                h.write_u64(value);
                match serial {
                    Some(s) => {
                        h.write_u8(1);
                        h.write_u64(s);
                    }
                    None => h.write_u8(0),
                }
            }
        }
    }
}

/// The outcome delivered to a processor when its operation completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpResult {
    /// A load-class operation returning the value read. For
    /// `load_linked` under the serial-number scheme, `serial` carries
    /// the line's current serial number; for a beyond-limit LL under
    /// [`LlscScheme::Limited`], `reserved` is `false`.
    Loaded {
        /// The value read.
        value: Value,
        /// Line serial number (serial-number scheme only).
        serial: Option<u64>,
        /// Whether a reservation was recorded (LL only).
        reserved: bool,
    },
    /// A store-class operation completed.
    Stored,
    /// A fetch-and-Φ returning the original value.
    Fetched {
        /// The original value of the destination operand.
        old: Value,
    },
    /// `compare_and_swap` outcome: `success`, plus the value observed
    /// (the original value of the destination operand).
    CasDone {
        /// Whether the swap took place.
        success: bool,
        /// The value observed at the destination.
        observed: Value,
    },
    /// `store_conditional` outcome.
    ScDone {
        /// Whether the conditional store took place.
        success: bool,
    },
}

impl OpResult {
    /// The loaded/fetched/observed value, if this result carries one.
    pub fn value(self) -> Option<Value> {
        match self {
            OpResult::Loaded { value, .. } => Some(value),
            OpResult::Fetched { old } => Some(old),
            OpResult::CasDone { observed, .. } => Some(observed),
            OpResult::Stored | OpResult::ScDone { .. } => None,
        }
    }

    /// `true` for successful CAS/SC, `true` for every other completed op.
    pub fn succeeded(self) -> bool {
        match self {
            OpResult::CasDone { success, .. } | OpResult::ScDone { success } => success,
            _ => true,
        }
    }

    /// Folds the result into a checkpoint digest.
    pub fn digest(self, h: &mut dsm_sim::StableHasher) {
        match self {
            OpResult::Loaded {
                value,
                serial,
                reserved,
            } => {
                h.write_u8(0);
                h.write_u64(value);
                match serial {
                    Some(s) => {
                        h.write_u8(1);
                        h.write_u64(s);
                    }
                    None => h.write_u8(0),
                }
                h.write_u8(reserved as u8);
            }
            OpResult::Stored => h.write_u8(1),
            OpResult::Fetched { old } => {
                h.write_u8(2);
                h.write_u64(old);
            }
            OpResult::CasDone { success, observed } => {
                h.write_u8(3);
                h.write_u8(success as u8);
                h.write_u64(observed);
            }
            OpResult::ScDone { success } => {
                h.write_u8(4);
                h.write_u8(success as u8);
            }
        }
    }
}

/// Per-line configuration of a synchronization variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncConfig {
    /// Coherence policy for the line.
    pub policy: SyncPolicy,
    /// Which INV compare-and-swap variant to use.
    pub cas_variant: CasVariant,
    /// How memory-side LL/SC reservations are kept.
    pub llsc: LlscScheme,
    /// Home-node atomics (ARM-LSE / NIC-side style, the modern fourth
    /// implementation point): fetch-and-Φ and compare-and-swap on this
    /// line execute at the home memory *without migrating the line*,
    /// even under the [`SyncPolicy::Inv`] policy. Loads, stores and
    /// LL/SC keep their normal INV handling; the flag is meaningless
    /// (and ignored) under UNC/UPD, whose atomics already execute at
    /// the memory. Default `false` — the paper's 1995 machine.
    pub home_atomics: bool,
}

impl Default for SyncConfig {
    fn default() -> Self {
        SyncConfig {
            policy: SyncPolicy::Inv,
            cas_variant: CasVariant::Plain,
            llsc: LlscScheme::BitVector,
            home_atomics: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phi_ops_apply_correctly() {
        assert_eq!(PhiOp::Add(3).apply(4), 7);
        assert_eq!(PhiOp::Add(1).apply(u64::MAX), 0, "wrapping add");
        assert_eq!(PhiOp::Store(9).apply(4), 9);
        assert_eq!(PhiOp::Or(0b100).apply(0b001), 0b101);
        assert_eq!(PhiOp::TestAndSet.apply(0), 1);
        assert_eq!(PhiOp::TestAndSet.apply(1), 1);
        assert_eq!(PhiOp::And(0b110).apply(0b011), 0b010);
    }

    #[test]
    fn memop_classification() {
        let a = Addr::new(64);
        assert!(MemOp::Store { addr: a, value: 1 }.is_write());
        assert!(MemOp::Cas {
            addr: a,
            expected: 0,
            new: 1
        }
        .is_write());
        assert!(!MemOp::Load { addr: a }.is_write());
        assert!(!MemOp::LoadLinked { addr: a }.is_write());
        assert!(MemOp::LoadLinked { addr: a }.is_atomic());
        assert!(!MemOp::LoadExclusive { addr: a }.is_atomic());
        assert_eq!(MemOp::DropCopy { addr: a }.addr(), a);
    }

    #[test]
    fn op_result_accessors() {
        assert_eq!(
            OpResult::Loaded {
                value: 5,
                serial: None,
                reserved: true
            }
            .value(),
            Some(5)
        );
        assert_eq!(OpResult::Fetched { old: 7 }.value(), Some(7));
        assert_eq!(
            OpResult::CasDone {
                success: false,
                observed: 3
            }
            .value(),
            Some(3)
        );
        assert_eq!(OpResult::Stored.value(), None);
        assert!(!OpResult::ScDone { success: false }.succeeded());
        assert!(OpResult::Stored.succeeded());
    }

    #[test]
    fn labels() {
        assert_eq!(SyncPolicy::Inv.label(), "INV");
        assert_eq!(format!("{}", SyncPolicy::Unc), "UNC");
        assert_eq!(CasVariant::Deny.label(), "INVd");
        assert_eq!(CasVariant::Share.label(), "INVs");
    }

    #[test]
    fn default_sync_config_is_paper_recommendation_policy() {
        let c = SyncConfig::default();
        assert_eq!(c.policy, SyncPolicy::Inv);
        assert_eq!(c.cas_variant, CasVariant::Plain);
    }
}
