//! Exhaustive interleaving exploration of the coherence protocol.
//!
//! The machine simulator executes one (deterministic) message ordering
//! per run; this harness instead explores **every** ordering. It drives
//! the pure protocol engines (`HomeNode` + `CacheNode`s) directly: the
//! "network" is a multiset of in-flight messages, and at each step any
//! oldest-per-(src, dst) message may be delivered next (the real
//! network is FIFO per source-destination pair, which the protocol
//! relies on; everything else is unordered).
//!
//! At every quiescent leaf the harness checks:
//! * single-writer/multiple-reader and directory/cache agreement;
//! * value agreement between shared copies and memory;
//! * script-specific atomicity postconditions (counter totals, "exactly
//!   one CAS/SC wins", final memory values).
//!
//! This is how races like the drop_copy write-back/NAK crossing are
//! verified in *all* their delivery orders, not just the ones the
//! timing model happens to produce.

use dsm_protocol::{
    AddressMap, CacheNode, CacheState, DirState, HomeNode, MemOp, Msg, OpResult, Outbox, PhiOp,
    SyncConfig, SyncPolicy,
};
use dsm_sim::{Addr, CacheParams, LineAddr, NodeId};

const LINE_SIZE: u64 = 32;
const HOME: usize = 0;

/// One processor's script and progress.
#[derive(Clone)]
struct Proc {
    script: Vec<MemOp>,
    next: usize,
    results: Vec<OpResult>,
}

/// The explored world: home node 0 plus caches on nodes 1..=n.
#[derive(Clone)]
struct World {
    home: HomeNode,
    caches: Vec<CacheNode>,
    procs: Vec<Proc>,
    inflight: Vec<Msg>,
}

struct Explorer {
    map: AddressMap,
    leaves: u64,
    max_leaves: u64,
    check: fn(&World),
}

impl World {
    fn new(nodes: u32, scripts: Vec<Vec<MemOp>>, init: &[(Addr, u64)]) -> World {
        let mut home = HomeNode::new(NodeId::new(0), LINE_SIZE, 64);
        for &(a, v) in init {
            home.poke_word(a, v);
        }
        let mut caches = Vec::new();
        for n in 0..nodes {
            let mut c = CacheNode::new(NodeId::new(n), LINE_SIZE, CacheParams { sets: 4, ways: 2 });
            c.set_nodes(nodes);
            caches.push(c);
        }
        let procs = scripts
            .into_iter()
            .map(|script| Proc {
                script,
                next: 0,
                results: Vec::new(),
            })
            .collect();
        World {
            home,
            caches,
            procs,
            inflight: Vec::new(),
        }
    }

    /// Starts any processors that are idle and have work left. Local
    /// completions chain immediately.
    fn kick_procs(&mut self, map: &AddressMap) {
        loop {
            let mut progressed = false;
            for p in 0..self.procs.len() {
                // Processor p lives on node p+1, so node 0 is a pure
                // home and every request crosses the "network".
                let node = p + 1;
                if self.caches[node].busy() {
                    continue;
                }
                let proc = &self.procs[p];
                if proc.next >= proc.script.len() {
                    continue;
                }
                let op = proc.script[proc.next];
                let mut out = Outbox::new();
                let done = self.caches[node].start_op(op, map, &mut out).unwrap();
                self.inflight.extend(out.drain());
                if let Some(outcome) = done {
                    self.procs[p].next += 1;
                    self.procs[p].results.push(outcome.result);
                    progressed = true;
                } else {
                    // Blocked on the network; its messages are in flight.
                }
            }
            if !progressed {
                return;
            }
        }
    }

    /// Indices of deliverable messages: the oldest in-flight message of
    /// each (src, dst) pair (per-pair FIFO).
    fn deliverable(&self) -> Vec<usize> {
        let mut firsts: Vec<usize> = Vec::new();
        let mut seen: Vec<(NodeId, NodeId)> = Vec::new();
        for (i, m) in self.inflight.iter().enumerate() {
            let key = (m.src, m.dst);
            if !seen.contains(&key) {
                seen.push(key);
                firsts.push(i);
            }
        }
        firsts
    }

    /// Delivers in-flight message `idx`.
    fn deliver(&mut self, idx: usize, map: &AddressMap) {
        let msg = self.inflight.remove(idx);
        let node = msg.dst.index();
        let mut out = Outbox::new();
        if msg.kind.home_bound() {
            assert_eq!(node, HOME, "all lines in these scripts are homed at node 0");
            self.home.handle(msg, map, &mut out).unwrap();
        } else {
            let done = self.caches[node].handle(msg, &mut out).unwrap();
            if let Some(outcome) = done {
                let p = node - 1;
                self.procs[p].next += 1;
                self.procs[p].results.push(outcome.result);
            }
        }
        self.inflight.extend(out.drain());
        self.kick_procs(map);
    }

    /// Quiescent-state coherence invariants (mirrors
    /// `Machine::validate_coherence`, for this harness's single home).
    fn check_coherence(&self) {
        use std::collections::HashMap;
        let mut copies: HashMap<LineAddr, Vec<(usize, CacheState)>> = HashMap::new();
        for (i, c) in self.caches.iter().enumerate() {
            for (line, state) in c.cached_lines() {
                copies.entry(line).or_default().push((i, state));
            }
        }
        for (line, holders) in &copies {
            let excl: Vec<usize> = holders
                .iter()
                .filter(|(_, s)| *s == CacheState::Exclusive)
                .map(|(n, _)| *n)
                .collect();
            assert!(
                excl.len() <= 1,
                "line {line}: two exclusive copies {excl:?}"
            );
            if excl.len() == 1 {
                assert_eq!(holders.len(), 1, "line {line}: E coexists with S");
            }
            match self.home.dir_state(*line) {
                DirState::Dirty(owner) => {
                    assert_eq!(excl.first().copied(), Some(owner.index()), "line {line}");
                }
                DirState::Shared(sharers) => {
                    assert!(
                        excl.is_empty(),
                        "line {line}: dir Shared but an E copy exists"
                    );
                    for (n, _) in holders {
                        assert!(
                            sharers.contains(NodeId::new(*n as u32)),
                            "line {line}: node {n} holds an unknown shared copy"
                        );
                        // Shared copies agree with memory.
                        let base = line.base(LINE_SIZE);
                        for w in 0..LINE_SIZE / 8 {
                            let a = base + w * 8;
                            assert_eq!(
                                self.caches[*n].peek_word(a),
                                Some(self.home.peek_word(a)),
                                "line {line} word {w}: shared copy differs from memory"
                            );
                        }
                    }
                }
                DirState::Uncached => {
                    assert!(holders.is_empty(), "line {line}: cached but dir Uncached");
                }
            }
        }
    }

    /// The logical current value of a word.
    fn value_of(&self, addr: Addr) -> u64 {
        let line = addr.line(LINE_SIZE);
        if let DirState::Dirty(owner) = self.home.dir_state(line) {
            if let Some(v) = self.caches[owner.index()].peek_word(addr) {
                return v;
            }
        }
        self.home.peek_word(addr)
    }
}

impl Explorer {
    fn explore(&mut self, world: &World) {
        let choices = world.deliverable();
        if choices.is_empty() {
            assert!(
                world.procs.iter().all(|p| p.next == p.script.len()),
                "deadlock: processors stuck with no messages in flight"
            );
            self.leaves += 1;
            assert!(
                self.leaves <= self.max_leaves,
                "state space larger than expected (> {} leaves)",
                self.max_leaves
            );
            world.check_coherence();
            (self.check)(world);
            return;
        }
        for idx in choices {
            let mut next = world.clone();
            next.deliver(idx, &self.map);
            self.explore(&next);
        }
    }
}

/// Runs a full exploration and returns the number of distinct complete
/// interleavings that were checked.
fn explore_all(
    nodes: u32,
    scripts: Vec<Vec<MemOp>>,
    policy: SyncPolicy,
    sync_addrs: &[Addr],
    init: &[(Addr, u64)],
    max_leaves: u64,
    check: fn(&World),
) -> u64 {
    let mut map = AddressMap::new(LINE_SIZE);
    for &a in sync_addrs {
        map.register(
            a,
            SyncConfig {
                policy,
                ..Default::default()
            },
        );
    }
    let mut world = World::new(nodes, scripts, init);
    world.kick_procs(&map);
    let mut ex = Explorer {
        map,
        leaves: 0,
        max_leaves,
        check,
    };
    ex.explore(&world);
    ex.leaves
}

// All lines used below are homed at node 0 (line numbers ≡ 0 mod nodes).
fn homed_addr(nodes: u32, k: u64) -> Addr {
    Addr::new(k * nodes as u64 * LINE_SIZE)
}

#[test]
fn two_fetch_adds_always_sum_inv() {
    let x = homed_addr(3, 1);
    let leaves = explore_all(
        3,
        vec![
            vec![MemOp::FetchPhi {
                addr: x,
                op: PhiOp::Add(1),
            }],
            vec![MemOp::FetchPhi {
                addr: x,
                op: PhiOp::Add(1),
            }],
        ],
        SyncPolicy::Inv,
        &[x],
        &[],
        1_000_000,
        |w| {
            let x = homed_addr(3, 1);
            assert_eq!(w.value_of(x), 2, "an increment was lost");
        },
    );
    assert!(leaves >= 2, "expected multiple interleavings, got {leaves}");
}

#[test]
fn two_fetch_adds_always_sum_upd() {
    let x = homed_addr(3, 1);
    explore_all(
        3,
        vec![
            vec![
                MemOp::Load { addr: x },
                MemOp::FetchPhi {
                    addr: x,
                    op: PhiOp::Add(1),
                },
            ],
            vec![
                MemOp::Load { addr: x },
                MemOp::FetchPhi {
                    addr: x,
                    op: PhiOp::Add(1),
                },
            ],
        ],
        SyncPolicy::Upd,
        &[x],
        &[],
        1_000_000,
        |w| {
            let x = homed_addr(3, 1);
            assert_eq!(w.value_of(x), 2);
        },
    );
}

#[test]
fn exactly_one_cas_wins() {
    let x = homed_addr(3, 1);
    explore_all(
        3,
        vec![
            vec![MemOp::Cas {
                addr: x,
                expected: 0,
                new: 10,
            }],
            vec![MemOp::Cas {
                addr: x,
                expected: 0,
                new: 20,
            }],
        ],
        SyncPolicy::Inv,
        &[x],
        &[],
        1_000_000,
        |w| {
            let x = homed_addr(3, 1);
            let wins: Vec<bool> = w
                .procs
                .iter()
                .map(|p| matches!(p.results[0], OpResult::CasDone { success: true, .. }))
                .collect();
            assert_eq!(
                wins.iter().filter(|&&b| b).count(),
                1,
                "exactly one CAS(0, ..) must win: {wins:?}"
            );
            let v = w.value_of(x);
            assert!(v == 10 || v == 20, "final value must be a winner's: {v}");
            // The loser observed the winner's value.
            for (p, &won) in w.procs.iter().zip(&wins) {
                if !won {
                    let OpResult::CasDone { observed, .. } = p.results[0] else {
                        panic!()
                    };
                    assert_eq!(observed, v);
                }
            }
        },
    );
}

#[test]
fn at_most_one_sc_wins_inv() {
    let x = homed_addr(3, 1);
    explore_all(
        3,
        vec![
            vec![
                MemOp::LoadLinked { addr: x },
                MemOp::StoreConditional {
                    addr: x,
                    value: 10,
                    serial: None,
                },
            ],
            vec![
                MemOp::LoadLinked { addr: x },
                MemOp::StoreConditional {
                    addr: x,
                    value: 20,
                    serial: None,
                },
            ],
        ],
        SyncPolicy::Inv,
        &[x],
        &[],
        1_000_000,
        |w| {
            // The real LL/SC invariant: an SC may succeed only if no
            // other write intervened since its LL. Two successes are
            // legal only when the episodes did not overlap — i.e. one
            // processor's LL already observed the other's stored value.
            let x = homed_addr(3, 1);
            let ll = |p: usize| w.procs[p].results[0].value().unwrap();
            let sc_ok =
                |p: usize| matches!(w.procs[p].results[1], OpResult::ScDone { success: true });
            let v = w.value_of(x);
            match (sc_ok(0), sc_ok(1)) {
                (true, true) => {
                    // Serialized episodes: exactly one LL saw the other's
                    // value, and the later SC's value survives.
                    let p0_after_p1 = ll(0) == 20 && v == 10;
                    let p1_after_p0 = ll(1) == 10 && v == 20;
                    assert!(
                        p0_after_p1 ^ p1_after_p0,
                        "overlapping SCs both succeeded: lls=({}, {}), final={v}",
                        ll(0),
                        ll(1)
                    );
                }
                (true, false) => {
                    assert_eq!(v, 10);
                    assert_eq!(ll(0), 0, "winner's LL saw the initial value");
                }
                (false, true) => {
                    assert_eq!(v, 20);
                    assert_eq!(ll(1), 0, "winner's LL saw the initial value");
                }
                (false, false) => assert_eq!(v, 0, "no SC won, value untouched"),
            }
        },
    );
}

#[test]
fn drop_copy_races_never_lose_the_add() {
    // The WB/NAK race in every ordering: P1 adds then drops; P2 adds.
    let x = homed_addr(3, 1);
    explore_all(
        3,
        vec![
            vec![
                MemOp::FetchPhi {
                    addr: x,
                    op: PhiOp::Add(1),
                },
                MemOp::DropCopy { addr: x },
            ],
            vec![
                MemOp::FetchPhi {
                    addr: x,
                    op: PhiOp::Add(1),
                },
                MemOp::DropCopy { addr: x },
            ],
        ],
        SyncPolicy::Inv,
        &[x],
        &[],
        5_000_000,
        |w| {
            let x = homed_addr(3, 1);
            assert_eq!(w.value_of(x), 2);
        },
    );
}

#[test]
fn store_to_shared_line_invalidates_all_readers() {
    // Two readers cache the line; a third processor stores. In every
    // ordering the final state is coherent and the stored value wins.
    let x = homed_addr(4, 1);
    explore_all(
        4,
        vec![
            vec![MemOp::Load { addr: x }],
            vec![MemOp::Load { addr: x }],
            vec![MemOp::Store { addr: x, value: 9 }],
        ],
        SyncPolicy::Inv,
        &[x],
        &[(x, 5)],
        5_000_000,
        |w| {
            let x = homed_addr(4, 1);
            assert_eq!(w.value_of(x), 9);
            for p in &w.procs[..2] {
                let v = p.results[0].value().unwrap();
                assert!(v == 5 || v == 9, "reader saw a torn value {v}");
            }
        },
    );
}

#[test]
fn mixed_ordinary_and_sync_lines_stay_independent() {
    let x = homed_addr(3, 1); // sync (UNC)
    let y = homed_addr(3, 2); // ordinary (base INV)
    explore_all(
        3,
        vec![
            vec![
                MemOp::FetchPhi {
                    addr: x,
                    op: PhiOp::Add(1),
                },
                MemOp::Store { addr: y, value: 7 },
            ],
            vec![
                MemOp::FetchPhi {
                    addr: x,
                    op: PhiOp::Add(1),
                },
                MemOp::Load { addr: y },
            ],
        ],
        SyncPolicy::Unc,
        &[x],
        &[],
        5_000_000,
        |w| {
            let x = homed_addr(3, 1);
            assert_eq!(w.value_of(x), 2);
            let read = w.procs[1].results[1].value().unwrap();
            assert!(read == 0 || read == 7, "load of y saw garbage {read}");
        },
    );
}

#[test]
fn invs_cas_failure_orderings_are_coherent() {
    // P1 takes the line exclusive with a store; P2's INVs CAS (wrong
    // expected value) must fail in every ordering and leave shared
    // copies consistent.
    let x = homed_addr(3, 1);
    let mut map = AddressMap::new(LINE_SIZE);
    map.register(
        x,
        SyncConfig {
            policy: SyncPolicy::Inv,
            cas_variant: dsm_protocol::CasVariant::Share,
            ..Default::default()
        },
    );
    let mut world = World::new(
        3,
        vec![
            vec![MemOp::Store { addr: x, value: 5 }],
            vec![MemOp::Cas {
                addr: x,
                expected: 99,
                new: 1,
            }],
        ],
        &[],
    );
    world.kick_procs(&map);
    let mut ex = Explorer {
        map,
        leaves: 0,
        max_leaves: 5_000_000,
        check: |w| {
            let x = homed_addr(3, 1);
            let OpResult::CasDone { success, observed } = w.procs[1].results[0] else {
                panic!()
            };
            assert!(!success, "CAS with a wrong expected value must fail");
            assert!(
                observed == 0 || observed == 5,
                "observed a torn value {observed}"
            );
            assert_eq!(w.value_of(x), 5);
        },
    };
    ex.explore(&world);
    assert!(ex.leaves >= 2);
}

// ---------------------------------------------------------------------
// Memory-model litmus tests. The simulated processors are blocking (one
// outstanding operation), so the machine must be sequentially
// consistent; the classic forbidden outcomes must not appear in ANY
// delivery order.
// ---------------------------------------------------------------------

/// Message passing (MP): P1 writes data then flag; P2 reads flag then
/// data. Forbidden under SC: flag observed set but data observed stale.
#[test]
fn litmus_message_passing() {
    let data = homed_addr(3, 1);
    let flag = homed_addr(3, 2);
    explore_all(
        3,
        vec![
            vec![
                MemOp::Store {
                    addr: data,
                    value: 1,
                },
                MemOp::Store {
                    addr: flag,
                    value: 1,
                },
            ],
            vec![MemOp::Load { addr: flag }, MemOp::Load { addr: data }],
        ],
        SyncPolicy::Inv,
        &[],
        &[],
        5_000_000,
        |w| {
            let r_flag = w.procs[1].results[0].value().unwrap();
            let r_data = w.procs[1].results[1].value().unwrap();
            assert!(
                !(r_flag == 1 && r_data == 0),
                "SC violation: flag=1 observed but data=0"
            );
        },
    );
}

/// Store buffering (SB): P1 writes x then reads y; P2 writes y then
/// reads x. Forbidden under SC: both loads return 0.
#[test]
fn litmus_store_buffering() {
    let x = homed_addr(3, 1);
    let y = homed_addr(3, 2);
    explore_all(
        3,
        vec![
            vec![MemOp::Store { addr: x, value: 1 }, MemOp::Load { addr: y }],
            vec![MemOp::Store { addr: y, value: 1 }, MemOp::Load { addr: x }],
        ],
        SyncPolicy::Inv,
        &[],
        &[],
        5_000_000,
        |w| {
            let r1 = w.procs[0].results[1].value().unwrap();
            let r2 = w.procs[1].results[1].value().unwrap();
            assert!(
                !(r1 == 0 && r2 == 0),
                "SC violation: both SB loads returned 0"
            );
        },
    );
}

/// Coherence (CoRR): two successive reads of one location by the same
/// processor must not go backwards while another processor writes.
#[test]
fn litmus_read_read_coherence() {
    let x = homed_addr(3, 1);
    explore_all(
        3,
        vec![
            vec![MemOp::Load { addr: x }, MemOp::Load { addr: x }],
            vec![MemOp::Store { addr: x, value: 1 }],
        ],
        SyncPolicy::Inv,
        &[],
        &[],
        5_000_000,
        |w| {
            let r1 = w.procs[0].results[0].value().unwrap();
            let r2 = w.procs[0].results[1].value().unwrap();
            assert!(
                !(r1 == 1 && r2 == 0),
                "coherence violation: value went backwards (read 1 then 0)"
            );
        },
    );
}

/// MP with the flag under UNC and data under the base protocol — mixed
/// policies must preserve SC too.
#[test]
fn litmus_message_passing_mixed_policies() {
    let data = homed_addr(3, 1);
    let flag = homed_addr(3, 2);
    explore_all(
        3,
        vec![
            vec![
                MemOp::Store {
                    addr: data,
                    value: 1,
                },
                MemOp::Store {
                    addr: flag,
                    value: 1,
                },
            ],
            vec![MemOp::Load { addr: flag }, MemOp::Load { addr: data }],
        ],
        SyncPolicy::Unc,
        &[flag],
        &[],
        5_000_000,
        |w| {
            let r_flag = w.procs[1].results[0].value().unwrap();
            let r_data = w.procs[1].results[1].value().unwrap();
            assert!(
                !(r_flag == 1 && r_data == 0),
                "SC violation across mixed policies"
            );
        },
    );
}

/// UPD stores racing a read: the reader must see 0, 10, or 20 —
/// never a value that was never written — and final state matches the
/// last write in every ordering.
#[test]
fn upd_store_orderings_are_serializable() {
    let x = homed_addr(3, 1);
    explore_all(
        3,
        vec![
            vec![MemOp::Load { addr: x }, MemOp::Store { addr: x, value: 10 }],
            vec![MemOp::Load { addr: x }, MemOp::Store { addr: x, value: 20 }],
        ],
        SyncPolicy::Upd,
        &[x],
        &[],
        5_000_000,
        |w| {
            let x = homed_addr(3, 1);
            let v = w.value_of(x);
            assert!(
                v == 10 || v == 20,
                "final value must be one of the stores: {v}"
            );
            for p in &w.procs {
                let seen = p.results[0].value().unwrap();
                assert!(
                    seen == 0 || seen == 10 || seen == 20,
                    "phantom value {seen}"
                );
            }
        },
    );
}

/// UNC serial-number SCs: with one LL each, at most one SC can succeed
/// per serial epoch, and a bare SC with the initial serial competes
/// correctly.
#[test]
fn serial_number_sc_orderings() {
    let x = homed_addr(3, 1);
    let mut map = AddressMap::new(LINE_SIZE);
    map.register(
        x,
        SyncConfig {
            policy: SyncPolicy::Unc,
            llsc: dsm_protocol::LlscScheme::SerialNumber,
            ..Default::default()
        },
    );
    let mut world = World::new(
        3,
        vec![
            vec![
                MemOp::LoadLinked { addr: x },
                // The CPU threads the returned serial through; here the
                // initial serial is deterministically 0.
                MemOp::StoreConditional {
                    addr: x,
                    value: 10,
                    serial: Some(0),
                },
            ],
            vec![MemOp::StoreConditional {
                addr: x,
                value: 20,
                serial: Some(0),
            }], // bare SC
        ],
        &[],
    );
    world.kick_procs(&map);
    let mut ex = Explorer {
        map,
        leaves: 0,
        max_leaves: 5_000_000,
        check: |w| {
            let x = homed_addr(3, 1);
            let sc0 = matches!(w.procs[0].results[1], OpResult::ScDone { success: true });
            let sc1 = matches!(w.procs[1].results[0], OpResult::ScDone { success: true });
            // Both present serial 0; the home serializes them, so
            // exactly one succeeds.
            assert!(
                sc0 ^ sc1,
                "exactly one serial-0 SC must win (got {sc0}, {sc1})"
            );
            let v = w.value_of(x);
            assert_eq!(v, if sc0 { 10 } else { 20 });
        },
    };
    ex.explore(&world);
    assert!(ex.leaves >= 2);
}

/// INVd compare-and-swap against a migrating line: the forwarded
/// compare (FwdCas) path in all orderings, including the case where
/// the owner's copy is being written back.
#[test]
fn invd_fwdcas_orderings() {
    let x = homed_addr(3, 1);
    let mut map = AddressMap::new(LINE_SIZE);
    map.register(
        x,
        SyncConfig {
            policy: SyncPolicy::Inv,
            cas_variant: dsm_protocol::CasVariant::Deny,
            ..Default::default()
        },
    );
    let mut world = World::new(
        3,
        vec![
            // P1 dirties the line (value 5), then drops it.
            vec![
                MemOp::Store { addr: x, value: 5 },
                MemOp::DropCopy { addr: x },
            ],
            // P2's CAS expects 5: depending on ordering it is compared
            // at the owner (forwarded) or at the home (after the
            // write-back), or even before P1's store lands.
            vec![MemOp::Cas {
                addr: x,
                expected: 5,
                new: 9,
            }],
        ],
        &[],
    );
    world.kick_procs(&map);
    let mut ex = Explorer {
        map,
        leaves: 0,
        max_leaves: 5_000_000,
        check: |w| {
            let x = homed_addr(3, 1);
            let OpResult::CasDone { success, observed } = w.procs[1].results[0] else {
                panic!()
            };
            let v = w.value_of(x);
            if success {
                assert_eq!(observed, 5);
                assert_eq!(v, 9);
            } else {
                assert_eq!(observed, 0, "failed only if it raced ahead of the store");
                assert_eq!(v, 5);
            }
        },
    };
    ex.explore(&world);
    assert!(
        ex.leaves >= 3,
        "expected several orderings, got {}",
        ex.leaves
    );
}
