//! Machine and timing configuration.
//!
//! The defaults describe the machine simulated in the paper: a 64-node
//! (8×8) mesh with 32-byte cache lines and queued memory modules. The
//! paper does not publish its exact latency constants, so the timing
//! defaults here use DASH-era magnitudes; every constant is configurable
//! so the benchmark harness can sweep them.

use crate::fault::FaultConfig;
use crate::ids::NodeId;

/// Latency and sizing parameters for the simulated hardware.
///
/// All times are in processor clock cycles; all sizes in bytes.
///
/// # Example
///
/// ```
/// use dsm_sim::SimParams;
///
/// let p = SimParams::default();
/// assert_eq!(p.line_size, 32);
/// // A 32-byte data message: header + command flits + 4 data flits.
/// assert_eq!(p.flits_for_payload(32), 6);
/// assert_eq!(p.flits_for_payload(0), 2); // control message
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SimParams {
    /// Cache line size in bytes (paper: 32).
    pub line_size: u64,
    /// Cycles for a load/store that hits in the local cache.
    pub cache_hit: u64,
    /// Cache-controller occupancy for handling a protocol action.
    pub cache_ctrl: u64,
    /// DRAM access time at a memory module (read or write of one line).
    pub mem_access: u64,
    /// Directory lookup/update time at the home node.
    pub dir_access: u64,
    /// Per-hop router delay in the mesh.
    pub hop_delay: u64,
    /// Flit width in bytes (payloads are divided into flits of this size).
    pub flit_bytes: u64,
    /// Cycles for one flit to cross a link (also the per-flit occupancy of
    /// a network-interface queue).
    pub flit_cycle: u64,
    /// Extra header flits prepended to every message (address, type, ...).
    pub header_flits: u64,
    /// Cycles the processor needs to issue an operation.
    pub issue: u64,
    /// Extra wire latency paid by every message whose source and
    /// destination lie in different NUMA clusters (see
    /// [`MachineConfig::clusters`]). 0 — the default, and the paper's
    /// flat machine — adds nothing anywhere, keeping every committed
    /// artifact byte-identical.
    pub cluster_penalty: u64,
}

impl SimParams {
    /// Returns the total flit count of a message carrying `payload` bytes.
    ///
    /// A message with no payload (a control message: request, ack,
    /// invalidation) still carries `header_flits` plus one flit of
    /// address/command.
    pub fn flits_for_payload(&self, payload: u64) -> u64 {
        self.header_flits + 1 + payload.div_ceil(self.flit_bytes)
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint, e.g. a
    /// non-power-of-two line size or a zero flit size.
    pub fn validate(&self) -> Result<(), String> {
        if !self.line_size.is_power_of_two() {
            return Err(format!(
                "line_size {} is not a power of two",
                self.line_size
            ));
        }
        if self.flit_bytes == 0 {
            return Err("flit_bytes must be positive".into());
        }
        if self.flit_cycle == 0 {
            return Err("flit_cycle must be positive".into());
        }
        Ok(())
    }
}

impl Default for SimParams {
    fn default() -> Self {
        SimParams {
            line_size: 32,
            cache_hit: 1,
            cache_ctrl: 4,
            mem_access: 20,
            dir_access: 4,
            hop_delay: 2,
            flit_bytes: 8,
            flit_cycle: 1,
            header_flits: 1,
            issue: 1,
            cluster_penalty: 0,
        }
    }
}

/// Which directory-protocol variant the home nodes run.
///
/// The base protocol is the paper's DASH-style write-invalidate
/// directory. The other variants model 2020s coherence features for the
/// modern-architecture ablations (`figures modern`); they change *who
/// supplies data on a read miss to a shared line*, nothing else, so
/// every result under [`ProtoVariant::Dash`] is byte-identical to the
/// pre-variant simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ProtoVariant {
    /// The paper's base protocol: the home memory supplies all read
    /// misses.
    #[default]
    Dash,
    /// MESI(F)-style forwarding: on a read miss to a shared line, the
    /// home forwards the request to the sharer nearest the requester
    /// (fewest mesh hops, lowest node id on ties), which supplies the
    /// data cache-to-cache.
    MesiF,
    /// Two-level hierarchical NUMA directory: like [`ProtoVariant::MesiF`],
    /// but the home only forwards to a sharer inside the *requester's
    /// cluster*, so the data leg never crosses the inter-cluster
    /// interconnect; with no cluster-local sharer it falls back to the
    /// home memory like the base protocol.
    Hier,
}

impl ProtoVariant {
    /// The label used in `figures modern` tables.
    pub fn label(self) -> &'static str {
        match self {
            ProtoVariant::Dash => "DASH",
            ProtoVariant::MesiF => "MESI(F)",
            ProtoVariant::Hier => "HIER",
        }
    }
}

/// A parsed `DSM_PROTO` / `--proto` specification: protocol/topology
/// overrides applied to every machine built while it is in force.
///
/// The grammar is a comma-separated list of clauses:
///
/// * `dash` | `mesif` | `hier` — directory variant (default `dash`);
/// * `hna` — execute fetch-and-Φ / compare-and-swap on INV-policy sync
///   lines at the home memory, without line migration (ARM-LSE-style
///   in-memory remote atomics);
/// * `clusters=N` — partition the nodes into `N` equal NUMA clusters
///   of contiguous ids;
/// * `penalty=N` — extra cycles per inter-cluster message;
/// * `line=N` — cache line size in bytes (power of two).
///
/// # Example
///
/// ```
/// use dsm_sim::{ProtoSpec, ProtoVariant};
///
/// let s = ProtoSpec::from_spec("hier,clusters=4,penalty=32").unwrap();
/// assert_eq!(s.variant, ProtoVariant::Hier);
/// assert_eq!((s.clusters, s.penalty), (Some(4), Some(32)));
/// assert!(!s.home_atomics);
/// assert!(ProtoSpec::from_spec("bogus").is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProtoSpec {
    /// Directory variant to run.
    pub variant: ProtoVariant,
    /// Execute INV-line atomics at the home memory (no line migration).
    pub home_atomics: bool,
    /// NUMA cluster count override, if given.
    pub clusters: Option<u32>,
    /// Inter-cluster penalty override in cycles, if given.
    pub penalty: Option<u64>,
    /// Line-size override in bytes, if given.
    pub line_size: Option<u64>,
}

impl ProtoSpec {
    /// Parses a spec string (see the type-level grammar).
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed clause.
    pub fn from_spec(spec: &str) -> Result<Self, String> {
        let mut out = ProtoSpec::default();
        for clause in spec.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            match clause.split_once('=') {
                None => match clause {
                    "dash" => out.variant = ProtoVariant::Dash,
                    "mesif" => out.variant = ProtoVariant::MesiF,
                    "hier" => out.variant = ProtoVariant::Hier,
                    "hna" => out.home_atomics = true,
                    other => return Err(format!("unknown proto clause {other:?}")),
                },
                Some((key, val)) => {
                    let n: u64 = val
                        .parse()
                        .map_err(|_| format!("clause {clause:?}: {val:?} is not a number"))?;
                    match key {
                        "clusters" => {
                            if n == 0 {
                                return Err("clusters must be positive".into());
                            }
                            out.clusters = Some(n as u32);
                        }
                        "penalty" => out.penalty = Some(n),
                        "line" => {
                            if !n.is_power_of_two() {
                                return Err(format!("line size {n} is not a power of two"));
                            }
                            out.line_size = Some(n);
                        }
                        other => return Err(format!("unknown proto key {other:?}")),
                    }
                }
            }
        }
        Ok(out)
    }

    /// Applies the overrides to a machine configuration (unset clauses
    /// leave the corresponding fields untouched). The `hna` flag is not
    /// applied here — it concerns per-line sync configs, which the
    /// machine builder owns.
    pub fn apply(&self, cfg: &mut MachineConfig) {
        cfg.proto = self.variant;
        if let Some(c) = self.clusters {
            cfg.clusters = c;
        }
        if let Some(p) = self.penalty {
            cfg.params.cluster_penalty = p;
        }
        if let Some(l) = self.line_size {
            cfg.params.line_size = l;
        }
    }
}

/// Geometry of the per-node processor cache.
///
/// Synchronization studies touch few distinct lines, so the default cache
/// is large enough that conflict misses do not perturb the results; the
/// benchmark harness shrinks it for capacity-pressure ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheParams {
    /// Number of sets.
    pub sets: usize,
    /// Associativity (lines per set).
    pub ways: usize,
}

impl CacheParams {
    /// Total capacity in lines.
    pub fn lines(&self) -> usize {
        self.sets * self.ways
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns a message if `sets` is not a power of two or either field
    /// is zero.
    pub fn validate(&self) -> Result<(), String> {
        if self.sets == 0 || self.ways == 0 {
            return Err("cache must have at least one set and one way".into());
        }
        if !self.sets.is_power_of_two() {
            return Err(format!("cache sets {} is not a power of two", self.sets));
        }
        Ok(())
    }
}

impl Default for CacheParams {
    fn default() -> Self {
        CacheParams { sets: 256, ways: 4 }
    }
}

/// Full description of the simulated machine.
///
/// # Example
///
/// ```
/// use dsm_sim::MachineConfig;
///
/// let cfg = MachineConfig::default(); // the paper's 64-node machine
/// assert_eq!(cfg.nodes, 64);
/// assert_eq!(cfg.mesh_dims(), (8, 8));
/// cfg.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MachineConfig {
    /// Number of nodes (one processor + one memory module each).
    pub nodes: u32,
    /// Mesh width; `nodes` must equal `mesh_width * mesh_height`.
    pub mesh_width: u32,
    /// Timing and sizing parameters.
    pub params: SimParams,
    /// Per-node cache geometry.
    pub cache: CacheParams,
    /// Seed for all randomized behaviour (backoff jitter, workloads).
    pub seed: u64,
    /// Directory-protocol variant the home nodes run (default: the
    /// paper's DASH-style base protocol).
    pub proto: ProtoVariant,
    /// Number of NUMA clusters the nodes are partitioned into
    /// (contiguous id blocks of equal size; `nodes` must be a
    /// multiple). 1 — the default — is the paper's flat machine, and
    /// with [`SimParams::cluster_penalty`] = 0 the partition has no
    /// observable effect.
    pub clusters: u32,
    /// Fault injection and self-checking knobs; the default disables
    /// everything, leaving the simulated machine's behaviour (and every
    /// derived paper artifact) byte-identical to a faults-free build.
    pub faults: FaultConfig,
}

impl MachineConfig {
    /// Creates a configuration for `nodes` processors arranged in the
    /// squarest possible mesh, with default timing.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn with_nodes(nodes: u32) -> Self {
        assert!(nodes > 0, "a machine must have at least one node");
        let mut w = (nodes as f64).sqrt() as u32;
        while w > 1 && !nodes.is_multiple_of(w) {
            w -= 1;
        }
        MachineConfig {
            nodes,
            mesh_width: w.max(1),
            params: SimParams::default(),
            cache: CacheParams::default(),
            seed: 0x5EED,
            proto: ProtoVariant::Dash,
            clusters: 1,
            faults: FaultConfig::default(),
        }
    }

    /// The NUMA cluster `node` belongs to: nodes are partitioned into
    /// [`clusters`](MachineConfig::clusters) contiguous id blocks of
    /// equal size. With 1 cluster every node answers 0.
    pub fn cluster_of(&self, node: NodeId) -> u32 {
        node.as_u32() / (self.nodes / self.clusters.max(1)).max(1)
    }

    /// `true` if both nodes lie in the same NUMA cluster (always true
    /// on the default flat machine).
    pub fn same_cluster(&self, a: NodeId, b: NodeId) -> bool {
        self.cluster_of(a) == self.cluster_of(b)
    }

    /// Returns (width, height) of the mesh.
    pub fn mesh_dims(&self) -> (u32, u32) {
        (self.mesh_width, self.nodes / self.mesh_width)
    }

    /// Returns the (x, y) coordinates of `node` in the mesh.
    pub fn coords(&self, node: NodeId) -> (u32, u32) {
        let id = node.as_u32();
        (id % self.mesh_width, id / self.mesh_width)
    }

    /// Returns the Manhattan distance in hops between two nodes.
    pub fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        ax.abs_diff(bx) + ay.abs_diff(by)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first inconsistency, e.g. a mesh
    /// width that does not divide the node count.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("machine must have at least one node".into());
        }
        if self.mesh_width == 0 || !self.nodes.is_multiple_of(self.mesh_width) {
            return Err(format!(
                "mesh width {} does not tile {} nodes",
                self.mesh_width, self.nodes
            ));
        }
        if self.clusters == 0 || !self.nodes.is_multiple_of(self.clusters) {
            return Err(format!(
                "cluster count {} does not partition {} nodes",
                self.clusters, self.nodes
            ));
        }
        self.params.validate()?;
        self.cache.validate()?;
        self.faults.validate()?;
        Ok(())
    }
}

impl Default for MachineConfig {
    /// The paper's machine: 64 nodes in an 8×8 mesh, 32-byte lines.
    fn default() -> Self {
        MachineConfig::with_nodes(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let cfg = MachineConfig::default();
        assert_eq!(cfg.nodes, 64);
        assert_eq!(cfg.mesh_dims(), (8, 8));
        assert_eq!(cfg.params.line_size, 32);
        cfg.validate().unwrap();
    }

    #[test]
    fn flit_accounting() {
        let p = SimParams::default();
        assert_eq!(p.flits_for_payload(0), 2);
        assert_eq!(p.flits_for_payload(8), 3);
        assert_eq!(p.flits_for_payload(32), 6);
        assert_eq!(p.flits_for_payload(33), 7);
    }

    #[test]
    fn coords_and_hops() {
        let cfg = MachineConfig::default();
        assert_eq!(cfg.coords(NodeId::new(0)), (0, 0));
        assert_eq!(cfg.coords(NodeId::new(9)), (1, 1));
        assert_eq!(cfg.hops(NodeId::new(0), NodeId::new(63)), 14);
        assert_eq!(cfg.hops(NodeId::new(5), NodeId::new(5)), 0);
    }

    #[test]
    fn with_nodes_finds_rectangles() {
        assert_eq!(MachineConfig::with_nodes(16).mesh_dims(), (4, 4));
        assert_eq!(MachineConfig::with_nodes(12).mesh_dims(), (3, 4));
        assert_eq!(MachineConfig::with_nodes(1).mesh_dims(), (1, 1));
        assert_eq!(MachineConfig::with_nodes(7).mesh_dims(), (1, 7));
    }

    #[test]
    fn validation_catches_bad_configs() {
        let cfg = MachineConfig {
            mesh_width: 5,
            ..MachineConfig::default()
        };
        assert!(cfg.validate().is_err());

        let mut cfg = MachineConfig::default();
        cfg.params.line_size = 24;
        assert!(cfg.validate().is_err());

        let mut cfg = MachineConfig::default();
        cfg.cache.sets = 3;
        assert!(cfg.validate().is_err());

        let mut cfg = MachineConfig::default();
        cfg.params.flit_bytes = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = MachineConfig::default();
        cfg.faults.evict_per_10k = 50_000;
        assert!(cfg.validate().is_err());

        let cfg = MachineConfig {
            clusters: 7, // does not divide 64
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn clusters_partition_contiguous_blocks() {
        let mut cfg = MachineConfig::with_nodes(16);
        cfg.clusters = 4;
        cfg.validate().unwrap();
        assert_eq!(cfg.cluster_of(NodeId::new(0)), 0);
        assert_eq!(cfg.cluster_of(NodeId::new(3)), 0);
        assert_eq!(cfg.cluster_of(NodeId::new(4)), 1);
        assert_eq!(cfg.cluster_of(NodeId::new(15)), 3);
        assert!(cfg.same_cluster(NodeId::new(4), NodeId::new(7)));
        assert!(!cfg.same_cluster(NodeId::new(3), NodeId::new(4)));
        // The default flat machine puts everyone in cluster 0.
        let flat = MachineConfig::with_nodes(16);
        assert!(flat.same_cluster(NodeId::new(0), NodeId::new(15)));
    }

    #[test]
    fn proto_spec_grammar() {
        let s = ProtoSpec::from_spec("mesif").unwrap();
        assert_eq!(s.variant, ProtoVariant::MesiF);
        assert!(s.clusters.is_none() && s.penalty.is_none() && s.line_size.is_none());

        let s = ProtoSpec::from_spec("hna,clusters=2,penalty=40,line=128").unwrap();
        assert!(s.home_atomics);
        assert_eq!(s.clusters, Some(2));
        assert_eq!(s.penalty, Some(40));
        assert_eq!(s.line_size, Some(128));

        assert!(ProtoSpec::from_spec("line=24").is_err());
        assert!(ProtoSpec::from_spec("clusters=0").is_err());
        assert!(ProtoSpec::from_spec("warp=9").is_err());
        assert!(ProtoSpec::from_spec("mesi").is_err());

        let mut cfg = MachineConfig::with_nodes(16);
        s.apply(&mut cfg);
        assert_eq!(cfg.proto, ProtoVariant::Dash);
        assert_eq!(cfg.clusters, 2);
        assert_eq!(cfg.params.cluster_penalty, 40);
        assert_eq!(cfg.params.line_size, 128);
        cfg.validate().unwrap();
    }

    #[test]
    fn variant_labels() {
        assert_eq!(ProtoVariant::Dash.label(), "DASH");
        assert_eq!(ProtoVariant::MesiF.label(), "MESI(F)");
        assert_eq!(ProtoVariant::Hier.label(), "HIER");
    }
}
